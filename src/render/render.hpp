// Result output (interface layer, paper Section V-A): render a layout (and
// optionally its violations) to SVG for visual inspection, and export
// violations as GDSII marker shapes that any layout viewer can overlay —
// the workflow KLayout users get from its marker database.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "checks/violation.hpp"
#include "db/layout.hpp"

namespace odrc::render {

struct svg_options {
  /// Layers to draw; empty = every populated layer.
  std::vector<db::layer_t> layers;
  /// Output width in pixels (height follows the layout aspect ratio).
  int width_px = 1200;
  /// Draw violation markers on top of the geometry.
  bool draw_violations = true;
};

/// Render the flattened layout (all top cells) to an SVG document.
void write_svg(const db::library& lib, std::ostream& out, const svg_options& opts = {},
               std::span<const checks::violation> violations = {});

void write_svg(const db::library& lib, const std::string& path, const svg_options& opts = {},
               std::span<const checks::violation> violations = {});

/// Marker layer offset: a violation of rule kind k lands on GDSII layer
/// marker_layer_base + k in the exported marker library.
inline constexpr db::layer_t marker_layer_base = 200;

/// Build a single-cell library containing one marker rectangle per
/// violation (the joined MBR of the violating geometry), on per-kind marker
/// layers. Write it with gdsii::write() and overlay it in any viewer.
[[nodiscard]] db::library violation_markers(std::span<const checks::violation> violations,
                                            const std::string& design_name = "markers");

}  // namespace odrc::render
