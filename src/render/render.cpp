#include "render/render.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

#include "db/flatten.hpp"

namespace odrc::render {

namespace {

// A small qualitative palette cycled per layer (order of appearance).
constexpr const char* kPalette[] = {
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
    "#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
};

struct view_transform {
  // SVG y grows downward; layouts grow upward. Map layout (x, y) to
  // (sx * (x - x0), sy_off - sx * y).
  double scale = 1.0;
  double x0 = 0.0;
  double y_off = 0.0;

  [[nodiscard]] double x(coord_t v) const { return (static_cast<double>(v) - x0) * scale; }
  [[nodiscard]] double y(coord_t v) const { return y_off - static_cast<double>(v) * scale; }
};

void emit_polygon(std::ostream& out, const polygon& p, const view_transform& vt,
                  const char* color) {
  out << "  <polygon points=\"";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i) out << ' ';
    out << vt.x(p.vertices()[i].x) << ',' << vt.y(p.vertices()[i].y);
  }
  out << "\" fill=\"" << color << "\" fill-opacity=\"0.45\" stroke=\"" << color
      << "\" stroke-width=\"0.4\"/>\n";
}

}  // namespace

void write_svg(const db::library& lib, std::ostream& out, const svg_options& opts,
               std::span<const checks::violation> violations) {
  // Flatten everything once, group by layer, compute extents.
  std::map<db::layer_t, std::vector<polygon>> by_layer;
  rect extent;
  for (const db::cell_id top : lib.top_cells()) {
    for (auto& fp : db::flatten_all(lib, top)) {
      extent = extent.join(fp.poly.mbr());
      by_layer[fp.layer].push_back(std::move(fp.poly));
    }
  }
  const std::set<db::layer_t> wanted(opts.layers.begin(), opts.layers.end());

  if (extent.empty()) extent = {0, 0, 1, 1};
  const double w = std::max<double>(1.0, extent.width());
  const double h = std::max<double>(1.0, extent.height());
  view_transform vt;
  vt.scale = opts.width_px / w;
  vt.x0 = extent.x_min;
  vt.y_off = static_cast<double>(extent.y_max) * vt.scale;
  const int height_px = static_cast<int>(h * vt.scale) + 1;

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opts.width_px << "\" height=\""
      << height_px << "\" viewBox=\"0 0 " << opts.width_px << ' ' << height_px << "\">\n";
  out << "  <rect width=\"100%\" height=\"100%\" fill=\"#111318\"/>\n";

  std::size_t palette_idx = 0;
  for (const auto& [layer, polys] : by_layer) {
    const char* color = kPalette[palette_idx++ % std::size(kPalette)];
    if (!wanted.empty() && !wanted.contains(layer)) continue;
    out << "  <g id=\"layer" << layer << "\">\n";
    for (const polygon& p : polys) emit_polygon(out, p, vt, color);
    out << "  </g>\n";
  }

  if (opts.draw_violations && !violations.empty()) {
    out << "  <g id=\"violations\">\n";
    for (const checks::violation& v : violations) {
      const rect m = v.e1.mbr().join(v.e2.mbr()).inflated(2);
      out << "    <rect x=\"" << vt.x(m.x_min) << "\" y=\"" << vt.y(m.y_max) << "\" width=\""
          << (vt.x(m.x_max) - vt.x(m.x_min)) << "\" height=\"" << (vt.y(m.y_min) - vt.y(m.y_max))
          << "\" fill=\"none\" stroke=\"#ff2d2d\" stroke-width=\"1.5\">"
          << "<title>" << checks::rule_kind_name(v.kind) << " L" << v.layer1 << "</title>"
          << "</rect>\n";
    }
    out << "  </g>\n";
  }
  out << "</svg>\n";
}

void write_svg(const db::library& lib, const std::string& path, const svg_options& opts,
               std::span<const checks::violation> violations) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("render: cannot open '" + path + "'");
  write_svg(lib, f, opts, violations);
}

db::library violation_markers(std::span<const checks::violation> violations,
                              const std::string& design_name) {
  db::library lib(design_name + "_markers");
  const db::cell_id cell = lib.add_cell("MARKERS");
  for (const checks::violation& v : violations) {
    rect m = v.e1.mbr().join(v.e2.mbr());
    // Degenerate markers (collinear edges) get a minimum visible extent.
    if (m.width() == 0) m.x_max = static_cast<coord_t>(m.x_max + 1);
    if (m.height() == 0) m.y_max = static_cast<coord_t>(m.y_max + 1);
    const auto layer = static_cast<db::layer_t>(marker_layer_base + static_cast<int>(v.kind));
    lib.at(cell).add_polygon(
        {layer, 0, polygon::from_rect(m), std::string(checks::rule_kind_name(v.kind))});
  }
  return lib;
}

}  // namespace odrc::render
