// GDSII stream reader: binary file -> odrc::db::library.
//
// Supports HEADER/BGNLIB/LIBNAME/UNITS, structures (BGNSTR/STRNAME/ENDSTR),
// and elements BOUNDARY, PATH (expanded to per-segment rectangles), SREF,
// AREF, TEXT, BOX and NODE (skipped), with STRANS/MAG/ANGLE transforms
// restricted to rectilinearity-preserving angles (multiples of 90 degrees)
// and integral magnifications, matching the engine's assumptions.
//
// Forward references are legal in GDSII: SNAME may name a structure defined
// later in the stream. The reader records references by name and resolves
// them to cell ids after ENDLIB, creating an error for dangling names.
#pragma once

#include <istream>
#include <stdexcept>
#include <string>

#include "db/layout.hpp"

namespace odrc::gdsii {

/// Error with stream offset context.
class parse_error : public std::runtime_error {
 public:
  parse_error(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"), offset_(offset) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Parse a GDSII stream from `in`.
[[nodiscard]] db::library read(std::istream& in);

/// Parse a GDSII file from disk.
[[nodiscard]] db::library read(const std::string& path);

}  // namespace odrc::gdsii
