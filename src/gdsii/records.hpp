// GDSII stream format record and data types (Calma GDSII Stream Format,
// release 6; paper Section IV-A quotes its Backus-Naur structure grammar).
//
// A stream file is a sequence of records: a 2-byte big-endian total length
// (header included), a 1-byte record type, a 1-byte data type, then payload.
#pragma once

#include <cstdint>
#include <string_view>

namespace odrc::gdsii {

enum class record_type : std::uint8_t {
  HEADER = 0x00,
  BGNLIB = 0x01,
  LIBNAME = 0x02,
  UNITS = 0x03,
  ENDLIB = 0x04,
  BGNSTR = 0x05,
  STRNAME = 0x06,
  ENDSTR = 0x07,
  BOUNDARY = 0x08,
  PATH = 0x09,
  SREF = 0x0A,
  AREF = 0x0B,
  TEXT = 0x0C,
  LAYER = 0x0D,
  DATATYPE = 0x0E,
  WIDTH = 0x0F,
  XY = 0x10,
  ENDEL = 0x11,
  SNAME = 0x12,
  COLROW = 0x13,
  TEXTNODE = 0x14,
  NODE = 0x15,
  TEXTTYPE = 0x16,
  PRESENTATION = 0x17,
  STRING = 0x19,
  STRANS = 0x1A,
  MAG = 0x1B,
  ANGLE = 0x1C,
  REFLIBS = 0x1F,
  FONTS = 0x20,
  PATHTYPE = 0x21,
  GENERATIONS = 0x22,
  ATTRTABLE = 0x23,
  ELFLAGS = 0x26,
  NODETYPE = 0x2A,
  PROPATTR = 0x2B,
  PROPVALUE = 0x2C,
  BOX = 0x2D,
  BOXTYPE = 0x2E,
  PLEX = 0x2F,
};

enum class data_type : std::uint8_t {
  no_data = 0,
  bit_array = 1,
  int16 = 2,
  int32 = 3,
  real32 = 4,
  real64 = 5,
  ascii = 6,
};

[[nodiscard]] constexpr std::string_view record_name(record_type t) {
  switch (t) {
    case record_type::HEADER: return "HEADER";
    case record_type::BGNLIB: return "BGNLIB";
    case record_type::LIBNAME: return "LIBNAME";
    case record_type::UNITS: return "UNITS";
    case record_type::ENDLIB: return "ENDLIB";
    case record_type::BGNSTR: return "BGNSTR";
    case record_type::STRNAME: return "STRNAME";
    case record_type::ENDSTR: return "ENDSTR";
    case record_type::BOUNDARY: return "BOUNDARY";
    case record_type::PATH: return "PATH";
    case record_type::SREF: return "SREF";
    case record_type::AREF: return "AREF";
    case record_type::TEXT: return "TEXT";
    case record_type::LAYER: return "LAYER";
    case record_type::DATATYPE: return "DATATYPE";
    case record_type::WIDTH: return "WIDTH";
    case record_type::XY: return "XY";
    case record_type::ENDEL: return "ENDEL";
    case record_type::SNAME: return "SNAME";
    case record_type::COLROW: return "COLROW";
    case record_type::NODE: return "NODE";
    case record_type::TEXTTYPE: return "TEXTTYPE";
    case record_type::PRESENTATION: return "PRESENTATION";
    case record_type::STRING: return "STRING";
    case record_type::STRANS: return "STRANS";
    case record_type::MAG: return "MAG";
    case record_type::ANGLE: return "ANGLE";
    case record_type::PATHTYPE: return "PATHTYPE";
    case record_type::BOX: return "BOX";
    case record_type::BOXTYPE: return "BOXTYPE";
    default: return "<record>";
  }
}

/// STRANS bit 15: mirror about the x-axis before rotation.
inline constexpr std::uint16_t strans_reflect = 0x8000;

/// Encode a double into the GDSII 8-byte excess-64 base-16 real format:
/// bit 63 sign, bits 62..56 exponent (excess 64, radix 16), bits 55..0
/// mantissa with value = sign * mantissa/2^56 * 16^(exp-64).
[[nodiscard]] std::uint64_t encode_real64(double v);

/// Decode the GDSII 8-byte real format to a double.
[[nodiscard]] double decode_real64(std::uint64_t bits);

}  // namespace odrc::gdsii
