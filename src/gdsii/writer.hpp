// GDSII stream writer: odrc::db::library -> binary file.
//
// Emits a release-6 stream (HEADER version 600). Polygons are written as
// BOUNDARY records, references as SREF/AREF with STRANS/MAG/ANGLE, texts as
// TEXT records. Round-trips with the reader (tests/gdsii_test.cpp).
#pragma once

#include <ostream>
#include <string>

#include "db/layout.hpp"

namespace odrc::gdsii {

void write(const db::library& lib, std::ostream& out);

void write(const db::library& lib, const std::string& path);

}  // namespace odrc::gdsii
