#include "gdsii/reader.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gdsii/records.hpp"
#include "infra/logger.hpp"

namespace odrc::gdsii {

namespace {

// Raw record view over the payload bytes.
struct record {
  record_type type;
  data_type dtype;
  std::vector<std::uint8_t> payload;
  std::size_t offset;  // file offset of the record header, for diagnostics

  [[nodiscard]] std::int16_t int16_at(std::size_t i) const {
    if (i * 2 + 1 >= payload.size() + 1 && payload.size() < (i + 1) * 2) {
      throw parse_error("record payload too short for int16", offset);
    }
    return static_cast<std::int16_t>((payload[i * 2] << 8) | payload[i * 2 + 1]);
  }

  [[nodiscard]] std::int32_t int32_at(std::size_t i) const {
    if (payload.size() < (i + 1) * 4) {
      throw parse_error("record payload too short for int32", offset);
    }
    const std::size_t o = i * 4;
    return static_cast<std::int32_t>((static_cast<std::uint32_t>(payload[o]) << 24) |
                                     (static_cast<std::uint32_t>(payload[o + 1]) << 16) |
                                     (static_cast<std::uint32_t>(payload[o + 2]) << 8) |
                                     static_cast<std::uint32_t>(payload[o + 3]));
  }

  [[nodiscard]] double real64_at(std::size_t i) const {
    if (payload.size() < (i + 1) * 8) {
      throw parse_error("record payload too short for real64", offset);
    }
    std::uint64_t bits = 0;
    for (std::size_t b = 0; b < 8; ++b) bits = (bits << 8) | payload[i * 8 + b];
    return decode_real64(bits);
  }

  [[nodiscard]] std::string str() const {
    std::string s(payload.begin(), payload.end());
    // GDSII pads odd-length strings with a trailing NUL.
    while (!s.empty() && s.back() == '\0') s.pop_back();
    return s;
  }

  [[nodiscard]] std::size_t xy_count() const { return payload.size() / 8; }

  [[nodiscard]] point xy_at(std::size_t i) const {
    return {static_cast<coord_t>(int32_at(i * 2)), static_cast<coord_t>(int32_at(i * 2 + 1))};
  }
};

class record_stream {
 public:
  explicit record_stream(std::istream& in) : in_(in) {}

  /// Read the next record; nullopt at clean EOF.
  std::optional<record> next() {
    std::uint8_t head[4];
    in_.read(reinterpret_cast<char*>(head), 4);
    if (in_.gcount() == 0 && in_.eof()) return std::nullopt;
    if (in_.gcount() != 4) throw parse_error("truncated record header", offset_);
    const std::size_t len = (static_cast<std::size_t>(head[0]) << 8) | head[1];
    if (len < 4) {
      // A zero-length word is legal padding at the end of a tape block.
      if (len == 0) return std::nullopt;
      throw parse_error("record length below header size", offset_);
    }
    record rec;
    rec.type = static_cast<record_type>(head[2]);
    rec.dtype = static_cast<data_type>(head[3]);
    rec.offset = offset_;
    rec.payload.resize(len - 4);
    in_.read(reinterpret_cast<char*>(rec.payload.data()),
             static_cast<std::streamsize>(rec.payload.size()));
    if (static_cast<std::size_t>(in_.gcount()) != rec.payload.size()) {
      throw parse_error("truncated record payload", offset_);
    }
    offset_ += len;
    return rec;
  }

  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::istream& in_;
  std::size_t offset_ = 0;
};

// Pending reference recorded by structure name, resolved after ENDLIB.
struct pending_ref {
  db::cell_id owner;
  bool is_array;
  std::size_t elem_index;  // index into owner's refs()/arrays()
  std::string target_name;
  std::size_t offset;
};

// Transform fields accumulated while parsing one SREF/AREF/TEXT element.
struct strans_state {
  bool reflect = false;
  double mag = 1.0;
  double angle = 0.0;

  [[nodiscard]] transform to_transform(std::size_t offset) const {
    const double r = angle / 90.0;
    const double rr = std::round(r);
    if (std::abs(r - rr) > 1e-9) {
      throw parse_error("non-rectilinear ANGLE (must be a multiple of 90)", offset);
    }
    const double mr = std::round(mag);
    if (std::abs(mag - mr) > 1e-9 || mr < 1.0) {
      throw parse_error("non-integral MAG", offset);
    }
    transform t;
    t.reflect_x = reflect;
    t.rotation = static_cast<std::uint16_t>(static_cast<long>(rr) & 3);
    t.mag = static_cast<coord_t>(mr);
    return t;
  }
};

// Expand a PATH centerline into per-segment rectangles (butt ends). Only
// axis-parallel segments are supported, which covers routed layouts.
void append_path_as_polygons(db::cell& c, db::layer_t layer, db::datatype_t dt,
                             const std::vector<point>& pts, coord_t width, std::size_t offset) {
  if (width <= 0) throw parse_error("PATH with non-positive WIDTH", offset);
  const coord_t half = width / 2;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    const point a = pts[i];
    const point b = pts[i + 1];
    rect r;
    if (a.y == b.y) {
      r = {static_cast<coord_t>(std::min(a.x, b.x)), static_cast<coord_t>(a.y - half),
           static_cast<coord_t>(std::max(a.x, b.x)), static_cast<coord_t>(a.y + half)};
    } else if (a.x == b.x) {
      r = {static_cast<coord_t>(a.x - half), static_cast<coord_t>(std::min(a.y, b.y)),
           static_cast<coord_t>(a.x + half), static_cast<coord_t>(std::max(a.y, b.y))};
    } else {
      throw parse_error("diagonal PATH segment unsupported", offset);
    }
    c.add_rect(layer, r, dt);
  }
}

}  // namespace

db::library read(std::istream& in) {
  record_stream rs(in);
  db::library lib;
  std::vector<pending_ref> pending;

  db::cell* cur_cell = nullptr;
  db::cell_id cur_id = db::invalid_cell;
  bool saw_header = false, saw_endlib = false;

  auto rec0 = rs.next();
  if (!rec0 || rec0->type != record_type::HEADER) {
    throw parse_error("stream does not start with HEADER", 0);
  }
  saw_header = true;

  // Element parse state.
  enum class elem_kind { none, boundary, path, sref, aref, text, box, node };
  elem_kind kind = elem_kind::none;
  db::layer_t elem_layer = 0;
  db::datatype_t elem_dt = 0;
  coord_t elem_width = 0;
  std::string elem_sname, elem_string, elem_propvalue;
  std::int16_t elem_propattr = 0;
  std::vector<point> elem_xy;
  strans_state elem_strans;
  std::int16_t elem_cols = 0, elem_rows = 0;

  auto reset_elem = [&] {
    kind = elem_kind::none;
    elem_layer = 0;
    elem_dt = 0;
    elem_width = 0;
    elem_sname.clear();
    elem_string.clear();
    elem_propvalue.clear();
    elem_propattr = 0;
    elem_xy.clear();
    elem_strans = {};
    elem_cols = elem_rows = 0;
  };

  while (auto rec = rs.next()) {
    switch (rec->type) {
      case record_type::HEADER:
        throw parse_error("duplicate HEADER", rec->offset);
      case record_type::BGNLIB:
      case record_type::GENERATIONS:
      case record_type::REFLIBS:
      case record_type::FONTS:
      case record_type::ATTRTABLE:
      case record_type::ELFLAGS:
      case record_type::PLEX:
      case record_type::PRESENTATION:
      case record_type::PATHTYPE:
        break;  // metadata we accept and ignore
      case record_type::LIBNAME:
        lib.set_name(rec->str());
        break;
      case record_type::UNITS:
        lib.user_unit = rec->real64_at(0);
        lib.meter_unit = rec->real64_at(1);
        break;
      case record_type::ENDLIB:
        saw_endlib = true;
        break;
      case record_type::BGNSTR:
        if (cur_cell) throw parse_error("nested BGNSTR", rec->offset);
        break;
      case record_type::STRNAME: {
        cur_id = lib.add_cell(rec->str());
        cur_cell = &lib.at(cur_id);
        break;
      }
      case record_type::ENDSTR:
        if (!cur_cell) throw parse_error("ENDSTR outside structure", rec->offset);
        cur_cell = nullptr;
        cur_id = db::invalid_cell;
        break;

      case record_type::BOUNDARY:
      case record_type::PATH:
      case record_type::SREF:
      case record_type::AREF:
      case record_type::TEXT:
      case record_type::BOX:
      case record_type::NODE: {
        if (!cur_cell) throw parse_error("element outside structure", rec->offset);
        if (kind != elem_kind::none) throw parse_error("nested element", rec->offset);
        reset_elem();
        switch (rec->type) {
          case record_type::BOUNDARY: kind = elem_kind::boundary; break;
          case record_type::PATH: kind = elem_kind::path; break;
          case record_type::SREF: kind = elem_kind::sref; break;
          case record_type::AREF: kind = elem_kind::aref; break;
          case record_type::TEXT: kind = elem_kind::text; break;
          case record_type::BOX: kind = elem_kind::box; break;
          default: kind = elem_kind::node; break;
        }
        break;
      }

      case record_type::LAYER:
        elem_layer = rec->int16_at(0);
        break;
      case record_type::DATATYPE:
      case record_type::TEXTTYPE:
      case record_type::BOXTYPE:
      case record_type::NODETYPE:
        elem_dt = rec->int16_at(0);
        break;
      case record_type::WIDTH:
        elem_width = static_cast<coord_t>(rec->int32_at(0));
        break;
      case record_type::SNAME:
        elem_sname = rec->str();
        break;
      case record_type::STRING:
        elem_string = rec->str();
        break;
      case record_type::PROPATTR:
        elem_propattr = rec->int16_at(0);
        break;
      case record_type::PROPVALUE:
        // Property 1 carries the element name (the writer's convention;
        // matches how tools attach net/pin names to shapes).
        if (elem_propattr == 1) elem_propvalue = rec->str();
        break;
      case record_type::STRANS:
        elem_strans.reflect = (static_cast<std::uint16_t>(rec->int16_at(0)) & strans_reflect) != 0;
        break;
      case record_type::MAG:
        elem_strans.mag = rec->real64_at(0);
        break;
      case record_type::ANGLE:
        elem_strans.angle = rec->real64_at(0);
        break;
      case record_type::COLROW:
        elem_cols = rec->int16_at(0);
        elem_rows = rec->int16_at(1);
        break;
      case record_type::XY: {
        elem_xy.clear();
        const std::size_t n = rec->xy_count();
        elem_xy.reserve(n);
        for (std::size_t i = 0; i < n; ++i) elem_xy.push_back(rec->xy_at(i));
        break;
      }

      case record_type::ENDEL: {
        if (!cur_cell || kind == elem_kind::none) {
          throw parse_error("ENDEL without open element", rec->offset);
        }
        switch (kind) {
          case elem_kind::boundary: {
            // GDSII repeats the first vertex as the last; drop the closure.
            if (elem_xy.size() < 4) throw parse_error("BOUNDARY with < 4 points", rec->offset);
            if (elem_xy.front() == elem_xy.back()) elem_xy.pop_back();
            odrc::polygon poly{elem_xy};
            poly.make_clockwise();
            cur_cell->add_polygon({elem_layer, elem_dt, std::move(poly), elem_propvalue});
            break;
          }
          case elem_kind::path:
            append_path_as_polygons(*cur_cell, elem_layer, elem_dt, elem_xy, elem_width,
                                    rec->offset);
            break;
          case elem_kind::sref: {
            if (elem_xy.size() != 1) throw parse_error("SREF needs exactly one XY", rec->offset);
            transform t = elem_strans.to_transform(rec->offset);
            t.offset = elem_xy[0];
            pending.push_back({cur_id, false, cur_cell->refs().size(), elem_sname, rec->offset});
            cur_cell->add_ref({db::invalid_cell, t});
            break;
          }
          case elem_kind::aref: {
            if (elem_xy.size() != 3) throw parse_error("AREF needs three XY points", rec->offset);
            if (elem_cols <= 0 || elem_rows <= 0) {
              throw parse_error("AREF with non-positive COLROW", rec->offset);
            }
            transform t = elem_strans.to_transform(rec->offset);
            t.offset = elem_xy[0];
            db::cell_array a;
            a.trans = t;
            a.cols = static_cast<std::uint16_t>(elem_cols);
            a.rows = static_cast<std::uint16_t>(elem_rows);
            // XY = (origin, origin + cols*colstep, origin + rows*rowstep).
            a.col_step = {static_cast<coord_t>((elem_xy[1].x - elem_xy[0].x) / elem_cols),
                          static_cast<coord_t>((elem_xy[1].y - elem_xy[0].y) / elem_cols)};
            a.row_step = {static_cast<coord_t>((elem_xy[2].x - elem_xy[0].x) / elem_rows),
                          static_cast<coord_t>((elem_xy[2].y - elem_xy[0].y) / elem_rows)};
            pending.push_back({cur_id, true, cur_cell->arrays().size(), elem_sname, rec->offset});
            cur_cell->add_array(a);
            break;
          }
          case elem_kind::text:
            if (elem_xy.size() != 1) throw parse_error("TEXT needs exactly one XY", rec->offset);
            cur_cell->add_text({elem_layer, elem_dt, elem_xy[0], elem_string});
            break;
          case elem_kind::box: {
            // BOX is a 5-point rectangle outline; keep it as geometry (as
            // KLayout does) on its BOXTYPE layer.
            if (elem_xy.size() < 4) throw parse_error("BOX with < 4 points", rec->offset);
            if (elem_xy.front() == elem_xy.back()) elem_xy.pop_back();
            odrc::polygon poly{elem_xy};
            poly.make_clockwise();
            cur_cell->add_polygon({elem_layer, elem_dt, std::move(poly), {}});
            break;
          }
          case elem_kind::node:
            break;  // electrical net info: accepted and dropped
          case elem_kind::none:
            break;
        }
        reset_elem();
        break;
      }

      default:
        log_debug() << "gdsii: skipping record " << record_name(rec->type);
        break;
    }
    if (saw_endlib) break;
  }
  if (!saw_header || !saw_endlib) {
    throw parse_error("stream ended before ENDLIB", rs.offset());
  }

  // Resolve by-name references (forward references are legal).
  for (const pending_ref& p : pending) {
    auto target = lib.find(p.target_name);
    if (!target) throw parse_error("SNAME references unknown structure '" + p.target_name + "'",
                                   p.offset);
    db::cell& owner = lib.at(p.owner);
    if (p.is_array) {
      owner.set_array_target(p.elem_index, *target);
    } else {
      owner.set_ref_target(p.elem_index, *target);
    }
  }
  return lib;
}

db::library read(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("gdsii::read: cannot open '" + path + "'");
  return read(f);
}

}  // namespace odrc::gdsii
