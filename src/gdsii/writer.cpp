#include "gdsii/writer.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <vector>

#include "gdsii/records.hpp"

namespace odrc::gdsii {

// ---------------------------------------------------------------------------
// real64 codec (shared with the reader)
// ---------------------------------------------------------------------------

std::uint64_t encode_real64(double v) {
  if (v == 0.0) return 0;
  std::uint64_t sign = 0;
  if (v < 0) {
    sign = 1ull << 63;
    v = -v;
  }
  // Normalize so that mantissa in [1/16, 1): value = mantissa * 16^exp.
  int exp = 64;
  while (v >= 1.0) {
    v /= 16.0;
    ++exp;
  }
  while (v < 1.0 / 16.0) {
    v *= 16.0;
    --exp;
  }
  const auto mant = static_cast<std::uint64_t>(std::llround(v * 72057594037927936.0));  // 2^56
  return sign | (static_cast<std::uint64_t>(exp & 0x7F) << 56) | (mant & 0x00FFFFFFFFFFFFFFull);
}

double decode_real64(std::uint64_t bits) {
  if ((bits & 0x7FFFFFFFFFFFFFFFull) == 0) return 0.0;
  const double sign = (bits & (1ull << 63)) ? -1.0 : 1.0;
  const int exp = static_cast<int>((bits >> 56) & 0x7F) - 64;
  const double mant = static_cast<double>(bits & 0x00FFFFFFFFFFFFFFull) / 72057594037927936.0;
  return sign * mant * std::pow(16.0, exp);
}

namespace {

class record_writer {
 public:
  explicit record_writer(std::ostream& out) : out_(out) {}

  void emit(record_type t, data_type dt, const std::vector<std::uint8_t>& payload = {}) {
    const std::size_t len = payload.size() + 4;
    put8(static_cast<std::uint8_t>(len >> 8));
    put8(static_cast<std::uint8_t>(len & 0xFF));
    put8(static_cast<std::uint8_t>(t));
    put8(static_cast<std::uint8_t>(dt));
    out_.write(reinterpret_cast<const char*>(payload.data()),
               static_cast<std::streamsize>(payload.size()));
  }

  void emit_int16(record_type t, std::int16_t v) {
    emit(t, data_type::int16, {static_cast<std::uint8_t>((v >> 8) & 0xFF),
                               static_cast<std::uint8_t>(v & 0xFF)});
  }

  void emit_string(record_type t, const std::string& s) {
    std::vector<std::uint8_t> payload(s.begin(), s.end());
    if (payload.size() % 2) payload.push_back(0);  // even-length padding
    emit(t, data_type::ascii, payload);
  }

  void emit_reals(record_type t, std::initializer_list<double> vals) {
    std::vector<std::uint8_t> payload;
    for (double v : vals) {
      const std::uint64_t bits = encode_real64(v);
      for (int b = 7; b >= 0; --b) payload.push_back(static_cast<std::uint8_t>(bits >> (b * 8)));
    }
    emit(t, data_type::real64, payload);
  }

  void emit_xy(const std::vector<point>& pts) {
    std::vector<std::uint8_t> payload;
    payload.reserve(pts.size() * 8);
    auto put32 = [&](std::int32_t v) {
      const auto u = static_cast<std::uint32_t>(v);
      payload.push_back(static_cast<std::uint8_t>(u >> 24));
      payload.push_back(static_cast<std::uint8_t>(u >> 16));
      payload.push_back(static_cast<std::uint8_t>(u >> 8));
      payload.push_back(static_cast<std::uint8_t>(u));
    };
    for (const point& p : pts) {
      put32(p.x);
      put32(p.y);
    }
    emit(record_type::XY, data_type::int32, payload);
  }

  void emit_strans(const transform& t) {
    if (t.reflect_x) {
      emit(record_type::STRANS, data_type::bit_array,
           {static_cast<std::uint8_t>(strans_reflect >> 8), 0});
    } else if (t.rotation != 0 || t.mag != 1) {
      emit(record_type::STRANS, data_type::bit_array, {0, 0});
    }
    if (t.mag != 1) emit_reals(record_type::MAG, {static_cast<double>(t.mag)});
    if (t.rotation != 0) emit_reals(record_type::ANGLE, {t.rotation * 90.0});
  }

 private:
  void put8(std::uint8_t v) { out_.put(static_cast<char>(v)); }
  std::ostream& out_;
};

// BGNLIB/BGNSTR carry 12 int16 timestamp fields; write a fixed epoch so the
// output is deterministic and byte-stable.
std::vector<std::uint8_t> fixed_timestamps() {
  std::vector<std::uint8_t> payload;
  const std::int16_t stamp[12] = {2023, 1, 1, 0, 0, 0, 2023, 1, 1, 0, 0, 0};
  for (std::int16_t v : stamp) {
    payload.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    payload.push_back(static_cast<std::uint8_t>(v & 0xFF));
  }
  return payload;
}

}  // namespace

void write(const db::library& lib, std::ostream& out) {
  record_writer w(out);
  w.emit_int16(record_type::HEADER, 600);
  w.emit(record_type::BGNLIB, data_type::int16, fixed_timestamps());
  w.emit_string(record_type::LIBNAME, lib.name());
  w.emit_reals(record_type::UNITS, {lib.user_unit, lib.meter_unit});

  for (const db::cell& c : lib.cells()) {
    w.emit(record_type::BGNSTR, data_type::int16, fixed_timestamps());
    w.emit_string(record_type::STRNAME, c.name());

    for (const db::polygon_elem& p : c.polygons()) {
      w.emit(record_type::BOUNDARY, data_type::no_data);
      w.emit_int16(record_type::LAYER, p.layer);
      w.emit_int16(record_type::DATATYPE, p.datatype);
      std::vector<point> pts(p.poly.vertices().begin(), p.poly.vertices().end());
      pts.push_back(pts.front());  // GDSII closes the ring explicitly
      w.emit_xy(pts);
      if (!p.name.empty()) {
        // Element name as property 1 (round-tripped by the reader; Listing
        // 1's ensures() predicates rely on names surviving GDS I/O).
        w.emit_int16(record_type::PROPATTR, 1);
        w.emit_string(record_type::PROPVALUE, p.name);
      }
      w.emit(record_type::ENDEL, data_type::no_data);
    }

    for (const db::cell_ref& r : c.refs()) {
      w.emit(record_type::SREF, data_type::no_data);
      w.emit_string(record_type::SNAME, lib.at(r.target).name());
      w.emit_strans(r.trans);
      w.emit_xy({r.trans.offset});
      w.emit(record_type::ENDEL, data_type::no_data);
    }

    for (const db::cell_array& a : c.arrays()) {
      w.emit(record_type::AREF, data_type::no_data);
      w.emit_string(record_type::SNAME, lib.at(a.target).name());
      w.emit_strans(a.trans);
      std::vector<std::uint8_t> colrow;
      for (std::int16_t v : {static_cast<std::int16_t>(a.cols), static_cast<std::int16_t>(a.rows)}) {
        colrow.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
        colrow.push_back(static_cast<std::uint8_t>(v & 0xFF));
      }
      w.emit(record_type::COLROW, data_type::int16, colrow);
      const point o = a.trans.offset;
      const point pc{static_cast<coord_t>(o.x + a.cols * a.col_step.x),
                     static_cast<coord_t>(o.y + a.cols * a.col_step.y)};
      const point pr{static_cast<coord_t>(o.x + a.rows * a.row_step.x),
                     static_cast<coord_t>(o.y + a.rows * a.row_step.y)};
      w.emit_xy({o, pc, pr});
      w.emit(record_type::ENDEL, data_type::no_data);
    }

    for (const db::text_elem& t : c.texts()) {
      w.emit(record_type::TEXT, data_type::no_data);
      w.emit_int16(record_type::LAYER, t.layer);
      w.emit_int16(record_type::TEXTTYPE, t.datatype);
      w.emit_xy({t.position});
      w.emit_string(record_type::STRING, t.text);
      w.emit(record_type::ENDEL, data_type::no_data);
    }

    w.emit(record_type::ENDSTR, data_type::no_data);
  }
  w.emit(record_type::ENDLIB, data_type::no_data);
}

void write(const db::library& lib, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("gdsii::write: cannot open '" + path + "'");
  write(lib, f);
}

}  // namespace odrc::gdsii
