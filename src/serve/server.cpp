#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "engine/deck_parser.hpp"
#include "engine/snapshot_store.hpp"
#include "gdsii/reader.hpp"
#include "infra/thread_pool.hpp"
#include "infra/trace.hpp"

namespace odrc::serve {

namespace {

constexpr std::size_t latency_ring_size = 256;

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

server::server(server_config cfg, session_manager& sessions)
    : cfg_(std::move(cfg)), sessions_(sessions) {
  latencies_ms_.reserve(latency_ring_size);
}

server::~server() {
  stop();
  wait();
}

void server::start() {
  // A worker answering a vanished client must get EPIPE, not SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + cfg_.socket_path);
  }
  std::memcpy(addr.sun_path, cfg_.socket_path.c_str(), cfg_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  ::unlink(cfg_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close_fd(listen_fd_);
    throw std::runtime_error("bind(" + cfg_.socket_path + "): " + err);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    close_fd(listen_fd_);
    throw std::runtime_error("listen(): " + err);
  }
  if (::pipe(stop_pipe_) != 0) {
    close_fd(listen_fd_);
    throw std::runtime_error("pipe(): " + std::string(std::strerror(errno)));
  }
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void server::stop() {
  if (stopping_.exchange(true)) return;
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    (void)!::write(stop_pipe_[1], &byte, 1);
  }
}

void server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }
  {
    std::unique_lock lk(queue_mu_);
    drained_cv_.wait(lk, [this] { return active_workers_ == 0 && queue_.empty(); });
  }
  {
    std::lock_guard lk(conns_mu_);
    for (const auto& c : conns_) close_fd(c->fd);
    conns_.clear();
  }
  close_fd(stop_pipe_[0]);
  close_fd(stop_pipe_[1]);
  if (started_) {
    ::unlink(cfg_.socket_path.c_str());
    started_ = false;
  }
}

void server::accept_loop() {
  trace::recorder::instance().name_this_thread("serve accept");
  while (!stopping_.load()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int pr = ::poll(fds, 2, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    accepted_.fetch_add(1);
    auto conn = std::make_shared<connection>();
    conn->fd = cfd;
    std::lock_guard lk(conns_mu_);
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
  close_fd(listen_fd_);
  // Wake every blocked reader: they see EOF and exit; queued work drains.
  std::lock_guard lk(conns_mu_);
  for (const auto& c : conns_) {
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  }
}

void server::reader_loop(std::shared_ptr<connection> conn) {
  trace::recorder::instance().name_this_thread("serve reader");
  for (;;) {
    std::optional<frame> f;
    try {
      f = read_frame(conn->fd);
    } catch (const protocol_error& e) {
      // Unsynchronizable stream: answer once on a best-effort basis, close.
      proto_errors_.fetch_add(1);
      frame err;
      err.header.type = response_bit;
      respond(*conn, err, std::string("error ") + e.what());
      break;
    }
    if (!f) break;  // EOF or truncation
    bool admitted = true;
    {
      std::lock_guard lk(queue_mu_);
      if (queue_.size() >= cfg_.queue_limit) {
        admitted = false;
      } else {
        queue_.push_back({conn, *f});
        if (active_workers_ < cfg_.workers) {
          ++active_workers_;
          thread_pool::global().submit([this] { drain(); });
        }
      }
    }
    if (!admitted) {
      rejected_.fetch_add(1);
      respond(*conn, *f, "error busy");
    }
  }
  // Reader is done (EOF or unsynchronizable stream): half-close so the peer
  // sees EOF now. The fd itself is closed once in wait() (conns_ cleanup).
  std::lock_guard lk(conn->write_mu);
  if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
}

void server::drain() {
  for (;;) {
    request rq;
    {
      std::lock_guard lk(queue_mu_);
      if (queue_.empty()) {
        --active_workers_;
        drained_cv_.notify_all();
        return;
      }
      rq = std::move(queue_.front());
      queue_.pop_front();
    }
    handle(rq);
  }
}

void server::handle(request& rq) {
  trace::span ts("serve", "request", "type", rq.f.header.type, "session", rq.f.header.session);
  requests_.fetch_add(1);
  trace::counter("serve", "requests_total",
                 static_cast<std::int64_t>(requests_.load()));
  const auto t0 = std::chrono::steady_clock::now();
  std::string payload;
  try {
    payload = dispatch(rq.f);
  } catch (const std::exception& e) {
    payload = std::string("error ") + e.what();
  }
  record_latency(std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                     .count());
  respond(*rq.conn, rq.f, std::move(payload));
  if (static_cast<msg_type>(rq.f.header.type) == msg_type::shutdown) stop();
}

std::string server::dispatch(const frame& f) {
  // Session 0 addresses the server default (the session the CLI creates at
  // startup, id 1).
  const std::uint32_t sid = f.header.session == 0 ? 1 : f.header.session;
  const auto need_session = [&]() -> std::shared_ptr<session> {
    auto s = sessions_.get(sid);
    if (!s) throw std::runtime_error("unknown session " + std::to_string(sid));
    return s;
  };

  switch (static_cast<msg_type>(f.header.type)) {
    case msg_type::ping: return "ok pong";
    case msg_type::open: {
      std::istringstream args(f.payload);
      std::string gds, deck_path;
      if (!(args >> gds >> deck_path)) {
        throw std::runtime_error("open expects '<gds_path> <deck_path>'");
      }
      db::library lib = gdsii::read(gds);
      auto deck = rules::parse_deck_file(deck_path);
      const std::uint32_t id = sessions_.create(std::move(lib), std::move(deck), cfg_.engine);
      return "ok session " + std::to_string(id);
    }
    case msg_type::check: {
      auto s = need_session();
      const auto rows = s->check_full();
      std::size_t total = 0;
      for (const auto& r : rows) total += r.count;
      std::ostringstream os;
      os << "ok total " << total;
      for (const auto& r : rows) os << "\nrule " << r.rule << ' ' << r.count;
      return os.str();
    }
    case msg_type::edit: {
      auto s = need_session();
      const std::vector<edit_op> ops = parse_edit_script(f.payload);
      const edit_result r = s->apply(ops);
      std::ostringstream os;
      os << "ok applied " << r.applied << " dirty " << r.dirty.size();
      if (r.tops_changed) os << " tops_changed";
      return os.str();
    }
    case msg_type::recheck: {
      auto s = need_session();
      const recheck_result r = s->recheck();
      std::ostringstream os;
      os << "ok fixed " << r.diff.fixed.size() << " new " << r.diff.introduced.size()
         << " unchanged " << r.diff.unchanged.size() << " windows " << r.windows << " purged "
         << r.purged << " inserted " << r.inserted << " full " << (r.full ? 1 : 0);
      return os.str();
    }
    case msg_type::diff: {
      auto s = need_session();
      const report::key_diff d = s->last_diff();
      std::ostringstream os;
      os << "ok fixed " << d.fixed.size() << " new " << d.introduced.size() << " unchanged "
         << d.unchanged.size();
      for (const std::string& k : d.fixed) os << "\nfixed " << k;
      for (const std::string& k : d.introduced) os << "\nnew " << k;
      return os.str();
    }
    case msg_type::stats: {
      const server_stats_snapshot st = stats();
      std::ostringstream os;
      os << "ok"
         << "\nsessions " << st.sessions << "\nqueue_depth " << st.queue_depth
         << "\nactive_workers " << st.active_workers << "\nworkers " << cfg_.workers
         << "\nrequests_total " << st.requests_total << "\nrequests_rejected "
         << st.requests_rejected << "\nprotocol_errors " << st.protocol_errors
         << "\naccepted_connections " << st.accepted_connections << "\np50_ms " << st.p50_ms
         << "\np95_ms " << st.p95_ms;
      const auto s = sessions_.get(sid);
      if (s) {
        const session_stats ss = s->stats();
        os << "\nsession_checks " << ss.checks << "\nsession_edits " << ss.edits
           << "\nsession_rechecks " << ss.rechecks << "\nsession_violations " << ss.violations
           << "\nsession_pending_dirty " << ss.pending_dirty;
      }
      return os.str();
    }
    case msg_type::reload: {
      auto s = need_session();
      std::istringstream args(f.payload);
      std::string path;
      if (!(args >> path)) throw std::runtime_error("reload expects '<path.snap>'");
      auto fs = engine::frozen_snapshot::load(path);
      db::library lib = fs->make_library();
      const std::uint64_t bytes = fs->mapped_bytes();
      const std::size_t sections = fs->section_count();
      s->reload(std::move(fs), std::move(lib));
      return "ok reloaded bytes " + std::to_string(bytes) + " sections " +
             std::to_string(sections);
    }
    case msg_type::close: {
      if (!sessions_.close(sid)) throw std::runtime_error("unknown session " + std::to_string(sid));
      return "ok closed " + std::to_string(sid);
    }
    case msg_type::shutdown: return "ok shutting down";  // handle() stops after responding
    default: break;
  }
  throw std::runtime_error("unknown request type " + std::to_string(f.header.type));
}

void server::respond(connection& conn, const frame& req, std::string payload) {
  std::lock_guard lk(conn.write_mu);
  if (conn.fd < 0) return;
  (void)write_frame(conn.fd, make_response(req, std::move(payload)));
}

void server::record_latency(double ms) {
  std::lock_guard lk(lat_mu_);
  if (latencies_ms_.size() < latency_ring_size) {
    latencies_ms_.push_back(ms);
  } else {
    latencies_ms_[lat_next_] = ms;
  }
  lat_next_ = (lat_next_ + 1) % latency_ring_size;
}

server_stats_snapshot server::stats() {
  server_stats_snapshot st;
  st.accepted_connections = accepted_.load();
  st.requests_total = requests_.load();
  st.requests_rejected = rejected_.load();
  st.protocol_errors = proto_errors_.load();
  st.sessions = sessions_.count();
  {
    std::lock_guard lk(queue_mu_);
    st.queue_depth = queue_.size();
    st.active_workers = active_workers_;
  }
  std::vector<double> lat;
  {
    std::lock_guard lk(lat_mu_);
    lat = latencies_ms_;
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    st.p50_ms = lat[lat.size() / 2];
    st.p95_ms = lat[std::min(lat.size() - 1, (lat.size() * 95) / 100)];
  }
  return st;
}

}  // namespace odrc::serve
