#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "engine/deck_parser.hpp"
#include "engine/snapshot_store.hpp"
#include "gdsii/reader.hpp"
#include "infra/trace.hpp"

namespace odrc::serve {

namespace {

constexpr std::size_t latency_ring_size = 256;

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

// "x1 y1 x2 y2" prefix of a payload -> rect; returns the stream positioned
// after the coordinates so callers can read trailing flags ("keys").
rect parse_window_args(std::istringstream& args, const char* verb) {
  rect w;
  if (!(args >> w.x_min >> w.y_min >> w.x_max >> w.y_max) || w.empty()) {
    throw std::runtime_error(std::string(verb) + " expects 'x1 y1 x2 y2' with x1<=x2, y1<=y2");
  }
  return w;
}

}  // namespace

// Pushes a delta under the connection's write mutex — interleaved with the
// workers' responses, never interleaving bytes with them. A failed or
// timed-out write force-closes the socket (a partial frame cannot be
// resynchronized); the reader then sees EOF and the normal lifecycle
// machinery reaps the connection and its subscriptions.
struct server::conn_sink : push_sink {
  std::shared_ptr<connection> conn;
  int timeout_ms;

  conn_sink(std::shared_ptr<connection> c, int t) : conn(std::move(c)), timeout_ms(t) {}

  bool push(const frame& f) override {
    std::lock_guard lk(conn->write_mu);
    if (conn->fd < 0 || conn->finished.load()) return false;
    if (write_frame_deadline(conn->fd, f, timeout_ms)) return true;
    ::shutdown(conn->fd, SHUT_RDWR);
    return false;
  }
};

server::server(server_config cfg, session_manager& sessions)
    : cfg_(std::move(cfg)), sessions_(sessions), subs_(cfg_.subs) {
  latencies_ms_.reserve(latency_ring_size);
}

server::~server() {
  stop();
  wait();
}

void server::start() {
  // A worker answering a vanished client must get EPIPE, not SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  listener_.open(cfg_.effective_endpoint());
  bound_endpoint_ = listener_.bound();
  if (::pipe(stop_pipe_) != 0) {
    listener_.close();
    throw std::runtime_error("pipe(): " + std::string(std::strerror(errno)));
  }
  if (::pipe(reap_pipe_) != 0) {
    close_fd(stop_pipe_[0]);
    close_fd(stop_pipe_[1]);
    listener_.close();
    throw std::runtime_error("pipe(): " + std::string(std::strerror(errno)));
  }
  // Reap tickles coalesce; a blocking drain of an exactly-full read would
  // stall the accept loop.
  ::fcntl(reap_pipe_[0], F_SETFL, O_NONBLOCK);
  worker_threads_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void server::stop() {
  if (stopping_.exchange(true)) return;
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    (void)!::write(stop_pipe_[1], &byte, 1);
  }
}

void server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::vector<std::thread> threads;
    {
      std::lock_guard lk(conns_mu_);
      for (reader_slot& slot : readers_) threads.push_back(std::move(slot.thread));
      readers_.clear();
    }
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
  }
  // Readers are gone, so no more enqueues: release the request threads once
  // they finish draining what is already queued.
  {
    std::lock_guard lk(queue_mu_);
    queue_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  // Stop the push flusher BEFORE closing the remaining fds: a push racing a
  // bare close() could write into a recycled descriptor.
  subs_.stop();
  {
    std::lock_guard lk(conns_mu_);
    for (const auto& c : conns_) close_fd(c->fd);
    conns_.clear();
  }
  close_fd(stop_pipe_[0]);
  close_fd(stop_pipe_[1]);
  close_fd(reap_pipe_[0]);
  close_fd(reap_pipe_[1]);
}

void server::wake_reaper() {
  if (reap_pipe_[1] >= 0) {
    const char byte = 1;
    (void)!::write(reap_pipe_[1], &byte, 1);
  }
}

void server::reap_readers() {
  std::vector<std::thread> joinable;
  {
    std::lock_guard lk(conns_mu_);
    std::erase_if(readers_, [&](reader_slot& slot) {
      if (!slot.done->load() || !slot.conn->finished.load()) return false;
      joinable.push_back(std::move(slot.thread));
      return true;
    });
    std::erase_if(conns_, [](const std::shared_ptr<connection>& c) {
      if (!c->finished.load()) return false;
      std::lock_guard wl(c->write_mu);
      close_fd(c->fd);
      return true;
    });
  }
  for (std::thread& t : joinable) {
    if (t.joinable()) t.join();
  }
}

void server::accept_loop() {
  trace::recorder::instance().name_this_thread("serve accept");
  while (!stopping_.load()) {
    pollfd fds[3] = {{listener_.fd(), POLLIN, 0},
                     {stop_pipe_[0], POLLIN, 0},
                     {reap_pipe_[0], POLLIN, 0}};
    const int pr = ::poll(fds, 3, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || stopping_.load()) break;
    if (fds[2].revents != 0) {
      char buf[64];
      while (::read(reap_pipe_[0], buf, sizeof buf) > 0) {
      }
      reap_readers();
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int cfd = ::accept(listener_.fd(), nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      // Transient failure — EMFILE/ENFILE (fd exhaustion), ECONNABORTED (the
      // peer gave up while queued), EAGAIN. The listen socket itself is
      // fine; breaking out here would permanently stop accepting, so count
      // it, back off briefly (reaping may free fds), and retry. The stop
      // pipe keeps shutdown responsive during the backoff.
      accept_errors_.fetch_add(1);
      trace::counter("serve", "accept_errors",
                     static_cast<std::int64_t>(accept_errors_.load()));
      reap_readers();
      pollfd stop_fd{stop_pipe_[0], POLLIN, 0};
      (void)::poll(&stop_fd, 1, 10);
      continue;
    }
    accepted_.fetch_add(1);
    auto conn = std::make_shared<connection>();
    conn->fd = cfd;
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard lk(conns_mu_);
    conns_.push_back(conn);
    readers_.push_back({conn, std::thread([this, conn, done] { reader_loop(conn, done); }), done});
  }
  listener_.close();
  // Wake every blocked reader: they see EOF and exit; queued work drains.
  std::lock_guard lk(conns_mu_);
  for (const auto& c : conns_) {
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  }
}

void server::finish_if_drained(connection& conn) {
  if (!conn.read_closed.load() || conn.pending.load() != 0) return;
  if (conn.finished.exchange(true)) return;
  {
    std::lock_guard lk(conn.write_mu);
    if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_WR);
  }
  wake_reaper();
}

void server::reader_loop(std::shared_ptr<connection> conn,
                         std::shared_ptr<std::atomic<bool>> done) {
  trace::recorder::instance().name_this_thread("serve reader");
  for (;;) {
    std::optional<frame> f;
    try {
      f = read_frame(conn->fd);
    } catch (const protocol_error& e) {
      // Unsynchronizable stream: answer once on a best-effort basis, close.
      proto_errors_.fetch_add(1);
      frame err;
      err.header.type = response_bit;
      respond(*conn, err, std::string("error ") + e.what());
      break;
    }
    if (!f) break;  // EOF or truncation
    conn->pending.fetch_add(1);
    bool admitted = true;
    {
      std::lock_guard lk(queue_mu_);
      if (queue_.size() >= cfg_.queue_limit) {
        admitted = false;
      } else {
        queue_.push_back({conn, *f});
      }
    }
    if (admitted) queue_cv_.notify_one();
    if (!admitted) {
      rejected_.fetch_add(1);
      respond(*conn, *f, "error busy");
      conn->pending.fetch_sub(1);
    }
  }
  // Reader is done (EOF or unsynchronizable stream). Half-close the READ
  // side only: responses to requests this connection already pipelined may
  // still be in flight, and SHUT_RDWR here would silently drop them. The
  // write side closes via finish_if_drained() once the last of them is
  // answered, and the accept thread then reaps the fd and this thread.
  ::shutdown(conn->fd, SHUT_RD);
  conn->read_closed.store(true);
  // A half-closed subscriber cannot ack anything and its write side is about
  // to drain away — tear its subscriptions down instead of pushing into a
  // dying socket until the deadline writer notices.
  subs_.drop_owner(reinterpret_cast<std::uintptr_t>(conn.get()));
  finish_if_drained(*conn);
  done->store(true);
  wake_reaper();
}

void server::worker_loop() {
  trace::recorder::instance().name_this_thread("serve worker");
  for (;;) {
    request rq;
    {
      std::unique_lock lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return !queue_.empty() || queue_stop_; });
      if (queue_.empty()) return;  // queue_stop_ and fully drained
      rq = std::move(queue_.front());
      queue_.pop_front();
      ++active_workers_;
    }
    handle(rq);
    {
      std::lock_guard lk(queue_mu_);
      --active_workers_;
    }
  }
}

void server::handle(request& rq) {
  trace::span ts("serve", "request", "type", rq.f.header.type, "session", rq.f.header.session);
  requests_.fetch_add(1);
  trace::counter("serve", "requests_total",
                 static_cast<std::int64_t>(requests_.load()));
  const auto t0 = std::chrono::steady_clock::now();
  std::string payload;
  try {
    // subscribe/unsubscribe are resolved here, not in dispatch(): they bind
    // to the requesting CONNECTION (the push target), which the virtual verb
    // table never sees. Intercepting before the virtual call also gives the
    // cluster coordinator working subscriptions for free.
    switch (static_cast<msg_type>(rq.f.header.type)) {
      case msg_type::subscribe: payload = do_subscribe(rq); break;
      case msg_type::unsubscribe: payload = do_unsubscribe(rq.f); break;
      default: payload = dispatch(rq.f); break;
    }
  } catch (const std::exception& e) {
    payload = std::string("error ") + e.what();
  }
  record_latency(std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                     .count());
  respond(*rq.conn, rq.f, std::move(payload));
  rq.conn->pending.fetch_sub(1);
  finish_if_drained(*rq.conn);
  if (static_cast<msg_type>(rq.f.header.type) == msg_type::shutdown) stop();
}

std::string server::do_subscribe(request& rq) {
  const std::uint32_t sid = rq.f.header.session == 0 ? 1 : rq.f.header.session;
  // Lenient on session existence: the coordinator serves sessions that live
  // in its workers, and a subscription may legitimately predate `open`.
  std::optional<rect> window;
  std::istringstream args(rq.f.payload);
  rect w;
  if (args >> w.x_min) {
    if (!(args >> w.y_min >> w.x_max >> w.y_max) || w.empty()) {
      throw std::runtime_error(
          "subscribe expects no payload or 'x1 y1 x2 y2' with x1<=x2, y1<=y2");
    }
    window = w;
  }
  auto sink = std::make_shared<conn_sink>(rq.conn, cfg_.push_timeout_ms);
  const std::uint64_t id = subs_.subscribe(sid, window, std::move(sink),
                                           reinterpret_cast<std::uintptr_t>(rq.conn.get()));
  return "ok subscribed " + std::to_string(id);
}

std::string server::do_unsubscribe(const frame& f) {
  std::istringstream args(f.payload);
  std::uint64_t id = 0;
  if (!(args >> id)) throw std::runtime_error("unsubscribe expects '<sub_id>'");
  if (!subs_.unsubscribe(id)) {
    throw std::runtime_error("unknown subscription " + std::to_string(id));
  }
  return "ok unsubscribed " + std::to_string(id);
}

std::string server::dispatch(const frame& f) {
  // Session 0 addresses the server default (the session the CLI creates at
  // startup, id 1).
  const std::uint32_t sid = f.header.session == 0 ? 1 : f.header.session;
  const auto need_session = [&]() -> std::shared_ptr<session> {
    auto s = sessions_.get(sid);
    if (!s) throw std::runtime_error("unknown session " + std::to_string(sid));
    return s;
  };

  switch (static_cast<msg_type>(f.header.type)) {
    case msg_type::ping: return "ok pong";
    case msg_type::open: {
      std::istringstream args(f.payload);
      std::string gds, deck_path;
      if (!(args >> gds >> deck_path)) {
        throw std::runtime_error("open expects '<gds_path> <deck_path>'");
      }
      db::library lib = gdsii::read(gds);
      auto deck = rules::parse_deck_file(deck_path);
      const std::uint32_t id = sessions_.create(std::move(lib), std::move(deck), cfg_.engine);
      return "ok session " + std::to_string(id);
    }
    case msg_type::check: {
      auto s = need_session();
      const bool want_keys = f.payload.find("keys") != std::string::npos;
      // Publish from inside the session lock: a subscriber's delta stream is
      // totally ordered with the checks that produced it, even when two
      // workers hit one session concurrently.
      const auto rows =
          s->check_full([&](const report::key_diff& d) { subs_.publish(sid, d); });
      std::size_t total = 0;
      for (const auto& r : rows) total += r.count;
      std::ostringstream os;
      os << "ok total " << total;
      for (const auto& r : rows) os << "\nrule " << r.rule << ' ' << r.count;
      if (want_keys) {
        for (const std::string& k : s->keys()) os << "\nv " << k;
      }
      return os.str();
    }
    case msg_type::check_region: {
      auto s = need_session();
      std::istringstream args(f.payload);
      const rect w = parse_window_args(args, "check_region");
      std::string flag;
      args >> flag;
      const session::window_result r = s->check_window(w);
      std::size_t total = 0;
      for (const auto& row : r.rows) total += row.count;
      std::ostringstream os;
      os << "ok total " << total;
      for (const auto& row : r.rows) os << "\nrule " << row.rule << ' ' << row.count;
      if (flag == "keys") {
        for (const std::string& k : r.keys) os << "\nv " << k;
      }
      return os.str();
    }
    case msg_type::query: {
      auto s = need_session();
      std::istringstream args(f.payload);
      const rect w = parse_window_args(args, "query");
      std::string flag;
      args >> flag;
      const session::window_result r = s->query_stored(w);
      std::size_t total = 0;
      for (const auto& row : r.rows) total += row.count;
      std::ostringstream os;
      os << "ok total " << total;
      for (const auto& row : r.rows) os << "\nrule " << row.rule << ' ' << row.count;
      if (flag == "keys") {
        for (const std::string& k : r.keys) os << "\nv " << k;
      }
      return os.str();
    }
    case msg_type::shard: {
      auto s = need_session();
      std::istringstream args(f.payload);
      std::uint32_t idx = 0, count = 0;
      if (!(args >> idx >> count)) {
        throw std::runtime_error("shard expects '<idx> <count> x1 y1 x2 y2'");
      }
      const rect band = parse_window_args(args, "shard");
      if (count == 0 || idx >= count) throw std::runtime_error("shard index out of range");
      s->set_shard(session::shard_info{band, idx, count});
      return "ok shard " + std::to_string(idx) + "/" + std::to_string(count);
    }
    case msg_type::health: {
      const server_stats_snapshot st = stats();
      std::ostringstream os;
      os << "ok depth " << st.queue_depth << " inflight " << st.active_workers << " workers "
         << cfg_.workers << " readers " << st.reader_threads << " sessions " << st.sessions;
      return os.str();
    }
    case msg_type::edit: {
      auto s = need_session();
      const std::vector<edit_op> ops = parse_edit_script(f.payload);
      const edit_result r = s->apply(ops);
      std::ostringstream os;
      os << "ok applied " << r.applied << " dirty " << r.dirty.size();
      if (r.tops_changed) os << " tops_changed";
      return os.str();
    }
    case msg_type::recheck: {
      auto s = need_session();
      const bool want_keys = f.payload.find("keys") != std::string::npos;
      const recheck_result r =
          s->recheck([&](const report::key_diff& d) { subs_.publish(sid, d); });
      std::ostringstream os;
      os << "ok fixed " << r.diff.fixed.size() << " new " << r.diff.introduced.size()
         << " unchanged " << r.diff.unchanged.size() << " windows " << r.windows << " purged "
         << r.purged << " inserted " << r.inserted << " full " << (r.full ? 1 : 0);
      if (want_keys) {
        for (const std::string& k : r.diff.fixed) os << "\nfixed " << k;
        for (const std::string& k : r.diff.introduced) os << "\nnew " << k;
      }
      return os.str();
    }
    case msg_type::diff: {
      auto s = need_session();
      const report::key_diff d = s->last_diff();
      std::ostringstream os;
      os << "ok fixed " << d.fixed.size() << " new " << d.introduced.size() << " unchanged "
         << d.unchanged.size();
      for (const std::string& k : d.fixed) os << "\nfixed " << k;
      for (const std::string& k : d.introduced) os << "\nnew " << k;
      return os.str();
    }
    case msg_type::stats: {
      const server_stats_snapshot st = stats();
      std::ostringstream os;
      os << "ok"
         << "\nsessions " << st.sessions << "\nqueue_depth " << st.queue_depth
         << "\nactive_workers " << st.active_workers << "\nworkers " << cfg_.workers
         << "\nrequests_total " << st.requests_total << "\nrequests_rejected "
         << st.requests_rejected << "\nprotocol_errors " << st.protocol_errors
         << "\naccepted_connections " << st.accepted_connections << "\naccept_errors "
         << st.accept_errors << "\nreader_threads " << st.reader_threads << "\nconnections "
         << st.connections << "\np50_ms " << st.p50_ms << "\np95_ms " << st.p95_ms;
      const subscription_stats sub = subs_.stats();
      os << "\nsubs_active " << sub.active << "\nsubs_queue_depth " << sub.queue_depth
         << "\nsubs_published " << sub.published << "\nsubs_delivered " << sub.delivered
         << "\nsubs_dropped " << sub.dropped << "\nsubs_torn_down " << sub.torn_down;
      const auto s = sessions_.get(sid);
      if (s) {
        const session_stats ss = s->stats();
        os << "\nsession_checks " << ss.checks << "\nsession_edits " << ss.edits
           << "\nsession_rechecks " << ss.rechecks << "\nsession_violations " << ss.violations
           << "\nsession_pending_dirty " << ss.pending_dirty;
      }
      return os.str();
    }
    case msg_type::reload: {
      auto s = need_session();
      std::istringstream args(f.payload);
      std::string path;
      if (!(args >> path)) throw std::runtime_error("reload expects '<path.snap>'");
      auto fs = engine::frozen_snapshot::load(path);
      db::library lib = fs->make_library();
      const std::uint64_t bytes = fs->mapped_bytes();
      const std::size_t sections = fs->section_count();
      s->reload(std::move(fs), std::move(lib));
      return "ok reloaded bytes " + std::to_string(bytes) + " sections " +
             std::to_string(sections);
    }
    case msg_type::close: {
      if (!sessions_.close(sid)) throw std::runtime_error("unknown session " + std::to_string(sid));
      return "ok closed " + std::to_string(sid);
    }
    case msg_type::shutdown: return "ok shutting down";  // handle() stops after responding
    default: break;
  }
  // Names the offending byte ("unknown(99)") for out-of-enum types; in-enum
  // but unsupported-as-a-request types (a client sending `delta`) get their
  // verb name back.
  throw std::runtime_error("unknown request type " + msg_type_display(f.header.type));
}

void server::respond(connection& conn, const frame& req, std::string payload) {
  std::lock_guard lk(conn.write_mu);
  if (conn.fd < 0) return;
  (void)write_frame(conn.fd, make_response(req, std::move(payload)));
}

void server::record_latency(double ms) {
  std::lock_guard lk(lat_mu_);
  if (latencies_ms_.size() < latency_ring_size) {
    latencies_ms_.push_back(ms);
  } else {
    latencies_ms_[lat_next_] = ms;
  }
  lat_next_ = (lat_next_ + 1) % latency_ring_size;
}

server_stats_snapshot server::stats() {
  server_stats_snapshot st;
  st.accepted_connections = accepted_.load();
  st.accept_errors = accept_errors_.load();
  st.requests_total = requests_.load();
  st.requests_rejected = rejected_.load();
  st.protocol_errors = proto_errors_.load();
  st.sessions = sessions_.count();
  {
    std::lock_guard lk(queue_mu_);
    st.queue_depth = queue_.size();
    st.active_workers = active_workers_;
  }
  {
    std::lock_guard lk(conns_mu_);
    st.reader_threads = readers_.size();
    st.connections = conns_.size();
  }
  std::vector<double> lat;
  {
    std::lock_guard lk(lat_mu_);
    lat = latencies_ms_;
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    st.p50_ms = lat[lat.size() / 2];
    st.p95_ms = lat[std::min(lat.size() - 1, (lat.size() * 95) / 100)];
  }
  return st;
}

}  // namespace odrc::serve
