#include "serve/transport.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace odrc::serve::transport {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void fill_unix_addr(const std::string& path, sockaddr_un& addr) {
  addr = {};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("bad unix socket path: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

/// getaddrinfo over the numeric-or-named host; caller owns the result.
addrinfo* resolve_tcp(const endpoint& ep, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(ep.port);
  const char* host = ep.host.empty() ? nullptr : ep.host.c_str();
  const int rc = ::getaddrinfo(host, port.c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("resolve tcp:" + ep.host + ":" + port + ": " +
                             ::gai_strerror(rc));
  }
  return res;
}

std::uint16_t bound_port(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) return 0;
  if (ss.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in&>(ss).sin_port);
  }
  if (ss.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6&>(ss).sin6_port);
  }
  return 0;
}

}  // namespace

std::string endpoint::describe() const {
  if (tcp) return "tcp:" + host + ":" + std::to_string(port);
  return "unix:" + path;
}

endpoint parse_endpoint(const std::string& spec) {
  if (spec.empty()) throw std::runtime_error("empty endpoint");
  endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.path = spec.substr(5);
    if (ep.path.empty()) throw std::runtime_error("empty unix endpoint path");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 == rest.size()) {
      throw std::runtime_error("tcp endpoint wants tcp:host:port, got '" + spec + "'");
    }
    ep.tcp = true;
    ep.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const long p = std::strtol(port.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || p < 0 || p > 65535) {
      throw std::runtime_error("bad tcp port '" + port + "'");
    }
    ep.port = static_cast<std::uint16_t>(p);
    return ep;
  }
  // Bare path: unix (the pre-cluster --socket=PATH form).
  ep.path = spec;
  return ep;
}

int connect_endpoint(const std::string& spec) {
  const endpoint ep = parse_endpoint(spec);
  if (!ep.tcp) {
    sockaddr_un addr;
    fill_unix_addr(ep.path, addr);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket()");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("connect(" + ep.describe() + "): " + err);
    }
    return fd;
  }
  addrinfo* res = resolve_tcp(ep, /*passive=*/false);
  std::string last_err = "no addresses";
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      // Request frames are small and latency-sensitive (a scatter leg is one
      // short frame): don't let Nagle delay them behind a previous response.
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return fd;
    }
    last_err = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("connect(" + ep.describe() + "): " + last_err);
}

void listener::open(const std::string& spec, int backlog) {
  close();
  ep_ = parse_endpoint(spec);
  if (!ep_.tcp) {
    sockaddr_un addr;
    fill_unix_addr(ep_.path, addr);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) fail("socket()");
    ::unlink(ep_.path.c_str());
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      close();
      throw std::runtime_error("bind(" + ep_.describe() + "): " + err);
    }
  } else {
    addrinfo* res = resolve_tcp(ep_, /*passive=*/true);
    std::string last_err = "no addresses";
    for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd_ < 0) {
        last_err = std::strerror(errno);
        continue;
      }
      const int one = 1;
      (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd_, ai->ai_addr, ai->ai_addrlen) == 0) break;
      last_err = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
    }
    ::freeaddrinfo(res);
    if (fd_ < 0) throw std::runtime_error("bind(" + ep_.describe() + "): " + last_err);
    ep_.port = bound_port(fd_);  // resolve port 0
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string err = std::strerror(errno);
    close();
    throw std::runtime_error("listen(" + ep_.describe() + "): " + err);
  }
  bound_ = ep_.describe();
}

void listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (!ep_.tcp && !ep_.path.empty()) ::unlink(ep_.path.c_str());
  }
  bound_.clear();
}

}  // namespace odrc::serve::transport
