// Streaming violation subscriptions (DESIGN.md §12).
//
// A subscription attaches a connection to a session: after every
// check/recheck the session's key diff (fixed / introduced violation keys,
// optionally clipped to a per-subscription window via report::key_extent) is
// pushed to the subscriber as a server-initiated `delta` frame.
//
// The design constraint everything here serves: the recheck path must never
// block on a subscriber. publish() only encodes the delta and appends it to
// bounded per-subscription queues under the manager mutex — O(delta size),
// no socket I/O. A dedicated flusher thread drains the queues round-robin
// and writes frames through the subscription's push_sink, whose
// implementation must itself bound its blocking (the server's sink uses
// write_frame_deadline and force-closes a wedged connection).
//
// Overflow policy (documented contract): when a subscription's queue is at
// `queue_limit`, the OLDEST pending delta is dropped to admit the new one —
// a live subscriber prefers fresh state over stale history. Every drop is
// counted, leaves a hole in the per-subscription sequence numbers, and sets
// a sticky gap marker delivered with the next frame that does go out
// ("... gap 1") so even a client that missed the seq hole knows its view
// diverged and must resynchronize with a full `check keys`/`diff` query.
//
// Rate limiting: at most `max_per_session` live subscriptions per session id
// and `max_total` per server — a client looping `subscribe` cannot grow
// server state without bound.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "infra/geometry.hpp"
#include "report/violation_db.hpp"
#include "serve/protocol.hpp"

namespace odrc::serve {

/// Write endpoint for server-initiated frames. Implementations must bound
/// their own blocking; returning false declares the connection unusable and
/// tears down every subscription that delivers through it.
class push_sink {
 public:
  virtual ~push_sink() = default;
  virtual bool push(const frame& f) = 0;
};

struct subscribe_config {
  std::size_t queue_limit = 64;     ///< pending deltas per subscription
  std::size_t max_per_session = 8;  ///< live subscriptions per session id
  std::size_t max_total = 256;      ///< live subscriptions per server
};

struct subscription_stats {
  std::size_t active = 0;
  std::size_t queue_depth = 0;    ///< pending deltas across all subscriptions
  std::uint64_t published = 0;    ///< deltas enqueued
  std::uint64_t delivered = 0;    ///< deltas written to a sink
  std::uint64_t dropped = 0;      ///< deltas discarded by the queue bound
  std::uint64_t torn_down = 0;    ///< subscriptions killed (dead/wedged sink)
};

class subscription_manager {
 public:
  explicit subscription_manager(subscribe_config cfg = {});
  ~subscription_manager();

  subscription_manager(const subscription_manager&) = delete;
  subscription_manager& operator=(const subscription_manager&) = delete;

  /// Register a subscription delivering through `sink`. `owner` groups
  /// subscriptions by connection so drop_owner can tear them down together.
  /// Throws std::runtime_error when a rate limit is hit.
  std::uint64_t subscribe(std::uint32_t session, std::optional<rect> window,
                          std::shared_ptr<push_sink> sink, std::uintptr_t owner);

  /// Remove one subscription; false when the id is unknown.
  bool unsubscribe(std::uint64_t id);

  /// Tear down every subscription of `owner` (its connection is gone).
  /// Returns the count removed.
  std::size_t drop_owner(std::uintptr_t owner);

  /// Queue the delta toward every subscriber of `session`. Never blocks and
  /// never fails: slow subscribers lose their oldest pending delta instead
  /// (see the overflow policy above). Windowed subscriptions receive the
  /// keys clipped to their window — a frame is sent per publish regardless,
  /// so subscribers can use empty deltas as recheck heartbeats.
  void publish(std::uint32_t session, const report::key_diff& diff);

  [[nodiscard]] subscription_stats stats() const;

  /// Stop the flusher; pending deltas are discarded. Idempotent, called by
  /// the destructor.
  void stop();

 private:
  struct pending {
    std::uint64_t seq = 0;
    std::size_t n_fixed = 0;
    std::size_t n_new = 0;
    std::string keys_body;  ///< "\nfixed <k>"/"\nnew <k>" lines
  };

  struct sub {
    std::uint32_t session = 0;
    std::optional<rect> window;
    std::shared_ptr<push_sink> sink;
    std::uintptr_t owner = 0;
    std::deque<pending> queue;
    std::uint64_t next_seq = 0;
    bool gap = false;  ///< a drop happened since the last delivered frame
  };

  void flusher_loop();
  std::size_t queue_depth_locked() const;

  subscribe_config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, sub> subs_;  ///< ordered: round-robin uses upper_bound
  std::uint64_t next_id_ = 1;
  std::uint64_t rr_last_ = 0;  ///< round-robin cursor (last id served)
  bool stop_ = false;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t torn_down_ = 0;
  std::thread flusher_;
};

}  // namespace odrc::serve
