#include "serve/subscribe.hpp"

#include <sstream>

#include "infra/trace.hpp"

namespace odrc::serve {

namespace {

/// Clip a key list to a subscription window by the extent embedded in each
/// key. Keys whose extent cannot be parsed are kept — dropping them could
/// silently hide a violation from the subscriber.
std::size_t append_clipped(std::string& body, const char* tag,
                           const std::vector<std::string>& keys,
                           const std::optional<rect>& window) {
  std::size_t n = 0;
  for (const std::string& k : keys) {
    if (window) {
      const std::optional<rect> ext = report::key_extent(k);
      if (ext && !window->overlaps(*ext)) continue;
    }
    body += '\n';
    body += tag;
    body += ' ';
    body += k;
    ++n;
  }
  return n;
}

}  // namespace

subscription_manager::subscription_manager(subscribe_config cfg) : cfg_(cfg) {
  flusher_ = std::thread([this] { flusher_loop(); });
}

subscription_manager::~subscription_manager() { stop(); }

void subscription_manager::stop() {
  {
    std::lock_guard lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

std::uint64_t subscription_manager::subscribe(std::uint32_t session, std::optional<rect> window,
                                              std::shared_ptr<push_sink> sink,
                                              std::uintptr_t owner) {
  std::lock_guard lk(mu_);
  if (subs_.size() >= cfg_.max_total) {
    throw std::runtime_error("subscription limit reached (" + std::to_string(cfg_.max_total) +
                             " total)");
  }
  std::size_t per_session = 0;
  for (const auto& [id, s] : subs_) {
    if (s.session == session) ++per_session;
  }
  if (per_session >= cfg_.max_per_session) {
    throw std::runtime_error("subscription limit reached (" +
                             std::to_string(cfg_.max_per_session) + " per session)");
  }
  const std::uint64_t id = next_id_++;
  sub s;
  s.session = session;
  s.window = window;
  s.sink = std::move(sink);
  s.owner = owner;
  subs_.emplace(id, std::move(s));
  return id;
}

bool subscription_manager::unsubscribe(std::uint64_t id) {
  std::lock_guard lk(mu_);
  return subs_.erase(id) > 0;
}

std::size_t subscription_manager::drop_owner(std::uintptr_t owner) {
  std::lock_guard lk(mu_);
  std::size_t removed = 0;
  for (auto it = subs_.begin(); it != subs_.end();) {
    if (it->second.owner == owner) {
      it = subs_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void subscription_manager::publish(std::uint32_t session, const report::key_diff& diff) {
  bool queued = false;
  {
    std::lock_guard lk(mu_);
    for (auto& [id, s] : subs_) {
      if (s.session != session) continue;
      pending p;
      p.seq = s.next_seq++;
      p.n_fixed = append_clipped(p.keys_body, "fixed", diff.fixed, s.window);
      p.n_new = append_clipped(p.keys_body, "new", diff.introduced, s.window);
      if (s.queue.size() >= cfg_.queue_limit) {
        // Drop-oldest: a live subscriber prefers fresh state over stale
        // history. The seq hole plus the sticky gap marker tell it to
        // resynchronize.
        s.queue.pop_front();
        ++dropped_;
        s.gap = true;
        trace::counter("subs", "dropped", static_cast<std::int64_t>(dropped_));
      }
      s.queue.push_back(std::move(p));
      ++published_;
      queued = true;
    }
    trace::counter("subs", "queue_depth", static_cast<std::int64_t>(queue_depth_locked()));
  }
  if (queued) cv_.notify_one();
}

std::size_t subscription_manager::queue_depth_locked() const {
  std::size_t depth = 0;
  for (const auto& [id, s] : subs_) depth += s.queue.size();
  return depth;
}

subscription_stats subscription_manager::stats() const {
  std::lock_guard lk(mu_);
  subscription_stats st;
  st.active = subs_.size();
  st.queue_depth = queue_depth_locked();
  st.published = published_;
  st.delivered = delivered_;
  st.dropped = dropped_;
  st.torn_down = torn_down_;
  return st;
}

void subscription_manager::flusher_loop() {
  trace::recorder::instance().name_this_thread("serve push");
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] {
      if (stop_) return true;
      for (const auto& [id, s] : subs_) {
        if (!s.queue.empty()) return true;
      }
      return false;
    });
    if (stop_) return;

    // Round-robin across subscriptions with pending frames so one chatty
    // session cannot starve the others.
    auto it = subs_.upper_bound(rr_last_);
    for (std::size_t step = 0; step <= subs_.size(); ++step, ++it) {
      if (it == subs_.end()) it = subs_.begin();
      if (!it->second.queue.empty()) break;
    }
    if (it == subs_.end() || it->second.queue.empty()) continue;  // raced with a drop
    const std::uint64_t id = it->first;
    rr_last_ = id;
    sub& s = it->second;
    pending p = std::move(s.queue.front());
    s.queue.pop_front();
    const bool gap = s.gap;
    std::shared_ptr<push_sink> sink = s.sink;

    frame f;
    f.header.type = static_cast<std::uint8_t>(msg_type::delta);
    f.header.session = s.session;
    f.header.seq = static_cast<std::uint16_t>(p.seq);
    std::ostringstream head;
    head << "delta sub " << id << " seq " << p.seq << " fixed " << p.n_fixed << " new "
         << p.n_new << " gap " << (gap ? 1 : 0);
    f.payload = head.str() + p.keys_body;

    lk.unlock();
    bool ok;
    {
      trace::span ts("serve", "push", "sub", static_cast<std::int64_t>(id), "seq",
                     static_cast<std::int64_t>(p.seq));
      ok = sink->push(f);
    }
    lk.lock();
    auto again = subs_.find(id);
    if (again == subs_.end()) continue;  // unsubscribed/dropped while writing
    if (ok) {
      ++delivered_;
      if (gap) again->second.gap = false;  // the marker made it out
    } else {
      // Dead or wedged sink: the connection is already being torn down by
      // the sink implementation; drop every subscription delivering to it.
      const std::uintptr_t owner = again->second.owner;
      for (auto di = subs_.begin(); di != subs_.end();) {
        if (di->second.owner == owner) {
          di = subs_.erase(di);
          ++torn_down_;
        } else {
          ++di;
        }
      }
    }
  }
}

}  // namespace odrc::serve
