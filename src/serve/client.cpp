#include "serve/client.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include <unistd.h>

#include "serve/transport.hpp"

namespace odrc::serve {

client::~client() { close(); }

void client::connect(const std::string& endpoint) {
  ::signal(SIGPIPE, SIG_IGN);
  close();
  fd_ = transport::connect_endpoint(endpoint);
}

frame client::request(msg_type type, std::uint32_t session, const std::string& payload) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  frame req;
  req.header.type = static_cast<std::uint8_t>(type);
  req.header.seq = next_seq_++;
  req.header.session = session;
  req.payload = payload;
  if (!write_frame(fd_, req)) {
    throw std::runtime_error("request write failed: " + std::string(std::strerror(errno)));
  }
  for (;;) {
    std::optional<frame> resp = read_frame(fd_);  // protocol_error propagates
    if (!resp) throw std::runtime_error("connection closed before response");
    if (resp->header.seq == req.header.seq) return *std::move(resp);
    // A response to an earlier pipelined request (not produced by this
    // synchronous client, but tolerate it).
  }
}

void client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string client::status_line(const frame& resp) {
  const auto nl = resp.payload.find('\n');
  return resp.payload.substr(0, nl);
}

bool client::ok(const frame& resp) {
  return resp.payload.rfind("ok", 0) == 0 &&
         (resp.payload.size() == 2 || resp.payload[2] == ' ' || resp.payload[2] == '\n');
}

}  // namespace odrc::serve
