#include "serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <unistd.h>

#include "serve/transport.hpp"

namespace odrc::serve {

client::~client() { close(); }

void client::connect(const std::string& endpoint) {
  ::signal(SIGPIPE, SIG_IGN);
  close();
  fd_ = transport::connect_endpoint(endpoint);
}

frame client::request(msg_type type, std::uint32_t session, const std::string& payload) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  frame req;
  req.header.type = static_cast<std::uint8_t>(type);
  req.header.seq = next_seq_++;
  req.header.session = session;
  req.payload = payload;
  if (!write_frame(fd_, req)) {
    throw std::runtime_error("request write failed: " + std::string(std::strerror(errno)));
  }
  for (;;) {
    std::optional<frame> resp = read_frame(fd_);  // protocol_error propagates
    if (!resp) throw std::runtime_error("connection closed before response");
    if ((resp->header.type & response_bit) == 0) {
      // Server-initiated push interleaved with the response stream; a push
      // header's seq can collide with a request seq, so the response_bit is
      // the discriminator. Stash for poll_push()/wait_push().
      pushed_.push_back(*std::move(resp));
      continue;
    }
    if (resp->header.seq == req.header.seq) return *std::move(resp);
    // A response to an earlier pipelined request (not produced by this
    // synchronous client, but tolerate it).
  }
}

std::optional<frame> client::poll_push() { return wait_push(0); }

std::optional<frame> client::wait_push(int timeout_ms) {
  if (!pushed_.empty()) {
    frame f = std::move(pushed_.front());
    pushed_.pop_front();
    return f;
  }
  if (fd_ < 0) return std::nullopt;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int wait = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait = static_cast<int>(std::max<long long>(0, left.count()));
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (pr == 0) return std::nullopt;  // timeout
    std::optional<frame> f = read_frame(fd_);  // protocol_error propagates
    if (!f) return std::nullopt;               // connection closed
    if ((f->header.type & response_bit) == 0) return f;
    // A stray response (pipelined request answered late): drop it — request()
    // already returned for everything this synchronous client sent.
  }
}

void client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string client::status_line(const frame& resp) {
  const auto nl = resp.payload.find('\n');
  return resp.payload.substr(0, nl);
}

bool client::ok(const frame& resp) {
  return resp.payload.rfind("ok", 0) == 0 &&
         (resp.payload.size() == 2 || resp.payload[2] == ' ' || resp.payload[2] == '\n');
}

}  // namespace odrc::serve
