// Unix-domain socket server of odrc::serve (DESIGN.md §8).
//
// Topology: one accept thread (poll on the listen fd + a self-pipe for
// shutdown), one reader thread per connection decoding frames, and a bounded
// admission queue drained by at most `workers` dynamic worker tasks on
// thread_pool::global(). A reader that finds the queue full answers
// "error busy" immediately — overload sheds at admission instead of queueing
// unboundedly. Responses go out under a per-connection write mutex, so
// concurrent workers answering interleaved requests from one client never
// interleave bytes.
//
// Every request runs inside a trace span ("serve":"request" with type and
// session args) and bumps the request counters; `stats` reports session and
// queue depth, worker occupancy, reject/error totals and p50/p95 latency
// over a recent-request ring.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace odrc::serve {

struct server_config {
  std::string socket_path;
  std::size_t workers = 2;      ///< max concurrent request workers
  std::size_t queue_limit = 64; ///< admission queue bound
  engine::engine_config engine; ///< config for sessions opened via `open`
};

struct server_stats_snapshot {
  std::uint64_t accepted_connections = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t protocol_errors = 0;
  std::size_t queue_depth = 0;
  std::size_t active_workers = 0;
  std::size_t sessions = 0;
  double p50_ms = 0;
  double p95_ms = 0;
};

class server {
 public:
  server(server_config cfg, session_manager& sessions);
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Bind + listen + start the accept thread. Throws std::runtime_error on
  /// socket errors (path too long for sockaddr_un, bind failure, ...).
  void start();

  /// Initiate shutdown: stop accepting, wake readers, let queued requests
  /// drain. Safe from any thread, including a request worker (the shutdown
  /// verb responds first, then calls this).
  void stop();

  /// Block until stop() was called and all readers and workers finished.
  void wait();

  [[nodiscard]] server_stats_snapshot stats();

  [[nodiscard]] const std::string& socket_path() const { return cfg_.socket_path; }

 private:
  struct connection {
    int fd = -1;
    std::mutex write_mu;
  };

  struct request {
    std::shared_ptr<connection> conn;
    frame f;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<connection> conn);
  void drain();
  void handle(request& rq);
  std::string dispatch(const frame& f);  ///< returns the response payload
  void respond(connection& conn, const frame& req, std::string payload);
  void record_latency(double ms);

  server_config cfg_;
  session_manager& sessions_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<connection>> conns_;
  std::vector<std::thread> readers_;

  std::mutex queue_mu_;
  std::condition_variable drained_cv_;
  std::deque<request> queue_;
  std::size_t active_workers_ = 0;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> proto_errors_{0};

  std::mutex lat_mu_;
  std::vector<double> latencies_ms_;  ///< ring, newest overwrites oldest
  std::size_t lat_next_ = 0;
};

}  // namespace odrc::serve
