// Socket server of odrc::serve (DESIGN.md §8, §10).
//
// Topology: one accept thread (poll on the listen fd + self-pipes for
// shutdown and reader reaping), one reader thread per connection decoding
// frames, and a bounded admission queue drained by `workers` dedicated
// request threads. Requests deliberately do NOT run on the engine's shared
// thread_pool::global(): a request handler may itself block — on a check
// that parallelizes over that very pool, or (in the cluster coordinator) on
// responses from sibling servers in the same process — and borrowing the
// compute pool for such IO-bound work deadlocks it on small machines. A
// reader that finds the queue full answers "error busy" immediately —
// overload sheds at admission instead of queueing unboundedly. Responses go out under a per-connection write mutex,
// so concurrent workers answering interleaved requests from one client never
// interleave bytes.
//
// Connection lifecycle: client EOF half-closes the READ side only; the write
// side stays open until every request the connection had already pipelined
// has been answered (a per-connection in-flight count), then the last
// responder shuts it down and the accept thread reaps the reader thread and
// closes the fd. Transient accept() failures (EMFILE/ENFILE/ECONNABORTED)
// back off briefly and retry — the accept loop only exits on stop().
//
// Transport: the listen endpoint is either a Unix socket or TCP
// (serve/transport.hpp), same framing on both, so cluster workers can live
// on other hosts.
//
// Every request runs inside a trace span ("serve":"request" with type and
// session args) and bumps the request counters; `stats` reports session and
// queue depth, worker occupancy, reject/error/accept-error totals, live
// reader-thread and connection counts, and p50/p95 latency over a
// recent-request ring.
//
// `dispatch` is virtual: the cluster coordinator (serve/coord.hpp) reuses the
// whole accept/reader/queue machinery and overrides only the verb table.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/subscribe.hpp"
#include "serve/transport.hpp"

namespace odrc::serve {

struct server_config {
  std::string socket_path;      ///< unix path (back-compat spelling)
  std::string endpoint;         ///< transport endpoint; overrides socket_path
  std::size_t workers = 2;      ///< dedicated request worker threads
  std::size_t queue_limit = 64; ///< admission queue bound
  engine::engine_config engine; ///< config for sessions opened via `open`
  subscribe_config subs;        ///< subscription queue bounds + rate limits
  /// Per-frame push deadline: a subscriber whose socket buffer stays full
  /// this long is declared wedged and its connection is force-closed.
  int push_timeout_ms = 2000;

  [[nodiscard]] const std::string& effective_endpoint() const {
    return endpoint.empty() ? socket_path : endpoint;
  }
};

struct server_stats_snapshot {
  std::uint64_t accepted_connections = 0;
  std::uint64_t accept_errors = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t protocol_errors = 0;
  std::size_t queue_depth = 0;
  std::size_t active_workers = 0;
  std::size_t reader_threads = 0;  ///< live (not yet reaped) reader threads
  std::size_t connections = 0;     ///< live connections
  std::size_t sessions = 0;
  double p50_ms = 0;
  double p95_ms = 0;
};

class server {
 public:
  server(server_config cfg, session_manager& sessions);
  virtual ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Bind + listen + start the accept thread. Throws std::runtime_error on
  /// socket errors (path too long for sockaddr_un, bind failure, ...).
  /// Virtual so the cluster coordinator can prepend its worker handshake —
  /// starting a coordinator through a server& must not skip it.
  virtual void start();

  /// Initiate shutdown: stop accepting, wake readers, let queued requests
  /// drain. Safe from any thread, including a request worker (the shutdown
  /// verb responds first, then calls this).
  void stop();

  /// Block until stop() was called and all readers and workers finished.
  void wait();

  [[nodiscard]] server_stats_snapshot stats();

  [[nodiscard]] const std::string& socket_path() const { return cfg_.socket_path; }

  /// Endpoint actually listening ("unix:/p" or "tcp:host:port" with the
  /// kernel-resolved port). Valid after start().
  [[nodiscard]] const std::string& bound_endpoint() const { return bound_endpoint_; }

 protected:
  /// Returns the response payload for one request frame. Overridden by the
  /// cluster coordinator; the base implementation is the session verb table.
  virtual std::string dispatch(const frame& f);

  server_config cfg_;
  session_manager& sessions_;
  /// Streaming subscriptions (DESIGN.md §12). Lives in the base server so
  /// subscribe/unsubscribe — intercepted in handle(), where the connection
  /// identity is known — work identically for the cluster coordinator; the
  /// coordinator publishes its reconciled deltas through it too.
  subscription_manager subs_;

 private:
  struct connection {
    int fd = -1;
    std::mutex write_mu;
    /// Requests read off this connection and not yet answered. The write
    /// side closes only when this drains after read EOF — pipelined
    /// responses are never dropped.
    std::atomic<std::size_t> pending{0};
    std::atomic<bool> read_closed{false};
    std::atomic<bool> finished{false};  ///< write side shut down after drain
  };

  struct reader_slot {
    std::shared_ptr<connection> conn;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  struct request {
    std::shared_ptr<connection> conn;
    frame f;
  };

  /// push_sink writing delta frames onto a live connection under its write
  /// mutex (defined in server.cpp — it needs the connection internals).
  struct conn_sink;

  void accept_loop();
  void reader_loop(std::shared_ptr<connection> conn,
                   std::shared_ptr<std::atomic<bool>> done);
  void worker_loop();
  void handle(request& rq);
  /// subscribe/unsubscribe need the requesting connection (the push target),
  /// which dispatch() never sees — handle() routes them here instead.
  std::string do_subscribe(request& rq);
  std::string do_unsubscribe(const frame& f);
  void respond(connection& conn, const frame& req, std::string payload);
  void record_latency(double ms);
  /// Close the write side once read EOF was seen and every pipelined
  /// request drained; idempotent, callable from readers and workers.
  void finish_if_drained(connection& conn);
  /// Join exited reader threads and close fully-drained connections
  /// (accept-thread only). Long-lived coordinator-facing processes see heavy
  /// connection churn; without this, one thread handle per connection ever
  /// accepted would accumulate until shutdown.
  void reap_readers();
  void wake_reaper();

  transport::listener listener_;
  std::string bound_endpoint_;
  int stop_pipe_[2] = {-1, -1};
  int reap_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<connection>> conns_;
  std::vector<reader_slot> readers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<request> queue_;
  std::size_t active_workers_ = 0;  ///< request threads inside handle()
  bool queue_stop_ = false;         ///< set by wait() once readers exited

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> accept_errors_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> proto_errors_{0};

  std::mutex lat_mu_;
  std::vector<double> latencies_ms_;  ///< ring, newest overwrites oldest
  std::size_t lat_next_ = 0;
};

}  // namespace odrc::serve
