// odrc::serve wire protocol (interface layer; DESIGN.md §8).
//
// Length-prefixed binary frames over a Unix-domain stream socket — no
// external serialization dependency. Every frame is a fixed 16-byte
// little-endian header followed by `length` payload bytes:
//
//   offset  size  field
//        0     4  magic    0x4352444F ("ODRC" as bytes O D R C)
//        4     1  version  protocol_version (1)
//        5     1  type     msg_type; responses set response_bit (0x80)
//        6     2  seq      request sequence number, echoed in the response
//        8     4  session  target session id (0 = the server default)
//       12     4  length   payload byte count, <= max_payload_bytes
//
// Payloads are UTF-8 text: requests carry verb arguments (an edit script,
// open paths), responses start with a status line — "ok[ <details>]" or
// "error <message>" — followed by optional body lines. Text payloads keep
// the protocol greppable under strace/socat while the framing stays binary
// and length-checked; a malformed header kills the connection, a malformed
// payload only fails the request.
//
// Full duplex (DESIGN.md §12): a connection that issued `subscribe` carries
// SERVER-INITIATED `delta` frames interleaved with its own request/response
// traffic. Responses are distinguished by `response_bit`; a pushed frame has
// a bare request type (`delta`) and is never a request — its header seq is
// the low 16 bits of the subscription's push sequence, and the payload's
// first line ("delta sub <id> seq <n> fixed <f> new <k> gap <g>") carries
// the full 64-bit sequence so clients detect dropped frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace odrc::serve {

inline constexpr std::uint32_t protocol_magic = 0x4352444Fu;  // "ODRC"
inline constexpr std::uint8_t protocol_version = 1;
inline constexpr std::uint32_t max_payload_bytes = 64u << 20;
inline constexpr std::size_t header_size = 16;
inline constexpr std::uint8_t response_bit = 0x80;

enum class msg_type : std::uint8_t {
  open = 1,      ///< payload "<gds_path> <deck_path>" -> "ok session <id>"
  check = 2,     ///< full deck check -> "ok total <n>" + per-rule lines
  edit = 3,      ///< payload: edit script -> "ok applied <n> dirty <k>"
  recheck = 4,   ///< incremental recheck -> "ok fixed <f> new <n> unchanged <u> ..."
  diff = 5,      ///< last recheck's key diff -> status + key lines
  stats = 6,     ///< server/session/queue/latency metrics
  close = 7,     ///< drop the addressed session
  shutdown = 8,  ///< orderly server shutdown (responds before stopping)
  ping = 9,      ///< liveness -> "ok pong"
  reload = 10,   ///< payload "<path.snap>": hot-swap the session's snapshot

  // Cluster verbs (DESIGN.md §10). A worker is an ordinary server that was
  // handed a shard assignment; the coordinator speaks the same frames.
  shard = 11,         ///< payload "<idx> <count> x1 y1 x2 y2": own this band
  check_region = 12,  ///< payload "x1 y1 x2 y2 [keys]": windowed query
  health = 13,        ///< cheap admission probe -> "ok depth D inflight I ..."

  // Streaming subscriptions + stored-violation queries (DESIGN.md §12).
  subscribe = 14,    ///< payload "[x1 y1 x2 y2]": push me this session's
                     ///< recheck deltas (optionally clipped to the window)
                     ///< -> "ok subscribed <sub_id>"
  unsubscribe = 15,  ///< payload "<sub_id>" -> "ok unsubscribed <sub_id>"
  delta = 16,        ///< SERVER-INITIATED push frame, never a request; see
                     ///< the full-duplex note above for the payload format
  query = 17,        ///< payload "x1 y1 x2 y2 [keys]": windowed lookup over
                     ///< the STORED violations (R-tree backed, no recheck)
};

[[nodiscard]] const char* msg_type_name(std::uint8_t type);

/// msg_type_name, but out-of-enum types render as "unknown(<n>)" so error
/// responses name the offending byte instead of a bare "unknown".
[[nodiscard]] std::string msg_type_display(std::uint8_t type);

struct frame_header {
  std::uint32_t magic = protocol_magic;
  std::uint8_t version = protocol_version;
  std::uint8_t type = 0;
  std::uint16_t seq = 0;
  std::uint32_t session = 0;
  std::uint32_t length = 0;
};

struct frame {
  frame_header header;
  std::string payload;
};

/// Framing violation: bad magic, unknown version, oversized length. The
/// connection that produced it cannot be resynchronized and must be closed.
class protocol_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialize a header into its 16-byte little-endian wire form.
void encode_header(const frame_header& h, unsigned char out[header_size]);

/// Parse and validate 16 wire bytes. Throws protocol_error on bad magic,
/// version mismatch, or length > max_payload_bytes.
[[nodiscard]] frame_header decode_header(const unsigned char in[header_size]);

/// Full frame -> wire bytes (header + payload). Throws protocol_error when
/// the payload exceeds max_payload_bytes.
[[nodiscard]] std::string encode_frame(const frame& f);

/// Incremental frame decoder: feed arbitrary byte chunks, complete frames
/// are appended to `out`. Carries partial frames across feed() calls — the
/// server read loop and the framing edge-case tests both drive this. Throws
/// protocol_error exactly where decode_header would.
class frame_reader {
 public:
  void feed(const char* data, std::size_t n, std::vector<frame>& out);

  /// Bytes of an incomplete frame currently buffered (0 at frame boundary).
  [[nodiscard]] std::size_t pending() const { return buf_.size(); }

 private:
  std::string buf_;
};

// --- blocking fd I/O (EINTR-safe) ------------------------------------------

/// Read exactly `n` bytes. False on EOF or error (errno preserved).
bool read_exact(int fd, void* buf, std::size_t n);

/// Write all `n` bytes. False on error.
bool write_all(int fd, const void* buf, std::size_t n);

/// Write one frame (header + payload) atomically with respect to other
/// write_frame calls only if the caller serializes; the server holds a
/// per-connection write mutex.
bool write_frame(int fd, const frame& f);

/// write_frame with a wall-clock deadline: non-blocking sends interleaved
/// with POLLOUT waits. False on error OR when the peer's socket buffer stays
/// full past `timeout_ms` — the push flusher uses this so one wedged
/// subscriber can only ever stall delivery for a bounded time. May leave a
/// partial frame on the wire on timeout; the caller must treat the
/// connection as unusable (it cannot be resynchronized).
bool write_frame_deadline(int fd, const frame& f, int timeout_ms);

/// Read one frame. nullopt on clean EOF at a frame boundary; throws
/// protocol_error on a malformed header; nullopt (with errno) on truncation.
std::optional<frame> read_frame(int fd);

/// Build a response frame for `req`: same seq/session, type | response_bit.
[[nodiscard]] frame make_response(const frame& req, std::string payload);

// --- delta push frames ------------------------------------------------------

/// Parsed form of one pushed `delta` frame.
struct delta_frame {
  std::uint64_t sub = 0;  ///< subscription id
  std::uint64_t seq = 0;  ///< push sequence within the subscription
  bool gap = false;       ///< >=1 delta was dropped since the previous frame
  std::vector<std::string> fixed;       ///< violation keys fixed
  std::vector<std::string> introduced;  ///< violation keys introduced
};

/// Parse a pushed delta payload. nullopt when the frame is not a delta push
/// or the payload is malformed.
[[nodiscard]] std::optional<delta_frame> parse_delta(const frame& f);

}  // namespace odrc::serve
