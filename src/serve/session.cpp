#include "serve/session.hpp"

#include <algorithm>
#include <sstream>

#include "infra/timer.hpp"
#include "infra/trace.hpp"

namespace odrc::serve {

namespace {

// Iteratively join overlapping rects: the scheduler drives one window per
// disjoint dirty region instead of one per edit.
std::vector<rect> merge_rects(std::vector<rect> rects) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < rects.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < rects.size(); ++j) {
        if (!rects[i].overlaps(rects[j])) continue;
        rects[i] = rects[i].join(rects[j]);
        rects.erase(rects.begin() + static_cast<std::ptrdiff_t>(j));
        changed = true;
        break;
      }
    }
  }
  return rects;
}

rect intersect(const rect& a, const rect& b) {
  return {std::max(a.x_min, b.x_min), std::max(a.y_min, b.y_min),
          std::min(a.x_max, b.x_max), std::min(a.y_max, b.y_max)};
}

// Sharded keep predicate: same edge-wise test check_region applies to its
// window, here against the shard band.
bool touches_band(const checks::violation& v, const rect& band) {
  return band.overlaps(v.e1.mbr()) || band.overlaps(v.e2.mbr());
}

}  // namespace

session::session(db::library lib, std::vector<rules::rule> deck, engine::engine_config cfg)
    : lib_(std::move(lib)), deck_(std::move(deck)), eng_(cfg), db_(lib_.name()) {
  trace::span ts("snapshot", "cold_build", "cells",
                 static_cast<std::int64_t>(lib_.cell_count()));
  plans_.reserve(deck_.size());
  for (const rules::rule& r : deck_) plans_.push_back(engine::compile_plan(r));
  eng_.add_rules(deck_);
  snap_.emplace(lib_);
}

session::session(std::shared_ptr<const engine::frozen_backing> frozen, db::library lib,
                 std::vector<rules::rule> deck, engine::engine_config cfg)
    : frozen_(std::move(frozen)),
      lib_(std::move(lib)),
      deck_(std::move(deck)),
      eng_(cfg),
      db_(lib_.name()) {
  plans_.reserve(deck_.size());
  for (const rules::rule& r : deck_) plans_.push_back(engine::compile_plan(r));
  eng_.add_rules(deck_);
  snap_.emplace(lib_, frozen_);
}

void session::reload(std::shared_ptr<const engine::frozen_backing> frozen, db::library lib) {
  std::lock_guard lk(mu_);
  trace::span ts("snapshot", "hot_swap", "cells",
                 static_cast<std::int64_t>(lib.cell_count()));
  // Destroy the snapshot before the library it references; the OLD mapping
  // is only released when the last shared_ptr (an in-flight check's copy or
  // another session) drops.
  snap_.reset();
  lib_ = std::move(lib);
  frozen_ = std::move(frozen);
  if (frozen_) {
    snap_.emplace(lib_, frozen_);
  } else {
    snap_.emplace(lib_);
  }
  // A new layout version invalidates all incremental state.
  dirty_.clear();
  full_required_ = true;
}

void session::run_full_locked() {
  trace::span ts("serve", "full_check", "rules", static_cast<std::int64_t>(plans_.size()),
                 "shard", shard_ ? static_cast<std::int64_t>(shard_->index) : -1);
  db_ = report::violation_db(lib_.name());
  // A sharded worker's "full" check is its band: check_region keeps exactly
  // the violations with an offending edge touching the band, so the union
  // over all workers' stores is the single-process store.
  engine::deck_report dr = shard_ ? eng_.check_region(lib_, plans_, *snap_, shard_->band)
                                  : eng_.check_deck(lib_, plans_, *snap_);
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    db_.add(deck_[i].name, dr.per_rule[i].violations);
  }
  checked_ = true;
  full_required_ = false;
  dirty_.clear();
}

void session::set_shard(shard_info s) {
  std::lock_guard lk(mu_);
  if (s.band.empty()) throw std::runtime_error("empty shard band");
  shard_ = s;
  // The store's meaning changed (full design -> band); rebuild before the
  // next incremental step.
  full_required_ = true;
}

std::optional<session::shard_info> session::shard() const {
  std::lock_guard lk(mu_);
  return shard_;
}

session::window_result session::check_window(const rect& w) {
  std::lock_guard lk(mu_);
  trace::span ts("serve", "check_window");
  const rect eff = shard_ ? intersect(w, shard_->band) : w;
  window_result out;
  if (eff.empty()) return out;
  report::violation_db db(lib_.name());
  engine::deck_report dr = eng_.check_region(lib_, plans_, *snap_, eff);
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    db.add(deck_[i].name, dr.per_rule[i].violations);
  }
  out.rows = db.summarize();
  out.keys = db.keys();
  return out;
}

std::vector<report::summary_row> session::check_full(const diff_callback& on_diff) {
  std::lock_guard lk(mu_);
  timer t;
  const std::vector<std::string> baseline = last_keys_;
  run_full_locked();
  last_keys_ = db_.keys();
  last_diff_ = report::diff_keys(baseline, last_keys_);
  ++stats_.checks;
  stats_.violations = db_.size();
  stats_.pending_dirty = 0;
  stats_.last_check_seconds = t.seconds();
  if (on_diff) on_diff(last_diff_);
  return db_.summarize();
}

edit_result session::apply(std::span<const edit_op> ops) {
  std::lock_guard lk(mu_);
  trace::span ts("serve", "apply_edits", "ops", static_cast<std::int64_t>(ops.size()));
  edit_result res;
  try {
    res = apply_edits(lib_, *snap_, ops);
  } catch (...) {
    // A partially applied script leaves the dirty bookkeeping incomplete;
    // only a full check restores a trustworthy store.
    full_required_ = true;
    throw;
  }
  dirty_.insert(dirty_.end(), res.dirty.begin(), res.dirty.end());
  if (res.tops_changed) full_required_ = true;
  ++stats_.edits;
  stats_.pending_dirty = dirty_.size();
  if (snap_->frozen_backed()) {
    trace::counter("snapshot", "overlay_entries",
                   static_cast<std::int64_t>(snap_->overlay_entries()));
  }
  return res;
}

recheck_result session::recheck(const diff_callback& on_diff) {
  std::lock_guard lk(mu_);
  trace::span ts("serve", "recheck", "dirty", static_cast<std::int64_t>(dirty_.size()));
  timer t;
  recheck_result out;
  const std::vector<std::string> baseline = last_keys_;

  if (!checked_ || full_required_) {
    run_full_locked();
    out.full = true;
  } else if (!dirty_.empty()) {
    const std::vector<rect> merged = merge_rects(dirty_);
    out.windows = merged.size();
    for (std::size_t i = 0; i < plans_.size(); ++i) {
      const engine::exec_plan& plan = plans_[i];
      const std::string& name = deck_[i].name;
      const std::span<const engine::exec_plan> one(&plan, 1);
      if (plan.cls == engine::plan_class::global) {
        // Not locally incremental (see file comment): full rerun + replace
        // (band-filtered via check_region when sharded).
        out.purged += db_.erase_rule(name);
        engine::deck_report dr = shard_
                                     ? eng_.check_region(lib_, one, *snap_, shard_->band)
                                     : eng_.check_deck(lib_, one, *snap_);
        out.inserted += dr.per_rule[0].violations.size();
        db_.add(name, dr.per_rule[0].violations);
        continue;
      }
      // Sharded exactness: a changed violation has one edge in the dirty
      // rect D and the other within plan.inflate of it, so both edges lie in
      // W = D.inflated(inflate). An affected BAND entry additionally has an
      // edge touching the band, so W ∩ band ≠ ∅ — windows disjoint from the
      // band cannot change this worker's store and are skipped whole.
      // Purge everything that could have changed BEFORE inserting: a
      // violation touching two overlapping windows must not be re-purged
      // after its re-insertion.
      for (const rect& d : merged) {
        const rect w = d.inflated(plan.inflate);
        if (shard_ && !w.overlaps(shard_->band)) continue;
        out.purged += db_.erase_touching(name, w);
      }
      for (const rect& d : merged) {
        const rect w = d.inflated(plan.inflate);
        if (shard_ && !w.overlaps(shard_->band)) continue;
        engine::deck_report dr = eng_.check_region(lib_, one, *snap_, w);
        for (const checks::violation& v : dr.per_rule[0].violations) {
          if (shard_ && !touches_band(v, shard_->band)) continue;
          if (db_.add_unique(name, v)) ++out.inserted;
        }
      }
    }
    dirty_.clear();
  }

  last_keys_ = db_.keys();
  last_diff_ = report::diff_keys(baseline, last_keys_);
  out.diff = last_diff_;
  out.seconds = t.seconds();
  ++stats_.rechecks;
  stats_.violations = db_.size();
  stats_.pending_dirty = 0;
  stats_.last_recheck_seconds = out.seconds;
  trace::counter("serve", "recheck_purged", static_cast<std::int64_t>(out.purged));
  trace::counter("serve", "recheck_inserted", static_cast<std::int64_t>(out.inserted));
  if (on_diff) on_diff(last_diff_);
  return out;
}

session::window_result session::query_stored(const rect& w) const {
  std::lock_guard lk(mu_);
  trace::span ts("serve", "query_stored");
  window_result out;
  if (w.empty()) return out;
  const std::vector<std::size_t> hits = db_.in_window(w);
  const std::span<const report::entry> entries = db_.entries();
  for (const std::size_t i : hits) {
    const report::entry& e = entries[i];
    auto it = std::find_if(out.rows.begin(), out.rows.end(),
                           [&](const report::summary_row& r) { return r.rule == e.rule; });
    if (it == out.rows.end()) {
      out.rows.push_back({e.rule, e.v.kind, 1});
    } else {
      ++it->count;
    }
    out.keys.push_back(e.key);
  }
  std::sort(out.keys.begin(), out.keys.end());
  return out;
}

report::key_diff session::last_diff() const {
  std::lock_guard lk(mu_);
  return last_diff_;
}

std::vector<std::string> session::keys() const {
  std::lock_guard lk(mu_);
  return db_.keys();
}

session_stats session::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::string session::report_text() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  db_.write_text(os);
  return os.str();
}

std::uint32_t session_manager::create(db::library lib, std::vector<rules::rule> deck,
                                      engine::engine_config cfg) {
  auto s = std::make_shared<session>(std::move(lib), std::move(deck), cfg);
  std::lock_guard lk(mu_);
  const std::uint32_t id = next_id_++;
  sessions_.emplace(id, std::move(s));
  return id;
}

std::uint32_t session_manager::create_frozen(
    std::shared_ptr<const engine::frozen_backing> frozen, db::library lib,
    std::vector<rules::rule> deck, engine::engine_config cfg) {
  auto s = std::make_shared<session>(std::move(frozen), std::move(lib), std::move(deck), cfg);
  std::lock_guard lk(mu_);
  const std::uint32_t id = next_id_++;
  sessions_.emplace(id, std::move(s));
  return id;
}

std::shared_ptr<session> session_manager::get(std::uint32_t id) const {
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool session_manager::close(std::uint32_t id) {
  std::lock_guard lk(mu_);
  return sessions_.erase(id) > 0;
}

std::size_t session_manager::count() const {
  std::lock_guard lk(mu_);
  return sessions_.size();
}

}  // namespace odrc::serve
