#include "serve/protocol.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string_view>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace odrc::serve {

const char* msg_type_name(std::uint8_t type) {
  switch (static_cast<msg_type>(type & ~response_bit)) {
    case msg_type::open: return "open";
    case msg_type::check: return "check";
    case msg_type::edit: return "edit";
    case msg_type::recheck: return "recheck";
    case msg_type::diff: return "diff";
    case msg_type::stats: return "stats";
    case msg_type::close: return "close";
    case msg_type::shutdown: return "shutdown";
    case msg_type::ping: return "ping";
    case msg_type::reload: return "reload";
    case msg_type::shard: return "shard";
    case msg_type::check_region: return "check_region";
    case msg_type::health: return "health";
    case msg_type::subscribe: return "subscribe";
    case msg_type::unsubscribe: return "unsubscribe";
    case msg_type::delta: return "delta";
    case msg_type::query: return "query";
  }
  return "unknown";
}

std::string msg_type_display(std::uint8_t type) {
  const char* name = msg_type_name(type);
  if (std::string_view(name) != "unknown") return name;
  return "unknown(" + std::to_string(static_cast<unsigned>(type & ~response_bit)) + ")";
}

namespace {

void put32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

std::uint32_t get32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void encode_header(const frame_header& h, unsigned char out[header_size]) {
  put32(out, h.magic);
  out[4] = h.version;
  out[5] = h.type;
  out[6] = static_cast<unsigned char>(h.seq);
  out[7] = static_cast<unsigned char>(h.seq >> 8);
  put32(out + 8, h.session);
  put32(out + 12, h.length);
}

frame_header decode_header(const unsigned char in[header_size]) {
  frame_header h;
  h.magic = get32(in);
  if (h.magic != protocol_magic) throw protocol_error("bad magic");
  h.version = in[4];
  if (h.version != protocol_version) {
    throw protocol_error("unsupported protocol version " + std::to_string(h.version));
  }
  h.type = in[5];
  h.seq = static_cast<std::uint16_t>(in[6] | (in[7] << 8));
  h.session = get32(in + 8);
  h.length = get32(in + 12);
  if (h.length > max_payload_bytes) {
    throw protocol_error("payload length " + std::to_string(h.length) + " exceeds limit");
  }
  return h;
}

std::string encode_frame(const frame& f) {
  if (f.payload.size() > max_payload_bytes) throw protocol_error("payload exceeds limit");
  frame_header h = f.header;
  h.length = static_cast<std::uint32_t>(f.payload.size());
  std::string out;
  out.resize(header_size + f.payload.size());
  encode_header(h, reinterpret_cast<unsigned char*>(out.data()));
  std::memcpy(out.data() + header_size, f.payload.data(), f.payload.size());
  return out;
}

void frame_reader::feed(const char* data, std::size_t n, std::vector<frame>& out) {
  buf_.append(data, n);
  for (;;) {
    if (buf_.size() < header_size) return;
    const frame_header h =
        decode_header(reinterpret_cast<const unsigned char*>(buf_.data()));
    if (buf_.size() < header_size + h.length) return;
    frame f;
    f.header = h;
    f.payload.assign(buf_, header_size, h.length);
    buf_.erase(0, header_size + h.length);
    out.push_back(std::move(f));
  }
}

bool read_exact(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t r = ::write(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_frame(int fd, const frame& f) {
  const std::string wire = encode_frame(f);
  return write_all(fd, wire.data(), wire.size());
}

bool write_frame_deadline(int fd, const frame& f, int timeout_ms) {
  const std::string wire = encode_frame(f);
  const char* p = wire.data();
  std::size_t n = wire.size();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (n > 0) {
    const ssize_t r = ::send(fd, p, n, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (r > 0) {
      p += r;
      n -= static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) return false;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return false;  // wedged peer: give up
    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (pr < 0 && errno != EINTR) return false;
    if (pr > 0 && (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return false;
  }
  return true;
}

std::optional<frame> read_frame(int fd) {
  unsigned char hdr[header_size];
  if (!read_exact(fd, hdr, header_size)) return std::nullopt;
  frame f;
  f.header = decode_header(hdr);  // may throw protocol_error
  f.payload.resize(f.header.length);
  if (f.header.length > 0 && !read_exact(fd, f.payload.data(), f.header.length)) {
    return std::nullopt;  // truncated mid-frame
  }
  return f;
}

std::optional<delta_frame> parse_delta(const frame& f) {
  if ((f.header.type & response_bit) != 0) return std::nullopt;
  if (static_cast<msg_type>(f.header.type) != msg_type::delta) return std::nullopt;
  std::istringstream is(f.payload);
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  std::istringstream head(line);
  std::string tag, kw_sub, kw_seq, kw_fixed, kw_new, kw_gap;
  delta_frame d;
  std::size_t n_fixed = 0, n_new = 0;
  int gap = 0;
  if (!(head >> tag >> kw_sub >> d.sub >> kw_seq >> d.seq >> kw_fixed >> n_fixed >> kw_new >>
        n_new >> kw_gap >> gap) ||
      tag != "delta" || kw_sub != "sub" || kw_seq != "seq" || kw_fixed != "fixed" ||
      kw_new != "new" || kw_gap != "gap") {
    return std::nullopt;
  }
  d.gap = gap != 0;
  while (std::getline(is, line)) {
    if (line.rfind("fixed ", 0) == 0) {
      d.fixed.push_back(line.substr(6));
    } else if (line.rfind("new ", 0) == 0) {
      d.introduced.push_back(line.substr(4));
    }
  }
  if (d.fixed.size() != n_fixed || d.introduced.size() != n_new) return std::nullopt;
  return d;
}

frame make_response(const frame& req, std::string payload) {
  frame resp;
  resp.header = req.header;
  resp.header.type = static_cast<std::uint8_t>(req.header.type | response_bit);
  resp.header.length = static_cast<std::uint32_t>(payload.size());
  resp.payload = std::move(payload);
  return resp;
}

}  // namespace odrc::serve
