#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <unistd.h>

namespace odrc::serve {

const char* msg_type_name(std::uint8_t type) {
  switch (static_cast<msg_type>(type & ~response_bit)) {
    case msg_type::open: return "open";
    case msg_type::check: return "check";
    case msg_type::edit: return "edit";
    case msg_type::recheck: return "recheck";
    case msg_type::diff: return "diff";
    case msg_type::stats: return "stats";
    case msg_type::close: return "close";
    case msg_type::shutdown: return "shutdown";
    case msg_type::ping: return "ping";
    case msg_type::reload: return "reload";
    case msg_type::shard: return "shard";
    case msg_type::check_region: return "check_region";
    case msg_type::health: return "health";
  }
  return "unknown";
}

namespace {

void put32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

std::uint32_t get32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void encode_header(const frame_header& h, unsigned char out[header_size]) {
  put32(out, h.magic);
  out[4] = h.version;
  out[5] = h.type;
  out[6] = static_cast<unsigned char>(h.seq);
  out[7] = static_cast<unsigned char>(h.seq >> 8);
  put32(out + 8, h.session);
  put32(out + 12, h.length);
}

frame_header decode_header(const unsigned char in[header_size]) {
  frame_header h;
  h.magic = get32(in);
  if (h.magic != protocol_magic) throw protocol_error("bad magic");
  h.version = in[4];
  if (h.version != protocol_version) {
    throw protocol_error("unsupported protocol version " + std::to_string(h.version));
  }
  h.type = in[5];
  h.seq = static_cast<std::uint16_t>(in[6] | (in[7] << 8));
  h.session = get32(in + 8);
  h.length = get32(in + 12);
  if (h.length > max_payload_bytes) {
    throw protocol_error("payload length " + std::to_string(h.length) + " exceeds limit");
  }
  return h;
}

std::string encode_frame(const frame& f) {
  if (f.payload.size() > max_payload_bytes) throw protocol_error("payload exceeds limit");
  frame_header h = f.header;
  h.length = static_cast<std::uint32_t>(f.payload.size());
  std::string out;
  out.resize(header_size + f.payload.size());
  encode_header(h, reinterpret_cast<unsigned char*>(out.data()));
  std::memcpy(out.data() + header_size, f.payload.data(), f.payload.size());
  return out;
}

void frame_reader::feed(const char* data, std::size_t n, std::vector<frame>& out) {
  buf_.append(data, n);
  for (;;) {
    if (buf_.size() < header_size) return;
    const frame_header h =
        decode_header(reinterpret_cast<const unsigned char*>(buf_.data()));
    if (buf_.size() < header_size + h.length) return;
    frame f;
    f.header = h;
    f.payload.assign(buf_, header_size, h.length);
    buf_.erase(0, header_size + h.length);
    out.push_back(std::move(f));
  }
}

bool read_exact(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t r = ::write(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_frame(int fd, const frame& f) {
  const std::string wire = encode_frame(f);
  return write_all(fd, wire.data(), wire.size());
}

std::optional<frame> read_frame(int fd) {
  unsigned char hdr[header_size];
  if (!read_exact(fd, hdr, header_size)) return std::nullopt;
  frame f;
  f.header = decode_header(hdr);  // may throw protocol_error
  f.payload.resize(f.header.length);
  if (f.header.length > 0 && !read_exact(fd, f.payload.data(), f.header.length)) {
    return std::nullopt;  // truncated mid-frame
  }
  return f;
}

frame make_response(const frame& req, std::string payload) {
  frame resp;
  resp.header = req.header;
  resp.header.type = static_cast<std::uint8_t>(req.header.type | response_bit);
  resp.header.length = static_cast<std::uint32_t>(payload.size());
  resp.payload = std::move(payload);
  return resp;
}

}  // namespace odrc::serve
