// Stream-transport abstraction of odrc::serve (DESIGN.md §10).
//
// One endpoint grammar shared by the client, the workers and the cluster
// coordinator, so a worker can live on another host without any protocol
// change — the length-prefixed framing (protocol.hpp) is byte-identical on
// both transports:
//
//   unix:/path/to.sock   Unix-domain stream socket
//   /path/to.sock        bare paths mean unix (back-compat with --socket)
//   tcp:host:port        TCP; `host` may be a name or a dotted quad, and a
//                        listener may use port 0 to let the kernel pick
//                        (bound() reports the resolved port)
#pragma once

#include <cstdint>
#include <string>

namespace odrc::serve::transport {

struct endpoint {
  bool tcp = false;
  std::string host;          ///< tcp only
  std::uint16_t port = 0;    ///< tcp only
  std::string path;          ///< unix only

  [[nodiscard]] std::string describe() const;
};

/// Parse the endpoint grammar above. Throws std::runtime_error on a
/// malformed spec (empty, bad port, missing colon).
[[nodiscard]] endpoint parse_endpoint(const std::string& spec);

/// Connect a blocking stream socket to `spec`. Throws std::runtime_error on
/// resolution or connection failure; the returned fd is owned by the caller.
[[nodiscard]] int connect_endpoint(const std::string& spec);

/// Listening socket over either transport. For unix endpoints the path is
/// unlinked before bind and again on close(); for TCP, SO_REUSEADDR is set
/// and port 0 resolves to a kernel-assigned port (visible via bound()).
class listener {
 public:
  listener() = default;
  ~listener() { close(); }

  listener(const listener&) = delete;
  listener& operator=(const listener&) = delete;

  /// Bind + listen. Throws std::runtime_error on failure.
  void open(const std::string& spec, int backlog = 16);

  void close();

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// Canonical endpoint actually bound ("unix:/p" or "tcp:host:port" with
  /// the resolved port). Empty before open().
  [[nodiscard]] const std::string& bound() const { return bound_; }

 private:
  int fd_ = -1;
  endpoint ep_;
  std::string bound_;
};

}  // namespace odrc::serve::transport
