// Session layer of odrc::serve (DESIGN.md §8).
//
// A session owns everything a repeated-check consumer keeps warm between
// requests: the mutable `db::library`, the deck's compiled `exec_plan`s, a
// `layout_snapshot` kept consistent across edits via the invalidation hooks,
// and the `violation_db` of the last completed check. `recheck()` is the
// incremental scheduler: it merges the dirty rects accumulated by apply(),
// expands each by the rule's halo (exec_plan::inflate), purges the stored
// violations touching each window (edge-wise — the exact complement of
// check_region's keep predicate) and re-inserts check_region's results with
// key dedup. Rules compiled to plan_class::global (derived-area booleans,
// coloring) are not locally incremental — their connected components and odd
// cycles can change arbitrarily far from an edit — so they rerun in full and
// replace all their entries. Edits that change the top-cell set (a removed
// last reference promotes a cell to top) force a full recheck: a whole check
// context appears or vanishes.
//
// Why purge+insert is exact (matches a fresh full check): a violation's key
// set changes only where geometry changed. Every changed violation carries at
// least one edge inside the dirty rect D (old ∪ new MBR of the edited
// geometry mapped through all placements): a pair violation involves the
// edited polygon itself; an enclosure "uncovered inner" violation's inner lies
// inside the removed outer's MBR ⊆ D. Purging "edge touches W" and inserting
// check_region(W)'s "edge touches W" results therefore rewrites exactly the
// entries that could have changed and no others.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/layout.hpp"
#include "engine/engine.hpp"
#include "engine/plan.hpp"
#include "engine/rule.hpp"
#include "engine/snapshot.hpp"
#include "report/violation_db.hpp"
#include "serve/edits.hpp"

namespace odrc::serve {

struct recheck_result {
  report::key_diff diff;     ///< vs the key set of the previous check/recheck
  std::size_t windows = 0;   ///< merged dirty windows driven per plan
  std::size_t purged = 0;    ///< stored entries removed
  std::size_t inserted = 0;  ///< fresh entries added (after dedup)
  bool full = false;         ///< fell back to a full check
  double seconds = 0;
};

struct session_stats {
  std::size_t checks = 0;
  std::size_t edits = 0;
  std::size_t rechecks = 0;
  std::size_t violations = 0;
  std::size_t pending_dirty = 0;
  double last_check_seconds = 0;
  double last_recheck_seconds = 0;
};

/// One serving session. All public methods serialize on an internal mutex:
/// concurrent requests against one session are safe and ordered; requests
/// against different sessions run concurrently.
class session {
 public:
  /// Shard assignment for cluster workers (DESIGN.md §10): this session
  /// answers for the violations whose offending edges touch `band`. Bands
  /// tile the plane, so the union of all workers' check results is exactly
  /// the single-process result (seam straddlers appear on every band their
  /// edges touch and are deduplicated by key at the coordinator).
  struct shard_info {
    rect band;
    std::uint32_t index = 0;
    std::uint32_t count = 1;
  };

  /// Result of a pure windowed query (check_window): summary rows plus the
  /// sorted keys, computed fresh without touching the session's store.
  struct window_result {
    std::vector<report::summary_row> rows;
    std::vector<std::string> keys;
  };

  session(db::library lib, std::vector<rules::rule> deck,
          engine::engine_config cfg = {});

  /// Frozen-backed session (mmap boot, DESIGN.md §9): `lib` must be the
  /// library deserialized from the same blob (`frozen_snapshot::
  /// make_library`). The snapshot's caches serve span-views into the
  /// mapping; edits go to the copy-on-write overlay, the file stays
  /// untouched. The shared_ptr keeps the mapping alive while any check is
  /// in flight.
  session(std::shared_ptr<const engine::frozen_backing> frozen, db::library lib,
          std::vector<rules::rule> deck, engine::engine_config cfg = {});

  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// Observer invoked with the key diff of a completed check/recheck WHILE
  /// the session mutex is held — deltas published from here are totally
  /// ordered with the checks that produced them, so a subscriber can never
  /// see two concurrent rechecks' diffs swapped. Keep it non-blocking (the
  /// server's callback only enqueues; see subscription_manager::publish).
  using diff_callback = std::function<void(const report::key_diff&)>;

  /// Full deck check from the warm snapshot; replaces the violation store.
  /// Returns the summary rows of the fresh store.
  std::vector<report::summary_row> check_full(const diff_callback& on_diff = {});

  /// Apply an edit script: mutate the library, invalidate the snapshot,
  /// accumulate dirty rects. Throws on unknown cells / bad indices, in which
  /// case the session requires a full check before the next recheck.
  edit_result apply(std::span<const edit_op> ops);

  /// Incremental recheck over the accumulated dirty rects (see file
  /// comment). Falls back to a full check when nothing was ever checked,
  /// when an edit changed the top-cell set, or after a failed edit script.
  recheck_result recheck(const diff_callback& on_diff = {});

  /// Hot-swap to a new snapshot version: replace the library and rebuild
  /// the layout_snapshot over `frozen`. Serialized against checks by the
  /// session mutex, so the flip lands between checks; the previous mapping
  /// stays referenced (shared_ptr) until the last reader drops it. Forces a
  /// full check on the next check/recheck. The deck is kept — a swap
  /// changes the layout version, not the rules.
  void reload(std::shared_ptr<const engine::frozen_backing> frozen, db::library lib);

  /// Adopt a shard assignment. Subsequent check_full() runs check the band
  /// only; recheck() clips its windows to the band. Forces a full check
  /// before the next incremental step (the store changes meaning).
  void set_shard(shard_info s);

  /// Current shard assignment, if any.
  [[nodiscard]] std::optional<shard_info> shard() const;

  /// Pure windowed query: check `w` (clipped to the shard band when
  /// sharded) against the full deck and return rows + keys. Does not touch
  /// the violation store, the dirty set, or the diff baseline.
  [[nodiscard]] window_result check_window(const rect& w);

  /// Windowed lookup over the STORED violations of the last check/recheck:
  /// entries whose marker box overlaps `w`, summarized per rule plus sorted
  /// keys. R-tree backed (violation_db::in_window) — no geometry is
  /// rechecked, so this is the cheap "what's under the cursor" query.
  [[nodiscard]] window_result query_stored(const rect& w) const;

  /// The diff produced by the most recent check_full()/recheck().
  [[nodiscard]] report::key_diff last_diff() const;

  /// Sorted violation keys of the current store.
  [[nodiscard]] std::vector<std::string> keys() const;

  [[nodiscard]] session_stats stats() const;

  /// Serialized text report of the current store (violation_db::write_text).
  [[nodiscard]] std::string report_text() const;

 private:
  void run_full_locked();

  mutable std::mutex mu_;
  std::shared_ptr<const engine::frozen_backing> frozen_;  ///< null on cold boot
  db::library lib_;
  std::vector<rules::rule> deck_;
  std::vector<engine::exec_plan> plans_;
  engine::drc_engine eng_;
  std::optional<engine::layout_snapshot> snap_;
  report::violation_db db_;
  std::vector<std::string> last_keys_;
  report::key_diff last_diff_;
  std::vector<rect> dirty_;
  std::optional<shard_info> shard_;
  bool checked_ = false;
  bool full_required_ = false;
  session_stats stats_;
};

/// Registry of live sessions, keyed by the protocol's session id. Thread-safe.
class session_manager {
 public:
  std::uint32_t create(db::library lib, std::vector<rules::rule> deck,
                       engine::engine_config cfg = {});

  /// Frozen-backed variant of create() (mmap boot).
  std::uint32_t create_frozen(std::shared_ptr<const engine::frozen_backing> frozen,
                              db::library lib, std::vector<rules::rule> deck,
                              engine::engine_config cfg = {});

  /// nullptr when the id is unknown (or was closed).
  [[nodiscard]] std::shared_ptr<session> get(std::uint32_t id) const;

  bool close(std::uint32_t id);

  [[nodiscard]] std::size_t count() const;

 private:
  mutable std::mutex mu_;
  std::uint32_t next_id_ = 1;
  std::unordered_map<std::uint32_t, std::shared_ptr<session>> sessions_;
};

}  // namespace odrc::serve
