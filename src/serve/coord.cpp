#include "serve/coord.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <thread>

#include "infra/trace.hpp"

namespace odrc::serve {

namespace {

/// Body lines of a response payload prefixed with `tag ` (e.g. "v", "fixed"),
/// tag stripped.
std::vector<std::string> tagged_lines(const std::string& payload, const std::string& tag) {
  std::vector<std::string> out;
  const std::string prefix = tag + ' ';
  std::istringstream is(payload);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(prefix, 0) == 0) out.push_back(line.substr(prefix.size()));
  }
  return out;
}

/// "rule|kind|..." -> "rule". violation_db keys never contain whitespace and
/// always lead with the rule name.
std::string rule_of_key(const std::string& key) {
  return key.substr(0, key.find('|'));
}

std::string summarize_keys(const std::vector<std::string>& keys, bool include_keys) {
  std::map<std::string, std::size_t> per_rule;
  for (const std::string& k : keys) ++per_rule[rule_of_key(k)];
  std::ostringstream os;
  os << "ok total " << keys.size();
  for (const auto& [rule, count] : per_rule) os << "\nrule " << rule << ' ' << count;
  if (include_keys) {
    for (const std::string& k : keys) os << "\nv " << k;
  }
  return os.str();
}

/// Pull "<label> <number>" out of a status line; 0 when absent.
std::uint64_t status_field(const std::string& line, const std::string& label) {
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok == label) {
      std::uint64_t v = 0;
      if (is >> v) return v;
      return 0;
    }
  }
  return 0;
}

std::string first_line(const std::string& payload) {
  return payload.substr(0, payload.find('\n'));
}

}  // namespace

coordinator::coordinator(coord_config cfg)
    : server(cfg.listen, this->sessions), ccfg_(std::move(cfg)) {
  if (ccfg_.worker_endpoints.empty()) throw std::runtime_error("coordinator needs workers");
  if (ccfg_.worker_endpoints.size() != ccfg_.bands.size()) {
    throw std::runtime_error("worker/band count mismatch");
  }
  if (ccfg_.worker_endpoints.size() > 64) {
    throw std::runtime_error("at most 64 shards (owner bitmask)");
  }
  links_.reserve(ccfg_.worker_endpoints.size());
  for (std::size_t i = 0; i < ccfg_.worker_endpoints.size(); ++i) {
    auto w = std::make_unique<worker_link>();
    w->endpoint = ccfg_.worker_endpoints[i];
    w->band = ccfg_.bands[i];
    w->index = static_cast<std::uint32_t>(i);
    links_.push_back(std::move(w));
  }
}

coordinator::~coordinator() {
  // Quiesce while the vtable still points here: the base destructor would
  // otherwise run queued requests against a half-destroyed coordinator.
  stop();
  wait();
}

void coordinator::start() {
  for (const auto& w : links_) {
    std::lock_guard lk(w->mu);
    w->cli.connect(w->endpoint);
    const frame pong = w->cli.request(msg_type::ping, 0);
    if (!client::ok(pong)) {
      throw std::runtime_error("worker " + w->endpoint + " ping: " + client::status_line(pong));
    }
    std::ostringstream os;
    os << w->index << ' ' << links_.size() << ' ' << w->band.x_min << ' ' << w->band.y_min
       << ' ' << w->band.x_max << ' ' << w->band.y_max;
    const frame resp = w->cli.request(msg_type::shard, 0, os.str());
    if (!client::ok(resp)) {
      throw std::runtime_error("worker " + w->endpoint +
                               " shard: " + client::status_line(resp));
    }
  }
  server::start();
}

coordinator::leg_result coordinator::run_leg(worker_link& w, msg_type t, std::uint32_t session,
                                             const std::string& payload, bool gate) {
  leg_result out;
  std::lock_guard lk(w.mu);
  try {
    if (gate) {
      bool admitted = false;
      for (std::size_t attempt = 0; attempt <= ccfg_.admission_retries; ++attempt) {
        if (attempt > 0) {
          w.delayed.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(ccfg_.backoff_ms * attempt));
        }
        const frame h = w.cli.request(msg_type::health, 0);
        if (client::ok(h)) {
          const std::string line = client::status_line(h);
          const std::size_t load = static_cast<std::size_t>(status_field(line, "depth") +
                                                            status_field(line, "inflight"));
          w.last_depth.store(load);
          if (load <= ccfg_.max_worker_depth) {
            admitted = true;
            break;
          }
        }
        // "error busy" (or a too-deep queue): the worker itself is shedding.
      }
      if (!admitted) {
        w.shed.fetch_add(1);
        trace::counter("coord", "legs_shed", static_cast<std::int64_t>(w.shed.load()));
        out.busy = true;
        out.error = "busy shard " + std::to_string(w.index);
        return out;
      }
    }
    const frame resp = w.cli.request(t, session, payload);
    w.legs.fetch_add(1);
    if (!client::ok(resp)) {
      const std::string line = client::status_line(resp);
      out.busy = line.rfind("error busy", 0) == 0;
      out.error = "shard " + std::to_string(w.index) + ": " + line;
      return out;
    }
    out.ok = true;
    out.payload = resp.payload;
    return out;
  } catch (const std::exception& e) {
    w.failures.fetch_add(1);
    w.healthy.store(false);
    out.error = "shard " + std::to_string(w.index) + " (" + w.endpoint + "): " + e.what();
    return out;
  }
}

std::vector<coordinator::leg_result> coordinator::scatter(msg_type t, std::uint32_t session,
                                                          const std::string& payload, bool gate,
                                                          const std::vector<bool>* pick) {
  trace::span ts("coord", "scatter", "type", static_cast<std::int64_t>(t), "legs",
                 static_cast<std::int64_t>(links_.size()));
  std::vector<leg_result> results(links_.size());
  // One plain thread per leg: scatter legs block on worker I/O, and nesting
  // them into thread_pool::global() could deadlock the pool the request
  // handler itself runs on (ODRC_WORKERS=1).
  std::vector<std::thread> threads;
  threads.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (pick != nullptr && !(*pick)[i]) {
      results[i].error = "skipped";
      continue;
    }
    threads.emplace_back([this, &results, i, t, session, &payload, gate] {
      results[i] = run_leg(*links_[i], t, session, payload, gate);
    });
  }
  for (std::thread& th : threads) th.join();
  return results;
}

std::string coordinator::do_check(const frame& f) {
  const bool want_keys = f.payload.find("keys") != std::string::npos;
  std::lock_guard sc(scatter_mu_);
  // Baseline for the subscribers' delta: the reconciled key set before this
  // check rebuilds the ownership map.
  const std::vector<std::string> baseline = current_keys();
  const std::vector<leg_result> legs = scatter(msg_type::check, f.header.session, "keys", true);

  // Rebuild ownership per succeeded worker even when a sibling failed: each
  // worker's report is the truth about its own band.
  std::string first_error;
  {
    std::lock_guard lk(keys_mu_);
    for (std::size_t i = 0; i < legs.size(); ++i) {
      if (!legs[i].ok) {
        if (first_error.empty()) first_error = legs[i].error;
        continue;
      }
      const std::uint64_t bit = 1ull << i;
      for (auto it = key_mask_.begin(); it != key_mask_.end();) {
        it->second &= ~bit;
        it = it->second == 0 ? key_mask_.erase(it) : std::next(it);
      }
      for (const std::string& k : tagged_lines(legs[i].payload, "v")) key_mask_[k] |= bit;
    }
  }
  if (!first_error.empty()) return "error " + first_error;

  const std::vector<std::string> keys = current_keys();
  {
    std::lock_guard lk(keys_mu_);
    last_diff_ = report::key_diff{};
  }
  // Subscribers still get a delta for the check (diffed against the previous
  // reconciled key set) so their reconstructed view never silently shifts
  // baseline; scatter_mu_ orders it against neighboring rechecks. The `diff`
  // verb keeps its meaning — "the last RECHECK's diff" — unchanged.
  const std::uint32_t sid = f.header.session == 0 ? 1 : f.header.session;
  subs_.publish(sid, report::diff_keys(baseline, keys));
  return summarize_keys(keys, want_keys);
}

std::string coordinator::do_check_region(const frame& f) {
  std::istringstream args(f.payload);
  rect w;
  if (!(args >> w.x_min >> w.y_min >> w.x_max >> w.y_max) || w.empty()) {
    throw std::runtime_error("check_region expects 'x1 y1 x2 y2'");
  }
  std::string flag;
  args >> flag;
  const bool want_keys = flag == "keys";

  std::vector<bool> pick(links_.size(), false);
  bool any = false;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    pick[i] = links_[i]->band.overlaps(w);
    any = any || pick[i];
  }
  if (!any) return "ok total 0";

  std::vector<leg_result> legs;
  {
    // Hold scatter_mu_ across the scatter so an edit/recheck broadcast
    // cannot land between legs — otherwise some workers would answer
    // pre-edit and others post-edit, and the union would describe a fleet
    // state that never existed.
    std::lock_guard sc(scatter_mu_);
    legs = scatter(msg_type::check_region, f.header.session,
                   f.payload + (want_keys ? "" : " keys"), true, &pick);
  }
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    if (!pick[i]) continue;
    if (!legs[i].ok) return "error " + legs[i].error;
    const std::vector<std::string> ks = tagged_lines(legs[i].payload, "v");
    keys.insert(keys.end(), ks.begin(), ks.end());
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());  // seam dedup
  return summarize_keys(keys, want_keys);
}

std::string coordinator::do_edit(const frame& f) {
  std::lock_guard sc(scatter_mu_);
  // Never gated: a shed edit would fork the replicas.
  const std::vector<leg_result> legs = scatter(msg_type::edit, f.header.session, f.payload, false);
  for (const leg_result& r : legs) {
    if (!r.ok) return "error " + r.error;
  }
  return first_line(legs.front().payload);  // replicas answer identically
}

std::string coordinator::do_recheck(const frame& f) {
  const bool want_keys = f.payload.find("keys") != std::string::npos;
  std::lock_guard sc(scatter_mu_);
  const std::vector<leg_result> legs =
      scatter(msg_type::recheck, f.header.session, "keys", true);

  std::vector<std::string> fixed, introduced;
  std::uint64_t windows = 0, purged = 0, inserted = 0;
  bool full = false;
  std::string first_error;
  {
    std::lock_guard lk(keys_mu_);
    for (std::size_t i = 0; i < legs.size(); ++i) {
      if (!legs[i].ok) {
        if (first_error.empty()) first_error = legs[i].error;
        continue;
      }
      const std::uint64_t bit = 1ull << i;
      const std::string status = first_line(legs[i].payload);
      windows += status_field(status, "windows");
      purged += status_field(status, "purged");
      inserted += status_field(status, "inserted");
      full = full || status_field(status, "full") != 0;
      // A key is globally fixed when its LAST owner drops it, globally new
      // when its FIRST owner reports it.
      for (const std::string& k : tagged_lines(legs[i].payload, "fixed")) {
        auto it = key_mask_.find(k);
        if (it == key_mask_.end()) continue;
        it->second &= ~bit;
        if (it->second == 0) {
          key_mask_.erase(it);
          fixed.push_back(k);
        }
      }
      for (const std::string& k : tagged_lines(legs[i].payload, "new")) {
        std::uint64_t& mask = key_mask_[k];
        if (mask == 0) introduced.push_back(k);
        mask |= bit;
      }
    }
    std::sort(fixed.begin(), fixed.end());
    std::sort(introduced.begin(), introduced.end());
    last_diff_.fixed = fixed;
    last_diff_.introduced = introduced;
    last_diff_.unchanged.clear();
    for (const auto& [k, mask] : key_mask_) {
      (void)mask;
      if (!std::binary_search(introduced.begin(), introduced.end(), k)) {
        last_diff_.unchanged.push_back(k);
      }
    }
    std::sort(last_diff_.unchanged.begin(), last_diff_.unchanged.end());
  }
  if (!first_error.empty()) return "error " + first_error;

  // One deduplicated delta per recheck: seam straddlers enter `fixed`/
  // `introduced` only on the last-owner-drops / first-owner-reports edge of
  // the bitmask reconciliation above, so a coordinator subscriber never sees
  // a key twice for one fleet recheck.
  {
    const std::uint32_t sid = f.header.session == 0 ? 1 : f.header.session;
    report::key_diff d;
    d.fixed = fixed;
    d.introduced = introduced;
    subs_.publish(sid, d);
  }

  std::ostringstream os;
  os << "ok fixed " << fixed.size() << " new " << introduced.size() << " unchanged "
     << last_diff_.unchanged.size() << " windows " << windows << " purged " << purged
     << " inserted " << inserted << " full " << (full ? 1 : 0);
  if (want_keys) {
    for (const std::string& k : fixed) os << "\nfixed " << k;
    for (const std::string& k : introduced) os << "\nnew " << k;
  }
  return os.str();
}

std::string coordinator::do_query(const frame& f) {
  std::istringstream args(f.payload);
  rect w;
  if (!(args >> w.x_min >> w.y_min >> w.x_max >> w.y_max) || w.empty()) {
    throw std::runtime_error("query expects 'x1 y1 x2 y2 [keys]' with x1<=x2, y1<=y2");
  }
  std::string flag;
  args >> flag;
  const bool want_keys = flag == "keys";

  // EVERY worker, not just the bands overlapping the window: an entry is
  // stored where an offending EDGE touches the band, but its marker box (the
  // joined MBR of both edges) can overlap a window the band itself misses.
  // Ungated — a stored-index lookup costs the worker almost nothing.
  std::vector<leg_result> legs;
  {
    std::lock_guard sc(scatter_mu_);
    legs = scatter(msg_type::query, f.header.session,
                   f.payload + (want_keys ? "" : " keys"), false);
  }
  std::vector<std::string> keys;
  for (const leg_result& leg : legs) {
    if (!leg.ok) return "error " + leg.error;
    const std::vector<std::string> ks = tagged_lines(leg.payload, "v");
    keys.insert(keys.end(), ks.begin(), ks.end());
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());  // seam dedup
  return summarize_keys(keys, want_keys);
}

std::string coordinator::do_broadcast_status(const frame& f) {
  std::lock_guard sc(scatter_mu_);
  const std::vector<leg_result> legs =
      scatter(static_cast<msg_type>(f.header.type), f.header.session, f.payload, false);
  for (const leg_result& r : legs) {
    if (!r.ok) return "error " + r.error;
  }
  return first_line(legs.front().payload);
}

std::string coordinator::dispatch(const frame& f) {
  switch (static_cast<msg_type>(f.header.type)) {
    case msg_type::check: return do_check(f);
    case msg_type::check_region: return do_check_region(f);
    case msg_type::query: return do_query(f);
    case msg_type::edit: return do_edit(f);
    case msg_type::recheck: return do_recheck(f);
    case msg_type::reload: return do_broadcast_status(f);
    case msg_type::diff: {
      std::lock_guard lk(keys_mu_);
      std::ostringstream os;
      os << "ok fixed " << last_diff_.fixed.size() << " new " << last_diff_.introduced.size()
         << " unchanged " << last_diff_.unchanged.size();
      for (const std::string& k : last_diff_.fixed) os << "\nfixed " << k;
      for (const std::string& k : last_diff_.introduced) os << "\nnew " << k;
      return os.str();
    }
    case msg_type::stats: {
      std::string base = server::dispatch(f);
      std::ostringstream os;
      os << base;
      std::size_t i = 0;
      for (const worker_link_stats& w : worker_stats()) {
        os << "\nshard " << i++ << " endpoint " << w.endpoint << " band " << w.band.y_min << ' '
           << w.band.y_max << " legs " << w.legs << " shed " << w.shed << " delayed "
           << w.delayed << " failures " << w.failures << " depth " << w.last_depth
           << " healthy " << (w.healthy ? 1 : 0);
      }
      return os.str();
    }
    case msg_type::shutdown: {
      if (ccfg_.forward_shutdown) {
        std::lock_guard sc(scatter_mu_);
        (void)scatter(msg_type::shutdown, 0, {}, false);
      }
      return "ok shutting down";  // base handle() stops us after responding
    }
    case msg_type::ping:
    case msg_type::health: return server::dispatch(f);
    case msg_type::open:
    case msg_type::close:
    case msg_type::shard:
      throw std::runtime_error(std::string(msg_type_name(f.header.type)) +
                               " is not a coordinator verb");
    default: break;
  }
  throw std::runtime_error("unknown request type " + msg_type_display(f.header.type));
}

std::vector<worker_link_stats> coordinator::worker_stats() const {
  std::vector<worker_link_stats> out;
  out.reserve(links_.size());
  for (const auto& w : links_) {
    worker_link_stats s;
    s.endpoint = w->endpoint;
    s.band = w->band;
    s.legs = w->legs.load();
    s.shed = w->shed.load();
    s.delayed = w->delayed.load();
    s.failures = w->failures.load();
    s.last_depth = w->last_depth.load();
    s.healthy = w->healthy.load();
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> coordinator::current_keys() const {
  std::lock_guard lk(keys_mu_);
  std::vector<std::string> keys;
  keys.reserve(key_mask_.size());
  for (const auto& [k, mask] : key_mask_) {
    (void)mask;
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace odrc::serve
