// Cluster coordinator of odrc::serve (DESIGN.md §10).
//
// A coordinator is a server whose verb table scatters to a fleet of ordinary
// serve workers instead of running checks itself. Each worker owns one
// horizontal band of the layout (engine/shard.hpp plans the bands; the
// `shard` verb hands the assignment over) and keeps a full copy of the
// library, so edits broadcast and checks scatter. Violations whose edges
// straddle a band seam are found by every adjacent worker; the coordinator
// reconciles them with a key -> owner-bitmask map (violation_db keys are
// content-addressed, so the same geometric violation has the same key on
// every worker) and reports each exactly once.
//
// Incremental rechecks reconcile by bitmask update: a worker reporting a key
// "fixed" clears its bit — the violation is globally fixed only when the last
// owner drops it; a key reported "new" is globally new only when no other
// worker already owned it.
//
// Backpressure: before a scatter leg for a check-class verb, the coordinator
// probes the worker's `health` (admission queue depth + in-flight workers).
// An overloaded leg is delayed with backoff and finally shed — the client
// sees "error busy" instead of the fleet queueing unboundedly. Edit-class
// verbs are never shed: dropping an edit on one worker would fork the
// replicas.
//
// The coordinator reuses the whole server socket machinery (accept/reader/
// queue/lifecycle) by overriding only dispatch(); it listens on the same
// transports (unix/tcp) workers do, so tiers can be stacked.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "report/violation_db.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace odrc::serve {

namespace detail {
/// Base-from-member holder: the coordinator has no local sessions, but the
/// server base wants a session_manager&; this base is initialized first.
struct sessions_holder {
  session_manager sessions;
};
}  // namespace detail

struct coord_config {
  server_config listen;  ///< the coordinator's own endpoint/queue/workers
  std::vector<std::string> worker_endpoints;
  std::vector<rect> bands;  ///< parallel to worker_endpoints; plane-tiling

  /// Admission gate: shed a check-class scatter leg when the worker's
  /// queue depth + in-flight count exceeds this.
  std::size_t max_worker_depth = 64;
  std::size_t admission_retries = 3;  ///< delays before shedding
  std::size_t backoff_ms = 10;        ///< base delay, scaled by attempt
  bool forward_shutdown = true;       ///< `shutdown` also stops the workers
};

/// Per-worker link counters (stats verb, tests).
struct worker_link_stats {
  std::string endpoint;
  rect band;
  std::uint64_t legs = 0;      ///< scatter legs completed
  std::uint64_t shed = 0;      ///< legs dropped by the admission gate
  std::uint64_t delayed = 0;   ///< admission backoff rounds
  std::uint64_t failures = 0;  ///< transport failures (worker died, ...)
  std::size_t last_depth = 0;  ///< last health-probe queue depth + inflight
  bool healthy = true;
};

class coordinator : private detail::sessions_holder, public server {
 public:
  explicit coordinator(coord_config cfg);
  ~coordinator() override;

  /// Connect every worker link, push the shard assignments, then start the
  /// listening server. Throws when a worker is unreachable or rejects its
  /// shard.
  void start() override;

  [[nodiscard]] std::vector<worker_link_stats> worker_stats() const;

  /// Sorted reconciled violation keys (after the last check/recheck).
  [[nodiscard]] std::vector<std::string> current_keys() const;

 protected:
  std::string dispatch(const frame& f) override;

 private:
  struct worker_link {
    std::string endpoint;
    rect band;
    std::uint32_t index = 0;
    std::mutex mu;  ///< serializes the synchronous client
    client cli;
    std::atomic<std::uint64_t> legs{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> delayed{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::size_t> last_depth{0};
    std::atomic<bool> healthy{true};
  };

  struct leg_result {
    bool ok = false;
    bool busy = false;
    std::string payload;  ///< worker response payload when ok
    std::string error;    ///< message otherwise
  };

  /// One scatter leg: optional admission gate, then the request, with all
  /// failure accounting. Serializes on the link's mutex.
  leg_result run_leg(worker_link& w, msg_type t, std::uint32_t session,
                     const std::string& payload, bool gate);

  /// Scatter `t` to the links selected by `pick` (null = all), one thread
  /// per leg, and gather. Results align with links_ (unpicked legs are
  /// default leg_result with ok=false, error="skipped").
  std::vector<leg_result> scatter(msg_type t, std::uint32_t session, const std::string& payload,
                                  bool gate, const std::vector<bool>* pick = nullptr);

  std::string do_check(const frame& f);
  std::string do_check_region(const frame& f);
  std::string do_query(const frame& f);  ///< stored-violation fan-in (all bands)
  std::string do_edit(const frame& f);
  std::string do_recheck(const frame& f);
  std::string do_broadcast_status(const frame& f);  ///< reload: first ok line

  coord_config ccfg_;
  std::vector<std::unique_ptr<worker_link>> links_;

  /// Serializes mutating verbs (check/edit/recheck/reload): the fleet's
  /// replicas move through the same state sequence.
  std::mutex scatter_mu_;

  mutable std::mutex keys_mu_;
  /// Reconciliation state: violation key -> bitmask of owning shards.
  std::unordered_map<std::string, std::uint64_t> key_mask_;
  report::key_diff last_diff_;
};

}  // namespace odrc::serve
