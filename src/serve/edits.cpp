#include "serve/edits.hpp"

#include <sstream>
#include <stdexcept>

namespace odrc::serve {

namespace {

using db::cell_id;

// reaches[c] == 1 iff cell c contains target (transitively), including
// c == target. Computed in topological order (children before referencers),
// so one pass suffices.
std::vector<char> reach_set(const db::library& lib, cell_id target) {
  std::vector<char> reaches(lib.cell_count(), 0);
  reaches[target] = 1;
  for (cell_id id : lib.topological_order()) {
    if (reaches[id]) continue;
    const db::cell& c = lib.at(id);
    for (const db::cell_ref& r : c.refs()) {
      if (reaches[r.target]) {
        reaches[id] = 1;
        break;
      }
    }
    if (reaches[id]) continue;
    for (const db::cell_array& a : c.arrays()) {
      if (reaches[a.target]) {
        reaches[id] = 1;
        break;
      }
    }
  }
  return reaches;
}

void placements_rec(const db::library& lib, cell_id cur, cell_id target, const transform& to_top,
                    const std::vector<char>& reaches, std::vector<transform>& out) {
  if (cur == target) {
    out.push_back(to_top);
    return;  // a DAG: target cannot contain itself
  }
  const db::cell& c = lib.at(cur);
  for (const db::cell_ref& r : c.refs()) {
    if (reaches[r.target]) placements_rec(lib, r.target, target, to_top.compose(r.trans), reaches, out);
  }
  for (const db::cell_array& a : c.arrays()) {
    if (!reaches[a.target]) continue;
    for (std::uint16_t rr = 0; rr < a.rows; ++rr) {
      for (std::uint16_t cc = 0; cc < a.cols; ++cc) {
        placements_rec(lib, a.target, target, to_top.compose(a.instance(cc, rr)), reaches, out);
      }
    }
  }
}

// Covering images of `local` (a rect in `target` coordinates) under every
// placement of `target` below `cur`. Arrays are covered by the join of the
// four corner-instance images: instances of one array differ by pure
// translations, and rotations are quantized to 90° multiples, so the
// bounding box of the corner images bounds the union of all instances.
void cover_rec(const db::library& lib, cell_id cur, cell_id target, const transform& to_top,
               const rect& local, const std::vector<char>& reaches, std::vector<rect>& out) {
  if (cur == target) {
    out.push_back(to_top.apply(local));
    return;
  }
  const db::cell& c = lib.at(cur);
  for (const db::cell_ref& r : c.refs()) {
    if (reaches[r.target]) {
      cover_rec(lib, r.target, target, to_top.compose(r.trans), local, reaches, out);
    }
  }
  for (const db::cell_array& a : c.arrays()) {
    if (!reaches[a.target]) continue;
    const std::uint16_t cmax = static_cast<std::uint16_t>(a.cols - 1);
    const std::uint16_t rmax = static_cast<std::uint16_t>(a.rows - 1);
    std::vector<rect> tmp;
    for (const auto& [cc, rr] : {std::pair{std::uint16_t{0}, std::uint16_t{0}},
                                std::pair{cmax, std::uint16_t{0}},
                                std::pair{std::uint16_t{0}, rmax},
                                std::pair{cmax, rmax}}) {
      cover_rec(lib, a.target, target, to_top.compose(a.instance(cc, rr)), local, reaches, tmp);
    }
    rect j;
    for (const rect& r : tmp) j = j.join(r);
    if (!j.empty()) out.push_back(j);
  }
}

// Map a dirty rect from `frame` coordinates to every top's coordinates.
void map_to_tops(const db::library& lib, cell_id frame, const rect& local,
                 std::vector<rect>& out) {
  if (local.empty()) return;
  const std::vector<char> reaches = reach_set(lib, frame);
  for (const cell_id top : lib.top_cells()) {
    if (!reaches[top]) continue;
    cover_rec(lib, top, frame, transform{}, local, reaches, out);
  }
}

// Absolute polygon index of the `n`-th polygon of `cell` on `layer`.
std::size_t resolve_layer_poly(const db::cell& c, db::layer_t layer, std::size_t n,
                               const std::string& where) {
  std::size_t seen = 0;
  for (std::size_t i = 0; i < c.polygons().size(); ++i) {
    if (c.polygons()[i].layer != layer) continue;
    if (seen == n) return i;
    ++seen;
  }
  throw std::runtime_error(where + ": cell '" + c.name() + "' has only " +
                           std::to_string(seen) + " polygons on layer " + std::to_string(layer));
}

bool has_layer_poly(const db::cell& c, db::layer_t layer) {
  for (const db::polygon_elem& p : c.polygons()) {
    if (p.layer == layer) return true;
  }
  return false;
}

cell_id resolve_cell(const db::library& lib, const std::string& name, const std::string& where) {
  const auto id = lib.find(name);
  if (!id) throw std::runtime_error(where + ": unknown cell '" + name + "'");
  return *id;
}

}  // namespace

std::vector<transform> placements_of(const db::library& lib, db::cell_id top,
                                     db::cell_id target) {
  std::vector<transform> out;
  const std::vector<char> reaches = reach_set(lib, target);
  if (reaches[top]) placements_rec(lib, top, target, transform{}, reaches, out);
  return out;
}

std::vector<edit_op> parse_edit_script(const std::string& text) {
  std::vector<edit_op> ops;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string verb;
    ls >> verb;
    edit_op op;
    const std::string where = "edit line " + std::to_string(line_no);
    auto need = [&](bool ok) {
      if (!ok) throw std::runtime_error(where + ": malformed '" + verb + "': " + line);
    };
    if (verb == "add_poly") {
      op.kind = edit_op::op_kind::add_poly;
      int layer = 0;
      need(static_cast<bool>(ls >> op.cell >> layer >> op.box.x_min >> op.box.y_min >>
                             op.box.x_max >> op.box.y_max));
      need(op.box.x_min <= op.box.x_max && op.box.y_min <= op.box.y_max);
      op.layer = static_cast<db::layer_t>(layer);
    } else if (verb == "remove_poly") {
      op.kind = edit_op::op_kind::remove_poly;
      int layer = 0;
      need(static_cast<bool>(ls >> op.cell >> layer >> op.index));
      op.layer = static_cast<db::layer_t>(layer);
    } else if (verb == "move_poly") {
      op.kind = edit_op::op_kind::move_poly;
      int layer = 0;
      need(static_cast<bool>(ls >> op.cell >> layer >> op.index >> op.delta.x >> op.delta.y));
      op.layer = static_cast<db::layer_t>(layer);
    } else if (verb == "add_inst") {
      op.kind = edit_op::op_kind::add_inst;
      need(static_cast<bool>(ls >> op.cell >> op.child >> op.at.x >> op.at.y));
      int rot = 0, refl = 0;
      if (ls >> rot) {
        need(rot >= 0 && rot <= 3);
        op.rotation = static_cast<std::uint16_t>(rot);
        if (ls >> refl) op.reflect = refl != 0;
      }
    } else if (verb == "remove_inst") {
      op.kind = edit_op::op_kind::remove_inst;
      need(static_cast<bool>(ls >> op.cell >> op.index));
    } else if (verb == "move_inst") {
      op.kind = edit_op::op_kind::move_inst;
      need(static_cast<bool>(ls >> op.cell >> op.index >> op.delta.x >> op.delta.y));
    } else {
      throw std::runtime_error(where + ": unknown edit verb '" + verb + "'");
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

edit_result apply_edits(db::library& lib, engine::layout_snapshot& snap,
                        std::span<const edit_op> ops) {
  edit_result res;
  const std::vector<cell_id> tops_before = lib.top_cells();
  for (const edit_op& op : ops) {
    const std::string where = std::string("apply ") + op.cell;
    const cell_id id = resolve_cell(lib, op.cell, where);
    db::cell& c = lib.at(id);
    rect local;  // dirty rect in the edited/parent cell's frame

    switch (op.kind) {
      case edit_op::op_kind::add_poly: {
        const bool had_layer = has_layer_poly(c, op.layer);
        c.add_rect(op.layer, op.box);
        local = op.box;
        if (!had_layer) res.instances_changed = true;  // layer emptiness flip
        snap.invalidate_master(id);
        break;
      }
      case edit_op::op_kind::remove_poly: {
        const std::size_t pi = resolve_layer_poly(c, op.layer, op.index, where);
        local = c.polygons()[pi].poly.mbr();
        c.remove_polygon(pi);
        if (!has_layer_poly(c, op.layer)) res.instances_changed = true;
        snap.invalidate_master(id);
        break;
      }
      case edit_op::op_kind::move_poly: {
        const std::size_t pi = resolve_layer_poly(c, op.layer, op.index, where);
        db::polygon_elem& p = c.polygon_at(pi);
        const rect old_mbr = p.poly.mbr();
        transform shift;
        shift.offset = op.delta;
        p.poly = p.poly.transformed(shift);
        local = old_mbr.join(p.poly.mbr());
        snap.invalidate_master(id);
        break;
      }
      case edit_op::op_kind::add_inst: {
        const cell_id child = resolve_cell(lib, op.child, where);
        // Reject cycles before topological_order() would throw deep inside
        // the next check.
        if (reach_set(lib, id)[child]) {
          throw std::runtime_error(where + ": add_inst of '" + op.child +
                                   "' would create a reference cycle");
        }
        db::cell_ref r;
        r.target = child;
        r.trans.offset = op.at;
        r.trans.rotation = op.rotation;
        r.trans.reflect_x = op.reflect;
        local = r.trans.apply(snap.index().cell_mbr(child));
        c.add_ref(r);
        res.instances_changed = true;
        snap.invalidate_master(id);
        break;
      }
      case edit_op::op_kind::remove_inst: {
        if (op.index >= c.refs().size()) {
          throw std::runtime_error(where + ": ref index " + std::to_string(op.index) +
                                   " out of range");
        }
        const db::cell_ref r = c.refs()[op.index];
        local = r.trans.apply(snap.index().cell_mbr(r.target));
        c.remove_ref(op.index);
        res.instances_changed = true;
        snap.invalidate_master(id);
        break;
      }
      case edit_op::op_kind::move_inst: {
        if (op.index >= c.refs().size()) {
          throw std::runtime_error(where + ": ref index " + std::to_string(op.index) +
                                   " out of range");
        }
        db::cell_ref& r = c.ref_at(op.index);
        const rect child_mbr = snap.index().cell_mbr(r.target);
        const rect old_img = r.trans.apply(child_mbr);
        r.trans.offset.x = static_cast<coord_t>(r.trans.offset.x + op.delta.x);
        r.trans.offset.y = static_cast<coord_t>(r.trans.offset.y + op.delta.y);
        local = old_img.join(r.trans.apply(child_mbr));
        res.instances_changed = true;
        snap.invalidate_master(id);
        break;
      }
    }

    map_to_tops(lib, id, local, res.dirty);
    ++res.applied;
  }
  if (res.instances_changed) snap.invalidate_instances();
  res.tops_changed = lib.top_cells() != tops_before;
  return res;
}

}  // namespace odrc::serve
