// Edit + dirty-region layer of odrc::serve (DESIGN.md §8).
//
// An edit script is line-oriented text (the `edit` request payload):
//
//   add_poly    <cell> <layer> <x1> <y1> <x2> <y2>   # axis-aligned rect
//   remove_poly <cell> <layer> <index>               # index within the layer
//   move_poly   <cell> <layer> <index> <dx> <dy>
//   add_inst    <parent> <child> <x> <y> [rot] [reflect]
//   remove_inst <parent> <index>                     # index into refs()
//   move_inst   <parent> <index> <dx> <dy>
//   # comment lines and blank lines are skipped
//
// apply_edits mutates the library in place, invalidates exactly the affected
// snapshot entries (layer views + packed edges of the edited master via
// invalidate_master -> partial mbr_index::update_cell; the flat-instance
// memo only when placements or per-layer emptiness changed), and returns
// top-coordinate dirty rects covering old ∪ new extents of every edit,
// mapped through EVERY placement of the edited cell (arrays covered by the
// corner-instance join — array steps are pure translations, so the four
// corner images bound the union). The incremental scheduler (session.hpp)
// expands these rects by each rule's halo and rechecks only there.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "db/layout.hpp"
#include "engine/snapshot.hpp"
#include "infra/geometry.hpp"

namespace odrc::serve {

struct edit_op {
  enum class op_kind : std::uint8_t {
    add_poly,
    remove_poly,
    move_poly,
    add_inst,
    remove_inst,
    move_inst,
  };

  op_kind kind = op_kind::add_poly;
  std::string cell;   ///< edited cell (parent for *_inst ops)
  std::string child;  ///< add_inst: referenced master
  db::layer_t layer = 0;
  std::size_t index = 0;  ///< remove/move target: layer-local polygon index
                          ///< for *_poly, refs() index for *_inst
  rect box;               ///< add_poly rectangle
  point delta{};          ///< move_* displacement
  point at{};             ///< add_inst placement offset
  std::uint16_t rotation = 0;  ///< add_inst, degrees/90
  bool reflect = false;        ///< add_inst
};

/// Parse an edit script. Throws std::runtime_error naming the line on any
/// malformed input; a parse failure applies nothing.
[[nodiscard]] std::vector<edit_op> parse_edit_script(const std::string& text);

struct edit_result {
  std::vector<rect> dirty;  ///< top-coordinate covering rects, unmerged
  std::size_t applied = 0;
  bool instances_changed = false;  ///< placements or layer emptiness changed
  /// The set of top cells changed (a removed last reference promotes a cell
  /// to top; an added reference demotes one). Violations of a whole top
  /// context appear/vanish — not locally incremental, the session must fall
  /// back to a full recheck.
  bool tops_changed = false;
};

/// Apply `ops` in order to `lib`, invalidating `snap` as described above.
/// Throws std::runtime_error on an unknown cell/child name, an out-of-range
/// index, or an add_inst that would create a reference cycle; ops before the
/// failing one stay applied (the session treats a failed script as poisoning
/// the session until the next full check).
[[nodiscard]] edit_result apply_edits(db::library& lib, engine::layout_snapshot& snap,
                                      std::span<const edit_op> ops);

/// All placements of `target` under `top` in top coordinates; identity when
/// `target == top`. Arrays contribute every instance. Exposed for tests.
[[nodiscard]] std::vector<transform> placements_of(const db::library& lib, db::cell_id top,
                                                   db::cell_id target);

}  // namespace odrc::serve
