// Synchronous client for the odrc::serve protocol: connect to the server's
// endpoint ("unix:/path", a bare path, or "tcp:host:port" —
// serve/transport.hpp), send one request frame, block for the matching
// response (seq echo). The CLI's `odrc client` verbs, the coordinator's
// worker links, and the e2e tests are built on it; the framing edge-case
// tests drive raw fds instead.
//
// Full duplex: after `subscribe`, server-initiated `delta` frames arrive
// interleaved with responses. request() recognizes them by the missing
// response_bit and stashes them; poll_push()/wait_push() hand them out in
// arrival order, so a caller can pump requests and consume pushes on one
// connection without a second thread.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace odrc::serve {

class client {
 public:
  client() = default;
  ~client();

  client(const client&) = delete;
  client& operator=(const client&) = delete;

  /// Connect to a transport endpoint spec. Throws std::runtime_error on
  /// failure.
  void connect(const std::string& endpoint);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Send a request, block for its response. Throws std::runtime_error on
  /// I/O failure (connection closed mid-request) and protocol_error on a
  /// malformed response stream. Pushed `delta` frames read while waiting are
  /// stashed for poll_push()/wait_push(), never lost.
  frame request(msg_type type, std::uint32_t session, const std::string& payload = {});

  /// Next pushed frame if one is already stashed or readable without
  /// blocking; nullopt otherwise.
  [[nodiscard]] std::optional<frame> poll_push();

  /// Block up to `timeout_ms` (< 0 = forever) for a pushed frame. nullopt on
  /// timeout or connection close.
  [[nodiscard]] std::optional<frame> wait_push(int timeout_ms);

  void close();

  /// First line of a response payload.
  [[nodiscard]] static std::string status_line(const frame& resp);

  /// True when the response's status line starts with "ok".
  [[nodiscard]] static bool ok(const frame& resp);

 private:
  int fd_ = -1;
  std::uint16_t next_seq_ = 1;
  std::deque<frame> pushed_;  ///< deltas read while waiting for a response
};

}  // namespace odrc::serve
