#include "sweep/device_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "checks/edge_checks.hpp"
#include "device/device.hpp"
#include "infra/simd.hpp"
#include "infra/trace.hpp"

namespace odrc::sweep {

namespace {

/// Violation record produced on the device: indices into the uploaded edge
/// array, the measured quantity, and the index of the config whose predicate
/// fired (0 for single-predicate checks). Converted host-side.
struct hit {
  std::uint32_t i;
  std::uint32_t j;
  area_t measured;
  std::uint32_t rule;
};

/// Device-side output cursor + pair counter, placed in the device arena.
struct cursor_block {
  std::atomic<std::uint32_t> count;
  std::atomic<std::uint64_t> pairs;
  std::atomic<std::uint64_t> lanes;  ///< simd:lanes_active (filter survivors)
};

/// Per-device-thread violation emission batch (DESIGN.md §11): hits collect
/// into a local buffer and materialize into the shared output through ONE
/// atomic reservation per flush, instead of an atomic fetch_add plus a
/// capacity branch inside the innermost pair loop. The global count still
/// ends up equal to the total number of hits found (even past capacity), so
/// the host's overflow-retry protocol is unchanged.
struct emit_batch {
  static constexpr std::uint32_t local_cap = 64;
  hit buf[local_cap];
  std::uint32_t n = 0;

  void push(const hit& h, cursor_block* cur, hit* out, std::uint32_t out_cap) {
    buf[n++] = h;
    if (n == local_cap) flush(cur, out, out_cap);
  }

  void flush(cursor_block* cur, hit* out, std::uint32_t out_cap) {
    if (n == 0) return;
    const std::uint32_t base = cur->count.fetch_add(n, std::memory_order_relaxed);
    const std::uint32_t lim = base < out_cap ? std::min(n, out_cap - base) : 0;
    for (std::uint32_t k = 0; k < lim; ++k) out[base + k] = buf[k];
    n = 0;
  }
};

/// Sound per-edge candidate window: a pair can only violate when the boxes
/// are within the batch's max rule distance along BOTH axes (projected and
/// Euclidean separations are each bounded below by the per-axis box gaps),
/// so filtering on the closed inflated window never drops a violation.
simd::filter_bounds edge_bounds(const simd::edge_soa& soa, std::uint32_t i, coord_t dist) {
  return simd::make_bounds(soa.x_lo[i], soa.x_hi[i], soa.y_lo[i], soa.y_hi[i], dist);
}

/// Evaluate one config's predicate on a candidate pair. Returns the measured
/// quantity when violating.
std::optional<area_t> eval_pair(const packed_edge& a, const packed_edge& b,
                                const device_check_config& cfg) {
  switch (cfg.kind) {
    case pair_check::width: {
      if (a.poly != b.poly || a.group != 0 || b.group != 0) return std::nullopt;
      if (auto d = checks::check_width_pair(a.to_edge(), b.to_edge(), cfg.distance)) {
        return static_cast<area_t>(*d) * *d;
      }
      return std::nullopt;
    }
    case pair_check::spacing: {
      if (a.group != 0 || b.group != 0) return std::nullopt;
      const checks::spacing_table table =
          cfg.table.count > 0 ? cfg.table : checks::spacing_table::simple(cfg.distance);
      return checks::check_space_pair_table(a.to_edge(), b.to_edge(), a.poly == b.poly, table);
    }
    case pair_check::enclosure: {
      // Ordered: inner = group 0, outer = group 1.
      const packed_edge* inner = nullptr;
      const packed_edge* outer = nullptr;
      if (a.group == 0 && b.group == 1) {
        inner = &a;
        outer = &b;
      } else if (a.group == 1 && b.group == 0) {
        inner = &b;
        outer = &a;
      } else {
        return std::nullopt;
      }
      if (auto m =
              checks::check_enclosure_pair(inner->to_edge(), outer->to_edge(), cfg.distance)) {
        return static_cast<area_t>(*m) * *m;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// Convert device hits to violation records using the host copy of the
/// uploaded edges, demultiplexed per config.
void convert_hits(std::span<const packed_edge> edges, std::span<const hit> hits,
                  std::span<const device_check_config> cfgs,
                  std::span<std::vector<checks::violation>* const> outs) {
  for (const hit& h : hits) {
    const packed_edge& a = edges[h.i];
    const packed_edge& b = edges[h.j];
    const device_check_config& cfg = cfgs[h.rule];
    std::vector<checks::violation>& out = *outs[h.rule];
    switch (cfg.kind) {
      case pair_check::width:
        out.push_back({checks::rule_kind::width, cfg.layer1, cfg.layer1, a.to_edge(), b.to_edge(),
                       h.measured});
        break;
      case pair_check::spacing:
        out.push_back({checks::rule_kind::spacing, cfg.layer1, cfg.layer1, a.to_edge(),
                       b.to_edge(), h.measured});
        break;
      case pair_check::enclosure: {
        const packed_edge& inner = a.group == 0 ? a : b;
        const packed_edge& outer = a.group == 0 ? b : a;
        out.push_back({checks::rule_kind::enclosure, cfg.layer1, cfg.layer2, inner.to_edge(),
                       outer.to_edge(), h.measured});
        break;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// async_multi_check
// ---------------------------------------------------------------------------

struct async_multi_check::impl {
  device::stream& s;
  std::vector<device_check_config> cfgs;
  coord_t max_distance = 0;  // kernel 1 range bound, sound for every config
  bool use_brute = false;

  std::vector<packed_edge> edges;          // host copy in device order
  std::vector<std::uint32_t> offsets;      // brute: per-polygon edge ranges
  std::uint32_t inner_polys = 0;           // brute: count of group-0 polygons
  device::buffer<packed_edge> dev_edges;
  device::buffer<device_check_config> dev_cfgs;
  device::buffer<std::uint32_t> dev_aux;   // sweep: range_end; brute: offsets
  std::vector<coord_t> host_soa;           // [x_lo | x_hi | y_lo | y_hi], padded
  device::buffer<coord_t> dev_soa;
  std::uint32_t padded_n = 0;
  cursor_block* cursor = nullptr;
  device::buffer<hit> hit_buf;
  std::uint32_t capacity = 0;
  bool finished = false;

  /// Dispatch tier captured at enqueue time (simd.hpp: per-process dispatch,
  /// but a set_mode between enqueue and finish must not split one check
  /// across tiers).
  simd::tier simd_tier = simd::active();

  std::uint64_t launches_sweep = 0;
  std::uint64_t launches_brute = 0;
  std::uint64_t retries = 0;

  explicit impl(device::stream& stream) : s(stream) {}

  /// Build and upload the padded SoA mirror of the (already sorted) edge
  /// array: the 8-wide filter loads contiguous x_lo/x_hi/y_lo/y_hi lanes
  /// instead of gathering through 24-byte AoS records. Padding lanes carry
  /// never-matching sentinels; they are additionally masked off by index.
  void build_soa() {
    const auto n = static_cast<std::uint32_t>(edges.size());
    padded_n = simd::padded_size(n);
    host_soa.assign(static_cast<std::size_t>(padded_n) * 4, 0);
    coord_t* xl = host_soa.data();
    coord_t* xh = xl + padded_n;
    coord_t* yl = xh + padded_n;
    coord_t* yh = yl + padded_n;
    for (std::uint32_t i = 0; i < n; ++i) {
      xl[i] = edges[i].x_lo();
      xh[i] = edges[i].x_hi();
      yl[i] = edges[i].y_lo();
      yh[i] = edges[i].y_hi();
    }
    for (std::uint32_t i = n; i < padded_n; ++i) {
      xl[i] = std::numeric_limits<coord_t>::max();
      xh[i] = std::numeric_limits<coord_t>::min();
      yl[i] = std::numeric_limits<coord_t>::max();
      yh[i] = std::numeric_limits<coord_t>::min();
    }
    dev_soa = device::buffer<coord_t>(host_soa.size(), s.ctx());
    dev_soa.upload(s, host_soa);
  }

  /// SoA view over the device copy.
  [[nodiscard]] simd::edge_soa device_soa() const {
    const coord_t* base = dev_soa.device_ptr();
    return {base, base + padded_n, base + 2 * padded_n, base + 3 * padded_n};
  }

  ~impl() {
    if (cursor) {
      s.synchronize();
      cursor->~cursor_block();
      s.ctx().free(cursor);
    }
  }

  void enqueue_reset() {
    cursor_block* c = cursor;
    s.launch(1, 1, [c](device::thread_id) {
      c->count.store(0, std::memory_order_relaxed);
      c->pairs.store(0, std::memory_order_relaxed);
      c->lanes.store(0, std::memory_order_relaxed);
    });
  }

  void enqueue_sweep_kernels(bool first_time) {
    const auto n = static_cast<std::uint32_t>(edges.size());
    constexpr std::uint32_t block = 128;
    const std::uint32_t grid = (n + block - 1) / block;
    packed_edge* ep = dev_edges.device_ptr();
    std::uint32_t* rep = dev_aux.device_ptr();
    const coord_t dist = max_distance;
    const bool ax = cfgs.front().axis == sweep_axis::x;
    const simd::edge_soa soa = device_soa();
    const simd::tier st = simd_tier;

    if (first_time) {
      // Kernel 1: check-range scan. Edge i's candidates are the edges j > i
      // (sorted by lower sweep-axis key) whose lower key is at most
      // key_hi(i) + distance — a sound bound because violating pairs are
      // within `distance` along every axis; the batch's MAX distance is
      // sound for every config. The sorted keys live in the SoA mirror, so
      // the scan is an 8-wide linear probe with a binary-search fallback
      // (simd::range_end); the bound saturates at the int32 limit instead of
      // wrapping for extreme coordinates (widening is sound).
      s.launch(grid, block, [soa, rep, n, dist, ax, st](device::thread_id t) {
        const std::uint32_t i = t.global();
        if (i >= n) return;
        const coord_t* keys = ax ? soa.x_lo : soa.y_lo;
        const coord_t key_hi = ax ? soa.x_hi[i] : soa.y_hi[i];
        const std::int64_t wide = static_cast<std::int64_t>(key_hi) + dist;
        const coord_t bound = wide > std::numeric_limits<coord_t>::max()
                                  ? std::numeric_limits<coord_t>::max()
                                  : static_cast<coord_t>(wide);
        rep[i] = simd::range_end(st, keys, i + 1, n, bound);
      });
    }

    // Kernel 2: per-edge range checks. The 8-wide box filter prunes the
    // candidate range down to pairs that can possibly violate; survivors run
    // every config's exact scalar predicate; hits emit through the batched
    // per-thread buffer (one atomic reservation per flush).
    hit* out_hits = hit_buf.device_ptr();
    const std::uint32_t cap = capacity;
    const device_check_config* cp = dev_cfgs.device_ptr();
    const auto ncfg = static_cast<std::uint32_t>(cfgs.size());
    cursor_block* cur = cursor;
    s.launch(grid, block,
             [ep, soa, rep, n, dist, cp, ncfg, out_hits, cap, cur, st](device::thread_id t) {
      const std::uint32_t i = t.global();
      if (i >= n) return;
      std::uint64_t tested = 0;
      std::uint64_t lanes = 0;
      emit_batch batch;
      const simd::filter_bounds b = edge_bounds(soa, i, dist);
      simd::for_candidates(st, soa, i + 1, rep[i], b, lanes, [&](std::uint32_t j) {
        for (std::uint32_t r = 0; r < ncfg; ++r) {
          ++tested;
          if (auto m = eval_pair(ep[i], ep[j], cp[r])) {
            batch.push({i, j, *m, r}, cur, out_hits, cap);
          }
        }
      });
      batch.flush(cur, out_hits, cap);
      cur->pairs.fetch_add(tested, std::memory_order_relaxed);
      cur->lanes.fetch_add(lanes, std::memory_order_relaxed);
    });
    ++launches_sweep;
  }

  void enqueue_brute_kernel() {
    const auto poly_count = static_cast<std::uint32_t>(offsets.size() - 1);
    // Task space: width -> one thread per polygon; spacing -> one thread per
    // unordered polygon pair incl. the diagonal (notches); enclosure -> one
    // thread per (inner, outer) pair. All configs share `kind`, so one
    // decomposition serves the whole batch.
    std::uint64_t tasks = 0;
    switch (cfgs.front().kind) {
      case pair_check::width: tasks = inner_polys; break;
      case pair_check::spacing:
        tasks = static_cast<std::uint64_t>(inner_polys) * (inner_polys + 1) / 2;
        break;
      case pair_check::enclosure:
        tasks = static_cast<std::uint64_t>(inner_polys) * (poly_count - inner_polys);
        break;
    }
    if (tasks == 0) return;

    constexpr std::uint32_t block = 64;
    const auto grid = static_cast<std::uint32_t>((tasks + block - 1) / block);
    packed_edge* ep = dev_edges.device_ptr();
    std::uint32_t* op = dev_aux.device_ptr();
    hit* out_hits = hit_buf.device_ptr();
    const std::uint32_t cap = capacity;
    const device_check_config* cp = dev_cfgs.device_ptr();
    const auto ncfg = static_cast<std::uint32_t>(cfgs.size());
    const pair_check kind = cfgs.front().kind;
    const std::uint32_t inner = inner_polys;
    const coord_t dist = max_distance;
    const simd::edge_soa soa = device_soa();
    const simd::tier st = simd_tier;
    cursor_block* cur = cursor;

    s.launch(grid, block,
             [ep, op, soa, cp, ncfg, kind, tasks, inner, dist, out_hits, cap, cur,
              st](device::thread_id t) {
      const std::uint64_t task = t.global();
      if (task >= tasks) return;
      std::uint32_t pa = 0, pb = 0;
      switch (kind) {
        case pair_check::width:
          pa = pb = static_cast<std::uint32_t>(task);
          break;
        case pair_check::spacing: {
          // Row-major triangular decode over unordered pairs p <= q.
          std::uint64_t rem = task;
          std::uint32_t p = 0;
          std::uint32_t row = inner;
          while (rem >= row) {
            rem -= row;
            --row;
            ++p;
          }
          pa = p;
          pb = p + static_cast<std::uint32_t>(rem);
          break;
        }
        case pair_check::enclosure:
          pa = static_cast<std::uint32_t>(task % inner);
          pb = inner + static_cast<std::uint32_t>(task / inner);
          break;
      }
      std::uint64_t tested = 0;
      std::uint64_t lanes = 0;
      emit_batch batch;
      const std::uint32_t a_lo = op[pa], a_hi = op[pa + 1];
      const std::uint32_t b_lo = op[pb], b_hi = op[pb + 1];
      for (std::uint32_t i = a_lo; i < a_hi; ++i) {
        const std::uint32_t j_start = (pa == pb) ? i + 1 : b_lo;
        if (j_start >= b_hi) continue;
        // 8-wide box filter over polygon b's contiguous edge range; survivors
        // run the exact scalar predicates, hits batch through one reservation.
        const simd::filter_bounds bounds = edge_bounds(soa, i, dist);
        simd::for_candidates(st, soa, j_start, b_hi, bounds, lanes, [&](std::uint32_t j) {
          for (std::uint32_t r = 0; r < ncfg; ++r) {
            ++tested;
            if (auto m = eval_pair(ep[i], ep[j], cp[r])) {
              batch.push({i, j, *m, r}, cur, out_hits, cap);
            }
          }
        });
      }
      batch.flush(cur, out_hits, cap);
      cur->pairs.fetch_add(tested, std::memory_order_relaxed);
      cur->lanes.fetch_add(lanes, std::memory_order_relaxed);
    });
    ++launches_brute;
  }
};

async_multi_check::async_multi_check(device::stream& s, std::vector<packed_edge> edges,
                                     std::vector<device_check_config> cfgs,
                                     executor_choice choice, std::size_t brute_threshold)
    : impl_(std::make_unique<impl>(s)) {
  impl& st = *impl_;
  trace::span ts("sweep", "enqueue", "edges", static_cast<std::int64_t>(edges.size()), "stream",
                 s.id());
  assert(!cfgs.empty());
  assert(std::all_of(cfgs.begin(), cfgs.end(), [&](const device_check_config& c) {
    return c.kind == cfgs.front().kind && c.axis == cfgs.front().axis;
  }));
  st.cfgs = std::move(cfgs);
  for (const device_check_config& c : st.cfgs) {
    st.max_distance = std::max(st.max_distance, c.distance);
  }
  st.edges = std::move(edges);
  if (st.edges.empty()) {
    st.finished = true;  // nothing enqueued; finish() becomes a no-op
    return;
  }
  st.use_brute = choice == executor_choice::brute ||
                 (choice == executor_choice::automatic && st.edges.size() <= brute_threshold);

  device::context& ctx = s.ctx();
  const auto n = static_cast<std::uint32_t>(st.edges.size());

  if (st.use_brute) {
    // Group edges by (group, polygon) and build the offset table.
    std::sort(st.edges.begin(), st.edges.end(), [](const packed_edge& a, const packed_edge& b) {
      if (a.group != b.group) return a.group < b.group;
      return a.poly < b.poly;
    });
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i == 0 || st.edges[i].poly != st.edges[i - 1].poly ||
          st.edges[i].group != st.edges[i - 1].group) {
        st.offsets.push_back(i);
        if (st.edges[i].group == 0) ++st.inner_polys;
      }
    }
    st.offsets.push_back(n);
    st.dev_aux = device::buffer<std::uint32_t>(st.offsets.size(), ctx);
    st.dev_aux.upload(s, st.offsets);
  } else {
    // Sort by the lower sweep-axis key.
    const bool ax = st.cfgs.front().axis == sweep_axis::x;
    std::sort(st.edges.begin(), st.edges.end(), [ax](const packed_edge& a, const packed_edge& b) {
      return a.key_lo(ax) < b.key_lo(ax);
    });
    st.dev_aux = device::buffer<std::uint32_t>(n, ctx);
  }

  st.dev_edges = device::buffer<packed_edge>(n, ctx);
  st.dev_edges.upload(s, st.edges);
  st.build_soa();
  st.dev_cfgs = device::buffer<device_check_config>(st.cfgs.size(), ctx);
  st.dev_cfgs.upload(s, st.cfgs);

  st.cursor = static_cast<cursor_block*>(ctx.malloc(sizeof(cursor_block)));
  new (st.cursor) cursor_block{};
  st.capacity = 256;
  st.hit_buf = device::buffer<hit>(st.capacity, ctx);

  st.enqueue_reset();
  if (st.use_brute) {
    st.enqueue_brute_kernel();
  } else {
    st.enqueue_sweep_kernels(/*first_time=*/true);
  }
}

async_multi_check::~async_multi_check() = default;
async_multi_check::async_multi_check(async_multi_check&&) noexcept = default;
async_multi_check& async_multi_check::operator=(async_multi_check&&) noexcept = default;

void async_multi_check::finish(std::span<std::vector<checks::violation>* const> outs,
                               device_check_stats& stats) {
  if (!impl_) return;  // moved-from
  impl& st = *impl_;
  if (st.finished) return;
  st.finished = true;
  assert(outs.size() == st.cfgs.size());
  device::stream& s = st.s;
  trace::span ts("sweep", "finish", "edges", static_cast<std::int64_t>(st.edges.size()), "stream",
                 s.id());

  for (;;) {
    s.synchronize();
    const std::uint32_t found = st.cursor->count.load(std::memory_order_relaxed);
    const std::uint64_t pairs = st.cursor->pairs.load(std::memory_order_relaxed);
    const std::uint64_t lanes = st.cursor->lanes.load(std::memory_order_relaxed);
    if (found <= st.capacity) {
      stats.edge_pairs_tested += pairs;
      stats.simd_lanes_active += lanes;
      trace::instant("sweep", "edge_pairs_tested", "delta", static_cast<std::int64_t>(pairs));
      trace::instant("simd", "lanes_active", "delta", static_cast<std::int64_t>(lanes));
      std::vector<hit> hits(found);
      if (found > 0) {
        st.hit_buf.download(s, hits);
        s.synchronize();
      }
      convert_hits(st.edges, hits, st.cfgs, outs);
      break;
    }
    // Overflow: grow the output buffer and relaunch the check kernel (the
    // range scan from kernel 1 is still valid).
    ++st.retries;
    st.capacity = found;
    st.hit_buf = device::buffer<hit>(st.capacity, s.ctx());
    st.enqueue_reset();
    if (st.use_brute) {
      st.enqueue_brute_kernel();
    } else {
      st.enqueue_sweep_kernels(/*first_time=*/false);
    }
  }

  stats.edges_uploaded += st.edges.size();
  stats.sweep_launches += st.launches_sweep;
  stats.brute_launches += st.launches_brute;
  stats.overflow_retries += st.retries;
  // Delta samples: the metrics summary sums "delta" instants per key, so the
  // trace totals can be reconciled against device_check_stats.
  trace::instant("sweep", "edges_uploaded", "delta", static_cast<std::int64_t>(st.edges.size()));
  trace::instant("sweep", "sweep_launches", "delta", static_cast<std::int64_t>(st.launches_sweep));
  trace::instant("sweep", "brute_launches", "delta", static_cast<std::int64_t>(st.launches_brute));
  trace::instant("sweep", "overflow_retries", "delta", static_cast<std::int64_t>(st.retries));
  trace::counter("simd", "tier", static_cast<std::int64_t>(st.simd_tier));
}

// ---------------------------------------------------------------------------
// Single-predicate facade + synchronous wrappers
// ---------------------------------------------------------------------------

async_edge_check::async_edge_check(device::stream& s, std::vector<packed_edge> edges,
                                   const device_check_config& cfg, executor_choice choice,
                                   std::size_t brute_threshold)
    : inner_(s, std::move(edges), {cfg}, choice, brute_threshold) {}

void async_edge_check::finish(std::vector<checks::violation>& out, device_check_stats& stats) {
  std::vector<checks::violation>* outs[] = {&out};
  inner_.finish(outs, stats);
}

void pack_polygon_edges(const polygon& poly, std::uint32_t poly_id, std::uint16_t group,
                        std::vector<packed_edge>& out) {
  const std::size_t n = poly.edge_count();
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    const edge e = poly.edge_at(i);
    out.push_back({e.from, e.to, poly_id, group, 0});
  }
}

void device_check_edges_with(device::stream& s, std::span<const packed_edge> edges,
                             const device_check_config& cfg, executor_choice choice,
                             std::vector<checks::violation>& out, device_check_stats& stats,
                             std::size_t brute_threshold) {
  async_edge_check check(s, std::vector<packed_edge>(edges.begin(), edges.end()), cfg, choice,
                         brute_threshold);
  check.finish(out, stats);
}

void device_check_edges(device::stream& s, std::span<const packed_edge> edges,
                        const device_check_config& cfg, std::vector<checks::violation>& out,
                        device_check_stats& stats, std::size_t brute_threshold) {
  device_check_edges_with(s, edges, cfg, executor_choice::automatic, out, stats, brute_threshold);
}

}  // namespace odrc::sweep
