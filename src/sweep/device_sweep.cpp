#include "sweep/device_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "checks/edge_checks.hpp"
#include "device/device.hpp"
#include "infra/trace.hpp"

namespace odrc::sweep {

namespace {

/// Violation record produced on the device: indices into the uploaded edge
/// array, the measured quantity, and the index of the config whose predicate
/// fired (0 for single-predicate checks). Converted host-side.
struct hit {
  std::uint32_t i;
  std::uint32_t j;
  area_t measured;
  std::uint32_t rule;
};

/// Device-side output cursor + pair counter, placed in the device arena.
struct cursor_block {
  std::atomic<std::uint32_t> count;
  std::atomic<std::uint64_t> pairs;
};

/// Evaluate one config's predicate on a candidate pair. Returns the measured
/// quantity when violating.
std::optional<area_t> eval_pair(const packed_edge& a, const packed_edge& b,
                                const device_check_config& cfg) {
  switch (cfg.kind) {
    case pair_check::width: {
      if (a.poly != b.poly || a.group != 0 || b.group != 0) return std::nullopt;
      if (auto d = checks::check_width_pair(a.to_edge(), b.to_edge(), cfg.distance)) {
        return static_cast<area_t>(*d) * *d;
      }
      return std::nullopt;
    }
    case pair_check::spacing: {
      if (a.group != 0 || b.group != 0) return std::nullopt;
      const checks::spacing_table table =
          cfg.table.count > 0 ? cfg.table : checks::spacing_table::simple(cfg.distance);
      return checks::check_space_pair_table(a.to_edge(), b.to_edge(), a.poly == b.poly, table);
    }
    case pair_check::enclosure: {
      // Ordered: inner = group 0, outer = group 1.
      const packed_edge* inner = nullptr;
      const packed_edge* outer = nullptr;
      if (a.group == 0 && b.group == 1) {
        inner = &a;
        outer = &b;
      } else if (a.group == 1 && b.group == 0) {
        inner = &b;
        outer = &a;
      } else {
        return std::nullopt;
      }
      if (auto m =
              checks::check_enclosure_pair(inner->to_edge(), outer->to_edge(), cfg.distance)) {
        return static_cast<area_t>(*m) * *m;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// Convert device hits to violation records using the host copy of the
/// uploaded edges, demultiplexed per config.
void convert_hits(std::span<const packed_edge> edges, std::span<const hit> hits,
                  std::span<const device_check_config> cfgs,
                  std::span<std::vector<checks::violation>* const> outs) {
  for (const hit& h : hits) {
    const packed_edge& a = edges[h.i];
    const packed_edge& b = edges[h.j];
    const device_check_config& cfg = cfgs[h.rule];
    std::vector<checks::violation>& out = *outs[h.rule];
    switch (cfg.kind) {
      case pair_check::width:
        out.push_back({checks::rule_kind::width, cfg.layer1, cfg.layer1, a.to_edge(), b.to_edge(),
                       h.measured});
        break;
      case pair_check::spacing:
        out.push_back({checks::rule_kind::spacing, cfg.layer1, cfg.layer1, a.to_edge(),
                       b.to_edge(), h.measured});
        break;
      case pair_check::enclosure: {
        const packed_edge& inner = a.group == 0 ? a : b;
        const packed_edge& outer = a.group == 0 ? b : a;
        out.push_back({checks::rule_kind::enclosure, cfg.layer1, cfg.layer2, inner.to_edge(),
                       outer.to_edge(), h.measured});
        break;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// async_multi_check
// ---------------------------------------------------------------------------

struct async_multi_check::impl {
  device::stream& s;
  std::vector<device_check_config> cfgs;
  coord_t max_distance = 0;  // kernel 1 range bound, sound for every config
  bool use_brute = false;

  std::vector<packed_edge> edges;          // host copy in device order
  std::vector<std::uint32_t> offsets;      // brute: per-polygon edge ranges
  std::uint32_t inner_polys = 0;           // brute: count of group-0 polygons
  device::buffer<packed_edge> dev_edges;
  device::buffer<device_check_config> dev_cfgs;
  device::buffer<std::uint32_t> dev_aux;   // sweep: range_end; brute: offsets
  cursor_block* cursor = nullptr;
  device::buffer<hit> hit_buf;
  std::uint32_t capacity = 0;
  bool finished = false;

  std::uint64_t launches_sweep = 0;
  std::uint64_t launches_brute = 0;
  std::uint64_t retries = 0;

  explicit impl(device::stream& stream) : s(stream) {}

  ~impl() {
    if (cursor) {
      s.synchronize();
      cursor->~cursor_block();
      s.ctx().free(cursor);
    }
  }

  void enqueue_reset() {
    cursor_block* c = cursor;
    s.launch(1, 1, [c](device::thread_id) {
      c->count.store(0, std::memory_order_relaxed);
      c->pairs.store(0, std::memory_order_relaxed);
    });
  }

  void enqueue_sweep_kernels(bool first_time) {
    const auto n = static_cast<std::uint32_t>(edges.size());
    constexpr std::uint32_t block = 128;
    const std::uint32_t grid = (n + block - 1) / block;
    packed_edge* ep = dev_edges.device_ptr();
    std::uint32_t* rep = dev_aux.device_ptr();
    const coord_t dist = max_distance;
    const bool ax = cfgs.front().axis == sweep_axis::x;

    if (first_time) {
      // Kernel 1: check-range scan. Edge i's candidates are the edges j > i
      // (sorted by lower sweep-axis key) whose lower key is at most
      // key_hi(i) + distance — a sound bound because violating pairs are
      // within `distance` along every axis; the batch's MAX distance is
      // sound for every config. Binary search per thread over the sorted
      // keys.
      s.launch(grid, block, [ep, rep, n, dist, ax](device::thread_id t) {
        const std::uint32_t i = t.global();
        if (i >= n) return;
        const coord_t bound = static_cast<coord_t>(ep[i].key_hi(ax) + dist);
        std::uint32_t lo = i + 1, hi = n;
        while (lo < hi) {
          const std::uint32_t mid = lo + (hi - lo) / 2;
          if (ep[mid].key_lo(ax) <= bound) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        rep[i] = lo;
      });
    }

    // Kernel 2: per-edge range checks, every config per candidate pair,
    // through the atomic cursor.
    hit* out_hits = hit_buf.device_ptr();
    const std::uint32_t cap = capacity;
    const device_check_config* cp = dev_cfgs.device_ptr();
    const auto ncfg = static_cast<std::uint32_t>(cfgs.size());
    cursor_block* cur = cursor;
    s.launch(grid, block, [ep, rep, n, cp, ncfg, out_hits, cap, cur](device::thread_id t) {
      const std::uint32_t i = t.global();
      if (i >= n) return;
      std::uint64_t tested = 0;
      const std::uint32_t end = rep[i];
      for (std::uint32_t j = i + 1; j < end; ++j) {
        for (std::uint32_t r = 0; r < ncfg; ++r) {
          ++tested;
          if (auto m = eval_pair(ep[i], ep[j], cp[r])) {
            const std::uint32_t slot = cur->count.fetch_add(1, std::memory_order_relaxed);
            if (slot < cap) out_hits[slot] = {i, j, *m, r};
          }
        }
      }
      cur->pairs.fetch_add(tested, std::memory_order_relaxed);
    });
    ++launches_sweep;
  }

  void enqueue_brute_kernel() {
    const auto poly_count = static_cast<std::uint32_t>(offsets.size() - 1);
    // Task space: width -> one thread per polygon; spacing -> one thread per
    // unordered polygon pair incl. the diagonal (notches); enclosure -> one
    // thread per (inner, outer) pair. All configs share `kind`, so one
    // decomposition serves the whole batch.
    std::uint64_t tasks = 0;
    switch (cfgs.front().kind) {
      case pair_check::width: tasks = inner_polys; break;
      case pair_check::spacing:
        tasks = static_cast<std::uint64_t>(inner_polys) * (inner_polys + 1) / 2;
        break;
      case pair_check::enclosure:
        tasks = static_cast<std::uint64_t>(inner_polys) * (poly_count - inner_polys);
        break;
    }
    if (tasks == 0) return;

    constexpr std::uint32_t block = 64;
    const auto grid = static_cast<std::uint32_t>((tasks + block - 1) / block);
    packed_edge* ep = dev_edges.device_ptr();
    std::uint32_t* op = dev_aux.device_ptr();
    hit* out_hits = hit_buf.device_ptr();
    const std::uint32_t cap = capacity;
    const device_check_config* cp = dev_cfgs.device_ptr();
    const auto ncfg = static_cast<std::uint32_t>(cfgs.size());
    const pair_check kind = cfgs.front().kind;
    const std::uint32_t inner = inner_polys;
    cursor_block* cur = cursor;

    s.launch(grid, block,
             [ep, op, cp, ncfg, kind, tasks, inner, out_hits, cap, cur](device::thread_id t) {
      const std::uint64_t task = t.global();
      if (task >= tasks) return;
      std::uint32_t pa = 0, pb = 0;
      switch (kind) {
        case pair_check::width:
          pa = pb = static_cast<std::uint32_t>(task);
          break;
        case pair_check::spacing: {
          // Row-major triangular decode over unordered pairs p <= q.
          std::uint64_t rem = task;
          std::uint32_t p = 0;
          std::uint32_t row = inner;
          while (rem >= row) {
            rem -= row;
            --row;
            ++p;
          }
          pa = p;
          pb = p + static_cast<std::uint32_t>(rem);
          break;
        }
        case pair_check::enclosure:
          pa = static_cast<std::uint32_t>(task % inner);
          pb = inner + static_cast<std::uint32_t>(task / inner);
          break;
      }
      std::uint64_t tested = 0;
      const std::uint32_t a_lo = op[pa], a_hi = op[pa + 1];
      const std::uint32_t b_lo = op[pb], b_hi = op[pb + 1];
      for (std::uint32_t i = a_lo; i < a_hi; ++i) {
        const std::uint32_t j_start = (pa == pb) ? i + 1 : b_lo;
        for (std::uint32_t j = j_start; j < b_hi; ++j) {
          for (std::uint32_t r = 0; r < ncfg; ++r) {
            ++tested;
            if (auto m = eval_pair(ep[i], ep[j], cp[r])) {
              const std::uint32_t slot = cur->count.fetch_add(1, std::memory_order_relaxed);
              if (slot < cap) out_hits[slot] = {i, j, *m, r};
            }
          }
        }
      }
      cur->pairs.fetch_add(tested, std::memory_order_relaxed);
    });
    ++launches_brute;
  }
};

async_multi_check::async_multi_check(device::stream& s, std::vector<packed_edge> edges,
                                     std::vector<device_check_config> cfgs,
                                     executor_choice choice, std::size_t brute_threshold)
    : impl_(std::make_unique<impl>(s)) {
  impl& st = *impl_;
  trace::span ts("sweep", "enqueue", "edges", static_cast<std::int64_t>(edges.size()), "stream",
                 s.id());
  assert(!cfgs.empty());
  assert(std::all_of(cfgs.begin(), cfgs.end(), [&](const device_check_config& c) {
    return c.kind == cfgs.front().kind && c.axis == cfgs.front().axis;
  }));
  st.cfgs = std::move(cfgs);
  for (const device_check_config& c : st.cfgs) {
    st.max_distance = std::max(st.max_distance, c.distance);
  }
  st.edges = std::move(edges);
  if (st.edges.empty()) {
    st.finished = true;  // nothing enqueued; finish() becomes a no-op
    return;
  }
  st.use_brute = choice == executor_choice::brute ||
                 (choice == executor_choice::automatic && st.edges.size() <= brute_threshold);

  device::context& ctx = s.ctx();
  const auto n = static_cast<std::uint32_t>(st.edges.size());

  if (st.use_brute) {
    // Group edges by (group, polygon) and build the offset table.
    std::sort(st.edges.begin(), st.edges.end(), [](const packed_edge& a, const packed_edge& b) {
      if (a.group != b.group) return a.group < b.group;
      return a.poly < b.poly;
    });
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i == 0 || st.edges[i].poly != st.edges[i - 1].poly ||
          st.edges[i].group != st.edges[i - 1].group) {
        st.offsets.push_back(i);
        if (st.edges[i].group == 0) ++st.inner_polys;
      }
    }
    st.offsets.push_back(n);
    st.dev_aux = device::buffer<std::uint32_t>(st.offsets.size(), ctx);
    st.dev_aux.upload(s, st.offsets);
  } else {
    // Sort by the lower sweep-axis key.
    const bool ax = st.cfgs.front().axis == sweep_axis::x;
    std::sort(st.edges.begin(), st.edges.end(), [ax](const packed_edge& a, const packed_edge& b) {
      return a.key_lo(ax) < b.key_lo(ax);
    });
    st.dev_aux = device::buffer<std::uint32_t>(n, ctx);
  }

  st.dev_edges = device::buffer<packed_edge>(n, ctx);
  st.dev_edges.upload(s, st.edges);
  st.dev_cfgs = device::buffer<device_check_config>(st.cfgs.size(), ctx);
  st.dev_cfgs.upload(s, st.cfgs);

  st.cursor = static_cast<cursor_block*>(ctx.malloc(sizeof(cursor_block)));
  new (st.cursor) cursor_block{};
  st.capacity = 256;
  st.hit_buf = device::buffer<hit>(st.capacity, ctx);

  st.enqueue_reset();
  if (st.use_brute) {
    st.enqueue_brute_kernel();
  } else {
    st.enqueue_sweep_kernels(/*first_time=*/true);
  }
}

async_multi_check::~async_multi_check() = default;
async_multi_check::async_multi_check(async_multi_check&&) noexcept = default;
async_multi_check& async_multi_check::operator=(async_multi_check&&) noexcept = default;

void async_multi_check::finish(std::span<std::vector<checks::violation>* const> outs,
                               device_check_stats& stats) {
  if (!impl_) return;  // moved-from
  impl& st = *impl_;
  if (st.finished) return;
  st.finished = true;
  assert(outs.size() == st.cfgs.size());
  device::stream& s = st.s;
  trace::span ts("sweep", "finish", "edges", static_cast<std::int64_t>(st.edges.size()), "stream",
                 s.id());

  for (;;) {
    s.synchronize();
    const std::uint32_t found = st.cursor->count.load(std::memory_order_relaxed);
    const std::uint64_t pairs = st.cursor->pairs.load(std::memory_order_relaxed);
    if (found <= st.capacity) {
      stats.edge_pairs_tested += pairs;
      trace::instant("sweep", "edge_pairs_tested", "delta", static_cast<std::int64_t>(pairs));
      std::vector<hit> hits(found);
      if (found > 0) {
        st.hit_buf.download(s, hits);
        s.synchronize();
      }
      convert_hits(st.edges, hits, st.cfgs, outs);
      break;
    }
    // Overflow: grow the output buffer and relaunch the check kernel (the
    // range scan from kernel 1 is still valid).
    ++st.retries;
    st.capacity = found;
    st.hit_buf = device::buffer<hit>(st.capacity, s.ctx());
    st.enqueue_reset();
    if (st.use_brute) {
      st.enqueue_brute_kernel();
    } else {
      st.enqueue_sweep_kernels(/*first_time=*/false);
    }
  }

  stats.edges_uploaded += st.edges.size();
  stats.sweep_launches += st.launches_sweep;
  stats.brute_launches += st.launches_brute;
  stats.overflow_retries += st.retries;
  // Delta samples: the metrics summary sums "delta" instants per key, so the
  // trace totals can be reconciled against device_check_stats.
  trace::instant("sweep", "edges_uploaded", "delta", static_cast<std::int64_t>(st.edges.size()));
  trace::instant("sweep", "sweep_launches", "delta", static_cast<std::int64_t>(st.launches_sweep));
  trace::instant("sweep", "brute_launches", "delta", static_cast<std::int64_t>(st.launches_brute));
  trace::instant("sweep", "overflow_retries", "delta", static_cast<std::int64_t>(st.retries));
}

// ---------------------------------------------------------------------------
// Single-predicate facade + synchronous wrappers
// ---------------------------------------------------------------------------

async_edge_check::async_edge_check(device::stream& s, std::vector<packed_edge> edges,
                                   const device_check_config& cfg, executor_choice choice,
                                   std::size_t brute_threshold)
    : inner_(s, std::move(edges), {cfg}, choice, brute_threshold) {}

void async_edge_check::finish(std::vector<checks::violation>& out, device_check_stats& stats) {
  std::vector<checks::violation>* outs[] = {&out};
  inner_.finish(outs, stats);
}

void pack_polygon_edges(const polygon& poly, std::uint32_t poly_id, std::uint16_t group,
                        std::vector<packed_edge>& out) {
  const std::size_t n = poly.edge_count();
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    const edge e = poly.edge_at(i);
    out.push_back({e.from, e.to, poly_id, group, 0});
  }
}

void device_check_edges_with(device::stream& s, std::span<const packed_edge> edges,
                             const device_check_config& cfg, executor_choice choice,
                             std::vector<checks::violation>& out, device_check_stats& stats,
                             std::size_t brute_threshold) {
  async_edge_check check(s, std::vector<packed_edge>(edges.begin(), edges.end()), cfg, choice,
                         brute_threshold);
  check.finish(out, stats);
}

void device_check_edges(device::stream& s, std::span<const packed_edge> edges,
                        const device_check_config& cfg, std::vector<checks::violation>& out,
                        device_check_stats& stats, std::size_t brute_threshold) {
  device_check_edges_with(s, edges, cfg, executor_choice::automatic, out, stats, brute_threshold);
}

}  // namespace odrc::sweep
