#include "sweep/sweepline.hpp"

#include <algorithm>

namespace odrc::sweep {

namespace {

struct event {
  coord_t y;
  bool is_top;  // top side = insertion
  std::uint32_t idx;
};

}  // namespace

void overlap_pairs(std::span<const rect> rects,
                   const std::function<void(std::uint32_t, std::uint32_t)>& report,
                   sweep_stats* stats) {
  std::vector<event> events;
  events.reserve(rects.size() * 2);
  for (std::uint32_t i = 0; i < rects.size(); ++i) {
    if (rects[i].empty()) continue;
    events.push_back({rects[i].y_max, true, i});
    events.push_back({rects[i].y_min, false, i});
  }
  // Descending y; at equal y insert (top) before remove (bottom) so rects
  // that merely touch still report as overlapping (closed semantics).
  std::sort(events.begin(), events.end(), [](const event& a, const event& b) {
    if (a.y != b.y) return a.y > b.y;
    return a.is_top && !b.is_top;
  });

  interval_tree tree;
  std::vector<std::uint32_t> hits;
  sweep_stats local;
  for (const event& e : events) {
    ++local.events;
    const rect& r = rects[e.idx];
    const interval iv{r.x_min, r.x_max, e.idx};
    if (e.is_top) {
      hits.clear();
      tree.query(iv, hits);
      for (std::uint32_t other : hits) {
        ++local.pairs_reported;
        report(std::min(other, e.idx), std::max(other, e.idx));
      }
      tree.insert(iv);
      local.max_live_intervals = std::max(local.max_live_intervals, tree.size());
    } else {
      tree.remove(iv);
    }
  }
  if (stats) *stats += local;
}

void overlap_pairs_inflated(std::span<const rect> rects, coord_t inflate,
                            const std::function<void(std::uint32_t, std::uint32_t)>& report,
                            sweep_stats* stats) {
  std::vector<rect> inflated(rects.size());
  for (std::size_t i = 0; i < rects.size(); ++i) inflated[i] = rects[i].inflated(inflate);
  overlap_pairs(inflated, report, stats);
}

}  // namespace odrc::sweep
