#include "sweep/sweepline.hpp"

#include <algorithm>
#include <limits>

#include "infra/simd.hpp"

namespace odrc::sweep {

namespace {

struct event {
  coord_t y;
  bool is_top;  // top side = insertion
  std::uint32_t idx;
};

/// SoA live-interval set for the sequential sweep (DESIGN.md §11). The live
/// set at any sweep position is usually small, so an 8-wide linear scan with
/// the SIMD interval filter beats the pointer-chasing interval tree; when the
/// live set grows past `fallback_threshold` the sweep migrates mid-run to the
/// tree, keeping the O(log n + k) bound for pathological stacks. Storage is
/// kept padded to 8 lanes with never-matching sentinels, so the vector loads
/// need no tail masking.
class live_list {
 public:
  static constexpr std::size_t fallback_threshold = 2048;

  [[nodiscard]] std::size_t size() const { return n_; }

  void insert(const interval& iv) {
    if (n_ == lo_.size()) {
      lo_.resize(n_ + 8, std::numeric_limits<coord_t>::max());
      hi_.resize(n_ + 8, std::numeric_limits<coord_t>::min());
      idx_.resize(n_ + 8, 0);
    }
    lo_[n_] = iv.lo;
    hi_[n_] = iv.hi;
    idx_[n_] = iv.id;
    ++n_;
  }

  void remove(std::uint32_t id) {
    for (std::size_t k = 0; k < n_; ++k) {
      if (idx_[k] == id) {
        const std::size_t last = n_ - 1;
        lo_[k] = lo_[last];
        hi_[k] = hi_[last];
        idx_[k] = idx_[last];
        lo_[last] = std::numeric_limits<coord_t>::max();
        hi_[last] = std::numeric_limits<coord_t>::min();
        --n_;
        return;
      }
    }
  }

  /// Collect the ids of every live interval overlapping [q.lo, q.hi]
  /// (closed). Sentinel lanes can never match, so whole blocks are scanned.
  void query(simd::tier t, const interval& q, std::vector<std::uint32_t>& out) const {
    for (std::size_t base = 0; base < n_; base += 8) {
      std::uint32_t m = simd::interval_mask8(t, lo_.data(), hi_.data(),
                                             static_cast<std::uint32_t>(base), q.lo, q.hi);
      while (m != 0) {
        out.push_back(idx_[base + static_cast<std::uint32_t>(__builtin_ctz(m))]);
        m &= m - 1;
      }
    }
  }

  /// Migrate every live interval into `tree` (fallback path).
  void drain_into(interval_tree& tree) {
    for (std::size_t k = 0; k < n_; ++k) tree.insert({lo_[k], hi_[k], idx_[k]});
    n_ = 0;
    lo_.clear();
    hi_.clear();
    idx_.clear();
  }

 private:
  std::vector<coord_t> lo_, hi_;
  std::vector<std::uint32_t> idx_;
  std::size_t n_ = 0;
};

}  // namespace

void overlap_pairs(std::span<const rect> rects,
                   const std::function<void(std::uint32_t, std::uint32_t)>& report,
                   sweep_stats* stats) {
  std::vector<event> events;
  events.reserve(rects.size() * 2);
  for (std::uint32_t i = 0; i < rects.size(); ++i) {
    if (rects[i].empty()) continue;
    events.push_back({rects[i].y_max, true, i});
    events.push_back({rects[i].y_min, false, i});
  }
  // Descending y; at equal y insert (top) before remove (bottom) so rects
  // that merely touch still report as overlapping (closed semantics).
  std::sort(events.begin(), events.end(), [](const event& a, const event& b) {
    if (a.y != b.y) return a.y > b.y;
    return a.is_top && !b.is_top;
  });

  // Both status structures report the same pair set; hits are sorted before
  // reporting so the emitted sequence is identical regardless of the
  // structure (and of the SIMD tier) — the equivalence tests compare
  // sequences, not just sets.
  const simd::tier t = simd::active();
  live_list live;
  interval_tree tree;
  bool use_tree = false;
  std::vector<std::uint32_t> hits;
  sweep_stats local;
  for (const event& e : events) {
    ++local.events;
    const rect& r = rects[e.idx];
    const interval iv{r.x_min, r.x_max, e.idx};
    if (e.is_top) {
      hits.clear();
      if (use_tree) {
        tree.query(iv, hits);
      } else {
        live.query(t, iv, hits);
      }
      std::sort(hits.begin(), hits.end());
      for (std::uint32_t other : hits) {
        ++local.pairs_reported;
        report(std::min(other, e.idx), std::max(other, e.idx));
      }
      if (!use_tree && live.size() >= live_list::fallback_threshold) {
        live.drain_into(tree);
        use_tree = true;
      }
      if (use_tree) {
        tree.insert(iv);
      } else {
        live.insert(iv);
      }
      local.max_live_intervals =
          std::max(local.max_live_intervals, use_tree ? tree.size() : live.size());
    } else if (use_tree) {
      tree.remove(iv);
    } else {
      live.remove(e.idx);
    }
  }
  if (stats) *stats += local;
}

void overlap_pairs_inflated(std::span<const rect> rects, coord_t inflate,
                            const std::function<void(std::uint32_t, std::uint32_t)>& report,
                            sweep_stats* stats) {
  std::vector<rect> inflated(rects.size());
  for (std::size_t i = 0; i < rects.size(); ++i) inflated[i] = rects[i].inflated(inflate);
  overlap_pairs(inflated, report, stats);
}

}  // namespace odrc::sweep
