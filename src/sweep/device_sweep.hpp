// Parallel (device) check executors (paper Section IV-E).
//
// "Before checking, OpenDRC packs the edges of relevant polygons into a
//  flattened array, which is transferred from the host memory to the GPU
//  device memory. Depending on the complexity of each polygon or polygon
//  pair, OpenDRC selects either a brute-force executor or a sweepline
//  executor. For smaller tasks, parallel threads are launched for each
//  polygon (or pair), in which edge pairs are enumerated and checked. For
//  larger tasks, a parallel sweepline algorithm is performed [...]: firstly,
//  a parallel scan determines the check range of each edge; then parallel
//  threads are launched to perform the check between an edge and all other
//  edges within its check range."
//
// This module implements both executors against the simulated device
// (device/device.hpp). Edges are packed into POD `packed_edge` records
// sorted by their lower y coordinate; kernel 1 computes, for every edge, the
// end of its check range (the last edge whose span can lie within the rule
// distance); kernel 2 tests each edge against the edges in its range with
// the shared predicates from checks/edge_checks.hpp. Violations are appended
// to a device buffer through an atomic cursor; on overflow the host grows
// the buffer and relaunches kernel 2 (two kernel launches per retry, as the
// paper separates them "for efficient kernel code optimization").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "checks/edge_checks.hpp"
#include "checks/violation.hpp"
#include "device/device.hpp"
#include "infra/geometry.hpp"

namespace odrc::sweep {

/// POD edge record packed into the flat device array.
struct packed_edge {
  point from{};
  point to{};
  std::uint32_t poly = 0;   ///< flat polygon id (same-polygon filtering)
  std::uint16_t group = 0;  ///< 0 = primary/inner layer, 1 = secondary/outer layer
  std::uint16_t pad = 0;

  [[nodiscard]] edge to_edge() const { return {from, to}; }
  [[nodiscard]] coord_t y_lo() const { return std::min(from.y, to.y); }
  [[nodiscard]] coord_t y_hi() const { return std::max(from.y, to.y); }
  [[nodiscard]] coord_t x_lo() const { return std::min(from.x, to.x); }
  [[nodiscard]] coord_t x_hi() const { return std::max(from.x, to.x); }

  /// Sort/range key along the chosen sweep axis.
  [[nodiscard]] coord_t key_lo(bool axis_x) const { return axis_x ? x_lo() : y_lo(); }
  [[nodiscard]] coord_t key_hi(bool axis_x) const { return axis_x ? x_hi() : y_hi(); }
};

/// Direction the parallel sweep advances in. X-Check's global sweep is
/// vertical (sorted by y); OpenDRC's row pipeline sweeps each row along x,
/// because a row is a thin horizontal band — sorting by y there would put
/// every edge in every check range.
enum class sweep_axis : std::uint8_t { y, x };

/// Which pair predicate kernel 2 evaluates.
enum class pair_check : std::uint8_t {
  width,      ///< same-polygon interior-facing pairs, group 0 only
  spacing,    ///< inter-polygon pairs + same-polygon notches, group 0 only
  enclosure,  ///< (inner=group 0, outer=group 1) same-direction pairs
};

struct device_check_config {
  pair_check kind = pair_check::spacing;
  coord_t distance = 0;  ///< min width / MAX spacing / enclosure in dbu
  std::int16_t layer1 = 0;
  std::int16_t layer2 = 0;  ///< enclosure outer layer; else unused
  sweep_axis axis = sweep_axis::y;
  /// Conditional spacing tiers for spacing checks. When empty (count == 0)
  /// a single tier of `distance` is assumed. `distance` must equal the
  /// table's max_distance(): it sizes kernel 1's check ranges.
  checks::spacing_table table{};
};

struct device_check_stats {
  std::uint64_t edges_uploaded = 0;
  std::uint64_t edge_pairs_tested = 0;
  std::uint64_t sweep_launches = 0;
  std::uint64_t brute_launches = 0;
  std::uint64_t overflow_retries = 0;
  std::uint64_t simd_lanes_active = 0;  ///< box-filter survivors (simd:lanes_active)

  device_check_stats& operator+=(const device_check_stats& o) {
    edges_uploaded += o.edges_uploaded;
    edge_pairs_tested += o.edge_pairs_tested;
    sweep_launches += o.sweep_launches;
    brute_launches += o.brute_launches;
    overflow_retries += o.overflow_retries;
    simd_lanes_active += o.simd_lanes_active;
    return *this;
  }
};

/// Edge count at or below which the brute-force executor is selected
/// (overridable for the executor-cutoff ablation bench). Re-measured after
/// the SIMD pass (EXPERIMENTS.md §IV-E): the 8-wide filter speeds the sweep
/// executor more than brute, moving the crossover down from 64 — at 64
/// edges the sweep already wins; brute's launch-latency advantage ends at 32.
inline constexpr std::size_t default_brute_threshold = 32;

/// Run one check over a packed edge batch on the device, synchronously
/// (upload, kernels, download, convert). `edges` need not be pre-sorted.
/// Appends violations (top-cell coordinates) to `out`.
void device_check_edges(device::stream& s, std::span<const packed_edge> edges,
                        const device_check_config& cfg, std::vector<checks::violation>& out,
                        device_check_stats& stats,
                        std::size_t brute_threshold = default_brute_threshold);

/// Force a specific executor (ablation bench).
enum class executor_choice { automatic, brute, sweep };

void device_check_edges_with(device::stream& s, std::span<const packed_edge> edges,
                             const device_check_config& cfg, executor_choice choice,
                             std::vector<checks::violation>& out, device_check_stats& stats,
                             std::size_t brute_threshold = default_brute_threshold);

/// Asynchronous multi-predicate check: the deck-batching kernel entry (one
/// upload, N rules). Construction enqueues the upload and the check kernels
/// on the stream and returns immediately; the host is then free to
/// preprocess the next row while the device works (paper Section V-C).
/// finish() synchronizes, handles output-buffer overflow retries, downloads
/// and demultiplexes the results per config.
///
/// All configs must share `kind` and `axis` — the invariant of a batched
/// plan group (same-layer groups hold spacing rules, two-layer groups
/// enclosure rules). Kernel 1's check ranges are sized by the largest
/// distance in the batch; kernel 2 evaluates every config on each candidate
/// pair and tags hits with the config index.
class async_multi_check {
 public:
  async_multi_check(device::stream& s, std::vector<packed_edge> edges,
                    std::vector<device_check_config> cfgs,
                    executor_choice choice = executor_choice::automatic,
                    std::size_t brute_threshold = default_brute_threshold);
  ~async_multi_check();

  async_multi_check(const async_multi_check&) = delete;
  async_multi_check& operator=(const async_multi_check&) = delete;
  async_multi_check(async_multi_check&&) noexcept;
  async_multi_check& operator=(async_multi_check&&) noexcept;

  /// Blocks until the enqueued work completes; appends config k's violations
  /// to *outs[k]. outs.size() must equal the config count. Must be called
  /// exactly once.
  void finish(std::span<std::vector<checks::violation>* const> outs,
              device_check_stats& stats);

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

/// Single-predicate facade over async_multi_check (the paper's original
/// Section V-C row pipeline shape).
class async_edge_check {
 public:
  async_edge_check(device::stream& s, std::vector<packed_edge> edges,
                   const device_check_config& cfg,
                   executor_choice choice = executor_choice::automatic,
                   std::size_t brute_threshold = default_brute_threshold);

  /// Blocks until the enqueued work completes; appends violations.
  /// Must be called exactly once.
  void finish(std::vector<checks::violation>& out, device_check_stats& stats);

 private:
  async_multi_check inner_;
};

/// Pack one polygon's edges (appending), tagging them with `poly_id`/`group`.
void pack_polygon_edges(const polygon& poly, std::uint32_t poly_id, std::uint16_t group,
                        std::vector<packed_edge>& out);

}  // namespace odrc::sweep
