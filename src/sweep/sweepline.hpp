// Sweepline algorithms (paper Section IV-D, Fig. 3; Listing 2).
//
// The sequential mode detects potentially-violating object pairs by sweeping
// a conceptual horizontal line from top to bottom over MBRs: when an MBR's
// top side is reached its x-interval is inserted into an interval tree and
// queried for overlaps; when its bottom side is reached the interval is
// removed. Every pair of overlapping MBRs is reported exactly once.
//
// The generic `sweepline` functor reproduces the paper's Listing 2: the
// executor parameter selects the CPU or the device path via compile-time
// type traits (`constexpr if`), no runtime branching.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "device/device.hpp"
#include "infra/execution.hpp"
#include "infra/geometry.hpp"
#include "infra/interval_tree.hpp"

namespace odrc::sweep {

struct sweep_stats {
  std::uint64_t events = 0;
  std::uint64_t pairs_reported = 0;
  std::size_t max_live_intervals = 0;

  sweep_stats& operator+=(const sweep_stats& o) {
    events += o.events;
    pairs_reported += o.pairs_reported;
    max_live_intervals = std::max(max_live_intervals, o.max_live_intervals);
    return *this;
  }
};

/// Report every unordered pair (i, j), i < j, of rectangles whose closed
/// extents overlap (touching counts). Empty rectangles never pair.
/// Complexity O(n log n + k) with k pairs, the classic result of [1].
void overlap_pairs(std::span<const rect> rects,
                   const std::function<void(std::uint32_t, std::uint32_t)>& report,
                   sweep_stats* stats = nullptr);

/// Same, with every rectangle inflated by `inflate` before testing — the
/// engine inflates by the rule distance so that MBR-disjoint pairs are
/// soundly pruned (Section IV-C).
void overlap_pairs_inflated(std::span<const rect> rects, coord_t inflate,
                            const std::function<void(std::uint32_t, std::uint32_t)>& report,
                            sweep_stats* stats = nullptr);

/// Generic sweepline functor (paper Listing 2). Applies `op(status, event)`
/// to every event in [first, last) in order. With a sequenced executor the
/// loop runs inline on the host; with a device executor it is appended to
/// the stream as a single-thread kernel, ordered after previously enqueued
/// device work (event order is inherently sequential — the *parallel* device
/// sweep restructures the problem instead, see device_sweep.hpp).
template <execution::executor Executor, typename EventIt, typename Status, typename Op>
void sweepline(Executor&& exec, EventIt first, EventIt last, Status* status, Op op) {
  if constexpr (execution::is_sequenced_executor_v<Executor>) {
    for (auto it = first; it != last; ++it) op(*status, *it);
  } else {
    static_assert(execution::is_device_executor_v<Executor>);
    exec.stream->launch(1, 1, [first, last, status, op](device::thread_id) {
      for (auto it = first; it != last; ++it) op(*status, *it);
    });
  }
}

}  // namespace odrc::sweep
