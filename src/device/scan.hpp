// Device-side parallel primitives: blocked exclusive/inclusive scan and
// reduce over device buffers.
//
// The parallel sweepline (paper Section IV-E) needs a scan to determine each
// edge's check range before the per-edge check kernel runs. The scan here is
// the classic three-phase blocked algorithm: (1) per-block reduction kernel,
// (2) single-block scan of the block sums, (3) per-element offset-add kernel
// — the same decomposition a CUDA implementation would use, so the simulated
// kernel-launch counts are representative.
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.hpp"

namespace odrc::device {

inline constexpr std::uint32_t scan_block_size = 256;

/// Exclusive prefix sum of `in` into `out` (both device buffers of length n),
/// enqueued on `s`. out[i] = sum of in[0..i-1]; out[0] = 0.
/// Returns nothing; the result is available once the stream reaches the end
/// of the enqueued ops.
inline void exclusive_scan(stream& s, const std::uint32_t* in, std::uint32_t* out,
                           std::uint32_t n, std::uint32_t* block_sums_scratch) {
  if (n == 0) return;
  const std::uint32_t blocks = (n + scan_block_size - 1) / scan_block_size;

  // Phase 1: each block-thread 0 serially scans its block into `out` and
  // writes the block total. (Per-lane tree scan inside a block would change
  // nothing observable in the simulator; one thread per block keeps the
  // kernel body race-free without simulated shared memory.)
  s.launch(blocks, 1, [in, out, n, block_sums_scratch](thread_id t) {
    const std::uint32_t lo = t.block * scan_block_size;
    const std::uint32_t hi = std::min(n, lo + scan_block_size);
    std::uint32_t acc = 0;
    for (std::uint32_t i = lo; i < hi; ++i) {
      out[i] = acc;
      acc += in[i];
    }
    block_sums_scratch[t.block] = acc;
  });

  // Phase 2: scan the block sums with a single thread.
  s.launch(1, 1, [block_sums_scratch, blocks](thread_id) {
    std::uint32_t acc = 0;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::uint32_t v = block_sums_scratch[b];
      block_sums_scratch[b] = acc;
      acc += v;
    }
  });

  // Phase 3: add each block's offset to its elements.
  s.launch(blocks, scan_block_size, [out, n, block_sums_scratch](thread_id t) {
    const std::uint32_t i = t.global();
    if (i < n) out[i] += block_sums_scratch[t.block];
  });
}

/// Sum-reduce a device buffer into reduce_out[0].
inline void reduce_sum(stream& s, const std::uint32_t* in, std::uint32_t n,
                       std::uint32_t* block_sums_scratch, std::uint32_t* reduce_out) {
  if (n == 0) {
    s.launch(1, 1, [reduce_out](thread_id) { reduce_out[0] = 0; });
    return;
  }
  const std::uint32_t blocks = (n + scan_block_size - 1) / scan_block_size;
  s.launch(blocks, 1, [in, n, block_sums_scratch](thread_id t) {
    const std::uint32_t lo = t.block * scan_block_size;
    const std::uint32_t hi = std::min(n, lo + scan_block_size);
    std::uint32_t acc = 0;
    for (std::uint32_t i = lo; i < hi; ++i) acc += in[i];
    block_sums_scratch[t.block] = acc;
  });
  s.launch(1, 1, [block_sums_scratch, blocks, reduce_out](thread_id) {
    std::uint32_t acc = 0;
    for (std::uint32_t b = 0; b < blocks; ++b) acc += block_sums_scratch[b];
    reduce_out[0] = acc;
  });
}

/// Number of scratch slots exclusive_scan/reduce_sum need for length n.
[[nodiscard]] inline std::uint32_t scan_scratch_size(std::uint32_t n) {
  return (n + scan_block_size - 1) / scan_block_size + 1;
}

}  // namespace odrc::device
