// Simulated GPGPU substrate.
//
// The paper's parallel mode runs CUDA kernels on an NVIDIA GTX 1660Ti. This
// reproduction has no GPU, so we substitute a software device that preserves
// the *programming model* the paper's algorithms are written against
// (Section II "General-Purpose GPU and CUDA", Section V-C "Heterogeneous
// Computing via Asynchronous Operations"):
//
//  - device memory distinct from host memory: allocations live in a device
//    arena; kernels only touch device buffers, so every host<->device
//    transfer is explicit, exactly as in CUDA;
//  - streams: ordered queues of asynchronous operations (copies, kernel
//    launches, stream-ordered alloc/free, host callbacks), executed by a
//    per-stream dispatcher thread so host code genuinely overlaps with
//    "device" work — the property Section V-C exploits to hide row i+1's
//    host preprocessing under row i's checks;
//  - SPMD kernel launches: a kernel is a callable invoked once per thread
//    index over a grid x block index space, executed by a worker pool (the
//    simulated SMs); per-thread code must be data-parallel and race-free,
//    mirroring CUDA thread semantics;
//  - events for cross-stream synchronization;
//  - a stream-ordered allocator (malloc_async / free_async), the analogue of
//    cudaMallocAsync from the Stream Ordered Memory Allocator the paper uses.
//
// Only throughput differs from real silicon. Counters (kernels launched,
// bytes copied, total thread invocations) are exposed so benches can report
// device work alongside wall time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "infra/thread_pool.hpp"

namespace odrc::device {

/// Thread index passed to kernels; mirrors CUDA's built-in variables.
struct thread_id {
  std::uint32_t block;       ///< blockIdx.x
  std::uint32_t lane;        ///< threadIdx.x
  std::uint32_t block_dim;   ///< blockDim.x
  std::uint32_t grid_dim;    ///< gridDim.x

  /// Global linear index (blockIdx.x * blockDim.x + threadIdx.x).
  [[nodiscard]] constexpr std::uint32_t global() const { return block * block_dim + lane; }
};

/// A kernel body: invoked once per thread of the launch configuration.
using kernel_fn = std::function<void(thread_id)>;

class stream;

/// The simulated device: owns the memory arena and the SM worker pool.
/// One context is typically shared process-wide (see device::instance()).
class context {
 public:
  /// `sm_workers` controls the worker pool emulating streaming
  /// multiprocessors; 0 = hardware concurrency. `launch_latency_ns` models
  /// the fixed cost of a kernel launch (driver + dispatch overhead, ~5-10us
  /// on real CUDA devices); -1 reads ODRC_DEVICE_LAUNCH_NS (default 8000).
  /// This latency is what makes the brute-force executor competitive on
  /// small tasks (paper Section IV-E) — without it a software simulator
  /// would make the two-kernel sweep win everywhere.
  explicit context(std::size_t sm_workers = 0, std::int64_t launch_latency_ns = -1);
  ~context();

  context(const context&) = delete;
  context& operator=(const context&) = delete;

  /// Synchronous device allocation (cudaMalloc analogue). Returns an opaque
  /// device pointer valid only for device ops and kernel bodies.
  [[nodiscard]] void* malloc(std::size_t bytes);
  void free(void* ptr);

  /// Blocks until every stream created from this context is idle
  /// (cudaDeviceSynchronize analogue).
  void synchronize();

  [[nodiscard]] std::size_t sm_worker_count() const { return pool_.worker_count(); }
  [[nodiscard]] std::int64_t launch_latency_ns() const { return launch_latency_ns_; }

  /// Modeled host<->device copy bandwidth in bytes/us (0 = infinite). Set
  /// via ODRC_DEVICE_GBPS (default 12, a PCIe 3.0 x16 ballpark). Copies spin
  /// for bytes/bandwidth before executing, so Section V-C's "data movement
  /// hidden by the layout partitioning" is a measurable effect.
  [[nodiscard]] double copy_bytes_per_us() const { return copy_bytes_per_us_; }

  // --- instrumentation -----------------------------------------------------
  [[nodiscard]] std::uint64_t kernels_launched() const { return kernels_launched_; }
  [[nodiscard]] std::uint64_t threads_executed() const { return threads_executed_; }
  [[nodiscard]] std::uint64_t bytes_h2d() const { return bytes_h2d_; }
  [[nodiscard]] std::uint64_t bytes_d2h() const { return bytes_d2h_; }
  [[nodiscard]] std::size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total modeled launch overhead spun so far (launches x latency).
  [[nodiscard]] std::uint64_t launch_latency_paid_ns() const {
    return kernels_launched_.load(std::memory_order_relaxed) *
           static_cast<std::uint64_t>(launch_latency_ns_);
  }
  void reset_counters();

  /// Process-wide default device.
  static context& instance();

 private:
  friend class stream;

  void run_kernel(std::uint32_t grid, std::uint32_t block, const kernel_fn& k);
  /// Registers the stream and returns its process-unique id (trace track).
  std::uint32_t register_stream(stream* s);
  void unregister_stream(stream* s);

  thread_pool pool_;
  std::int64_t launch_latency_ns_ = 0;
  double copy_bytes_per_us_ = 0;
  std::mutex streams_mutex_;
  std::vector<stream*> streams_;
  std::uint32_t next_stream_id_ = 0;

  std::mutex alloc_mutex_;
  std::size_t bytes_allocated_ = 0;

  std::atomic<std::uint64_t> kernels_launched_{0};
  std::atomic<std::uint64_t> threads_executed_{0};
  std::atomic<std::uint64_t> bytes_h2d_{0};
  std::atomic<std::uint64_t> bytes_d2h_{0};
};

/// An event marks a point in a stream's work queue; host code or other
/// streams can wait on it (cudaEvent analogue).
class event {
 public:
  event() : state_(std::make_shared<state>()) {}

  /// Block the calling (host) thread until the event has fired.
  void wait() const;

  [[nodiscard]] bool ready() const { return state_->fired.load(std::memory_order_acquire); }

 private:
  friend class stream;
  struct state {
    std::atomic<bool> fired{false};
    std::mutex m;
    std::condition_variable cv;
  };
  std::shared_ptr<state> state_;
};

/// An ordered asynchronous work queue (cudaStream_t analogue). All enqueue
/// operations return immediately; a dedicated dispatcher thread executes the
/// queued operations in FIFO order.
class stream {
 public:
  explicit stream(context& ctx = context::instance());
  ~stream();

  stream(const stream&) = delete;
  stream& operator=(const stream&) = delete;

  /// Asynchronous host-to-device copy. The host range must stay alive until
  /// the stream reaches this operation (synchronize or record+wait an event).
  void memcpy_h2d(void* dst_device, const void* src_host, std::size_t bytes);

  /// Asynchronous device-to-host copy; same lifetime contract.
  void memcpy_d2h(void* dst_host, const void* src_device, std::size_t bytes);

  /// Launch `grid` x `block` invocations of `k`, ordered after all previous
  /// operations on this stream.
  void launch(std::uint32_t grid, std::uint32_t block, kernel_fn k);

  /// Stream-ordered allocation: the pointer is handed to `sink` when the
  /// stream reaches this op (cudaMallocAsync analogue — the returned memory
  /// must only be used by *later* ops on this stream).
  void malloc_async(std::size_t bytes, const std::function<void(void*)>& sink);

  /// Stream-ordered free.
  void free_async(void* ptr);

  /// Run a host callback in stream order (cudaLaunchHostFunc analogue).
  void host_callback(std::function<void()> fn);

  /// Record an event after all currently queued work.
  void record(event& ev);

  /// Make this stream wait (on the device side) for `ev` before executing
  /// subsequently queued work.
  void wait(const event& ev);

  /// Block the host until all queued work has completed.
  void synchronize();

  [[nodiscard]] context& ctx() { return ctx_; }

  /// Process-unique id; the stream's trace track is named "stream <id>".
  [[nodiscard]] std::uint32_t id() const { return id_; }

 private:
  void dispatcher_loop();
  void enqueue(std::function<void()> op);

  context& ctx_;
  std::uint32_t id_ = 0;
  std::thread dispatcher_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  bool stop_ = false;
  bool busy_ = false;
};

/// Typed device buffer: RAII wrapper over context::malloc with explicit
/// transfer helpers. Mirrors the flat edge arrays the paper packs before
/// parallel checks (Section IV-E).
template <typename T>
class buffer {
 public:
  buffer() = default;
  explicit buffer(std::size_t count, context& ctx = context::instance())
      : ctx_(&ctx), count_(count) {
    if (count_ > 0) data_ = static_cast<T*>(ctx_->malloc(count_ * sizeof(T)));
  }

  buffer(buffer&& o) noexcept : ctx_(o.ctx_), data_(o.data_), count_(o.count_) {
    o.data_ = nullptr;
    o.count_ = 0;
  }
  buffer& operator=(buffer&& o) noexcept {
    if (this != &o) {
      release();
      ctx_ = o.ctx_;
      data_ = o.data_;
      count_ = o.count_;
      o.data_ = nullptr;
      o.count_ = 0;
    }
    return *this;
  }
  buffer(const buffer&) = delete;
  buffer& operator=(const buffer&) = delete;
  ~buffer() { release(); }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Device pointer — valid inside kernels and for stream copies only.
  [[nodiscard]] T* device_ptr() const { return data_; }

  /// Enqueue an async upload of `src` (must outlive the op on the stream).
  void upload(stream& s, std::span<const T> src) {
    s.memcpy_h2d(data_, src.data(), std::min(src.size(), count_) * sizeof(T));
  }

  /// Enqueue an async download into `dst`.
  void download(stream& s, std::span<T> dst) const {
    s.memcpy_d2h(dst.data(), data_, std::min(dst.size(), count_) * sizeof(T));
  }

 private:
  void release() {
    if (data_) ctx_->free(data_);
    data_ = nullptr;
  }

  context* ctx_ = nullptr;
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace odrc::device
