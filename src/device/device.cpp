#include "device/device.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <new>

#include "infra/logger.hpp"
#include "infra/trace.hpp"

namespace odrc::device {

// ---------------------------------------------------------------------------
// context
// ---------------------------------------------------------------------------

namespace {

std::int64_t launch_latency_from_env() {
  if (const char* env = std::getenv("ODRC_DEVICE_LAUNCH_NS")) {
    return std::strtoll(env, nullptr, 10);
  }
  return 8000;  // ~8us, the ballpark of a real cudaLaunchKernel round trip
}

double copy_bandwidth_from_env() {
  double gbps = 12.0;  // PCIe 3.0 x16 effective throughput ballpark
  if (const char* env = std::getenv("ODRC_DEVICE_GBPS")) {
    gbps = std::atof(env);
  }
  if (gbps <= 0) return 0;              // 0 or negative: infinite bandwidth
  return gbps * 1e9 / 1e6;              // bytes per microsecond
}

// Spin for a modeled duration; sleep_for cannot hit microsecond targets.
void spin_ns(std::int64_t ns) {
  if (ns <= 0) return;
  const auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace

context::context(std::size_t sm_workers, std::int64_t launch_latency_ns)
    : pool_(sm_workers),
      launch_latency_ns_(launch_latency_ns >= 0 ? launch_latency_ns : launch_latency_from_env()),
      copy_bytes_per_us_(copy_bandwidth_from_env()) {}

context::~context() = default;

void* context::malloc(std::size_t bytes) {
  void* p = ::operator new(bytes, std::align_val_t{64});
  std::lock_guard lock(alloc_mutex_);
  bytes_allocated_ += bytes;
  return p;
}

void context::free(void* ptr) {
  if (ptr) ::operator delete(ptr, std::align_val_t{64});
}

void context::synchronize() {
  std::vector<stream*> snapshot;
  {
    std::lock_guard lock(streams_mutex_);
    snapshot = streams_;
  }
  for (stream* s : snapshot) s->synchronize();
}

void context::reset_counters() {
  kernels_launched_ = 0;
  threads_executed_ = 0;
  bytes_h2d_ = 0;
  bytes_d2h_ = 0;
}

context& context::instance() {
  static context ctx{[] {
    if (const char* env = std::getenv("ODRC_DEVICE_SMS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }()};
  return ctx;
}

void context::run_kernel(std::uint32_t grid, std::uint32_t block, const kernel_fn& k) {
  const std::size_t total = static_cast<std::size_t>(grid) * block;
  trace::span ts("device", "kernel", "grid", grid, "block", block);
  const std::uint64_t launched = kernels_launched_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (trace::recorder::enabled()) {
    trace::recorder::instance().counter("device", "kernels_launched",
                                        static_cast<std::int64_t>(launched));
    trace::recorder::instance().counter(
        "device", "launch_latency_ns_paid",
        static_cast<std::int64_t>(launched * static_cast<std::uint64_t>(launch_latency_ns_)));
  }
  // Model the fixed launch overhead with a spin wait: sleep_for cannot hit
  // single-microsecond targets reliably, and the dispatcher thread doing the
  // spinning is exactly the resource a real launch would occupy.
  spin_ns(launch_latency_ns_);
  threads_executed_.fetch_add(total, std::memory_order_relaxed);
  pool_.parallel_for(0, total, [&](std::size_t i) {
    const auto gi = static_cast<std::uint32_t>(i);
    k(thread_id{gi / block, gi % block, block, grid});
  });
}

std::uint32_t context::register_stream(stream* s) {
  std::lock_guard lock(streams_mutex_);
  streams_.push_back(s);
  return next_stream_id_++;
}

void context::unregister_stream(stream* s) {
  std::lock_guard lock(streams_mutex_);
  streams_.erase(std::find(streams_.begin(), streams_.end(), s));
}

// ---------------------------------------------------------------------------
// event
// ---------------------------------------------------------------------------

void event::wait() const {
  if (state_->fired.load(std::memory_order_acquire)) return;
  std::unique_lock lock(state_->m);
  state_->cv.wait(lock, [&] { return state_->fired.load(std::memory_order_acquire); });
}

// ---------------------------------------------------------------------------
// stream
// ---------------------------------------------------------------------------

stream::stream(context& ctx) : ctx_(ctx) {
  id_ = ctx_.register_stream(this);
  dispatcher_ = std::thread([this] {
    // The dispatcher thread IS the stream's timeline: naming its trace track
    // puts every kernel/copy span of this stream on one per-stream row.
    trace::recorder::instance().name_this_thread("stream " + std::to_string(id_));
    dispatcher_loop();
  });
}

stream::~stream() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
  ctx_.unregister_stream(this);
}

void stream::enqueue(std::function<void()> op) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(op));
  }
  cv_.notify_one();
}

void stream::dispatcher_loop() {
  for (;;) {
    std::function<void()> op;
    {
      std::unique_lock lock(mutex_);
      if (queue_.empty()) {
        busy_ = false;
        idle_cv_.notify_all();
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
      }
      busy_ = true;
      op = std::move(queue_.front());
      queue_.pop_front();
    }
    op();
  }
}

void stream::memcpy_h2d(void* dst_device, const void* src_host, std::size_t bytes) {
  enqueue([this, dst_device, src_host, bytes] {
    trace::span ts("device", "h2d", "bytes", static_cast<std::int64_t>(bytes));
    if (ctx_.copy_bytes_per_us() > 0) {
      spin_ns(static_cast<std::int64_t>(1000.0 * static_cast<double>(bytes) /
                                        ctx_.copy_bytes_per_us()));
    }
    std::memcpy(dst_device, src_host, bytes);
    const std::uint64_t total = ctx_.bytes_h2d_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    trace::counter("device", "bytes_h2d", static_cast<std::int64_t>(total));
  });
}

void stream::memcpy_d2h(void* dst_host, const void* src_device, std::size_t bytes) {
  enqueue([this, dst_host, src_device, bytes] {
    trace::span ts("device", "d2h", "bytes", static_cast<std::int64_t>(bytes));
    if (ctx_.copy_bytes_per_us() > 0) {
      spin_ns(static_cast<std::int64_t>(1000.0 * static_cast<double>(bytes) /
                                        ctx_.copy_bytes_per_us()));
    }
    std::memcpy(dst_host, src_device, bytes);
    const std::uint64_t total = ctx_.bytes_d2h_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    trace::counter("device", "bytes_d2h", static_cast<std::int64_t>(total));
  });
}

void stream::launch(std::uint32_t grid, std::uint32_t block, kernel_fn k) {
  if (grid == 0 || block == 0) return;
  enqueue([this, grid, block, k = std::move(k)] { ctx_.run_kernel(grid, block, k); });
}

void stream::malloc_async(std::size_t bytes, const std::function<void(void*)>& sink) {
  enqueue([this, bytes, sink] { sink(ctx_.malloc(bytes)); });
}

void stream::free_async(void* ptr) {
  enqueue([this, ptr] { ctx_.free(ptr); });
}

void stream::host_callback(std::function<void()> fn) { enqueue(std::move(fn)); }

void stream::record(event& ev) {
  auto st = ev.state_;
  enqueue([st] {
    {
      std::lock_guard lock(st->m);
      st->fired.store(true, std::memory_order_release);
    }
    st->cv.notify_all();
  });
}

void stream::wait(const event& ev) {
  auto st = ev.state_;
  enqueue([st] {
    if (st->fired.load(std::memory_order_acquire)) return;
    std::unique_lock lock(st->m);
    st->cv.wait(lock, [&] { return st->fired.load(std::memory_order_acquire); });
  });
}

void stream::synchronize() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

}  // namespace odrc::device
