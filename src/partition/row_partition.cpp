#include "partition/row_partition.hpp"

#include <algorithm>
#include <cassert>

#include "infra/pigeonhole.hpp"

namespace odrc::partition {

namespace {

// Assign every input interval to the merged group containing it (each input
// lies inside exactly one group by construction of the merge).
void assign_groups(std::span<const interval> inputs, grouping& g) {
  std::vector<coord_t> starts;
  starts.reserve(g.groups.size());
  for (const interval& m : g.groups) starts.push_back(m.lo);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto it = std::upper_bound(starts.begin(), starts.end(), inputs[i].lo);
    const auto gi = static_cast<std::uint32_t>(it - starts.begin() - 1);
    assert(gi < g.groups.size());
    assert(g.groups[gi].lo <= inputs[i].lo && inputs[i].hi <= g.groups[gi].hi);
    g.group_of[i] = gi;
  }
}

// The raw-coordinate pigeonhole array (the paper's Theta(k+N) path, no
// sorting at all) wins when "k is typically much larger than N": its cost is
// the domain span N, paid in init + scan, so it only beats the O(k log k)
// compressed path when the span is within a small multiple of k — and must
// stay within a sane scratch size regardless.
constexpr std::int64_t direct_domain_limit = std::int64_t{1} << 22;

bool use_direct_pigeonhole(std::int64_t span, std::size_t k) {
  return span <= direct_domain_limit && span <= 4 * static_cast<std::int64_t>(k);
}

}  // namespace

grouping merge_1d(std::span<const interval> intervals, merge_strategy strategy) {
  grouping g;
  g.group_of.assign(intervals.size(), 0);
  if (intervals.empty()) return g;

  if (strategy == merge_strategy::pigeonhole) {
    coord_t lo = intervals[0].lo, hi = intervals[0].hi;
    for (const interval& iv : intervals) {
      lo = std::min(lo, iv.lo);
      hi = std::max(hi, iv.hi);
    }
    if (use_direct_pigeonhole(static_cast<std::int64_t>(hi) - lo, intervals.size())) {
      pigeonhole_merger merger(lo, hi);
      for (const interval& iv : intervals) merger.add(iv);
      g.groups = merger.merged();
      assign_groups(intervals, g);
      return g;
    }
    // Astronomical spans (sparse coordinates): fall through to the
    // coordinate-compressed path below.
  }

  // Coordinate-compress endpoints so the pigeonhole domain is the number of
  // distinct coordinates (the paper's N), not the raw coordinate range.
  std::vector<coord_t> coords;
  coords.reserve(intervals.size() * 2);
  for (const interval& iv : intervals) {
    coords.push_back(iv.lo);
    coords.push_back(iv.hi);
  }
  std::sort(coords.begin(), coords.end());
  coords.erase(std::unique(coords.begin(), coords.end()), coords.end());
  auto rank = [&](coord_t v) {
    return static_cast<coord_t>(std::lower_bound(coords.begin(), coords.end(), v) -
                                coords.begin());
  };

  std::vector<interval> ranked(intervals.size());
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    ranked[i] = {rank(intervals[i].lo), rank(intervals[i].hi),
                 static_cast<std::uint32_t>(i)};
  }

  std::vector<interval> merged_ranked;
  if (strategy == merge_strategy::pigeonhole) {
    pigeonhole_merger merger(0, static_cast<coord_t>(coords.size()) - 1);
    for (const interval& iv : ranked) merger.add(iv);
    merged_ranked = merger.merged();
  } else {
    merged_ranked = merge_intervals_by_sort(ranked);
  }

  // Map group extents back to real coordinates.
  g.groups.reserve(merged_ranked.size());
  for (std::size_t gi = 0; gi < merged_ranked.size(); ++gi) {
    const interval& m = merged_ranked[gi];
    g.groups.push_back({coords[static_cast<std::size_t>(m.lo)],
                        coords[static_cast<std::size_t>(m.hi)],
                        static_cast<std::uint32_t>(gi)});
  }

  // Assign inputs: each input interval lies inside exactly one merged group;
  // binary-search its lo endpoint among group starts.
  std::vector<coord_t> starts;
  starts.reserve(merged_ranked.size());
  for (const interval& m : merged_ranked) starts.push_back(m.lo);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto it = std::upper_bound(starts.begin(), starts.end(), ranked[i].lo);
    const auto gi = static_cast<std::uint32_t>(it - starts.begin() - 1);
    assert(gi < g.groups.size());
    assert(merged_ranked[gi].lo <= ranked[i].lo && ranked[i].hi <= merged_ranked[gi].hi);
    g.group_of[i] = gi;
  }
  return g;
}

partition_result partition_rows(std::span<const rect> mbrs, coord_t distance,
                                merge_strategy strategy) {
  partition_result result;
  const coord_t h = static_cast<coord_t>((distance + 1) / 2);  // ceil(d/2)

  // Collect non-empty inputs with inflated extents.
  std::vector<interval> y_ivs;
  std::vector<std::uint32_t> input_of;  // dense index -> original index
  y_ivs.reserve(mbrs.size());
  for (std::uint32_t i = 0; i < mbrs.size(); ++i) {
    if (mbrs[i].empty()) continue;
    const rect r = mbrs[i].inflated(h);
    y_ivs.push_back({r.y_min, r.y_max, static_cast<std::uint32_t>(y_ivs.size())});
    input_of.push_back(i);
  }
  if (y_ivs.empty()) return result;

  const grouping rows = merge_1d(y_ivs, strategy);
  result.rows.resize(rows.groups.size());
  std::vector<std::vector<std::uint32_t>> row_members(rows.groups.size());
  for (std::size_t i = 0; i < y_ivs.size(); ++i) {
    row_members[rows.group_of[i]].push_back(input_of[i]);
  }

  // Second pass within each row: merge along x to form clips (intuition 2).
  for (std::size_t ri = 0; ri < rows.groups.size(); ++ri) {
    row& out = result.rows[ri];
    out.y_range = rows.groups[ri];
    const auto& members = row_members[ri];
    std::vector<interval> x_ivs;
    x_ivs.reserve(members.size());
    for (std::size_t j = 0; j < members.size(); ++j) {
      const rect r = mbrs[members[j]].inflated(h);
      x_ivs.push_back({r.x_min, r.x_max, static_cast<std::uint32_t>(j)});
    }
    const grouping cols = merge_1d(x_ivs, strategy);
    out.clips.resize(cols.groups.size());
    for (std::size_t ci = 0; ci < cols.groups.size(); ++ci) {
      out.clips[ci].x_range = cols.groups[ci];
    }
    for (std::size_t j = 0; j < members.size(); ++j) {
      out.clips[cols.group_of[j]].members.push_back(members[j]);
    }
  }
  return result;
}

}  // namespace odrc::partition
