// Adaptive row-based layout partition (paper Section IV-B, Algorithm 1).
//
// Given the MBRs of a set of objects (cell instances or polygons), the
// partitioner merges their y-extents into maximal non-overlapping bands
// ("rows"): objects in different rows cannot interact, so checks never cross
// a row boundary — enabling both check pruning and row-parallel processing.
// Within each row the same merge runs along x, yielding independent "clips"
// (the paper's intuition 2: once grouped into rows, x-extents separate too).
//
// Interaction distance: callers pass the rule's minimum distance `d`; every
// MBR is inflated by ceil(d/2) before merging, so two objects in different
// rows/clips are separated by strictly more than d and can be checked
// independently without missing violations.
//
// The y-interval merge is the paper's Theta(k + N) pigeonhole algorithm over
// the coordinate-compressed domain (N = number of distinct interval
// endpoints, k = number of objects). A sort-based fallback is available for
// the ablation bench.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "infra/geometry.hpp"
#include "infra/interval.hpp"

namespace odrc::partition {

/// An independent group of objects within a row (x-separated).
struct clip {
  interval x_range{};                 ///< inflated x extent of the clip
  std::vector<std::uint32_t> members; ///< indices into the input MBR span
};

/// A horizontal band of mutually non-interacting objects.
struct row {
  interval y_range{};  ///< inflated y extent of the row
  std::vector<clip> clips;

  [[nodiscard]] std::size_t member_count() const {
    std::size_t n = 0;
    for (const clip& c : clips) n += c.members.size();
    return n;
  }
};

/// Algorithm selector for the interval merge (ablation: paper argues the
/// pigeonhole array wins because k >> N and arrays have better locality).
enum class merge_strategy { pigeonhole, sort };

struct partition_result {
  std::vector<row> rows;

  [[nodiscard]] std::size_t clip_count() const {
    std::size_t n = 0;
    for (const row& r : rows) n += r.clips.size();
    return n;
  }
};

/// Partition `mbrs` with interaction distance `distance` (in dbu).
/// Empty MBRs are skipped (they appear in no row).
[[nodiscard]] partition_result partition_rows(std::span<const rect> mbrs, coord_t distance,
                                              merge_strategy strategy = merge_strategy::pigeonhole);

/// The 1-D merge underlying partition_rows, exposed for tests/benches:
/// merges inflated [lo, hi] intervals over a coordinate-compressed domain and
/// returns, for each input, the index of the merged group it belongs to,
/// plus the group extents.
struct grouping {
  std::vector<std::uint32_t> group_of;  ///< input index -> group index
  std::vector<interval> groups;         ///< merged extents, ascending
};

[[nodiscard]] grouping merge_1d(std::span<const interval> intervals, merge_strategy strategy);

}  // namespace odrc::partition
