// Violation records produced by every checker.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "infra/geometry.hpp"

namespace odrc::checks {

enum class rule_kind : std::uint8_t {
  width,         ///< minimum width of a shape (intra-polygon, intra-layer)
  spacing,       ///< minimum spacing between shapes (inter-polygon, intra-layer)
  enclosure,     ///< minimum enclosure of one layer by another (inter-layer)
  area,          ///< minimum shape area (intra-polygon)
  rectilinear,   ///< shapes must be axis-aligned
  custom,        ///< user predicate via rule::ensures()
  overlap_area,  ///< min area of each connected (A AND B) region (inter-layer)
  notcut_area,   ///< min area of each connected (A NOT B) region (inter-layer)
  coloring,      ///< layer must be 2-colorable under same-mask spacing (LELE)
};

[[nodiscard]] constexpr std::string_view rule_kind_name(rule_kind k) {
  switch (k) {
    case rule_kind::width: return "width";
    case rule_kind::spacing: return "spacing";
    case rule_kind::enclosure: return "enclosure";
    case rule_kind::area: return "area";
    case rule_kind::rectilinear: return "rectilinear";
    case rule_kind::custom: return "custom";
    case rule_kind::overlap_area: return "overlap_area";
    case rule_kind::notcut_area: return "notcut_area";
    case rule_kind::coloring: return "coloring";
  }
  return "?";
}

/// One design rule violation, reported in top-cell coordinates.
///
/// Distance-rule violations carry the two offending edges; area and shape
/// violations carry the polygon's MBR in `e1`/`e2` degenerate form (the MBR
/// diagonal corners) and the measured quantity.
struct violation {
  rule_kind kind = rule_kind::width;
  std::int16_t layer1 = 0;
  std::int16_t layer2 = 0;  ///< second layer for enclosure rules; else == layer1
  edge e1{};
  edge e2{};
  area_t measured = 0;  ///< squared distance for distance rules, area for area rules

  friend bool operator==(const violation&, const violation&) = default;
};

std::ostream& operator<<(std::ostream& os, const violation& v);

/// Canonical form for set comparison across checkers: orders the two edges
/// deterministically so the same geometric violation found by different
/// algorithms compares equal.
[[nodiscard]] violation normalized(const violation& v);

/// Sort + normalize a batch; used by tests to diff checker outputs.
void normalize_all(std::vector<violation>& vs);

}  // namespace odrc::checks
