#include "checks/poly_checks.hpp"

namespace odrc::checks {

void check_width(const polygon& poly, std::int16_t layer, coord_t min_width,
                 std::vector<violation>& out, check_stats& stats) {
  ++stats.polygons_tested;
  const std::size_t n = poly.edge_count();
  for (std::size_t i = 0; i < n; ++i) {
    const edge ei = poly.edge_at(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      const edge ej = poly.edge_at(j);
      ++stats.edge_pairs_tested;
      if (auto d = check_width_pair(ei, ej, min_width)) {
        out.push_back(make_width_violation(layer, ei, ej, *d));
      }
    }
  }
}

void check_area(const polygon& poly, std::int16_t layer, area_t min_area,
                std::vector<violation>& out, check_stats& stats) {
  ++stats.polygons_tested;
  const area_t a = poly.area();
  if (a < min_area) {
    const rect m = poly.mbr();
    out.push_back({rule_kind::area, layer, layer,
                   edge{{m.x_min, m.y_min}, {m.x_max, m.y_min}},
                   edge{{m.x_min, m.y_max}, {m.x_max, m.y_max}}, a});
  }
}

void check_rectilinear(const polygon& poly, std::int16_t layer, std::vector<violation>& out,
                       check_stats& stats) {
  ++stats.polygons_tested;
  if (!poly.is_rectilinear()) {
    const rect m = poly.mbr();
    out.push_back({rule_kind::rectilinear, layer, layer,
                   edge{{m.x_min, m.y_min}, {m.x_max, m.y_min}},
                   edge{{m.x_min, m.y_max}, {m.x_max, m.y_max}}, 0});
  }
}

void check_spacing(const polygon& a, const polygon& b, std::int16_t layer, coord_t min_space,
                   std::vector<violation>& out, check_stats& stats) {
  check_spacing(a, b, layer, spacing_table::simple(min_space), out, stats);
}

void check_spacing(const polygon& a, const polygon& b, std::int16_t layer,
                   const spacing_table& table, std::vector<violation>& out, check_stats& stats) {
  ++stats.polygon_pairs_tested;
  const std::size_t na = a.edge_count(), nb = b.edge_count();
  for (std::size_t i = 0; i < na; ++i) {
    const edge ei = a.edge_at(i);
    for (std::size_t j = 0; j < nb; ++j) {
      const edge ej = b.edge_at(j);
      ++stats.edge_pairs_tested;
      if (auto d2 = check_space_pair_table(ei, ej, /*same_polygon=*/false, table)) {
        out.push_back(make_space_violation(layer, ei, ej, *d2));
      }
    }
  }
}

void check_spacing_notch(const polygon& poly, std::int16_t layer, coord_t min_space,
                         std::vector<violation>& out, check_stats& stats) {
  check_spacing_notch(poly, layer, spacing_table::simple(min_space), out, stats);
}

void check_spacing_notch(const polygon& poly, std::int16_t layer, const spacing_table& table,
                         std::vector<violation>& out, check_stats& stats) {
  ++stats.polygons_tested;
  const std::size_t n = poly.edge_count();
  for (std::size_t i = 0; i < n; ++i) {
    const edge ei = poly.edge_at(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      // Adjacent edges share a vertex; their Euclidean distance is zero by
      // construction, not a notch.
      if (j == i + 1 || (i == 0 && j == n - 1)) continue;
      const edge ej = poly.edge_at(j);
      ++stats.edge_pairs_tested;
      if (auto d2 = check_space_pair_table(ei, ej, /*same_polygon=*/true, table)) {
        out.push_back(make_space_violation(layer, ei, ej, *d2));
      }
    }
  }
}

bool check_enclosure(const polygon& inner, const polygon& outer, std::int16_t inner_layer,
                     std::int16_t outer_layer, coord_t min_enclosure, std::vector<violation>& out,
                     check_stats& stats) {
  ++stats.polygon_pairs_tested;
  const std::size_t ni = inner.edge_count(), no = outer.edge_count();
  for (std::size_t i = 0; i < ni; ++i) {
    const edge ei = inner.edge_at(i);
    for (std::size_t j = 0; j < no; ++j) {
      const edge ej = outer.edge_at(j);
      ++stats.edge_pairs_tested;
      if (auto m = check_enclosure_pair(ei, ej, min_enclosure)) {
        out.push_back(make_enclosure_violation(inner_layer, outer_layer, ei, ej, *m));
      }
    }
  }
  // Containment: all inner vertices inside the outer polygon. Rectilinear
  // shapes with all vertices inside (boundary included) are contained for
  // the rectangle/wire geometry this engine targets.
  for (const point& p : inner.vertices()) {
    if (!outer.contains(p)) return false;
  }
  return true;
}

bool polygons_within(const polygon& a, const polygon& b, coord_t d) {
  if (!a.mbr().inflated(d).overlaps(b.mbr())) return false;
  // Overlapping interiors: distance zero. Checking one vertex of each side
  // handles the containment case edge-distance misses.
  if (b.contains(a.vertices().front()) || a.contains(b.vertices().front())) return true;
  const area_t limit = static_cast<area_t>(d) * d;
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    const edge ea = a.edge_at(i);
    for (std::size_t j = 0; j < b.edge_count(); ++j) {
      if (squared_distance(ea, b.edge_at(j)) < limit) return true;
    }
  }
  return false;
}

void report_uncontained(const polygon& inner, std::int16_t inner_layer, std::int16_t outer_layer,
                        std::vector<violation>& out) {
  const rect m = inner.mbr();
  out.push_back({rule_kind::enclosure, inner_layer, outer_layer,
                 edge{{m.x_min, m.y_min}, {m.x_max, m.y_min}},
                 edge{{m.x_min, m.y_max}, {m.x_max, m.y_max}}, -1});
}

}  // namespace odrc::checks
