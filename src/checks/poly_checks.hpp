// Polygon-level check drivers.
//
// These functions enumerate edge pairs for one polygon (width, area, shape)
// or one polygon pair (spacing, enclosure) and apply the shared edge-pair
// predicates from edge_checks.hpp. The sequential engine and all CPU
// baselines call these; the parallel mode runs the same predicates inside
// device kernels (checks/device_checks.*).
#pragma once

#include <cstdint>
#include <vector>

#include "checks/edge_checks.hpp"
#include "checks/violation.hpp"
#include "infra/geometry.hpp"

namespace odrc::checks {

/// Work counters, accumulated across calls; benches report these alongside
/// wall time so algorithmic savings are visible on any host.
struct check_stats {
  std::uint64_t edge_pairs_tested = 0;
  std::uint64_t polygon_pairs_tested = 0;
  std::uint64_t polygons_tested = 0;

  check_stats& operator+=(const check_stats& o) {
    edge_pairs_tested += o.edge_pairs_tested;
    polygon_pairs_tested += o.polygon_pairs_tested;
    polygons_tested += o.polygons_tested;
    return *this;
  }
};

/// Minimum-width check of a single polygon: every interior-facing edge pair
/// must be at least `min_width` apart.
void check_width(const polygon& poly, std::int16_t layer, coord_t min_width,
                 std::vector<violation>& out, check_stats& stats);

/// Minimum-area check of a single polygon.
void check_area(const polygon& poly, std::int16_t layer, area_t min_area,
                std::vector<violation>& out, check_stats& stats);

/// Rectilinearity check of a single polygon.
void check_rectilinear(const polygon& poly, std::int16_t layer, std::vector<violation>& out,
                       check_stats& stats);

/// Spacing check between two distinct polygons on the same layer. The caller
/// pre-filters pairs by (inflated) MBR overlap; this routine tests all edge
/// pairs.
void check_spacing(const polygon& a, const polygon& b, std::int16_t layer, coord_t min_space,
                   std::vector<violation>& out, check_stats& stats);

/// Conditional variant: spacing requirement from a PRL table.
void check_spacing(const polygon& a, const polygon& b, std::int16_t layer,
                   const spacing_table& table, std::vector<violation>& out, check_stats& stats);

/// Spacing check within one polygon (notches): exterior-facing edge pairs of
/// the same polygon closer than `min_space`.
void check_spacing_notch(const polygon& poly, std::int16_t layer, coord_t min_space,
                         std::vector<violation>& out, check_stats& stats);

/// Conditional variant.
void check_spacing_notch(const polygon& poly, std::int16_t layer, const spacing_table& table,
                         std::vector<violation>& out, check_stats& stats);

/// Enclosure check of `inner` (e.g. a via cut) by `outer` (e.g. metal):
/// reports margin violations on same-direction facing edge pairs. Returns
/// true iff `inner` is fully contained in `outer` (callers aggregate
/// containment over all candidate outers; an uncontained via is reported by
/// check_enclosure_containment).
bool check_enclosure(const polygon& inner, const polygon& outer, std::int16_t inner_layer,
                     std::int16_t outer_layer, coord_t min_enclosure, std::vector<violation>& out,
                     check_stats& stats);

/// Report an enclosure violation for an inner shape contained by no outer
/// shape (margin "negative infinity"): emitted with the inner MBR diagonal.
void report_uncontained(const polygon& inner, std::int16_t inner_layer, std::int16_t outer_layer,
                        std::vector<violation>& out);

/// True iff the minimum distance between the two polygons' boundaries is
/// strictly below `d` (abutting or overlapping shapes count). Used to build
/// the same-mask conflict graph for multi-patterning coloring checks.
[[nodiscard]] bool polygons_within(const polygon& a, const polygon& b, coord_t d);

}  // namespace odrc::checks
