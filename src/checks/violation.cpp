#include "checks/violation.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

namespace odrc::checks {

std::ostream& operator<<(std::ostream& os, const violation& v) {
  os << rule_kind_name(v.kind) << " L" << v.layer1;
  if (v.layer2 != v.layer1) os << "/L" << v.layer2;
  return os << ' ' << v.e1 << " vs " << v.e2 << " (m=" << v.measured << ')';
}

namespace {

// Total order on edges for canonicalization.
constexpr auto edge_key(const edge& e) {
  return std::tuple{e.from.x, e.from.y, e.to.x, e.to.y};
}

// Order an edge so from <= to lexicographically (direction information is
// irrelevant for identity comparison).
edge canonical_edge(const edge& e) {
  return edge_key(e) <= edge_key(e.reversed()) ? e : e.reversed();
}

constexpr auto violation_key(const violation& v) {
  return std::tuple{static_cast<int>(v.kind), v.layer1, v.layer2, edge_key(v.e1), edge_key(v.e2)};
}

}  // namespace

violation normalized(const violation& v) {
  violation out = v;
  out.e1 = canonical_edge(v.e1);
  out.e2 = canonical_edge(v.e2);
  // Enclosure pairs are ordered (inner, outer); other pairs are symmetric.
  if (out.kind != rule_kind::enclosure && edge_key(out.e2) < edge_key(out.e1)) {
    std::swap(out.e1, out.e2);
  }
  return out;
}

void normalize_all(std::vector<violation>& vs) {
  for (violation& v : vs) v = normalized(v);
  std::sort(vs.begin(), vs.end(),
            [](const violation& a, const violation& b) { return violation_key(a) < violation_key(b); });
  vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
}

}  // namespace odrc::checks
