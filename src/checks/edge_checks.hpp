// Edge-to-edge check semantics (paper Section IV-D "Check Procedures").
//
// Every checker in this repository — OpenDRC sequential, OpenDRC parallel,
// the KLayout-analogue baselines, and the X-Check reimplementation — decides
// whether an edge pair violates a rule with the predicates in this header.
// Checkers differ only in how they *enumerate candidate pairs*; with complete
// enumeration their violation sets are identical by construction, which the
// integration tests assert.
//
// Geometry conventions (see infra/geometry.hpp): polygons are clockwise with
// +y up, so the interior lies to the RIGHT of every directed edge:
//
//   east  edge (left->right): interior below   (outward normal +y)
//   west  edge (right->left): interior above   (outward normal -y)
//   north edge (bottom->top): interior right   (outward normal -x)
//   south edge (top->bottom): interior left    (outward normal +x)
//
// Width  (interior between the pair, same polygon):  the facing edge is
//        anti-parallel and lies on the interior side.
// Spacing (exterior between the pair, different polygons): the facing edge
//        is anti-parallel and lies on the exterior side.
// Enclosure (via inside metal): the metal edge bounding the region in the
//        via edge's outward direction has the SAME direction; the margin is
//        the distance along that outward normal.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "checks/violation.hpp"
#include "infra/geometry.hpp"

namespace odrc::checks {

/// True iff `a` and `b` are anti-parallel with the polygon interior between
/// them: the configuration a width rule constrains. Both edges must belong
/// to the same polygon; the caller guarantees that.
[[nodiscard]] constexpr bool is_width_facing(const edge& a, const edge& b) {
  if (a.horizontal() != b.horizontal()) return false;
  const edge_dir da = a.dir(), db = b.dir();
  if (da != opposite(db)) return false;
  if (projection_overlap(a, b) <= 0) return false;
  if (a.horizontal()) {
    // Interior between: east edge above (interior below it), west edge below
    // (interior above it).
    const edge& east = da == edge_dir::east ? a : b;
    const edge& west = da == edge_dir::east ? b : a;
    return east.level() > west.level();
  }
  // north edge left of south edge.
  const edge& north = da == edge_dir::north ? a : b;
  const edge& south = da == edge_dir::north ? b : a;
  return south.level() > north.level();
}

/// True iff `a` and `b` are anti-parallel with exterior between them: the
/// configuration a spacing rule constrains (edges of different polygons, or
/// a notch of the same polygon).
[[nodiscard]] constexpr bool is_space_facing(const edge& a, const edge& b) {
  if (a.horizontal() != b.horizontal()) return false;
  const edge_dir da = a.dir(), db = b.dir();
  if (da != opposite(db)) return false;
  if (projection_overlap(a, b) <= 0) return false;
  if (a.horizontal()) {
    // Exterior between: west edge (interior above) on top, east edge
    // (interior below) at the bottom.
    const edge& east = da == edge_dir::east ? a : b;
    const edge& west = da == edge_dir::east ? b : a;
    return west.level() > east.level();
  }
  const edge& north = da == edge_dir::north ? a : b;
  const edge& south = da == edge_dir::north ? b : a;
  return north.level() > south.level();
}

/// Width check on a facing pair. Returns the violating distance (in dbu)
/// when the interior separation is below `min_width`; nullopt otherwise.
/// Separation is measured perpendicular to the edges (projected distance).
[[nodiscard]] constexpr std::optional<coord_t> check_width_pair(const edge& a, const edge& b,
                                                                coord_t min_width) {
  if (!is_width_facing(a, b)) return std::nullopt;
  const coord_t d = static_cast<coord_t>(std::abs(a.level() - b.level()));
  if (d < min_width) return d;
  return std::nullopt;
}

/// Spacing check on a candidate pair from *different* polygons. Facing
/// anti-parallel pairs use projected distance; non-overlapping projections
/// fall back to Euclidean corner distance (both X-Check and KLayout flag
/// corner-to-corner proximity). Returns squared distance when violating.
[[nodiscard]] constexpr std::optional<area_t> check_space_pair(const edge& a, const edge& b,
                                                               coord_t min_space) {
  const area_t limit = static_cast<area_t>(min_space) * min_space;
  if (a.horizontal() == b.horizontal() && projection_overlap(a, b) > 0) {
    // Parallel with overlapping projections: only exterior-facing pairs
    // constrain spacing. Aligned collinear edges (same level) are abutting
    // shapes, not a spacing violation.
    if (!is_space_facing(a, b)) return std::nullopt;
    const area_t d = static_cast<area_t>(std::abs(a.level() - b.level()));
    if (d * d < limit) return d * d;
    return std::nullopt;
  }
  // Corner-to-corner (or perpendicular) proximity: Euclidean.
  const area_t d2 = squared_distance(a, b);
  if (d2 > 0 && d2 < limit) return d2;
  return std::nullopt;
}

/// Spacing semantics for an arbitrary candidate pair, covering both the
/// inter-polygon case and the intra-polygon notch case. Same-polygon pairs
/// only constrain spacing when they are parallel exterior-facing (a notch);
/// corner proximity within one polygon occurs at every convex corner and is
/// not a violation. Different-polygon pairs additionally flag Euclidean
/// corner-to-corner proximity.
[[nodiscard]] constexpr std::optional<area_t> check_space_pair_any(const edge& a, const edge& b,
                                                                   bool same_polygon,
                                                                   coord_t min_space) {
  if (!same_polygon) return check_space_pair(a, b, min_space);
  if (a.horizontal() != b.horizontal() || projection_overlap(a, b) <= 0) return std::nullopt;
  if (!is_space_facing(a, b)) return std::nullopt;
  const area_t d = std::abs(static_cast<area_t>(a.level()) - b.level());
  if (d > 0 && d * d < static_cast<area_t>(min_space) * min_space) return d * d;
  return std::nullopt;
}

/// Conditional spacing table (paper Section I/II: "conditional rules (e.g.,
/// different spacing constraints given different projection lengths)") —
/// the classic parallel-run-length (PRL) spacing rule. Tier 0 is the base
/// requirement; higher tiers raise the requirement once the facing edges'
/// projected overlap reaches the tier's run length. POD with inline storage
/// so it can be captured by device kernels.
struct spacing_table {
  struct tier {
    coord_t min_projection = 0;  ///< applies when projection >= this
    coord_t distance = 0;        ///< required spacing
  };

  std::array<tier, 4> tiers{};
  std::uint8_t count = 0;

  /// Single-tier table: plain minimum spacing.
  static constexpr spacing_table simple(coord_t distance) {
    spacing_table t;
    t.tiers[0] = {0, distance};
    t.count = 1;
    return t;
  }

  /// Add a tier; tiers must be appended in increasing projection order with
  /// increasing distances (the physical shape of PRL rules).
  constexpr spacing_table& add_tier(coord_t min_projection, coord_t distance) {
    tiers[count] = {min_projection, distance};
    ++count;
    return *this;
  }

  /// Required spacing for a facing pair with projected overlap `projection`.
  [[nodiscard]] constexpr coord_t required(coord_t projection) const {
    coord_t d = 0;
    for (std::uint8_t i = 0; i < count; ++i) {
      if (projection >= tiers[i].min_projection) d = std::max(d, tiers[i].distance);
    }
    return d;
  }

  /// Base requirement (tier 0), used for corner-to-corner proximity where
  /// no parallel run exists.
  [[nodiscard]] constexpr coord_t base() const { return count ? tiers[0].distance : 0; }

  /// Largest requirement in the table: the sound inflation distance for MBR
  /// pruning and partitioning.
  [[nodiscard]] constexpr coord_t max_distance() const {
    coord_t d = 0;
    for (std::uint8_t i = 0; i < count; ++i) d = std::max(d, tiers[i].distance);
    return d;
  }

  friend constexpr bool operator==(const spacing_table& a, const spacing_table& b) {
    if (a.count != b.count) return false;
    for (std::uint8_t i = 0; i < a.count; ++i) {
      if (a.tiers[i].min_projection != b.tiers[i].min_projection ||
          a.tiers[i].distance != b.tiers[i].distance) {
        return false;
      }
    }
    return true;
  }
};

/// Spacing semantics under a conditional table. Parallel exterior-facing
/// pairs are held to required(projection); intra-polygon notches likewise;
/// corner proximity between different polygons is held to the base tier.
[[nodiscard]] constexpr std::optional<area_t> check_space_pair_table(const edge& a, const edge& b,
                                                                     bool same_polygon,
                                                                     const spacing_table& table) {
  if (a.horizontal() == b.horizontal() && projection_overlap(a, b) > 0) {
    if (!is_space_facing(a, b)) return std::nullopt;
    const coord_t req = table.required(projection_overlap(a, b));
    const area_t d = std::abs(static_cast<area_t>(a.level()) - b.level());
    if (same_polygon && d == 0) return std::nullopt;  // degenerate collinear
    if (d < req) return d * d;
    return std::nullopt;
  }
  if (same_polygon) return std::nullopt;  // corner proximity within one polygon is normal
  const coord_t req = table.base();
  const area_t d2 = squared_distance(a, b);
  if (d2 > 0 && d2 < static_cast<area_t>(req) * req) return d2;
  return std::nullopt;
}

/// Enclosure check on (inner edge, outer edge): `inner` bounds the enclosed
/// shape (e.g. a V1 cut), `outer` bounds the enclosing shape (e.g. M1
/// metal). Same-direction pairs with overlapping projections constrain the
/// margin along the inner edge's outward normal. Returns the violating
/// margin when 0 <= margin < min_enclosure; a *negative* margin (outer edge
/// on the wrong side) is not reported here — full containment is checked
/// separately at the polygon level.
[[nodiscard]] constexpr std::optional<coord_t> check_enclosure_pair(const edge& inner,
                                                                    const edge& outer,
                                                                    coord_t min_enclosure) {
  if (inner.horizontal() != outer.horizontal()) return std::nullopt;
  if (inner.dir() != outer.dir()) return std::nullopt;
  if (projection_overlap(inner, outer) <= 0) return std::nullopt;
  coord_t margin = 0;
  switch (inner.dir()) {
    case edge_dir::east:  margin = static_cast<coord_t>(outer.level() - inner.level()); break;
    case edge_dir::west:  margin = static_cast<coord_t>(inner.level() - outer.level()); break;
    case edge_dir::north: margin = static_cast<coord_t>(inner.level() - outer.level()); break;
    case edge_dir::south: margin = static_cast<coord_t>(outer.level() - inner.level()); break;
  }
  if (margin >= 0 && margin < min_enclosure) return margin;
  return std::nullopt;
}

/// Build a width violation record.
[[nodiscard]] inline violation make_width_violation(std::int16_t layer, const edge& a,
                                                    const edge& b, coord_t d) {
  return {rule_kind::width, layer, layer, a, b, static_cast<area_t>(d) * d};
}

[[nodiscard]] inline violation make_space_violation(std::int16_t layer, const edge& a,
                                                    const edge& b, area_t d2) {
  return {rule_kind::spacing, layer, layer, a, b, d2};
}

[[nodiscard]] inline violation make_enclosure_violation(std::int16_t inner_layer,
                                                        std::int16_t outer_layer,
                                                        const edge& inner, const edge& outer,
                                                        coord_t margin) {
  return {rule_kind::enclosure, inner_layer, outer_layer, inner, outer,
          static_cast<area_t>(margin) * margin};
}

}  // namespace odrc::checks
