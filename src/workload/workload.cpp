#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace odrc::workload {

namespace {

using db::cell_id;
using db::library;

constexpr coord_t H = tech::cell_height;
constexpr coord_t CPP = tech::cpp;
constexpr coord_t W18 = tech::wire_width;

// ---------------------------------------------------------------------------
// Standard-cell masters
// ---------------------------------------------------------------------------

// Add power rails (PWR layer, never checked) and M1 fingers with V1 cuts to
// a master of `slots` CPP width. Fingers sit at x = 18 + 36j with 18 nm
// margins to both cell borders, y in [36, 234]; the V1 cut is centered on
// each finger with exactly the minimum 5 nm enclosure in x.
void fill_master(db::cell& c, int slots) {
  const coord_t w = static_cast<coord_t>(slots) * CPP;
  c.add_rect(layers::PWR, {0, 0, w, W18});
  c.add_rect(layers::PWR, {0, static_cast<coord_t>(H - W18), w, H});
  for (coord_t x = W18; x + W18 <= w - W18; x += 2 * W18) {
    c.add_rect(layers::M1, {x, 36, static_cast<coord_t>(x + W18), 234});
    const coord_t vx = static_cast<coord_t>(x + (W18 - tech::via_size) / 2);
    c.add_rect(layers::V1, {vx, 131, static_cast<coord_t>(vx + tech::via_size), 139});
  }
}

// The DFF master gets one L-shaped M1 polygon (18 nm legs, no violations)
// so non-rectangular rectilinear geometry is exercised everywhere.
void fill_dff(db::cell& c, int slots) {
  const coord_t w = static_cast<coord_t>(slots) * CPP;
  c.add_rect(layers::PWR, {0, 0, w, W18});
  c.add_rect(layers::PWR, {0, static_cast<coord_t>(H - W18), w, H});
  // L-shape: vertical leg [18,36] x [36,234], horizontal foot [18,90] x [36,54].
  c.add_polygon({layers::M1, 0,
                 polygon{{{18, 36}, {18, 234}, {36, 234}, {36, 54}, {90, 54}, {90, 36}}},
                 "dff_l"});
  for (coord_t x = 108; x + W18 <= w - W18; x += 2 * W18) {
    c.add_rect(layers::M1, {x, 36, static_cast<coord_t>(x + W18), 234});
    const coord_t vx = static_cast<coord_t>(x + (W18 - tech::via_size) / 2);
    c.add_rect(layers::V1, {vx, 131, static_cast<coord_t>(vx + tech::via_size), 139});
  }
}

struct master_set {
  cell_id filler;
  // parallel arrays for random picking: (id, width in slots)
  std::vector<std::pair<cell_id, int>> logic;
};

// A library of ~20 masters mirroring a small standard-cell kit: sized
// inverters/buffers, 2-input gates, AOI/OAI combos, muxes/xors and flops.
// Flop variants carry the L-shaped M1 polygon (fill_dff); everything else is
// finger-style (fill_master). More distinct masters means more distinct memo
// entries and a more realistic reuse distribution.
master_set build_masters(library& lib) {
  master_set m{};
  auto make = [&](const char* name, int slots) {
    const cell_id id = lib.add_cell(name);
    fill_master(lib.at(id), slots);
    m.logic.emplace_back(id, slots);
    return id;
  };
  auto make_flop = [&](const char* name, int slots) {
    const cell_id id = lib.add_cell(name);
    fill_dff(lib.at(id), slots);
    m.logic.emplace_back(id, slots);
    return id;
  };

  m.filler = lib.add_cell("FILLERx1");
  fill_master(lib.at(m.filler), 1);

  make("INVx1", 1);
  make("INVx2", 2);
  make("INVx4", 3);
  make("BUFx2", 2);
  make("BUFx4", 3);
  make("NAND2x1", 2);
  make("NAND2x2", 3);
  make("NOR2x1", 2);
  make("NOR2x2", 3);
  make("AND3x1", 3);
  make("OR3x1", 3);
  make("AOI21x1", 3);
  make("AOI21x2", 4);
  make("OAI21x1", 3);
  make("OAI22x1", 4);
  make("MUX2x1", 4);
  make("XOR2x1", 5);
  make("TAPCELL", 2);
  make_flop("DFFx1", 5);
  make_flop("DFFx2", 6);
  return m;
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

// Fill one row of `cols` slots of `target` with random cells; `row_in_cell`
// is the row index within the target cell (y base = row_in_cell * H).
// Alternate rows are mirrored about x (standard double-back rows).
void place_row(library& lib, db::cell& target, const master_set& m, int row_in_cell, int cols,
               std::mt19937_64& rng) {
  const coord_t ybase = static_cast<coord_t>(row_in_cell) * H;
  const bool flip = (row_in_cell % 2) != 0;
  transform base;
  base.reflect_x = flip;
  // A reflected cell spans [-H, 0]; shift it up one row height.
  const coord_t yoff = flip ? static_cast<coord_t>(ybase + H) : ybase;

  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, m.logic.size() - 1);

  int col = 0;
  int filler_run = 0;
  auto flush_fillers = [&](int end_col) {
    if (filler_run == 0) return;
    const int start = end_col - filler_run;
    transform t = base;
    t.offset = {static_cast<coord_t>(start) * CPP, yoff};
    if (filler_run >= 4) {
      // Long filler runs become AREFs, exercising array references.
      db::cell_array a;
      a.target = m.filler;
      a.trans = t;
      a.cols = static_cast<std::uint16_t>(filler_run);
      a.rows = 1;
      a.col_step = {CPP, 0};
      target.add_array(a);
    } else {
      for (int k = 0; k < filler_run; ++k) {
        transform tk = t;
        tk.offset.x = static_cast<coord_t>((start + k)) * CPP;
        target.add_ref({m.filler, tk});
      }
    }
    filler_run = 0;
  };

  while (col < cols) {
    if (u(rng) < 0.82) {
      const auto& [id, slots] = m.logic[pick(rng)];
      if (col + slots > cols) {
        ++filler_run;
        ++col;
        continue;
      }
      flush_fillers(col);
      transform t = base;
      t.offset = {static_cast<coord_t>(col) * CPP, yoff};
      target.add_ref({id, t});
      col += slots;
    } else {
      ++filler_run;
      ++col;
    }
  }
  flush_fillers(cols);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

struct m2_segment {
  coord_t x0, x1, y_center;
};

// Horizontal M2 per row band: tracks at y = base + 27 + 36t (wire spans
// +-9 nm), chopped into random segments separated by >= 1 CPP.
std::vector<m2_segment> route_m2(db::cell& top, int rows, int cols, int tracks_per_row,
                                 std::mt19937_64& rng) {
  std::vector<m2_segment> segs;
  const coord_t die_w = static_cast<coord_t>(cols) * CPP;
  std::uniform_int_distribution<int> len_slots(8, 40);
  std::uniform_int_distribution<int> gap_slots(1, 3);
  for (int r = 0; r < rows; ++r) {
    for (int t = 0; t < tracks_per_row; ++t) {
      const coord_t yc = static_cast<coord_t>(r) * H + 27 + 36 * static_cast<coord_t>(t);
      coord_t x = static_cast<coord_t>(gap_slots(rng)) * CPP;
      while (x < die_w) {
        const coord_t x1 = std::min<coord_t>(die_w, x + static_cast<coord_t>(len_slots(rng)) * CPP);
        if (x1 - x >= 2 * CPP) {
          top.add_rect(layers::M2, {x, static_cast<coord_t>(yc - 9), x1,
                                    static_cast<coord_t>(yc + 9)});
          segs.push_back({x, x1, yc});
        }
        x = x1 + static_cast<coord_t>(gap_slots(rng)) * CPP;
      }
    }
  }
  return segs;
}

struct m3_wire {
  coord_t x0;  // left edge; width 18
  coord_t y0, y1;
};

// Vertical M3 wires on a 36 nm grid of columns, spanning random row ranges.
// Wire counts beyond the column count wrap around and stack further segments
// in already-used columns, separated vertically by at least one row — this
// is what makes the jpeg analogue's M3 dense enough to hurt flat evaluation
// while staying violation-free.
std::vector<m3_wire> route_m3(db::cell& top, int rows, int cols, int wires,
                              std::mt19937_64& rng) {
  std::vector<m3_wire> out;
  const coord_t die_w = static_cast<coord_t>(cols) * CPP;
  const int grid_slots = static_cast<int>(die_w / 36) - 1;
  if (grid_slots <= 0 || wires <= 0) return out;
  std::vector<int> slots(static_cast<std::size_t>(grid_slots));
  for (int i = 0; i < grid_slots; ++i) slots[static_cast<std::size_t>(i)] = i;
  std::shuffle(slots.begin(), slots.end(), rng);
  // Next free row per column (wires in one column stack upward with a
  // one-row gap, keeping same-column spacing trivially met).
  std::vector<int> next_row(static_cast<std::size_t>(grid_slots), 0);
  std::uniform_int_distribution<int> span_pick(2, std::max(2, rows / 2));
  std::uniform_int_distribution<int> gap_pick(1, 2);
  for (int i = 0; i < wires; ++i) {
    const std::size_t slot_idx = static_cast<std::size_t>(i % grid_slots);
    const coord_t x = static_cast<coord_t>(slots[slot_idx]) * 36;
    const int r0 = next_row[slot_idx];
    if (r0 >= rows - 1) continue;  // column full
    const int r1 = std::min(rows, r0 + span_pick(rng));
    const coord_t y0 = static_cast<coord_t>(r0) * H;
    const coord_t y1 = static_cast<coord_t>(r1) * H;
    top.add_rect(layers::M3, {x, y0, static_cast<coord_t>(x + W18), y1});
    out.push_back({x, y0, y1});
    next_row[slot_idx] = r1 + gap_pick(rng);
  }
  return out;
}

// V2 cuts where an M3 wire crosses an M2 segment that fully covers the M3
// footprint (guaranteeing >= 5 nm enclosure on every side in both layers).
void drop_v2(db::cell& top, const std::vector<m2_segment>& m2, const std::vector<m3_wire>& m3,
             double density, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (const m3_wire& w : m3) {
    for (const m2_segment& s : m2) {
      if (s.y_center - 9 < w.y0 || s.y_center + 9 > w.y1) continue;  // no crossing
      if (s.x0 > w.x0 || s.x1 < w.x0 + W18) continue;                // partial coverage
      if (u(rng) >= density) continue;
      const coord_t vx = static_cast<coord_t>(w.x0 + (W18 - tech::via_size) / 2);
      const coord_t vy = static_cast<coord_t>(s.y_center - tech::via_size / 2);
      top.add_rect(layers::V2, {vx, vy, static_cast<coord_t>(vx + tech::via_size),
                                static_cast<coord_t>(vy + tech::via_size)});
    }
  }
}

// ---------------------------------------------------------------------------
// Violation injection
// ---------------------------------------------------------------------------

// Injected sites live in a strip below the placement (y in [-420, -80]),
// spaced 300 nm apart so sites never interact with each other or with the
// fabric. Every site's geometry is chosen to violate exactly the intended
// rule and no other (see the per-kind comments).
class injector {
 public:
  injector(db::cell& top, std::vector<site>& sites) : top_(top), sites_(sites) {}

  void width(db::layer_t layer) {
    // 10 x 100 nm bar: one interior-facing pair at 10 < 18; area 1000 is
    // compliant; isolated, so no spacing effect.
    const coord_t x = next_x();
    const rect r{x, -400, static_cast<coord_t>(x + 10), -300};
    top_.add_rect(layer, r);
    sites_.push_back({checks::rule_kind::width, layer, layer, r});
  }

  void spacing(db::layer_t layer) {
    // Two compliant 18 x 100 bars with a 10 nm gap.
    const coord_t x = next_x();
    const rect a{x, -400, static_cast<coord_t>(x + 18), -300};
    const rect b{static_cast<coord_t>(x + 28), -400, static_cast<coord_t>(x + 46), -300};
    top_.add_rect(layer, a);
    top_.add_rect(layer, b);
    sites_.push_back({checks::rule_kind::spacing, layer, layer, a.join(b)});
  }

  void area(db::layer_t layer) {
    // 20 x 20 square: area 400 < 1000; width 20 is compliant.
    const coord_t x = next_x();
    const rect r{x, -400, static_cast<coord_t>(x + 20), -380};
    top_.add_rect(layer, r);
    sites_.push_back({checks::rule_kind::area, layer, layer, r});
  }

  void enclosure(db::layer_t via_layer, db::layer_t bad_metal, db::layer_t good_metal) {
    // An 8 x 8 via with margin 1 on the left in `bad_metal` (violating) and
    // margin >= 5 everywhere in `good_metal` (so the via stays compliant
    // under the *other* enclosure rule). Metal dimensions keep width and
    // area compliant.
    const coord_t x = next_x();
    const rect via{static_cast<coord_t>(x + 6), -394, static_cast<coord_t>(x + 14), -386};
    const rect bad{static_cast<coord_t>(x + 5), -400, static_cast<coord_t>(x + 66), -380};
    const rect good{static_cast<coord_t>(x + 1), -399, static_cast<coord_t>(x + 61), -379};
    top_.add_rect(via_layer, via);
    top_.add_rect(bad_metal, bad);
    if (good_metal != bad_metal) top_.add_rect(good_metal, good);
    sites_.push_back({checks::rule_kind::enclosure, via_layer, bad_metal, via.join(bad)});
  }

 private:
  coord_t next_x() {
    const coord_t x = cursor_;
    cursor_ += 300;
    return x;
  }

  db::cell& top_;
  std::vector<site>& sites_;
  coord_t cursor_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

std::size_t generated::site_count(checks::rule_kind kind, db::layer_t l1, db::layer_t l2) const {
  std::size_t n = 0;
  for (const site& s : sites) {
    if (s.kind != kind || s.layer1 != l1) continue;
    if (kind == checks::rule_kind::enclosure && l2 >= 0 && s.layer2 != l2) continue;
    ++n;
  }
  return n;
}

const std::vector<std::string>& design_names() {
  static const std::vector<std::string> names{"aes", "ethmac", "ibex", "jpeg", "sha3", "uart"};
  return names;
}

design_spec spec_for(std::string_view design, double scale) {
  design_spec s;
  s.name = std::string{design};
  // Relative scales follow the paper's designs: ethmac largest, jpeg with a
  // pathologically dense M3, uart/ibex small.
  if (design == "aes") {
    s.rows = 48;
    s.cols = 160;
    s.m2_tracks_per_row = 4;
    s.m3_wires = 120;
    s.block_rows = 4;
    s.seed = 0xAE5;
  } else if (design == "ethmac") {
    s.rows = 72;
    s.cols = 220;
    s.m2_tracks_per_row = 4;
    s.m3_wires = 240;
    s.block_rows = 4;
    s.seed = 0xE7;
  } else if (design == "ibex") {
    s.rows = 20;
    s.cols = 64;
    s.m2_tracks_per_row = 3;
    s.m3_wires = 40;
    s.block_rows = 1;
    s.seed = 0x1BE;
  } else if (design == "jpeg") {
    s.rows = 48;
    s.cols = 160;
    s.m2_tracks_per_row = 4;
    s.m3_wires = 1400;  // dense long-range M3: the flat/deep killer
    s.block_rows = 4;
    s.seed = 0x39E6;
  } else if (design == "sha3") {
    s.rows = 40;
    s.cols = 130;
    s.m2_tracks_per_row = 3;
    s.m3_wires = 90;
    s.block_rows = 2;
    s.seed = 0x5A3;
  } else if (design == "uart") {
    s.rows = 10;
    s.cols = 40;
    s.m2_tracks_per_row = 3;
    s.m3_wires = 16;
    s.block_rows = 1;
    s.seed = 0x0A27;
  } else {
    throw std::invalid_argument("unknown design '" + std::string{design} + "'");
  }
  if (scale != 1.0) {
    auto sc = [scale](int v) { return std::max(2, static_cast<int>(std::lround(v * scale))); };
    s.rows = sc(s.rows);
    s.cols = sc(s.cols);
    s.m3_wires = sc(s.m3_wires);
    s.block_rows = std::min(s.block_rows, s.rows / 2);
    if (s.block_rows < 1) s.block_rows = 1;
  }
  return s;
}

generated generate(const design_spec& spec) {
  generated g;
  g.spec = spec;
  g.lib.set_name(spec.name);
  std::mt19937_64 rng(spec.seed);

  const master_set masters = build_masters(g.lib);

  // Placement, optionally grouped into an AREF'd block of block_rows rows.
  const cell_id top = g.lib.add_cell(spec.name + "_top");
  int placed_rows = 0;
  if (spec.block_rows > 1 && spec.rows >= 2 * spec.block_rows) {
    const cell_id block = g.lib.add_cell(spec.name + "_block");
    // block_rows must stay even so mirrored rows stack correctly across
    // block replicas.
    const int brows = spec.block_rows % 2 == 0 ? spec.block_rows : spec.block_rows + 1;
    for (int r = 0; r < brows; ++r) {
      place_row(g.lib, g.lib.at(block), masters, r, spec.cols, rng);
    }
    const int copies = spec.rows / brows;
    db::cell_array a;
    a.target = block;
    a.cols = 1;
    a.rows = static_cast<std::uint16_t>(copies);
    a.row_step = {0, static_cast<coord_t>(brows) * H};
    g.lib.at(top).add_array(a);
    placed_rows = copies * brows;
  }
  for (int r = placed_rows; r < spec.rows; ++r) {
    place_row(g.lib, g.lib.at(top), masters, r, spec.cols, rng);
  }

  // Guarantee every master is instantiated: an unreferenced master would
  // otherwise read as an extra top cell of the library. Unused masters (small
  // designs may never pick some) go into an isolated scrap row far below the
  // die, one instance each, violation-free.
  {
    std::vector<bool> used(g.lib.cell_count(), false);
    for (const db::cell& c : g.lib.cells()) {
      for (const db::cell_ref& r : c.refs()) used[r.target] = true;
      for (const db::cell_array& a : c.arrays()) used[a.target] = true;
    }
    coord_t scrap_x = 0;
    used[top] = true;
    for (cell_id id = 0; id < g.lib.cell_count(); ++id) {
      if (used[id]) continue;
      g.lib.at(top).add_ref({id, transform{{scrap_x, -1000}, 0, false, 1}});
      scrap_x += 8 * CPP;
    }
  }

  // Routing fabric (direct polygons of the top cell).
  const auto m2 = route_m2(g.lib.at(top), spec.rows, spec.cols, spec.m2_tracks_per_row, rng);
  const auto m3 = route_m3(g.lib.at(top), spec.rows, spec.cols, spec.m3_wires, rng);
  drop_v2(g.lib.at(top), m2, m3, spec.via2_density, rng);

  // Injected violations with recorded ground truth.
  injector inj(g.lib.at(top), g.sites);
  for (const db::layer_t m : {layers::M1, layers::M2, layers::M3}) {
    for (int i = 0; i < spec.inject.width; ++i) inj.width(m);
    for (int i = 0; i < spec.inject.spacing; ++i) inj.spacing(m);
    for (int i = 0; i < spec.inject.area; ++i) inj.area(m);
  }
  for (int i = 0; i < spec.inject.enclosure; ++i) {
    inj.enclosure(layers::V1, layers::M1, layers::M1);
    inj.enclosure(layers::V2, layers::M2, layers::M3);
    inj.enclosure(layers::V2, layers::M3, layers::M2);
  }
  return g;
}

}  // namespace odrc::workload
