// Synthetic ASAP7-like benchmark layout generator.
//
// The paper evaluates on GDSII layouts synthesized by the OpenROAD flow with
// the ASAP7 PDK for six designs (aes, ethmac, ibex, jpeg, sha3, uart). Those
// flow outputs are not redistributable, so this module generates layouts
// with the same *structural properties the paper's algorithms exploit*:
//
//  - a standard-cell library of rectilinear masters (M1 fingers + V1 cuts),
//    instantiated thousands of times via SREF/AREF -> hierarchy reuse;
//  - row-based placement with non-overlapping rows -> the adaptive row
//    partition's intuition 1;
//  - per-row horizontal M2 routing and die-spanning vertical M3 routing with
//    V2 cuts at crossings -> inter-polygon spacing/enclosure workloads whose
//    x-extents separate into clips (intuition 2);
//  - per-design size parameters calibrated to the six designs' relative
//    scales, including a jpeg analogue whose dense M3 makes flat evaluation
//    blow up (the paper's 316 s / 3588 s row in Table II).
//
// Geometry follows ASAP7-flavoured BEOL numerology in 1 nm dbu: 18 nm wire
// width and spacing, 54 nm cell pitch (CPP), 270 nm cell height, 8 nm via
// cuts with 5 nm enclosure. The baseline design is violation-free by
// construction; violations are injected at recorded marker sites so tests
// and benches have exact ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "checks/violation.hpp"
#include "db/layout.hpp"

namespace odrc::workload {

/// BEOL layer numbers used by the generated layouts.
struct layers {
  static constexpr db::layer_t M1 = 19;
  static constexpr db::layer_t M2 = 20;
  static constexpr db::layer_t M3 = 30;
  static constexpr db::layer_t V1 = 21;
  static constexpr db::layer_t V2 = 25;
  /// Power rails; present for realism, never rule-checked.
  static constexpr db::layer_t PWR = 18;
};

/// Technology numbers shared by the generator and the rule decks.
struct tech {
  static constexpr coord_t wire_width = 18;   ///< metal width (all layers)
  static constexpr coord_t wire_space = 18;   ///< minimum spacing
  static constexpr coord_t cpp = 54;          ///< contacted poly pitch
  static constexpr coord_t cell_height = 270;
  static constexpr coord_t via_size = 8;
  static constexpr coord_t via_enclosure = 5;
  static constexpr area_t min_area = 1000;    ///< nm^2
};

/// How many violations of each kind to inject (per relevant layer).
struct inject_spec {
  int width = 0;      ///< pinched shapes, per metal layer
  int spacing = 0;    ///< too-close shape pairs, per metal layer
  int enclosure = 0;  ///< off-center vias, per via layer
  int area = 0;       ///< too-small shapes, per metal layer
};

/// Per-design generation parameters.
struct design_spec {
  std::string name;
  int rows = 8;                ///< placement rows
  int cols = 32;               ///< cell slots per row (1 slot = 1 CPP)
  int m2_tracks_per_row = 3;   ///< horizontal M2 routing tracks per row band
  int m3_wires = 16;           ///< vertical M3 wires across the die
  int block_rows = 1;          ///< >1: group rows into an AREF'd block cell
  double via2_density = 0.4;   ///< fraction of M2/M3 crossings receiving a V2
  std::uint64_t seed = 1;
  inject_spec inject;
};

/// One injected violation site: what was injected and a marker rectangle
/// covering the offending geometry (top coordinates).
struct site {
  checks::rule_kind kind;
  db::layer_t layer1;
  db::layer_t layer2;
  rect marker;
};

struct generated {
  db::library lib;
  std::vector<site> sites;
  design_spec spec;

  /// Injected sites matching a rule (layer2 ignored unless enclosure).
  [[nodiscard]] std::size_t site_count(checks::rule_kind kind, db::layer_t l1,
                                       db::layer_t l2 = -1) const;
};

/// The six paper designs, scaled by `scale` (1.0 = calibrated default; tests
/// use ~0.1 for speed). Throws on unknown names.
[[nodiscard]] design_spec spec_for(std::string_view design, double scale = 1.0);

/// Names in paper order: aes, ethmac, ibex, jpeg, sha3, uart.
[[nodiscard]] const std::vector<std::string>& design_names();

/// Generate the layout for a spec.
[[nodiscard]] generated generate(const design_spec& spec);

}  // namespace odrc::workload
