// Region quadtree over rectangles (paper Section I cites quad-trees [4] as
// one of the binary-space-partitioning foundations of layout processing;
// Section IV-A's MBR techniques apply to it as to kd-trees and R-trees).
//
// Classic region quadtree: each node covers a square-ish region and splits
// into four quadrants once it holds more than `leaf_capacity` rectangles;
// a rectangle is stored at the deepest node whose region contains it
// entirely (straddlers stay at internal nodes). Queries descend only the
// quadrants overlapping the window.
//
// Interface mirrors geo::rtree so the engine's candidate-strategy ablation
// can swap all three structures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "infra/geometry.hpp"

namespace odrc::geo {

class quadtree {
 public:
  explicit quadtree(std::span<const rect> items, std::size_t leaf_capacity = 8,
                    int max_depth = 16);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] int depth() const { return depth_; }

  /// Visit the index of every item overlapping `window` (closed semantics).
  void query(const rect& window, const std::function<void(std::uint32_t)>& visit) const;

  /// Every unordered overlapping pair (i < j).
  void overlap_pairs(const std::function<void(std::uint32_t, std::uint32_t)>& report) const;

  [[nodiscard]] std::uint64_t last_nodes_visited() const { return nodes_visited_; }

 private:
  struct node {
    rect region;
    std::vector<std::uint32_t> items;  // stored here (leaf, or straddlers)
    std::unique_ptr<node> child[4];
    [[nodiscard]] bool leaf() const { return !child[0]; }
  };

  void insert(node& n, std::uint32_t id, int depth);
  void split(node& n, int depth);
  void query_rec(const node& n, const rect& window,
                 const std::function<void(std::uint32_t)>& visit) const;

  std::unique_ptr<node> root_;
  std::vector<rect> items_;
  std::size_t leaf_capacity_;
  int max_depth_;
  std::size_t count_ = 0;
  int depth_ = 0;
  mutable std::uint64_t nodes_visited_ = 0;
};

}  // namespace odrc::geo
