// Static kd-tree over rectangles (paper Section I: "binary space
// partitioning data structures like quad-tree [4] and kd-tree [5]").
//
// Built by recursively splitting on the median center coordinate, cycling
// the axis per level; rectangles straddling the split plane stay at the
// internal node (same discipline as the quadtree). Completes the trio of
// candidate spatial structures the engine ablation compares against the
// default sweepline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "infra/geometry.hpp"

namespace odrc::geo {

class kdtree {
 public:
  explicit kdtree(std::span<const rect> items, std::size_t leaf_capacity = 8);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] int depth() const { return depth_; }

  /// Visit the index of every item overlapping `window` (closed semantics).
  void query(const rect& window, const std::function<void(std::uint32_t)>& visit) const;

  /// Every unordered overlapping pair (i < j).
  void overlap_pairs(const std::function<void(std::uint32_t, std::uint32_t)>& report) const;

  [[nodiscard]] std::uint64_t last_nodes_visited() const { return nodes_visited_; }

 private:
  struct node {
    bool axis_x = true;   ///< split axis at this level
    coord_t split = 0;    ///< split coordinate (on centers)
    rect bounds;          ///< MBR of everything below
    std::vector<std::uint32_t> items;  ///< leaf items, or straddlers
    std::unique_ptr<node> lo;
    std::unique_ptr<node> hi;
    [[nodiscard]] bool leaf() const { return !lo; }
  };

  std::unique_ptr<node> build(std::vector<std::uint32_t> ids, bool axis_x, int depth);
  void query_rec(const node& n, const rect& window,
                 const std::function<void(std::uint32_t)>& visit) const;

  std::unique_ptr<node> root_;
  std::vector<rect> items_;
  std::size_t leaf_capacity_;
  std::size_t count_ = 0;
  int depth_ = 0;
  mutable std::uint64_t nodes_visited_ = 0;
};

}  // namespace odrc::geo
