#include "geo/rtree.hpp"

#include <algorithm>

#include "infra/morton.hpp"

namespace odrc::geo {

const rect rtree::empty_{};

rtree::rtree(std::span<const rect> items, std::size_t fanout)
    : items_(items.begin(), items.end()), count_(items.size()) {
  if (fanout < 2) fanout = 2;
  // Order non-empty items by the Morton code of their centers.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
  order.reserve(items.size());
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    if (items[i].empty()) continue;
    order.emplace_back(morton_code(items[i]), i);
  }
  std::sort(order.begin(), order.end());
  item_ids_.reserve(order.size());
  for (const auto& [code, idx] : order) item_ids_.push_back(idx);

  if (item_ids_.empty()) {
    nodes_.push_back({rect{}, 0, 0, true});
    root_ = 0;
    height_ = 1;
    return;
  }

  // Pack leaves: `fanout` consecutive item slots per leaf.
  std::vector<std::uint32_t> level;
  for (std::uint32_t s = 0; s < item_ids_.size(); s += static_cast<std::uint32_t>(fanout)) {
    const auto end = std::min<std::uint32_t>(static_cast<std::uint32_t>(item_ids_.size()),
                                             s + static_cast<std::uint32_t>(fanout));
    node n;
    n.leaf = true;
    n.first = s;
    n.count = static_cast<std::uint16_t>(end - s);
    for (std::uint32_t k = s; k < end; ++k) n.mbr = n.mbr.join(items_[item_ids_[k]]);
    level.push_back(static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(n);
  }
  height_ = 1;

  // Build internal levels until one root remains. Children of one internal
  // node must be contiguous in nodes_, which the packing below maintains by
  // appending each level's nodes consecutively.
  while (level.size() > 1) {
    std::vector<std::uint32_t> next;
    for (std::size_t s = 0; s < level.size(); s += fanout) {
      const std::size_t end = std::min(level.size(), s + fanout);
      node n;
      n.leaf = false;
      n.first = level[s];
      n.count = static_cast<std::uint16_t>(end - s);
      for (std::size_t k = s; k < end; ++k) n.mbr = n.mbr.join(nodes_[level[k]].mbr);
      next.push_back(static_cast<std::uint32_t>(nodes_.size()));
      nodes_.push_back(n);
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.front();
}

void rtree::query(const rect& window, const std::function<void(std::uint32_t)>& visit) const {
  nodes_visited_ = 0;
  if (!nodes_.empty()) query_rec(root_, window, visit);
}

void rtree::query_rec(std::uint32_t ni, const rect& window,
                      const std::function<void(std::uint32_t)>& visit) const {
  ++nodes_visited_;
  const node& n = nodes_[ni];
  if (!n.mbr.overlaps(window)) return;
  if (n.leaf) {
    for (std::uint32_t k = n.first; k < n.first + n.count; ++k) {
      const std::uint32_t id = item_ids_[k];
      if (items_[id].overlaps(window)) visit(id);
    }
    return;
  }
  for (std::uint16_t c = 0; c < n.count; ++c) query_rec(n.first + c, window, visit);
}

void rtree::overlap_pairs(
    const std::function<void(std::uint32_t, std::uint32_t)>& report) const {
  for (std::uint32_t i = 0; i < items_.size(); ++i) {
    if (items_[i].empty()) continue;
    query(items_[i], [&](std::uint32_t j) {
      if (j > i) report(i, j);
    });
  }
}

}  // namespace odrc::geo
