#include "geo/kdtree.hpp"

#include <algorithm>

namespace odrc::geo {

namespace {

coord_t center(const rect& r, bool axis_x) {
  return axis_x ? static_cast<coord_t>(r.x_min + r.width() / 2)
                : static_cast<coord_t>(r.y_min + r.height() / 2);
}

}  // namespace

kdtree::kdtree(std::span<const rect> items, std::size_t leaf_capacity)
    : items_(items.begin(), items.end()),
      leaf_capacity_(std::max<std::size_t>(1, leaf_capacity)),
      count_(items.size()) {
  std::vector<std::uint32_t> ids;
  ids.reserve(items_.size());
  for (std::uint32_t i = 0; i < items_.size(); ++i) {
    if (!items_[i].empty()) ids.push_back(i);
  }
  root_ = build(std::move(ids), /*axis_x=*/true, 1);
}

std::unique_ptr<kdtree::node> kdtree::build(std::vector<std::uint32_t> ids, bool axis_x,
                                            int depth) {
  depth_ = std::max(depth_, depth);
  auto n = std::make_unique<node>();
  n->axis_x = axis_x;
  for (const std::uint32_t id : ids) n->bounds = n->bounds.join(items_[id]);
  if (ids.size() <= leaf_capacity_) {
    n->items = std::move(ids);
    return n;
  }
  // Median split on centers along the current axis.
  const std::size_t mid = ids.size() / 2;
  std::nth_element(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(mid), ids.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return center(items_[a], axis_x) < center(items_[b], axis_x);
                   });
  n->split = center(items_[ids[mid]], axis_x);

  std::vector<std::uint32_t> lo_ids, hi_ids;
  for (const std::uint32_t id : ids) {
    const rect& r = items_[id];
    const coord_t lo_edge = axis_x ? r.x_min : r.y_min;
    const coord_t hi_edge = axis_x ? r.x_max : r.y_max;
    if (hi_edge < n->split) {
      lo_ids.push_back(id);
    } else if (lo_edge > n->split) {
      hi_ids.push_back(id);
    } else {
      n->items.push_back(id);  // straddles the split plane
    }
  }
  // Degenerate split (everything straddles or lands on one side): make this
  // a fat leaf instead of recursing forever.
  if (lo_ids.empty() && hi_ids.empty()) {
    return n;
  }
  if (lo_ids.empty() || hi_ids.empty()) {
    auto& rest = lo_ids.empty() ? hi_ids : lo_ids;
    if (rest.size() == ids.size()) {  // no progress
      n->items.insert(n->items.end(), rest.begin(), rest.end());
      return n;
    }
  }
  n->lo = build(std::move(lo_ids), !axis_x, depth + 1);
  n->hi = build(std::move(hi_ids), !axis_x, depth + 1);
  return n;
}

void kdtree::query(const rect& window, const std::function<void(std::uint32_t)>& visit) const {
  nodes_visited_ = 0;
  if (root_) query_rec(*root_, window, visit);
}

void kdtree::query_rec(const node& n, const rect& window,
                       const std::function<void(std::uint32_t)>& visit) const {
  ++nodes_visited_;
  if (n.bounds.empty() || !n.bounds.overlaps(window)) return;
  for (const std::uint32_t id : n.items) {
    if (items_[id].overlaps(window)) visit(id);
  }
  if (n.leaf()) return;
  query_rec(*n.lo, window, visit);
  query_rec(*n.hi, window, visit);
}

void kdtree::overlap_pairs(
    const std::function<void(std::uint32_t, std::uint32_t)>& report) const {
  for (std::uint32_t i = 0; i < items_.size(); ++i) {
    if (items_[i].empty()) continue;
    query(items_[i], [&](std::uint32_t j) {
      if (j > i) report(i, j);
    });
  }
}

}  // namespace odrc::geo
