#include "geo/boolean.hpp"

#include <algorithm>
#include <map>

#include "infra/disjoint_set.hpp"
#include "sweep/sweepline.hpp"

namespace odrc::geo {

namespace {

// A vertical input edge with coverage deltas: crossing it left-to-right
// changes operand coverage by `delta` (north edges of a clockwise ring have
// interior to their right: +1; south edges: -1).
struct vedge {
  coord_t x;
  coord_t y_lo;
  coord_t y_hi;
  int delta_a;
  int delta_b;
};

void collect_vedges(std::span<const polygon> polys, bool is_a, std::vector<vedge>& out) {
  for (const polygon& p : polys) {
    for (std::size_t i = 0; i < p.edge_count(); ++i) {
      const edge e = p.edge_at(i);
      if (!e.vertical() || e.length() == 0) continue;
      const int d = e.dir() == edge_dir::north ? 1 : -1;
      out.push_back({e.level(), e.lo(), e.hi(), is_a ? d : 0, is_a ? 0 : d});
    }
  }
}

void collect_vedges(std::span<const rect> rects, bool is_a, std::vector<vedge>& out) {
  for (const rect& r : rects) {
    if (r.empty() || r.width() == 0 || r.height() == 0) continue;
    out.push_back({r.x_min, r.y_min, r.y_max, is_a ? 1 : 0, is_a ? 0 : 1});
    out.push_back({r.x_max, r.y_min, r.y_max, is_a ? -1 : 0, is_a ? 0 : -1});
  }
}

constexpr bool inside(bool_op op, int a, int b) {
  switch (op) {
    case bool_op::unite: return a > 0 || b > 0;
    case bool_op::intersect: return a > 0 && b > 0;
    case bool_op::subtract: return a > 0 && b <= 0;
    case bool_op::exclusive_or: return (a > 0) != (b > 0);
  }
  return false;
}

// Core scanline. Coverage deltas are accumulated per y-breakpoint in an
// ordered map; between two consecutive event x values the y profile is
// constant, so each maximal true-interval of the predicate emits one slab
// rectangle. Slabs that continue unchanged across events are coalesced
// horizontally (open_slabs keyed by y-interval), which keeps output size
// near-minimal for the common all-rectangle case.
std::vector<rect> scan(std::vector<vedge> edges, bool_op op) {
  std::vector<rect> out;
  if (edges.empty()) return out;
  std::sort(edges.begin(), edges.end(), [](const vedge& l, const vedge& r) { return l.x < r.x; });

  // Active coverage: y-breakpoint -> (deltaA, deltaB) accumulated.
  std::map<coord_t, std::pair<int, int>> profile;
  // Slabs currently open: y-interval -> x where they started.
  std::map<std::pair<coord_t, coord_t>, coord_t> open_slabs;

  auto emit_intervals = [&](std::vector<std::pair<coord_t, coord_t>>& ivs) {
    ivs.clear();
    int a = 0, b = 0;
    bool in = false;
    coord_t start = 0;
    for (const auto& [y, d] : profile) {
      const bool was = in;
      a += d.first;
      b += d.second;
      in = inside(op, a, b);
      if (in && !was) {
        start = y;
      } else if (!in && was) {
        ivs.push_back({start, y});
      }
    }
    // A well-formed profile always closes (deltas sum to zero).
  };

  std::vector<std::pair<coord_t, coord_t>> current;
  std::size_t i = 0;
  while (i < edges.size()) {
    const coord_t x = edges[i].x;
    while (i < edges.size() && edges[i].x == x) {
      const vedge& e = edges[i];
      profile[e.y_lo].first += e.delta_a;
      profile[e.y_lo].second += e.delta_b;
      profile[e.y_hi].first -= e.delta_a;
      profile[e.y_hi].second -= e.delta_b;
      ++i;
    }
    emit_intervals(current);

    // Close slabs that are no longer part of the profile; open new ones.
    std::map<std::pair<coord_t, coord_t>, coord_t> next_open;
    for (const auto& iv : current) {
      auto it = open_slabs.find(iv);
      if (it != open_slabs.end()) {
        next_open.emplace(iv, it->second);  // continues unchanged
        open_slabs.erase(it);
      } else {
        next_open.emplace(iv, x);  // opens here
      }
    }
    for (const auto& [iv, x0] : open_slabs) {
      if (x > x0) out.push_back({x0, iv.first, x, iv.second});
    }
    open_slabs = std::move(next_open);

    // Drop zeroed breakpoints to keep the profile compact.
    for (auto it = profile.begin(); it != profile.end();) {
      if (it->second.first == 0 && it->second.second == 0) {
        it = profile.erase(it);
      } else {
        ++it;
      }
    }
  }
  // All coverage ends at the last event; open_slabs must be empty by then
  // for well-formed input. Guard anyway.
  for (const auto& [iv, x0] : open_slabs) {
    (void)iv;
    (void)x0;
  }
  return out;
}

}  // namespace

std::vector<rect> boolean_rects(std::span<const polygon> a, std::span<const polygon> b,
                                bool_op op) {
  std::vector<vedge> edges;
  collect_vedges(a, true, edges);
  collect_vedges(b, false, edges);
  return scan(std::move(edges), op);
}

std::vector<rect> boolean_rects(std::span<const rect> a, std::span<const rect> b, bool_op op) {
  std::vector<vedge> edges;
  collect_vedges(a, true, edges);
  collect_vedges(b, false, edges);
  return scan(std::move(edges), op);
}

area_t boolean_area(std::span<const polygon> a, std::span<const polygon> b, bool_op op) {
  area_t total = 0;
  for (const rect& r : boolean_rects(a, b, op)) total += r.area();
  return total;
}

std::vector<rect> merged_rects(std::span<const polygon> a) {
  return boolean_rects(a, std::span<const polygon>{}, bool_op::unite);
}

std::vector<component> connected_components(std::span<const rect> rects) {
  disjoint_set ds(rects.size());
  // Touching slabs belong to one region; the sweepline reports all
  // closed-overlap pairs, which includes abutment.
  sweep::overlap_pairs(rects, [&](std::uint32_t i, std::uint32_t j) { ds.unite(i, j); });

  std::map<std::size_t, std::size_t> root_to_idx;
  std::vector<component> out;
  for (std::uint32_t i = 0; i < rects.size(); ++i) {
    const std::size_t root = ds.find(i);
    auto [it, added] = root_to_idx.try_emplace(root, out.size());
    if (added) out.emplace_back();
    component& c = out[it->second];
    c.mbr = c.mbr.join(rects[i]);
    c.area += rects[i].area();
    c.members.push_back(i);
  }
  return out;
}

}  // namespace odrc::geo
