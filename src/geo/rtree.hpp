// Static packed R-tree (paper Section IV-A: "such MBR technique is widely
// applied in geometric data structures such as kd-trees [5] and R-trees
// [6]").
//
// Bulk-loaded by sorting the items on the Morton code of their MBR centers
// and packing `fanout` consecutive items per leaf, then repeating upward —
// the classic packed/Hilbert-style construction that gives near-optimal
// space utilization and good query clustering for layout data.
//
// The engine can use it as an alternative to the sweepline for candidate
// MBR-overlap enumeration (engine_config::candidates); the ablation bench
// compares the two, reproducing the design discussion behind the paper's
// choice of sweepline + interval tree for the sequential mode.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "infra/geometry.hpp"

namespace odrc::geo {

class rtree {
 public:
  /// Build over `items`; empty rectangles are stored but never reported.
  explicit rtree(std::span<const rect> items, std::size_t fanout = 16);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] const rect& bounds() const { return nodes_.empty() ? empty_ : nodes_[root_].mbr; }

  /// Visit the index of every item whose rectangle overlaps `window`
  /// (closed-overlap semantics, matching the sweepline).
  void query(const rect& window, const std::function<void(std::uint32_t)>& visit) const;

  /// Visit every unordered overlapping pair (i < j) — the R-tree analogue of
  /// sweep::overlap_pairs, implemented as a query per item restricted to
  /// higher indices.
  void overlap_pairs(const std::function<void(std::uint32_t, std::uint32_t)>& report) const;

  /// Nodes touched by the last query (instrumentation).
  [[nodiscard]] std::uint64_t last_nodes_visited() const { return nodes_visited_; }

 private:
  struct node {
    rect mbr;
    std::uint32_t first = 0;  ///< child node index, or item slot for leaves
    std::uint16_t count = 0;
    bool leaf = true;
  };

  void query_rec(std::uint32_t n, const rect& window,
                 const std::function<void(std::uint32_t)>& visit) const;

  std::vector<node> nodes_;
  std::vector<std::uint32_t> item_ids_;  ///< leaf slots -> original indices
  std::vector<rect> items_;              ///< original rectangles
  std::uint32_t root_ = 0;
  std::size_t count_ = 0;
  std::size_t height_ = 0;
  mutable std::uint64_t nodes_visited_ = 0;
  static const rect empty_;
};

}  // namespace odrc::geo
