// Boolean mask operations on rectilinear polygon sets (paper Section I:
// boolean mask operations are one of the algorithmic foundations of DRC;
// the introduction's examples of inter-layer rules — "constraints on the NOT
// CUT result between layers, minimum overlapping area constraints" — are
// implemented on top of this module by the engine's derived-layer rules).
//
// The operations are computed with a vertical scanline over the distinct x
// coordinates of the inputs' vertical edges. Between two consecutive event
// coordinates the y-coverage of each operand is constant, so the result of
// the slab is a set of y-intervals where the operation's predicate holds;
// each interval becomes one output rectangle (a "slab decomposition"). The
// result is therefore a set of non-overlapping rectangles covering exactly
// the result region — sufficient for the area/coverage rules built on it.
// (Ring reconstruction with holes is intentionally out of scope; the paper
// lists "supports for general geometric shapes" as roadmap work.)
#pragma once

#include <span>
#include <vector>

#include "infra/geometry.hpp"

namespace odrc::geo {

enum class bool_op {
  unite,         ///< A OR B
  intersect,     ///< A AND B
  subtract,      ///< A AND NOT B  (the paper's "NOT CUT" result)
  exclusive_or,  ///< A XOR B
};

/// Slab decomposition of `op(A, B)`: non-overlapping rectangles whose union
/// is exactly the result region. Inputs must be rectilinear; overlapping and
/// abutting shapes within one operand are handled (coverage is counted, not
/// assumed disjoint).
[[nodiscard]] std::vector<rect> boolean_rects(std::span<const polygon> a,
                                              std::span<const polygon> b, bool_op op);

/// Convenience overloads for rectangle inputs.
[[nodiscard]] std::vector<rect> boolean_rects(std::span<const rect> a, std::span<const rect> b,
                                              bool_op op);

/// Total area of `op(A, B)`.
[[nodiscard]] area_t boolean_area(std::span<const polygon> a, std::span<const polygon> b,
                                  bool_op op);

/// Merge one polygon set into its slab decomposition (union with empty B).
[[nodiscard]] std::vector<rect> merged_rects(std::span<const polygon> a);

/// A connected group of result rectangles (touching counts as connected —
/// abutting mask regions are one region).
struct component {
  rect mbr;
  area_t area = 0;
  std::vector<std::uint32_t> members;  ///< indices into the input rect span
};

/// Group rectangles into connected components.
[[nodiscard]] std::vector<component> connected_components(std::span<const rect> rects);

}  // namespace odrc::geo
