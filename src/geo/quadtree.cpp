#include "geo/quadtree.hpp"

#include <algorithm>

namespace odrc::geo {

quadtree::quadtree(std::span<const rect> items, std::size_t leaf_capacity, int max_depth)
    : items_(items.begin(), items.end()),
      leaf_capacity_(std::max<std::size_t>(1, leaf_capacity)),
      max_depth_(max_depth),
      count_(items.size()) {
  rect bounds;
  for (const rect& r : items_) bounds = bounds.join(r);
  if (bounds.empty()) bounds = {0, 0, 1, 1};
  root_ = std::make_unique<node>();
  root_->region = bounds;
  for (std::uint32_t i = 0; i < items_.size(); ++i) {
    if (!items_[i].empty()) insert(*root_, i, 1);
  }
}

void quadtree::insert(node& n, std::uint32_t id, int depth) {
  depth_ = std::max(depth_, depth);
  if (n.leaf()) {
    n.items.push_back(id);
    if (n.items.size() > leaf_capacity_ && depth < max_depth_ && n.region.width() > 1 &&
        n.region.height() > 1) {
      split(n, depth);
    }
    return;
  }
  // Route to the single child containing the rect; straddlers stay here.
  for (auto& c : n.child) {
    if (c->region.contains(items_[id])) {
      insert(*c, id, depth + 1);
      return;
    }
  }
  n.items.push_back(id);
}

void quadtree::split(node& n, int depth) {
  const coord_t mx = static_cast<coord_t>(n.region.x_min + n.region.width() / 2);
  const coord_t my = static_cast<coord_t>(n.region.y_min + n.region.height() / 2);
  const rect quads[4] = {
      {n.region.x_min, n.region.y_min, mx, my},
      {static_cast<coord_t>(mx + 1), n.region.y_min, n.region.x_max, my},
      {n.region.x_min, static_cast<coord_t>(my + 1), mx, n.region.y_max},
      {static_cast<coord_t>(mx + 1), static_cast<coord_t>(my + 1), n.region.x_max,
       n.region.y_max},
  };
  for (int q = 0; q < 4; ++q) {
    n.child[q] = std::make_unique<node>();
    n.child[q]->region = quads[q];
  }
  std::vector<std::uint32_t> keep;
  for (const std::uint32_t id : n.items) {
    bool routed = false;
    for (auto& c : n.child) {
      if (c->region.contains(items_[id])) {
        insert(*c, id, depth + 1);
        routed = true;
        break;
      }
    }
    if (!routed) keep.push_back(id);
  }
  n.items = std::move(keep);
}

void quadtree::query(const rect& window, const std::function<void(std::uint32_t)>& visit) const {
  nodes_visited_ = 0;
  if (root_) query_rec(*root_, window, visit);
}

void quadtree::query_rec(const node& n, const rect& window,
                         const std::function<void(std::uint32_t)>& visit) const {
  ++nodes_visited_;
  if (!n.region.overlaps(window)) return;
  for (const std::uint32_t id : n.items) {
    if (items_[id].overlaps(window)) visit(id);
  }
  if (!n.leaf()) {
    for (const auto& c : n.child) query_rec(*c, window, visit);
  }
}

void quadtree::overlap_pairs(
    const std::function<void(std::uint32_t, std::uint32_t)>& report) const {
  for (std::uint32_t i = 0; i < items_.size(); ++i) {
    if (items_[i].empty()) continue;
    query(items_[i], [&](std::uint32_t j) {
      if (j > i) report(i, j);
    });
  }
}

}  // namespace odrc::geo
