// LEF/DEF adaptors (interface layer, paper Section V-A: "adaptors to design
// databases"). OpenROAD-style physical design flows carry cell geometry in
// LEF and placement in DEF; this module reads the placement-relevant subset
// of both into the same odrc::db::library the GDSII reader produces, and can
// write them back (used by the round-trip tests and by users who want to
// check OpenROAD placements before GDS export).
//
// Supported LEF subset:  UNITS DATABASE MICRONS, MACRO / SIZE / ORIGIN,
//   PIN / PORT / LAYER / RECT and OBS / LAYER / RECT geometry.
// Supported DEF subset:  DESIGN, UNITS DISTANCE MICRONS, DIEAREA,
//   COMPONENTS with PLACED/FIXED placements and the eight LEF/DEF
//   orientations (N, S, E, W, FN, FS, FE, FW).
//
// DEF placement semantics: the placement point is where the lower-left
// corner of the macro's *oriented* bounding box lands, which this reader
// converts into the engine's reflect-then-rotate transforms.
#pragma once

#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>

#include "db/layout.hpp"

namespace odrc::lefdef {

class lefdef_error : public std::runtime_error {
 public:
  lefdef_error(const std::string& what, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + what), line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// LEF/DEF name their layers ("M1", "V1"); the database uses GDSII numbers.
using layer_map = std::map<std::string, db::layer_t>;

/// Parse LEF macros into `lib` (one cell per MACRO). Geometry on layers not
/// present in `layers` is skipped. Returns the number of macros read.
std::size_t read_lef(std::istream& in, const layer_map& layers, db::library& lib);

/// Parse a DEF placement: creates the design's top cell in `lib` and adds
/// one reference per COMPONENT (macros must already exist, e.g. from
/// read_lef). Returns the top cell id.
db::cell_id read_def(std::istream& in, db::library& lib);

/// Convenience: LEF + DEF files from disk into one fresh library.
[[nodiscard]] db::library read_lef_def(const std::string& lef_path, const std::string& def_path,
                                       const layer_map& layers);

/// Write every cell that is referenced by others (the masters) as LEF
/// macros. `dbu_per_micron` scales coordinates back to microns.
void write_lef(const db::library& lib, const layer_map& layers, std::ostream& out,
               int dbu_per_micron = 1000);

/// Write the placement of `top` (its SREFs and expanded AREFs) as a DEF
/// COMPONENTS section. Direct polygons of the top cell are not representable
/// in a placement-only DEF and raise lefdef_error if present unless
/// `ignore_top_geometry` is set.
void write_def(const db::library& lib, db::cell_id top, std::ostream& out,
               int dbu_per_micron = 1000, bool ignore_top_geometry = false);

/// Orientation conversions between DEF names and engine transforms (the
/// linear part only; exposed for tests).
[[nodiscard]] transform orientation_from_def(const std::string& name);
[[nodiscard]] std::string orientation_to_def(const transform& t);

}  // namespace odrc::lefdef
