#include "lefdef/lefdef.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

namespace odrc::lefdef {

namespace {

// Whitespace tokenizer with line tracking. LEF/DEF statements are token
// sequences terminated by ';'.
class tokenizer {
 public:
  explicit tokenizer(std::istream& in) : in_(in) {}

  /// Next token; empty string at EOF. '(' and ')' are their own tokens (DEF
  /// point syntax).
  std::string next() {
    if (!pushed_.empty()) {
      std::string t = std::move(pushed_.back());
      pushed_.pop_back();
      return t;
    }
    std::string tok;
    char c;
    while (in_.get(c)) {
      if (c == '\n') {
        ++line_;
        if (!tok.empty()) return tok;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!tok.empty()) return tok;
        continue;
      }
      if (c == '#') {  // comment to end of line
        std::string dummy;
        std::getline(in_, dummy);
        ++line_;
        if (!tok.empty()) return tok;
        continue;
      }
      if (c == '(' || c == ')') {
        if (!tok.empty()) {
          in_.unget();
          return tok;
        }
        return std::string(1, c);
      }
      tok.push_back(c);
    }
    return tok;
  }

  void push_back(std::string tok) { pushed_.push_back(std::move(tok)); }

  /// Consume tokens up to and including the next ';'.
  void skip_statement() {
    for (std::string t = next(); !t.empty() && t != ";"; t = next()) {
    }
  }

  std::string expect(const char* what) {
    std::string t = next();
    if (t.empty()) throw lefdef_error(std::string("unexpected EOF, expected ") + what, line_);
    return t;
  }

  double expect_number(const char* what) {
    const std::string t = expect(what);
    try {
      std::size_t used = 0;
      const double v = std::stod(t, &used);
      if (used != t.size()) throw std::invalid_argument(t);
      return v;
    } catch (const std::exception&) {
      throw lefdef_error("expected number for " + std::string(what) + ", got '" + t + "'",
                         line_);
    }
  }

  void expect_token(const char* tok) {
    const std::string t = expect(tok);
    if (t != tok) throw lefdef_error(std::string("expected '") + tok + "', got '" + t + "'",
                                     line_);
  }

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::istream& in_;
  std::size_t line_ = 1;
  std::vector<std::string> pushed_;
};

coord_t microns_to_dbu(double microns) {
  return static_cast<coord_t>(std::llround(microns * 1000.0));
}

}  // namespace

// ---------------------------------------------------------------------------
// Orientations
// ---------------------------------------------------------------------------

transform orientation_from_def(const std::string& name) {
  transform t;
  if (name == "N") {
  } else if (name == "W") {
    t.rotation = 1;
  } else if (name == "S") {
    t.rotation = 2;
  } else if (name == "E") {
    t.rotation = 3;
  } else if (name == "FS") {
    t.reflect_x = true;
  } else if (name == "FE") {
    t.reflect_x = true;
    t.rotation = 1;
  } else if (name == "FN") {
    t.reflect_x = true;
    t.rotation = 2;
  } else if (name == "FW") {
    t.reflect_x = true;
    t.rotation = 3;
  } else {
    throw lefdef_error("unknown orientation '" + name + "'", 0);
  }
  return t;
}

std::string orientation_to_def(const transform& t) {
  static const char* plain[4] = {"N", "W", "S", "E"};
  static const char* flipped[4] = {"FS", "FE", "FN", "FW"};
  return (t.reflect_x ? flipped : plain)[t.rotation & 3];
}

// ---------------------------------------------------------------------------
// LEF reader
// ---------------------------------------------------------------------------

namespace {

// Parse a LAYER/RECT/POLYGON geometry block used by both PORT and OBS; ends
// at the END token (exclusive), which is pushed back for the caller.
void parse_geometry(tokenizer& tz, const layer_map& layers, db::cell& cell) {
  db::layer_t current = -1;
  bool have_layer = false;
  for (;;) {
    std::string t = tz.expect("geometry statement");
    if (t == "END") {
      tz.push_back(t);
      return;
    }
    if (t == "LAYER") {
      const std::string name = tz.expect("layer name");
      const auto it = layers.find(name);
      have_layer = it != layers.end();
      current = have_layer ? it->second : -1;
      tz.skip_statement();
    } else if (t == "RECT") {
      const double x1 = tz.expect_number("rect x1");
      const double y1 = tz.expect_number("rect y1");
      const double x2 = tz.expect_number("rect x2");
      const double y2 = tz.expect_number("rect y2");
      tz.expect_token(";");
      if (have_layer) {
        cell.add_rect(current, rect::of({microns_to_dbu(x1), microns_to_dbu(y1)},
                                        {microns_to_dbu(x2), microns_to_dbu(y2)}));
      }
    } else if (t == "POLYGON") {
      std::vector<point> pts;
      for (std::string p = tz.expect("polygon point"); p != ";"; p = tz.expect("polygon point")) {
        tz.push_back(p);
        const double x = tz.expect_number("polygon x");
        const double y = tz.expect_number("polygon y");
        pts.push_back({microns_to_dbu(x), microns_to_dbu(y)});
      }
      if (have_layer && pts.size() >= 3) {
        polygon poly{std::move(pts)};
        poly.make_clockwise();
        cell.add_polygon({current, 0, std::move(poly), {}});
      }
    } else {
      tz.push_back(t);
      tz.skip_statement();
    }
  }
}

void parse_macro(tokenizer& tz, const layer_map& layers, db::library& lib) {
  const std::string name = tz.expect("macro name");
  const db::cell_id id = lib.add_cell(name);
  for (;;) {
    std::string t = tz.expect("macro statement");
    if (t == "END") {
      const std::string n = tz.expect("macro end name");
      if (n != name) throw lefdef_error("END '" + n + "' does not close MACRO " + name,
                                        tz.line());
      return;
    }
    if (t == "PIN") {
      const std::string pin = tz.expect("pin name");
      for (;;) {
        std::string pt = tz.expect("pin statement");
        if (pt == "END") {
          const std::string n = tz.expect("pin end name");
          if (n != pin) throw lefdef_error("END '" + n + "' does not close PIN " + pin,
                                           tz.line());
          break;
        }
        if (pt == "PORT") {
          parse_geometry(tz, layers, lib.at(id));
          tz.expect_token("END");
        } else {
          tz.push_back(pt);
          tz.skip_statement();
        }
      }
    } else if (t == "OBS") {
      parse_geometry(tz, layers, lib.at(id));
      tz.expect_token("END");
    } else if (t == "SIZE" || t == "ORIGIN" || t == "CLASS" || t == "FOREIGN" || t == "SITE" ||
               t == "SYMMETRY") {
      tz.push_back(t);
      tz.skip_statement();
    } else {
      tz.push_back(t);
      tz.skip_statement();
    }
  }
}

}  // namespace

std::size_t read_lef(std::istream& in, const layer_map& layers, db::library& lib) {
  tokenizer tz(in);
  std::size_t macros = 0;
  for (std::string t = tz.next(); !t.empty(); t = tz.next()) {
    if (t == "MACRO") {
      parse_macro(tz, layers, lib);
      ++macros;
    } else if (t == "END") {
      const std::string what = tz.next();
      if (what == "LIBRARY") break;
      // END UNITS / END <site> etc.: nothing to do.
    } else {
      tz.push_back(t);
      tz.skip_statement();
    }
  }
  return macros;
}

// ---------------------------------------------------------------------------
// DEF reader
// ---------------------------------------------------------------------------

db::cell_id read_def(std::istream& in, db::library& lib) {
  tokenizer tz(in);
  db::cell_id top = db::invalid_cell;
  double scale = 1.0;  // dbu per DEF unit; DEF at 1000/micron matches 1 nm dbu

  for (std::string t = tz.next(); !t.empty(); t = tz.next()) {
    if (t == "DESIGN") {
      const std::string name = tz.expect("design name");
      tz.expect_token(";");
      top = lib.add_cell(name);
    } else if (t == "UNITS") {
      tz.expect_token("DISTANCE");
      tz.expect_token("MICRONS");
      const double units = tz.expect_number("units");
      if (units <= 0) throw lefdef_error("bad UNITS", tz.line());
      scale = 1000.0 / units;
      tz.expect_token(";");
    } else if (t == "COMPONENTS") {
      if (top == db::invalid_cell) throw lefdef_error("COMPONENTS before DESIGN", tz.line());
      tz.skip_statement();  // the count
      for (;;) {
        std::string c = tz.expect("component");
        if (c == "END") {
          tz.expect_token("COMPONENTS");
          break;
        }
        if (c != "-") throw lefdef_error("expected '-' starting a component, got '" + c + "'",
                                         tz.line());
        tz.expect("instance name");
        const std::string macro = tz.expect("macro name");
        const auto target = lib.find(macro);
        if (!target) throw lefdef_error("unknown macro '" + macro + "'", tz.line());

        // Scan the component options for + PLACED/FIXED ( x y ) ORIENT.
        bool placed = false;
        transform tr;
        for (std::string opt = tz.expect("component option"); opt != ";";
             opt = tz.expect("component option")) {
          if (opt != "+") continue;
          const std::string kind = tz.expect("option kind");
          if (kind != "PLACED" && kind != "FIXED") continue;
          tz.expect_token("(");
          const double x = tz.expect_number("x");
          const double y = tz.expect_number("y");
          tz.expect_token(")");
          const std::string orient = tz.expect("orientation");
          tr = orientation_from_def(orient);
          // DEF places the lower-left corner of the ORIENTED macro bbox at
          // (x, y); convert to the reference-frame offset.
          rect bbox;
          for (const db::polygon_elem& p : lib.at(*target).polygons()) {
            bbox = bbox.join(p.poly.mbr());
          }
          if (bbox.empty()) bbox = {0, 0, 0, 0};
          const rect oriented = tr.apply(bbox);
          tr.offset = {static_cast<coord_t>(std::llround(x * scale)) - oriented.x_min,
                       static_cast<coord_t>(std::llround(y * scale)) - oriented.y_min};
          placed = true;
        }
        if (placed) lib.at(top).add_ref({*target, tr});
      }
    } else if (t == "END") {
      const std::string what = tz.next();
      if (what == "DESIGN") break;
    } else {
      tz.push_back(t);
      tz.skip_statement();
    }
  }
  if (top == db::invalid_cell) throw lefdef_error("no DESIGN statement", tz.line());
  return top;
}

db::library read_lef_def(const std::string& lef_path, const std::string& def_path,
                         const layer_map& layers) {
  std::ifstream lef(lef_path);
  if (!lef) throw std::runtime_error("cannot open LEF '" + lef_path + "'");
  std::ifstream def(def_path);
  if (!def) throw std::runtime_error("cannot open DEF '" + def_path + "'");
  db::library lib;
  read_lef(lef, layers, lib);
  read_def(def, lib);
  return lib;
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

void write_lef(const db::library& lib, const layer_map& layers, std::ostream& out,
               int dbu_per_micron) {
  // Invert the layer map for names.
  std::map<db::layer_t, std::string> names;
  for (const auto& [name, layer] : layers) names[layer] = name;

  // Masters = cells referenced by at least one other cell.
  std::vector<bool> referenced(lib.cell_count(), false);
  for (const db::cell& c : lib.cells()) {
    for (const db::cell_ref& r : c.refs()) referenced[r.target] = true;
    for (const db::cell_array& a : c.arrays()) referenced[a.target] = true;
  }

  const double inv = 1.0 / dbu_per_micron;
  out << "VERSION 5.8 ;\nUNITS\n  DATABASE MICRONS " << dbu_per_micron << " ;\nEND UNITS\n\n";
  for (db::cell_id id = 0; id < lib.cell_count(); ++id) {
    if (!referenced[id]) continue;
    const db::cell& c = lib.at(id);
    rect bbox;
    for (const db::polygon_elem& p : c.polygons()) bbox = bbox.join(p.poly.mbr());
    if (bbox.empty()) bbox = {0, 0, 0, 0};
    out << "MACRO " << c.name() << "\n  CLASS CORE ;\n  ORIGIN 0 0 ;\n  SIZE "
        << bbox.x_max * inv << " BY " << bbox.y_max * inv << " ;\n  OBS\n";
    db::layer_t current = -32768;
    for (const db::polygon_elem& p : c.polygons()) {
      const auto it = names.find(p.layer);
      if (it == names.end()) continue;
      if (p.layer != current) {
        out << "    LAYER " << it->second << " ;\n";
        current = p.layer;
      }
      const rect m = p.poly.mbr();
      if (p.poly.size() == 4) {
        out << "    RECT " << m.x_min * inv << ' ' << m.y_min * inv << ' ' << m.x_max * inv
            << ' ' << m.y_max * inv << " ;\n";
      } else {
        out << "    POLYGON";
        for (const point& pt : p.poly.vertices()) out << ' ' << pt.x * inv << ' ' << pt.y * inv;
        out << " ;\n";
      }
    }
    out << "  END\nEND " << c.name() << "\n\n";
  }
  out << "END LIBRARY\n";
}

void write_def(const db::library& lib, db::cell_id top, std::ostream& out, int dbu_per_micron,
               bool ignore_top_geometry) {
  const db::cell& c = lib.at(top);
  if (!c.polygons().empty() && !ignore_top_geometry) {
    throw lefdef_error("top cell has direct geometry, not representable in placement-only DEF",
                       0);
  }
  // Expand arrays into individual components.
  struct comp {
    db::cell_id target;
    transform t;
  };
  std::vector<comp> comps;
  for (const db::cell_ref& r : c.refs()) comps.push_back({r.target, r.trans});
  for (const db::cell_array& a : c.arrays()) {
    for (std::uint16_t rr = 0; rr < a.rows; ++rr) {
      for (std::uint16_t cc = 0; cc < a.cols; ++cc) {
        comps.push_back({a.target, a.instance(cc, rr)});
      }
    }
  }

  out << "VERSION 5.8 ;\nDESIGN " << c.name() << " ;\nUNITS DISTANCE MICRONS " << dbu_per_micron
      << " ;\n";
  out << "COMPONENTS " << comps.size() << " ;\n";
  std::size_t n = 0;
  for (const comp& cp : comps) {
    if (cp.t.mag != 1) throw lefdef_error("magnified references not representable in DEF", 0);
    rect bbox;
    for (const db::polygon_elem& p : lib.at(cp.target).polygons()) {
      bbox = bbox.join(p.poly.mbr());
    }
    if (bbox.empty()) bbox = {0, 0, 0, 0};
    transform linear = cp.t;
    linear.offset = {};
    const rect oriented = linear.apply(bbox);
    const coord_t px = static_cast<coord_t>(cp.t.offset.x + oriented.x_min);
    const coord_t py = static_cast<coord_t>(cp.t.offset.y + oriented.y_min);
    out << "- u" << n++ << ' ' << lib.at(cp.target).name() << " + PLACED ( " << px << ' ' << py
        << " ) " << orientation_to_def(cp.t) << " ;\n";
  }
  out << "END COMPONENTS\nEND DESIGN\n";
}

}  // namespace odrc::lefdef
