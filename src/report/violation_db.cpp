#include "report/violation_db.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

namespace odrc::report {

namespace {

// Minimal JSON string escaping (rule names are ASCII identifiers in
// practice, but be safe).
void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF] << "0123456789abcdef"[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::optional<rect> key_extent(const std::string& key) {
  // "<rule>|<kind>|<l1>|<l2>|<e1>|<e2>|<measured>" — the rule name is the
  // only field that could in principle contain '|', so split from the right.
  const std::size_t p_measured = key.rfind('|');
  if (p_measured == std::string::npos || p_measured == 0) return std::nullopt;
  const std::size_t p_e2 = key.rfind('|', p_measured - 1);
  if (p_e2 == std::string::npos || p_e2 == 0) return std::nullopt;
  const std::size_t p_e1 = key.rfind('|', p_e2 - 1);
  if (p_e1 == std::string::npos) return std::nullopt;
  const auto parse_edge = [&](std::size_t begin, std::size_t end) -> std::optional<rect> {
    int x1 = 0, y1 = 0, x2 = 0, y2 = 0;
    const std::string field = key.substr(begin, end - begin);
    if (std::sscanf(field.c_str(), "%d,%d,%d,%d", &x1, &y1, &x2, &y2) != 4) return std::nullopt;
    return rect{std::min(x1, x2), std::min(y1, y2), std::max(x1, x2), std::max(y1, y2)};
  };
  const auto e1 = parse_edge(p_e1 + 1, p_e2);
  const auto e2 = parse_edge(p_e2 + 1, p_measured);
  if (!e1 || !e2) return std::nullopt;
  return e1->join(*e2);
}

std::string violation_key(const std::string& rule, const checks::violation& v) {
  const checks::violation n = checks::normalized(v);
  std::ostringstream key;
  key << rule << '|' << checks::rule_kind_name(n.kind) << '|' << n.layer1 << '|' << n.layer2
      << '|' << n.e1.from.x << ',' << n.e1.from.y << ',' << n.e1.to.x << ',' << n.e1.to.y << '|'
      << n.e2.from.x << ',' << n.e2.from.y << ',' << n.e2.to.x << ',' << n.e2.to.y << '|'
      << n.measured;
  return key.str();
}

void violation_db::add(const std::string& rule_name,
                       std::span<const checks::violation> violations) {
  entries_.reserve(entries_.size() + violations.size());
  for (const checks::violation& v : violations) {
    entries_.push_back({rule_name, v, violation_key(rule_name, v), next_id_++});
    ++key_count_[entries_.back().key];
    if (index_) index_->insert(entries_.back().id, marker_box(v));
  }
}

bool violation_db::add_unique(const std::string& rule_name, const checks::violation& v) {
  std::string key = violation_key(rule_name, v);
  auto [it, inserted] = key_count_.try_emplace(std::move(key), 1);
  if (!inserted) return false;
  entries_.push_back({rule_name, v, it->first, next_id_++});
  if (index_) index_->insert(entries_.back().id, marker_box(v));
  return true;
}

std::size_t violation_db::erase_touching(const std::string& rule_name, const rect& window) {
  const std::size_t before = entries_.size();
  std::erase_if(entries_, [&](const entry& e) {
    if (e.rule != rule_name) return false;
    if (!window.overlaps(e.v.e1.mbr()) && !window.overlaps(e.v.e2.mbr())) return false;
    auto it = key_count_.find(e.key);
    if (it != key_count_.end() && --it->second == 0) key_count_.erase(it);
    if (index_) index_->erase(e.id);
    return true;
  });
  return before - entries_.size();
}

std::size_t violation_db::erase_rule(const std::string& rule_name) {
  const std::size_t before = entries_.size();
  std::erase_if(entries_, [&](const entry& e) {
    if (e.rule != rule_name) return false;
    auto it = key_count_.find(e.key);
    if (it != key_count_.end() && --it->second == 0) key_count_.erase(it);
    if (index_) index_->erase(e.id);
    return true;
  });
  return before - entries_.size();
}

std::vector<std::string> violation_db::keys() const {
  std::vector<std::string> out;
  out.reserve(key_count_.size());
  for (const auto& [k, n] : key_count_) out.push_back(k);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<summary_row> violation_db::summarize() const {
  std::vector<summary_row> rows;
  std::map<std::string, std::size_t> pos;
  for (const entry& e : entries_) {
    auto [it, added] = pos.try_emplace(e.rule, rows.size());
    if (added) rows.push_back({e.rule, e.v.kind, 0});
    ++rows[it->second].count;
  }
  return rows;
}

std::vector<std::size_t> violation_db::in_window(const rect& window) const {
  if (!index_) {
    std::vector<std::pair<std::uint64_t, rect>> items;
    items.reserve(entries_.size());
    for (const entry& e : entries_) items.emplace_back(e.id, marker_box(e.v));
    index_.emplace(items);
  }
  std::vector<std::size_t> out;
  index_->query(window, [&](std::uint64_t id) {
    // entries_ is sorted by id (monotonic assignment, stable erase).
    const auto it = std::lower_bound(entries_.begin(), entries_.end(), id,
                                     [](const entry& e, std::uint64_t v) { return e.id < v; });
    out.push_back(static_cast<std::size_t>(it - entries_.begin()));
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> violation_db::in_window_scan(const rect& window) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (window.overlaps(marker_box(entries_[i].v))) out.push_back(i);
  }
  return out;
}

violation_index_stats violation_db::index_stats() const {
  return index_ ? index_->stats() : violation_index_stats{};
}

rect violation_db::extent() const {
  rect e;
  for (const entry& en : entries_) e = e.join(marker_box(en.v));
  return e;
}

void violation_db::write_text(std::ostream& out) const {
  out << "# violation report";
  if (!design_.empty()) out << " for " << design_;
  out << "\n# total: " << entries_.size() << "\n";
  for (const summary_row& row : summarize()) {
    out << "# " << (row.rule.empty() ? std::string(checks::rule_kind_name(row.kind)) : row.rule)
        << ": " << row.count << "\n";
  }
  for (const entry& e : entries_) {
    const rect m = marker_box(e.v);
    out << (e.rule.empty() ? std::string(checks::rule_kind_name(e.v.kind)) : e.rule) << ' '
        << checks::rule_kind_name(e.v.kind) << " L" << e.v.layer1;
    if (e.v.layer2 != e.v.layer1) out << "/L" << e.v.layer2;
    out << " [" << m.x_min << ',' << m.y_min << " .. " << m.x_max << ',' << m.y_max
        << "] measured=" << e.v.measured << "\n";
  }
}

void violation_db::write_json(std::ostream& out) const {
  out << "{\"design\": ";
  json_string(out, design_);
  out << ", \"total\": " << entries_.size() << ", \"rules\": [";

  const auto rows = summarize();
  bool first_rule = true;
  for (const summary_row& row : rows) {
    if (!first_rule) out << ", ";
    first_rule = false;
    out << "{\"name\": ";
    json_string(out, row.rule);
    out << ", \"kind\": \"" << checks::rule_kind_name(row.kind) << "\", \"count\": " << row.count
        << ", \"violations\": [";
    bool first = true;
    for (const entry& e : entries_) {
      if (e.rule != row.rule) continue;
      if (!first) out << ", ";
      first = false;
      const rect m = marker_box(e.v);
      out << "{\"layer1\": " << e.v.layer1 << ", \"layer2\": " << e.v.layer2
          << ", \"measured\": " << e.v.measured << ", \"bbox\": [" << m.x_min << ", " << m.y_min
          << ", " << m.x_max << ", " << m.y_max << "]}";
    }
    out << "]}";
  }
  out << "]}\n";
}

// ---------------------------------------------------------------------------
// Report diffing
// ---------------------------------------------------------------------------

namespace {

checks::rule_kind kind_from_name(const std::string& name, std::size_t line_no) {
  for (int k = 0; k <= static_cast<int>(checks::rule_kind::coloring); ++k) {
    const auto kind = static_cast<checks::rule_kind>(k);
    if (name == checks::rule_kind_name(kind)) return kind;
  }
  throw std::runtime_error("report line " + std::to_string(line_no) + ": unknown rule kind '" +
                           name + "'");
}

}  // namespace

std::vector<report_line> parse_text_report(std::istream& in) {
  std::vector<report_line> out;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (raw.empty() || raw[0] == '#') continue;
    // Format: <rule> <kind> L<l1>[/L<l2>] [x1,y1 .. x2,y2] measured=<m>
    std::istringstream ss(raw);
    report_line rl;
    std::string kind_s, layers_s, open_s, xy1, dots, xy2, measured_s;
    if (!(ss >> rl.rule >> kind_s >> layers_s >> xy1 >> dots >> xy2 >> measured_s)) {
      throw std::runtime_error("report line " + std::to_string(line_no) + ": malformed: " + raw);
    }
    rl.kind = kind_from_name(kind_s, line_no);
    // layers: L19 or L21/L19
    int l1 = 0, l2 = 0;
    if (std::sscanf(layers_s.c_str(), "L%d/L%d", &l1, &l2) == 2) {
    } else if (std::sscanf(layers_s.c_str(), "L%d", &l1) == 1) {
      l2 = l1;
    } else {
      throw std::runtime_error("report line " + std::to_string(line_no) + ": bad layers '" +
                               layers_s + "'");
    }
    rl.layer1 = static_cast<std::int16_t>(l1);
    rl.layer2 = static_cast<std::int16_t>(l2);
    int x1 = 0, y1 = 0, x2 = 0, y2 = 0;
    if (std::sscanf(xy1.c_str(), "[%d,%d", &x1, &y1) != 2 ||
        std::sscanf(xy2.c_str(), "%d,%d]", &x2, &y2) != 2 || dots != "..") {
      throw std::runtime_error("report line " + std::to_string(line_no) + ": bad box in: " + raw);
    }
    rl.box = {x1, y1, x2, y2};
    long long m = 0;
    if (std::sscanf(measured_s.c_str(), "measured=%lld", &m) != 1) {
      throw std::runtime_error("report line " + std::to_string(line_no) + ": bad measured in: " +
                               raw);
    }
    rl.measured = m;
    out.push_back(std::move(rl));
  }
  return out;
}

key_diff diff_keys(std::vector<std::string> baseline, std::vector<std::string> current) {
  std::sort(baseline.begin(), baseline.end());
  baseline.erase(std::unique(baseline.begin(), baseline.end()), baseline.end());
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());
  key_diff d;
  std::set_difference(baseline.begin(), baseline.end(), current.begin(), current.end(),
                      std::back_inserter(d.fixed));
  std::set_difference(current.begin(), current.end(), baseline.begin(), baseline.end(),
                      std::back_inserter(d.introduced));
  std::set_intersection(baseline.begin(), baseline.end(), current.begin(), current.end(),
                        std::back_inserter(d.unchanged));
  return d;
}

report_diff diff_reports(std::vector<report_line> baseline, std::vector<report_line> current) {
  // Sort + dedupe exactly like diff_keys: set semantics, not multiset — a
  // duplicated report line must not surface as a phantom fixed/introduced.
  std::sort(baseline.begin(), baseline.end());
  baseline.erase(std::unique(baseline.begin(), baseline.end()), baseline.end());
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());
  report_diff d;
  std::set_difference(baseline.begin(), baseline.end(), current.begin(), current.end(),
                      std::back_inserter(d.fixed));
  std::set_difference(current.begin(), current.end(), baseline.begin(), baseline.end(),
                      std::back_inserter(d.introduced));
  return d;
}

}  // namespace odrc::report
