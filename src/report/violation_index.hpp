// Incremental spatial index over violation extents (interface layer;
// DESIGN.md §12).
//
// `violation_db::in_window` used to rebuild a packed R-tree from scratch
// after every mutation — fine for a batch run that queries once, hopeless
// for a serve session whose store churns on every incremental recheck while
// an editor polls "markers under the cursor" queries between edits. This
// class keeps windowed lookups sublinear under churn with a two-tier
// structure, the same shape RediSearch uses for its bulk-loaded geometry
// index:
//
//   * an *epoch*: a bulk-loaded packed `geo::rtree` over the boxes that were
//     live at the last rebuild (Morton-ordered leaves, near-optimal packing);
//   * a linear *overlay* absorbing mutations since that rebuild — inserts go
//     to a small append-only side table, erases of epoch residents tombstone
//     their slot (the packed tree is immutable by construction).
//
// A query walks the tree (skipping tombstones) plus the overlay; correctness
// never depends on rebuild timing. When the overlay outgrows
// `rebuild_fraction` of the live population (with an absolute floor so tiny
// stores never rebuild), the whole index re-bulk-loads into a fresh epoch —
// amortized O(log) per mutation because successive rebuild thresholds grow
// geometrically.
//
// Ids are caller-assigned, unique among live entries, and returned verbatim
// by `query` (violation_db uses monotonic entry ids, so sorted query output
// is also store order).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geo/rtree.hpp"
#include "infra/geometry.hpp"

namespace odrc::report {

struct violation_index_stats {
  std::size_t size = 0;        ///< live boxes
  std::size_t epoch = 0;       ///< boxes in the bulk-loaded tree (incl. tombstoned)
  std::size_t pending = 0;     ///< overlay inserts since the last rebuild
  std::size_t tombstones = 0;  ///< epoch slots erased since the last rebuild
  std::uint64_t rebuilds = 0;  ///< epoch rebuilds performed
};

class violation_index {
 public:
  explicit violation_index(double rebuild_fraction = 0.25, std::size_t rebuild_min = 64);

  /// Bulk-load: one epoch over `items`, empty overlay. Ids must be unique.
  explicit violation_index(std::span<const std::pair<std::uint64_t, rect>> items,
                           double rebuild_fraction = 0.25, std::size_t rebuild_min = 64);

  /// Insert `id` with extent `box`. Inserting a live id replaces its box.
  void insert(std::uint64_t id, const rect& box);

  /// Erase a live id; false when unknown.
  bool erase(std::uint64_t id);

  /// Visit the id of every live box overlapping `window` (closed-overlap
  /// semantics, matching rect::overlaps). Visit order is unspecified —
  /// callers wanting determinism sort the ids.
  void query(const rect& window, const std::function<void(std::uint64_t)>& visit) const;

  [[nodiscard]] bool contains(std::uint64_t id) const { return boxes_.count(id) != 0; }
  [[nodiscard]] std::size_t size() const { return boxes_.size(); }
  [[nodiscard]] violation_index_stats stats() const;

 private:
  void maybe_rebuild();
  void rebuild();

  double rebuild_fraction_;
  std::size_t rebuild_min_;

  std::unordered_map<std::uint64_t, rect> boxes_;  ///< live truth: id -> box

  // Epoch: packed tree over epoch_boxes_; slot k holds epoch_ids_[k].
  std::optional<geo::rtree> tree_;
  std::vector<std::uint64_t> epoch_ids_;
  std::vector<rect> epoch_boxes_;
  std::vector<bool> dead_;                                   ///< tombstones per slot
  std::unordered_map<std::uint64_t, std::uint32_t> slot_of_; ///< live epoch id -> slot
  std::size_t tombstones_ = 0;

  std::vector<std::uint64_t> pending_;  ///< overlay: ids inserted since the epoch
  std::uint64_t rebuilds_ = 0;
};

}  // namespace odrc::report
