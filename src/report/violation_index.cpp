#include "report/violation_index.hpp"

#include <algorithm>

namespace odrc::report {

violation_index::violation_index(double rebuild_fraction, std::size_t rebuild_min)
    : rebuild_fraction_(rebuild_fraction), rebuild_min_(std::max<std::size_t>(rebuild_min, 1)) {}

violation_index::violation_index(std::span<const std::pair<std::uint64_t, rect>> items,
                                 double rebuild_fraction, std::size_t rebuild_min)
    : violation_index(rebuild_fraction, rebuild_min) {
  boxes_.reserve(items.size());
  for (const auto& [id, box] : items) boxes_[id] = box;
  rebuild();
  rebuilds_ = 0;  // the initial bulk load is not a churn-driven rebuild
}

void violation_index::insert(std::uint64_t id, const rect& box) {
  if (boxes_.count(id) != 0) erase(id);
  boxes_.emplace(id, box);
  pending_.push_back(id);
  maybe_rebuild();
}

bool violation_index::erase(std::uint64_t id) {
  auto it = boxes_.find(id);
  if (it == boxes_.end()) return false;
  boxes_.erase(it);
  auto slot = slot_of_.find(id);
  if (slot != slot_of_.end()) {
    dead_[slot->second] = true;
    ++tombstones_;
    slot_of_.erase(slot);
  } else {
    // Overlay resident: swap-erase keeps the side table dense.
    auto p = std::find(pending_.begin(), pending_.end(), id);
    if (p != pending_.end()) {
      *p = pending_.back();
      pending_.pop_back();
    }
  }
  maybe_rebuild();
  return true;
}

void violation_index::query(const rect& window,
                            const std::function<void(std::uint64_t)>& visit) const {
  if (tree_) {
    tree_->query(window, [&](std::uint32_t slot) {
      if (!dead_[slot]) visit(epoch_ids_[slot]);
    });
  }
  for (const std::uint64_t id : pending_) {
    if (window.overlaps(boxes_.at(id))) visit(id);
  }
}

violation_index_stats violation_index::stats() const {
  violation_index_stats s;
  s.size = boxes_.size();
  s.epoch = epoch_ids_.size();
  s.pending = pending_.size();
  s.tombstones = tombstones_;
  s.rebuilds = rebuilds_;
  return s;
}

void violation_index::maybe_rebuild() {
  const std::size_t churn = pending_.size() + tombstones_;
  const std::size_t threshold = std::max<std::size_t>(
      rebuild_min_, static_cast<std::size_t>(rebuild_fraction_ * static_cast<double>(boxes_.size())));
  if (churn > threshold) rebuild();
}

void violation_index::rebuild() {
  epoch_ids_.clear();
  epoch_boxes_.clear();
  slot_of_.clear();
  pending_.clear();
  tombstones_ = 0;
  epoch_ids_.reserve(boxes_.size());
  epoch_boxes_.reserve(boxes_.size());
  for (const auto& [id, box] : boxes_) {
    epoch_ids_.push_back(id);
    epoch_boxes_.push_back(box);
  }
  slot_of_.reserve(epoch_ids_.size());
  for (std::uint32_t k = 0; k < epoch_ids_.size(); ++k) slot_of_[epoch_ids_[k]] = k;
  dead_.assign(epoch_ids_.size(), false);
  tree_.emplace(epoch_boxes_);
  // The tree keeps its own copy of the boxes; only the slot -> id mapping is
  // needed after the build.
  epoch_boxes_.clear();
  epoch_boxes_.shrink_to_fit();
  ++rebuilds_;
}

}  // namespace odrc::report
