// Violation database (interface layer "result output"): accumulates the
// violations of a whole deck run keyed by rule name, answers windowed
// queries (R-tree backed — "show me the markers under the cursor"), and
// serializes to human-readable text or machine-readable JSON for downstream
// tooling.
#pragma once

#include <compare>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "checks/violation.hpp"
#include "report/violation_index.hpp"

namespace odrc::report {

struct entry {
  std::string rule;  ///< rule name (e.g. "M1.S.1"); may be empty
  checks::violation v;
  std::string key;       ///< violation_key(rule, v), computed at insertion
  std::uint64_t id = 0;  ///< stable per-db insertion id (monotonic, never reused)
};

/// Stable content-derived identity of one violation: rule name + kind +
/// layers + the canonicalized offending edges (checks::normalized) +
/// measured value. Two runs that find the same geometric violation produce
/// byte-identical keys whatever the discovery order, so key sets diff
/// order-independently — the identity incremental rechecks and the serve
/// protocol's `diff` are built on.
[[nodiscard]] std::string violation_key(const std::string& rule, const checks::violation& v);

/// Recover the marker box (joined MBR of the two offending edges) from a
/// violation key alone — keys embed the canonicalized edge coordinates.
/// Lets consumers that only see key streams (the serve protocol's diff/delta
/// frames, the cluster coordinator) clip by window without the full record.
/// nullopt on a malformed key.
[[nodiscard]] std::optional<rect> key_extent(const std::string& key);

struct summary_row {
  std::string rule;
  checks::rule_kind kind;
  std::size_t count;
};

class violation_db {
 public:
  explicit violation_db(std::string design_name = {}) : design_(std::move(design_name)) {}

  void add(const std::string& rule_name, std::span<const checks::violation> violations);

  /// Insert unless an entry with the same violation key is already present
  /// (identical violations reported by overlapping dirty windows dedup to
  /// one). Returns true when inserted.
  bool add_unique(const std::string& rule_name, const checks::violation& v);

  /// Remove every entry of `rule_name` with at least one offending edge MBR
  /// overlapping `window` — the purge predicate is edge-wise, matching
  /// check_region's keep predicate exactly (NOT marker_box: the joined box
  /// can overlap a window neither edge touches). Returns the count removed.
  std::size_t erase_touching(const std::string& rule_name, const rect& window);

  /// Remove every entry of `rule_name` (full-replace path for rules that are
  /// not locally incremental). Returns the count removed.
  std::size_t erase_rule(const std::string& rule_name);

  /// Sorted unique violation keys of the current contents.
  [[nodiscard]] std::vector<std::string> keys() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::span<const entry> entries() const { return entries_; }
  [[nodiscard]] const std::string& design() const { return design_; }

  /// Per-rule counts, in first-seen rule order.
  [[nodiscard]] std::vector<summary_row> summarize() const;

  /// Indices of entries whose marker box overlaps `window`, ascending —
  /// byte-identical to a linear scan of entries() with the same overlap
  /// test. Backed by an incremental `violation_index`: bulk-loaded on the
  /// first call, then maintained through add/add_unique/erase (epoch rebuild
  /// absorbs churn), so repeated windowed queries over a mutating store stay
  /// sublinear instead of rescanning every record.
  [[nodiscard]] std::vector<std::size_t> in_window(const rect& window) const;

  /// Reference linear-scan implementation of in_window (tests, bench).
  [[nodiscard]] std::vector<std::size_t> in_window_scan(const rect& window) const;

  /// Index maintenance counters (empty stats before the first in_window).
  [[nodiscard]] violation_index_stats index_stats() const;

  /// Bounding box of all markers (empty rect when no violations).
  [[nodiscard]] rect extent() const;

  /// Plain-text report: summary then one line per violation.
  void write_text(std::ostream& out) const;

  /// JSON document:
  ///   {"design": "...", "total": N,
  ///    "rules": [{"name": "...", "kind": "...", "count": n,
  ///               "violations": [{"layer1": .., "layer2": ..,
  ///                               "measured": .., "bbox": [x1,y1,x2,y2]}]}]}
  void write_json(std::ostream& out) const;

 private:
  std::string design_;
  std::vector<entry> entries_;
  // Key multiplicity alongside entries_: membership test for add_unique and
  // keys() without an O(n) rescan. A count (not a set) because plain add()
  // accepts duplicates.
  std::unordered_map<std::string, std::uint32_t> key_count_;
  // Ids are assigned monotonically and erase_if is stable, so entries_ is
  // always sorted by id — in_window maps index ids back to positions with a
  // binary search instead of a side map.
  std::uint64_t next_id_ = 1;
  mutable std::optional<violation_index> index_;
};

/// Order-independent key-set diff: what a recheck fixed, introduced, and
/// left standing relative to a baseline key set.
struct key_diff {
  std::vector<std::string> fixed;       ///< in baseline, gone now
  std::vector<std::string> introduced;  ///< new in current
  std::vector<std::string> unchanged;   ///< in both

  [[nodiscard]] bool clean() const { return introduced.empty(); }
};

/// Set difference over two key lists (sorted or not; duplicates collapse).
[[nodiscard]] key_diff diff_keys(std::vector<std::string> baseline,
                                 std::vector<std::string> current);

/// Marker box of one violation (joined MBR of its edges).
[[nodiscard]] inline rect marker_box(const checks::violation& v) {
  return v.e1.mbr().join(v.e2.mbr());
}

// ---------------------------------------------------------------------------
// Report diffing (signoff regression workflow)
// ---------------------------------------------------------------------------

/// Identity of a violation as recorded in a text report: rule + kind +
/// layers + marker box + measured value (the edges themselves are not
/// persisted in reports).
struct report_line {
  std::string rule;
  checks::rule_kind kind = checks::rule_kind::width;
  std::int16_t layer1 = 0;
  std::int16_t layer2 = 0;
  rect box;
  area_t measured = 0;

  friend bool operator==(const report_line&, const report_line&) = default;
  friend auto operator<=>(const report_line& a, const report_line& b) {
    return std::tie(a.rule, a.layer1, a.layer2, a.box.x_min, a.box.y_min, a.box.x_max,
                    a.box.y_max, a.measured) <=>
           std::tie(b.rule, b.layer1, b.layer2, b.box.x_min, b.box.y_min, b.box.x_max,
                    b.box.y_max, b.measured);
  }
};

/// Parse a text report previously produced by violation_db::write_text (or
/// the CLI's --report). Comment lines ('#') are skipped; malformed lines
/// raise std::runtime_error with the line number.
[[nodiscard]] std::vector<report_line> parse_text_report(std::istream& in);

struct report_diff {
  std::vector<report_line> fixed;      ///< present before, gone now
  std::vector<report_line> introduced; ///< new in the current report

  [[nodiscard]] bool clean() const { return introduced.empty(); }
};

/// Set difference between a baseline report and a current one. Duplicate
/// lines collapse (sort + dedupe, exactly like diff_keys): a report that
/// lists one violation twice — overlapping windows, a rerun appended to the
/// same file — must not leak phantom fixed/introduced lines.
[[nodiscard]] report_diff diff_reports(std::vector<report_line> baseline,
                                       std::vector<report_line> current);

}  // namespace odrc::report
