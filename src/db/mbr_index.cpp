#include "db/mbr_index.hpp"

#include <algorithm>
#include <set>

namespace odrc::db {

const std::vector<std::uint32_t> mbr_index::no_children_{};
const rect mbr_index::empty_rect_{};

mbr_index::mbr_index(const library& lib) : lib_(&lib) {
  // Collect the distinct layers.
  std::set<layer_t> layer_set;
  for (const cell& c : lib.cells()) {
    for (const polygon_elem& p : c.polygons()) layer_set.insert(p.layer);
  }
  layers_.assign(layer_set.begin(), layer_set.end());
  for (std::size_t i = 0; i < layers_.size(); ++i) slot_of_[layers_[i]] = i;

  const std::size_t L = layers_.size();
  const std::size_t n = lib.cell_count();
  own_mbr_.assign(n * L, rect{});
  inverted_.assign(L, {});
  for (cell_id id = 0; id < n; ++id) scan_own_geometry(id);
  aggregate();
}

bool mbr_index::scan_own_geometry(cell_id id) {
  const std::size_t L = layers_.size();
  for (std::size_t slot = 0; slot < L; ++slot) {
    own_mbr_[id * L + slot] = rect{};
    auto& inv = inverted_[slot];
    inv.erase(std::remove_if(inv.begin(), inv.end(),
                             [id](const element_ref& e) { return e.cell == id; }),
              inv.end());
  }
  const cell& c = lib_->at(id);
  for (std::uint32_t pi = 0; pi < c.polygons().size(); ++pi) {
    const polygon_elem& p = c.polygons()[pi];
    auto it = slot_of_.find(p.layer);
    if (it == slot_of_.end()) return false;
    const std::size_t slot = it->second;
    own_mbr_[id * L + slot] = own_mbr_[id * L + slot].join(p.poly.mbr());
    inverted_[slot].push_back({id, pi});
  }
  return true;
}

void mbr_index::aggregate() {
  const std::size_t L = layers_.size();
  const std::size_t n = lib_->cell_count();
  mbr_ = own_mbr_;
  total_mbr_.assign(n, rect{});
  children_.assign(n * L, {});
  for (cell_id id = 0; id < n; ++id) {
    for (std::size_t slot = 0; slot < L; ++slot) {
      total_mbr_[id] = total_mbr_[id].join(own_mbr_[id * L + slot]);
    }
  }

  // Bottom-up in topological order: every referenced cell's MBRs are final
  // before its referencers are processed.
  for (cell_id id : lib_->topological_order()) {
    const cell& c = lib_->at(id);
    auto fold_child = [&](const rect& child_layer_mbr, std::size_t slot, const transform& t) {
      const rect tm = t.apply(child_layer_mbr);
      mbr_[id * L + slot] = mbr_[id * L + slot].join(tm);
      total_mbr_[id] = total_mbr_[id].join(tm);
    };
    for (std::uint32_t ri = 0; ri < c.refs().size(); ++ri) {
      const cell_ref& r = c.refs()[ri];
      for (std::size_t slot = 0; slot < L; ++slot) {
        const rect& cm = mbr_[r.target * L + slot];
        if (cm.empty()) continue;
        fold_child(cm, slot, r.trans);
        children_[id * L + slot].push_back(ri);
      }
    }
    const auto ref_count = static_cast<std::uint32_t>(c.refs().size());
    for (std::uint32_t ai = 0; ai < c.arrays().size(); ++ai) {
      const cell_array& a = c.arrays()[ai];
      for (std::size_t slot = 0; slot < L; ++slot) {
        const rect& cm = mbr_[a.target * L + slot];
        if (cm.empty()) continue;
        // MBR of the whole array: the corner instances bound it because the
        // steps are uniform.
        fold_child(cm, slot, a.instance(0, 0));
        fold_child(cm, slot,
                   a.instance(static_cast<std::uint16_t>(a.cols - 1),
                              static_cast<std::uint16_t>(a.rows - 1)));
        fold_child(cm, slot, a.instance(static_cast<std::uint16_t>(a.cols - 1), 0));
        fold_child(cm, slot, a.instance(0, static_cast<std::uint16_t>(a.rows - 1)));
        children_[id * L + slot].push_back(ref_count + ai);
      }
    }
  }
}

bool mbr_index::update_cell(cell_id id) {
  if (lib_->cell_count() != total_mbr_.size()) return false;  // cells added/removed
  if (id >= lib_->cell_count()) return false;
  if (!scan_own_geometry(id)) return false;  // layer without a slot
  aggregate();
  return true;
}

std::size_t mbr_index::layer_slot(layer_t layer) const {
  auto it = slot_of_.find(layer);
  return it == slot_of_.end() ? static_cast<std::size_t>(-1) : it->second;
}

const rect& mbr_index::cell_mbr(cell_id id, layer_t layer) const {
  const std::size_t slot = layer_slot(layer);
  if (slot == static_cast<std::size_t>(-1)) return empty_rect_;
  return mbr_[id * layers_.size() + slot];
}

const std::vector<element_ref>& mbr_index::elements_on_layer(layer_t layer) const {
  static const std::vector<element_ref> none;
  const std::size_t slot = layer_slot(layer);
  return slot == static_cast<std::size_t>(-1) ? none : inverted_[slot];
}

const std::vector<std::uint32_t>& mbr_index::children_on_layer(cell_id id, layer_t layer) const {
  const std::size_t slot = layer_slot(layer);
  if (slot == static_cast<std::size_t>(-1)) return no_children_;
  return children_[id * layers_.size() + slot];
}

std::uint64_t mbr_index::query(cell_id top, layer_t layer, const rect& window,
                               const std::function<void(const layer_hit&)>& visit) const {
  const std::size_t slot = layer_slot(layer);
  if (slot == static_cast<std::size_t>(-1)) return 0;
  return query_rec(top, slot, layer, window, transform{}, visit);
}

std::uint64_t mbr_index::query_rec(cell_id id, std::size_t slot, layer_t layer,
                                   const rect& window, const transform& to_top,
                                   const std::function<void(const layer_hit&)>& visit) const {
  std::uint64_t visited = 1;
  const std::size_t L = layers_.size();
  const rect& lm = mbr_[id * L + slot];
  if (lm.empty() || !window.overlaps(to_top.apply(lm))) return visited;

  const cell& c = lib_->at(id);
  for (std::uint32_t pi = 0; pi < c.polygons().size(); ++pi) {
    const polygon_elem& p = c.polygons()[pi];
    if (p.layer != layer) continue;
    if (!window.overlaps(to_top.apply(p.poly.mbr()))) continue;
    visit(layer_hit{{id, pi}, to_top});
  }
  const auto ref_count = static_cast<std::uint32_t>(c.refs().size());
  // Descend only the duplicated (per-layer) child list.
  for (std::uint32_t child : children_[id * L + slot]) {
    if (child < ref_count) {
      const cell_ref& r = c.refs()[child];
      visited += query_rec(r.target, slot, layer, window, to_top.compose(r.trans), visit);
    } else {
      const cell_array& a = c.arrays()[child - ref_count];
      for (std::uint16_t rr = 0; rr < a.rows; ++rr) {
        for (std::uint16_t cc = 0; cc < a.cols; ++cc) {
          visited +=
              query_rec(a.target, slot, layer, window, to_top.compose(a.instance(cc, rr)), visit);
        }
      }
    }
  }
  return visited;
}

}  // namespace odrc::db
