#include "db/mbr_index.hpp"

#include <algorithm>
#include <set>

namespace odrc::db {

const rect mbr_index::empty_rect_{};

namespace {

// Flatten per-bucket builder lists into CSR storage.
template <typename T>
void flatten_csr(const std::vector<std::vector<T>>& buckets, odrc::storage_span<T>& data,
                 odrc::storage_span<std::uint32_t>& offsets) {
  std::vector<std::uint32_t> off;
  off.reserve(buckets.size() + 1);
  std::size_t total = 0;
  off.push_back(0);
  for (const auto& b : buckets) {
    total += b.size();
    off.push_back(static_cast<std::uint32_t>(total));
  }
  std::vector<T> flat;
  flat.reserve(total);
  for (const auto& b : buckets) flat.insert(flat.end(), b.begin(), b.end());
  data.assign(std::move(flat));
  offsets.assign(std::move(off));
}

}  // namespace

mbr_index::mbr_index(const library& lib) : lib_(&lib) {
  // Collect the distinct layers.
  std::set<layer_t> layer_set;
  for (const cell& c : lib.cells()) {
    for (const polygon_elem& p : c.polygons()) layer_set.insert(p.layer);
  }
  layers_.assign(layer_set.begin(), layer_set.end());

  const std::size_t L = layers_.size();
  const std::size_t n = lib.cell_count();
  own_mbr_.assign(n * L, rect{});

  // Build the inverted CSR in one pass: entries per slot ordered by
  // (cell id, polygon index) ascending — the order scan_own_geometry
  // preserves for unedited cells on partial updates.
  std::vector<std::vector<element_ref>> inv(L);
  for (cell_id id = 0; id < n; ++id) {
    const cell& c = lib.at(id);
    for (std::uint32_t pi = 0; pi < c.polygons().size(); ++pi) {
      const polygon_elem& p = c.polygons()[pi];
      const std::size_t slot = layer_slot(p.layer);
      own_mbr_[id * L + slot] = own_mbr_[id * L + slot].join(p.poly.mbr());
      inv[slot].push_back({id, pi});
    }
  }
  flatten_csr(inv, inverted_data_, inverted_off_);
  aggregate();
}

mbr_index::mbr_index(const library& lib, const frozen_view& fv) : lib_(&lib) {
  layers_.assign(fv.layers.begin(), fv.layers.end());
  mbr_.adopt(fv.mbr);
  own_mbr_.adopt(fv.own_mbr);
  total_mbr_.adopt(fv.total_mbr);
  inverted_data_.adopt(fv.inverted_data);
  inverted_off_.adopt(fv.inverted_off);
  children_data_.adopt(fv.children_data);
  children_off_.adopt(fv.children_off);
}

mbr_index::frozen_view mbr_index::freeze_view() const {
  frozen_view fv;
  fv.layers = layers_;
  fv.mbr = mbr_.span();
  fv.own_mbr = own_mbr_.span();
  fv.total_mbr = total_mbr_.span();
  fv.inverted_data = inverted_data_.span();
  fv.inverted_off = inverted_off_.span();
  fv.children_data = children_data_.span();
  fv.children_off = children_off_.span();
  return fv;
}

void mbr_index::thaw() {
  mbr_.thaw();
  own_mbr_.thaw();
  total_mbr_.thaw();
  inverted_data_.thaw();
  inverted_off_.thaw();
  children_data_.thaw();
  children_off_.thaw();
}

bool mbr_index::scan_own_geometry(cell_id id) {
  const std::size_t L = layers_.size();
  for (std::size_t slot = 0; slot < L; ++slot) own_mbr_[id * L + slot] = rect{};

  // Rebuild the inverted CSR: other cells' entries keep their order, the
  // edited cell's entries are re-appended per slot in polygon order (the
  // same semantics the pre-CSR erase+push_back produced).
  std::vector<std::vector<element_ref>> inv(L);
  for (std::size_t slot = 0; slot < L; ++slot) {
    const std::uint32_t lo = inverted_off_[slot];
    const std::uint32_t hi = inverted_off_[slot + 1];
    inv[slot].reserve(hi - lo);
    for (std::uint32_t i = lo; i < hi; ++i) {
      if (inverted_data_[i].cell != id) inv[slot].push_back(inverted_data_[i]);
    }
  }
  const cell& c = lib_->at(id);
  for (std::uint32_t pi = 0; pi < c.polygons().size(); ++pi) {
    const polygon_elem& p = c.polygons()[pi];
    const std::size_t slot = layer_slot(p.layer);
    if (slot == static_cast<std::size_t>(-1)) return false;
    own_mbr_[id * L + slot] = own_mbr_[id * L + slot].join(p.poly.mbr());
    inv[slot].push_back({id, pi});
  }
  flatten_csr(inv, inverted_data_, inverted_off_);
  return true;
}

void mbr_index::aggregate() {
  const std::size_t L = layers_.size();
  const std::size_t n = lib_->cell_count();
  mbr_.assign(own_mbr_.to_vector());
  total_mbr_.assign(n, rect{});
  std::vector<std::vector<std::uint32_t>> children(n * L);
  for (cell_id id = 0; id < n; ++id) {
    for (std::size_t slot = 0; slot < L; ++slot) {
      total_mbr_[id] = total_mbr_[id].join(own_mbr_[id * L + slot]);
    }
  }

  // Bottom-up in topological order: every referenced cell's MBRs are final
  // before its referencers are processed.
  for (cell_id id : lib_->topological_order()) {
    const cell& c = lib_->at(id);
    auto fold_child = [&](const rect& child_layer_mbr, std::size_t slot, const transform& t) {
      const rect tm = t.apply(child_layer_mbr);
      mbr_[id * L + slot] = mbr_[id * L + slot].join(tm);
      total_mbr_[id] = total_mbr_[id].join(tm);
    };
    for (std::uint32_t ri = 0; ri < c.refs().size(); ++ri) {
      const cell_ref& r = c.refs()[ri];
      for (std::size_t slot = 0; slot < L; ++slot) {
        const rect& cm = mbr_[r.target * L + slot];
        if (cm.empty()) continue;
        fold_child(cm, slot, r.trans);
        children[id * L + slot].push_back(ri);
      }
    }
    const auto ref_count = static_cast<std::uint32_t>(c.refs().size());
    for (std::uint32_t ai = 0; ai < c.arrays().size(); ++ai) {
      const cell_array& a = c.arrays()[ai];
      for (std::size_t slot = 0; slot < L; ++slot) {
        const rect& cm = mbr_[a.target * L + slot];
        if (cm.empty()) continue;
        // MBR of the whole array: the corner instances bound it because the
        // steps are uniform.
        fold_child(cm, slot, a.instance(0, 0));
        fold_child(cm, slot,
                   a.instance(static_cast<std::uint16_t>(a.cols - 1),
                              static_cast<std::uint16_t>(a.rows - 1)));
        fold_child(cm, slot, a.instance(static_cast<std::uint16_t>(a.cols - 1), 0));
        fold_child(cm, slot, a.instance(0, static_cast<std::uint16_t>(a.rows - 1)));
        children[id * L + slot].push_back(ref_count + ai);
      }
    }
  }
  flatten_csr(children, children_data_, children_off_);
}

bool mbr_index::update_cell(cell_id id) {
  if (lib_->cell_count() != total_mbr_.size()) return false;  // cells added/removed
  if (id >= lib_->cell_count()) return false;
  // A cell that now carries an unknown layer needs a full rebuild — detect
  // it before thawing/mutating anything.
  for (const polygon_elem& p : lib_->at(id).polygons()) {
    if (layer_slot(p.layer) == static_cast<std::size_t>(-1)) return false;
  }
  thaw();  // copy-on-write: a frozen-adopted index copies its node arrays out
  if (!scan_own_geometry(id)) return false;
  aggregate();
  return true;
}

std::size_t mbr_index::layer_slot(layer_t layer) const {
  const auto it = std::lower_bound(layers_.begin(), layers_.end(), layer);
  if (it == layers_.end() || *it != layer) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - layers_.begin());
}

const rect& mbr_index::cell_mbr(cell_id id, layer_t layer) const {
  const std::size_t slot = layer_slot(layer);
  if (slot == static_cast<std::size_t>(-1)) return empty_rect_;
  return mbr_[id * layers_.size() + slot];
}

std::span<const element_ref> mbr_index::elements_on_layer(layer_t layer) const {
  const std::size_t slot = layer_slot(layer);
  if (slot == static_cast<std::size_t>(-1)) return {};
  return {inverted_data_.data() + inverted_off_[slot],
          static_cast<std::size_t>(inverted_off_[slot + 1] - inverted_off_[slot])};
}

std::span<const std::uint32_t> mbr_index::children_on_layer(cell_id id, layer_t layer) const {
  const std::size_t slot = layer_slot(layer);
  if (slot == static_cast<std::size_t>(-1)) return {};
  const std::size_t i = id * layers_.size() + slot;
  return {children_data_.data() + children_off_[i],
          static_cast<std::size_t>(children_off_[i + 1] - children_off_[i])};
}

std::uint64_t mbr_index::query(cell_id top, layer_t layer, const rect& window,
                               const std::function<void(const layer_hit&)>& visit) const {
  const std::size_t slot = layer_slot(layer);
  if (slot == static_cast<std::size_t>(-1)) return 0;
  return query_rec(top, slot, layer, window, transform{}, visit);
}

std::uint64_t mbr_index::query_rec(cell_id id, std::size_t slot, layer_t layer,
                                   const rect& window, const transform& to_top,
                                   const std::function<void(const layer_hit&)>& visit) const {
  std::uint64_t visited = 1;
  const std::size_t L = layers_.size();
  const rect& lm = mbr_[id * L + slot];
  if (lm.empty() || !window.overlaps(to_top.apply(lm))) return visited;

  const cell& c = lib_->at(id);
  for (std::uint32_t pi = 0; pi < c.polygons().size(); ++pi) {
    const polygon_elem& p = c.polygons()[pi];
    if (p.layer != layer) continue;
    if (!window.overlaps(to_top.apply(p.poly.mbr()))) continue;
    visit(layer_hit{{id, pi}, to_top});
  }
  const auto ref_count = static_cast<std::uint32_t>(c.refs().size());
  // Descend only the duplicated (per-layer) child list.
  const std::size_t ci = id * L + slot;
  for (std::uint32_t k = children_off_[ci]; k < children_off_[ci + 1]; ++k) {
    const std::uint32_t child = children_data_[k];
    if (child < ref_count) {
      const cell_ref& r = c.refs()[child];
      visited += query_rec(r.target, slot, layer, window, to_top.compose(r.trans), visit);
    } else {
      const cell_array& a = c.arrays()[child - ref_count];
      for (std::uint16_t rr = 0; rr < a.rows; ++rr) {
        for (std::uint16_t cc = 0; cc < a.cols; ++cc) {
          visited +=
              query_rec(a.target, slot, layer, window, to_top.compose(a.instance(cc, rr)), visit);
        }
      }
    }
  }
  return visited;
}

}  // namespace odrc::db
