#include "db/layout.hpp"

#include <algorithm>

namespace odrc::db {

cell_id library::add_cell(std::string name) {
  if (index_.contains(name)) {
    throw std::invalid_argument("library: duplicate cell name '" + name + "'");
  }
  const cell_id id = static_cast<cell_id>(cells_.size());
  index_.emplace(name, id);
  cells_.emplace_back(std::move(name));
  return id;
}

std::optional<cell_id> library::find(std::string_view name) const {
  auto it = index_.find(std::string{name});
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<cell_id> library::top_cells() const {
  std::vector<bool> referenced(cells_.size(), false);
  for (const cell& c : cells_) {
    for (const cell_ref& r : c.refs()) referenced[r.target] = true;
    for (const cell_array& a : c.arrays()) referenced[a.target] = true;
  }
  std::vector<cell_id> tops;
  for (cell_id id = 0; id < cells_.size(); ++id) {
    if (!referenced[id]) tops.push_back(id);
  }
  return tops;
}

std::vector<cell_id> library::topological_order() const {
  // Kahn's algorithm over the reference DAG, edges from referencer to
  // referencee; output referencees first.
  std::vector<std::uint32_t> pending(cells_.size(), 0);  // #unresolved children
  std::vector<std::vector<cell_id>> parents(cells_.size());
  for (cell_id id = 0; id < cells_.size(); ++id) {
    const cell& c = cells_[id];
    auto note = [&](cell_id target) {
      if (target >= cells_.size()) throw std::runtime_error("library: dangling reference");
      ++pending[id];
      parents[target].push_back(id);
    };
    for (const cell_ref& r : c.refs()) note(r.target);
    for (const cell_array& a : c.arrays()) note(a.target);
  }
  std::vector<cell_id> order;
  order.reserve(cells_.size());
  for (cell_id id = 0; id < cells_.size(); ++id) {
    if (pending[id] == 0) order.push_back(id);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (cell_id parent : parents[order[i]]) {
      if (--pending[parent] == 0) order.push_back(parent);
    }
  }
  if (order.size() != cells_.size()) {
    throw std::runtime_error("library: reference cycle detected");
  }
  return order;
}

std::size_t library::hierarchy_depth() const {
  std::vector<std::size_t> depth(cells_.size(), 1);
  for (cell_id id : topological_order()) {
    const cell& c = cells_[id];
    for (const cell_ref& r : c.refs()) depth[id] = std::max(depth[id], depth[r.target] + 1);
    for (const cell_array& a : c.arrays()) depth[id] = std::max(depth[id], depth[a.target] + 1);
  }
  std::size_t d = 0;
  for (cell_id top : top_cells()) d = std::max(d, depth[top]);
  return d;
}

std::uint64_t library::expanded_polygon_count() const {
  std::vector<std::uint64_t> count(cells_.size(), 0);
  for (cell_id id : topological_order()) {
    const cell& c = cells_[id];
    std::uint64_t n = c.polygons().size();
    for (const cell_ref& r : c.refs()) n += count[r.target];
    for (const cell_array& a : c.arrays()) n += static_cast<std::uint64_t>(a.count()) * count[a.target];
    count[id] = n;
  }
  std::uint64_t total = 0;
  for (cell_id top : top_cells()) total += count[top];
  return total;
}

}  // namespace odrc::db
