// Hierarchical layout database (paper Section IV-A).
//
// Models the GDSII object hierarchy: a `library` holds `cell`s (GDSII
// "structures"); a cell holds geometry elements (BOUNDARY polygons) and
// reference elements (SREF single references and AREF arrays). References
// store the index of the referenced cell — "a structure reference
// effectively stores a pointer to the structure definition to reduce memory
// consumption" — so the layout is never flattened unless a caller explicitly
// asks for it (src/db/flatten.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "infra/geometry.hpp"

namespace odrc::db {

/// GDSII layer number. Design rules reference layers by this id.
using layer_t = std::int16_t;
/// GDSII datatype number (carried through, not used for rule dispatch).
using datatype_t = std::int16_t;

/// Index of a cell within its library.
using cell_id = std::uint32_t;
inline constexpr cell_id invalid_cell = static_cast<cell_id>(-1);

/// A geometry element: a rectilinear polygon on a (layer, datatype).
struct polygon_elem {
  layer_t layer = 0;
  datatype_t datatype = 0;
  odrc::polygon poly;
  std::string name;  ///< optional property (paper Listing 1's third rule checks it)
};

/// A single structure reference (GDSII SREF).
struct cell_ref {
  cell_id target = invalid_cell;
  transform trans;
};

/// An array reference (GDSII AREF): `cols` x `rows` instances of `target`,
/// the (c, r) instance translated by c*col_step + r*row_step relative to
/// `trans`.
struct cell_array {
  cell_id target = invalid_cell;
  transform trans;
  std::uint16_t cols = 1;
  std::uint16_t rows = 1;
  point col_step{};
  point row_step{};

  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(cols) * rows;
  }

  /// Transform of the (c, r) instance.
  [[nodiscard]] transform instance(std::uint16_t c, std::uint16_t r) const {
    transform t = trans;
    t.offset.x = static_cast<coord_t>(t.offset.x + c * col_step.x + r * row_step.x);
    t.offset.y = static_cast<coord_t>(t.offset.y + c * col_step.y + r * row_step.y);
    return t;
  }
};

/// A text label (kept for round-trip fidelity; not rule-checked).
struct text_elem {
  layer_t layer = 0;
  datatype_t datatype = 0;
  point position{};
  std::string text;
};

/// A GDSII structure: named geometry plus references to other structures.
class cell {
 public:
  explicit cell(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] std::span<const polygon_elem> polygons() const { return polygons_; }
  [[nodiscard]] std::span<const cell_ref> refs() const { return refs_; }
  [[nodiscard]] std::span<const cell_array> arrays() const { return arrays_; }
  [[nodiscard]] std::span<const text_elem> texts() const { return texts_; }

  void add_polygon(polygon_elem p) { polygons_.push_back(std::move(p)); }
  void add_ref(cell_ref r) { refs_.push_back(r); }
  void add_array(cell_array a) { arrays_.push_back(a); }
  void add_text(text_elem t) { texts_.push_back(std::move(t)); }

  // In-place edit hooks for incremental sessions (odrc::serve). Removal
  // shifts the indices of later elements; callers that cache element indices
  // (mbr_index's inverted lists, snapshot views) must be invalidated.
  [[nodiscard]] polygon_elem& polygon_at(std::size_t i) { return polygons_.at(i); }
  void remove_polygon(std::size_t i) {
    if (i >= polygons_.size()) throw std::out_of_range("remove_polygon");
    polygons_.erase(polygons_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  [[nodiscard]] cell_ref& ref_at(std::size_t i) { return refs_.at(i); }
  void remove_ref(std::size_t i) {
    if (i >= refs_.size()) throw std::out_of_range("remove_ref");
    refs_.erase(refs_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  /// Late binding of reference targets (GDSII allows forward references by
  /// structure name; the reader resolves them after ENDLIB).
  void set_ref_target(std::size_t i, cell_id target) { refs_.at(i).target = target; }
  void set_array_target(std::size_t i, cell_id target) { arrays_.at(i).target = target; }

  /// Convenience: add an axis-aligned rectangle polygon on `layer`.
  void add_rect(layer_t layer, const rect& r, datatype_t dt = 0) {
    polygons_.push_back({layer, dt, odrc::polygon::from_rect(r), {}});
  }

  [[nodiscard]] bool leaf() const { return refs_.empty() && arrays_.empty(); }

  /// Total number of referenced instances (arrays expanded).
  [[nodiscard]] std::uint32_t instance_count() const {
    std::uint32_t n = static_cast<std::uint32_t>(refs_.size());
    for (const auto& a : arrays_) n += a.count();
    return n;
  }

 private:
  std::string name_;
  std::vector<polygon_elem> polygons_;
  std::vector<cell_ref> refs_;
  std::vector<cell_array> arrays_;
  std::vector<text_elem> texts_;
};

/// A GDSII library: the cell table plus unit metadata.
class library {
 public:
  library() = default;
  explicit library(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Database units: user units per dbu and meters per dbu (GDSII UNITS).
  double user_unit = 1e-3;
  double meter_unit = 1e-9;

  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] std::span<const cell> cells() const { return cells_; }

  [[nodiscard]] const cell& at(cell_id id) const { return cells_.at(id); }
  [[nodiscard]] cell& at(cell_id id) { return cells_.at(id); }

  /// Create a new empty cell; throws if the name already exists.
  cell_id add_cell(std::string name);

  /// Index lookup by structure name.
  [[nodiscard]] std::optional<cell_id> find(std::string_view name) const;

  /// Cells not referenced by any other cell. A typical design has exactly
  /// one; the DRC engine checks each top independently.
  [[nodiscard]] std::vector<cell_id> top_cells() const;

  /// Cell ids in dependency order: every cell appears after all cells it
  /// references. Throws std::runtime_error on reference cycles (illegal in
  /// GDSII).
  [[nodiscard]] std::vector<cell_id> topological_order() const;

  /// Depth of the hierarchy DAG (a flat library has depth 1).
  [[nodiscard]] std::size_t hierarchy_depth() const;

  /// Total polygon count with hierarchy expanded (what a flat checker sees).
  [[nodiscard]] std::uint64_t expanded_polygon_count() const;

 private:
  std::string name_ = "lib";
  std::vector<cell> cells_;
  std::unordered_map<std::string, cell_id> index_;
};

}  // namespace odrc::db
