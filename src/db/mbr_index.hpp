// Layer-wise MBR-augmented hierarchy (paper Section IV-A).
//
// For every cell and every layer, the index stores the minimum bounding
// rectangle of the cell's content on that layer, including content reached
// through references ("for a cell that spans multiple layers, separated MBRs
// are computed for each layer and maintained"). A layer range query descends
// the hierarchy from a top cell and prunes any subtree whose MBR for the
// queried layer is empty or disjoint from the query window — this is the
// O(min(n, kh)) query the paper claims versus O(n) for the plain tree.
//
// Two acceleration structures from the paper's "duplication and inverted
// indices" paragraph are also built:
//  - per-layer hierarchy duplication: for each layer, the list of child
//    references that (transitively) contain content on that layer, so the
//    descent never touches irrelevant children;
//  - element-level inverted index: for each layer, the flat list of
//    (cell, polygon-index) pairs, answering "all objects of layer L"
//    without any tree walk.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "db/layout.hpp"
#include "infra/geometry.hpp"

namespace odrc::db {

/// Reference to one polygon element inside a cell definition.
struct element_ref {
  cell_id cell = invalid_cell;
  std::uint32_t poly_index = 0;
};

/// One flattened hit of a layer range query: the polygon element plus the
/// accumulated transform from the queried top cell down to its instance.
struct layer_hit {
  element_ref element;
  transform to_top;
};

class mbr_index {
 public:
  /// Build the index for `lib`. The library must stay alive and unchanged
  /// for the index's lifetime — except through update_cell(), the edit
  /// sessions' invalidation hook.
  explicit mbr_index(const library& lib);

  [[nodiscard]] const library& lib() const { return *lib_; }

  /// All layers that carry at least one polygon anywhere in the library.
  [[nodiscard]] const std::vector<layer_t>& layers() const { return layers_; }

  /// MBR of cell `id`'s content on `layer` (empty rect when none), in the
  /// cell's own coordinates.
  [[nodiscard]] const rect& cell_mbr(cell_id id, layer_t layer) const;

  /// MBR of cell `id`'s content across all layers.
  [[nodiscard]] const rect& cell_mbr(cell_id id) const { return total_mbr_[id]; }

  /// True iff cell `id` contains (transitively) any polygon on `layer`.
  [[nodiscard]] bool cell_has_layer(cell_id id, layer_t layer) const {
    return !cell_mbr(id, layer).empty();
  }

  /// Element-level inverted index: every polygon element on `layer`
  /// (cell-definition space, one entry per definition — instances are not
  /// expanded).
  [[nodiscard]] const std::vector<element_ref>& elements_on_layer(layer_t layer) const;

  /// Layer range query (paper Section IV-A): visit every polygon instance on
  /// `layer` under `top` whose transformed MBR overlaps `window`, pruning
  /// subtrees by layer MBR. Pass an all-covering window to enumerate the
  /// whole layer. The callback receives the element and its accumulated
  /// transform. Returns the count of tree nodes visited (instrumentation for
  /// the O(min(n, kh)) micro-benchmark) — a return value rather than stored
  /// state, so concurrent queries against one shared index never race.
  std::uint64_t query(cell_id top, layer_t layer, const rect& window,
                      const std::function<void(const layer_hit&)>& visit) const;

  /// Per-layer duplicated child lists of `id`: indices into the cell's
  /// refs() (first) and arrays() (offset by refs().size()) that lead to
  /// content on `layer`.
  [[nodiscard]] const std::vector<std::uint32_t>& children_on_layer(cell_id id,
                                                                    layer_t layer) const;

  /// Partial re-index after cell `id` was edited in place (polygons changed,
  /// references added/removed/moved) — the incremental sessions' hook
  /// (odrc::serve). Re-walks only the edited cell's polygons, rebuilds its
  /// inverted-index entries, then recomputes the hierarchy aggregates
  /// (per-layer MBRs and duplicated child lists) for every cell from the
  /// cached own-geometry MBRs — no other cell's polygons are touched.
  ///
  /// Returns false when the edit cannot be absorbed incrementally — the
  /// library's cell count changed, or the cell now carries a layer the index
  /// has no slot for — in which case the caller must build a fresh index.
  bool update_cell(cell_id id);

 private:
  [[nodiscard]] std::size_t layer_slot(layer_t layer) const;

  /// Re-walk cell `id`'s own polygons into own_mbr_ and inverted_. Returns
  /// false on a layer without a slot.
  bool scan_own_geometry(cell_id id);

  /// Recompute mbr_ / total_mbr_ / children_ from own_mbr_ in topological
  /// order (no polygon walks).
  void aggregate();

  std::uint64_t query_rec(cell_id id, std::size_t slot, layer_t layer, const rect& window,
                          const transform& to_top,
                          const std::function<void(const layer_hit&)>& visit) const;

  const library* lib_;
  std::vector<layer_t> layers_;                       // sorted distinct layers
  std::unordered_map<layer_t, std::size_t> slot_of_;  // layer -> dense slot
  // mbr_[cell * layer_count + slot]; own_mbr_ covers only the cell's direct
  // polygons (no references) so update_cell can re-aggregate without
  // re-walking any geometry.
  std::vector<rect> mbr_;
  std::vector<rect> own_mbr_;
  std::vector<rect> total_mbr_;
  // inverted_[slot] = all polygon elements on that layer
  std::vector<std::vector<element_ref>> inverted_;
  // children_[cell * layer_count + slot] = child indices with layer content
  std::vector<std::vector<std::uint32_t>> children_;
  static const std::vector<std::uint32_t> no_children_;
  static const rect empty_rect_;
};

}  // namespace odrc::db
