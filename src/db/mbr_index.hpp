// Layer-wise MBR-augmented hierarchy (paper Section IV-A).
//
// For every cell and every layer, the index stores the minimum bounding
// rectangle of the cell's content on that layer, including content reached
// through references ("for a cell that spans multiple layers, separated MBRs
// are computed for each layer and maintained"). A layer range query descends
// the hierarchy from a top cell and prunes any subtree whose MBR for the
// queried layer is empty or disjoint from the query window — this is the
// O(min(n, kh)) query the paper claims versus O(n) for the plain tree.
//
// Two acceleration structures from the paper's "duplication and inverted
// indices" paragraph are also built:
//  - per-layer hierarchy duplication: for each layer, the list of child
//    references that (transitively) contain content on that layer, so the
//    descent never touches irrelevant children;
//  - element-level inverted index: for each layer, the flat list of
//    (cell, polygon-index) pairs, answering "all objects of layer L"
//    without any tree walk.
//
// Storage layout (DESIGN.md §9): every node array is a flat
// `odrc::storage_span` — the inverted index and the duplicated child lists
// in CSR form (data + offsets), the layer -> slot map a binary search over
// the sorted layer list instead of an unordered_map. This makes the whole
// index either owned (cold build) or a set of zero-copy views into a mapped
// frozen-snapshot blob (`frozen_view` adoption). update_cell() thaws the
// views on first edit (copy-on-write) and then mutates the owned copy; the
// mapped file is never written.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "db/layout.hpp"
#include "infra/arena.hpp"
#include "infra/geometry.hpp"

namespace odrc::db {

/// Reference to one polygon element inside a cell definition.
struct element_ref {
  cell_id cell = invalid_cell;
  std::uint32_t poly_index = 0;
};

/// One flattened hit of a layer range query: the polygon element plus the
/// accumulated transform from the queried top cell down to its instance.
struct layer_hit {
  element_ref element;
  transform to_top;
};

class mbr_index {
 public:
  /// The flat node arrays, as spans — what the frozen-snapshot builder
  /// serializes and the mmap loader adopts back. Offsets arrays follow CSR
  /// convention: inverted_off has layers()+1 entries, children_off has
  /// cell_count*layers()+1 entries.
  struct frozen_view {
    std::span<const layer_t> layers;
    std::span<const rect> mbr;                       ///< cell*L + slot
    std::span<const rect> own_mbr;                   ///< cell*L + slot
    std::span<const rect> total_mbr;                 ///< per cell
    std::span<const element_ref> inverted_data;      ///< CSR data per slot
    std::span<const std::uint32_t> inverted_off;     ///< size L+1
    std::span<const std::uint32_t> children_data;    ///< CSR data per (cell, slot)
    std::span<const std::uint32_t> children_off;     ///< size n*L+1
  };

  /// Build the index for `lib`. The library must stay alive and unchanged
  /// for the index's lifetime — except through update_cell(), the edit
  /// sessions' invalidation hook.
  explicit mbr_index(const library& lib);

  /// Adopt a frozen node layout (zero-copy: the spans point into a mapped
  /// snapshot blob that must outlive this index). No geometry is walked.
  mbr_index(const library& lib, const frozen_view& fv);

  [[nodiscard]] const library& lib() const { return *lib_; }

  /// All layers that carry at least one polygon anywhere in the library.
  [[nodiscard]] const std::vector<layer_t>& layers() const { return layers_; }

  /// MBR of cell `id`'s content on `layer` (empty rect when none), in the
  /// cell's own coordinates.
  [[nodiscard]] const rect& cell_mbr(cell_id id, layer_t layer) const;

  /// MBR of cell `id`'s content across all layers.
  [[nodiscard]] const rect& cell_mbr(cell_id id) const { return total_mbr_[id]; }

  /// True iff cell `id` contains (transitively) any polygon on `layer`.
  [[nodiscard]] bool cell_has_layer(cell_id id, layer_t layer) const {
    return !cell_mbr(id, layer).empty();
  }

  /// Element-level inverted index: every polygon element on `layer`
  /// (cell-definition space, one entry per definition — instances are not
  /// expanded).
  [[nodiscard]] std::span<const element_ref> elements_on_layer(layer_t layer) const;

  /// Layer range query (paper Section IV-A): visit every polygon instance on
  /// `layer` under `top` whose transformed MBR overlaps `window`, pruning
  /// subtrees by layer MBR. Pass an all-covering window to enumerate the
  /// whole layer. The callback receives the element and its accumulated
  /// transform. Returns the count of tree nodes visited (instrumentation for
  /// the O(min(n, kh)) micro-benchmark) — a return value rather than stored
  /// state, so concurrent queries against one shared index never race.
  std::uint64_t query(cell_id top, layer_t layer, const rect& window,
                      const std::function<void(const layer_hit&)>& visit) const;

  /// Per-layer duplicated child lists of `id`: indices into the cell's
  /// refs() (first) and arrays() (offset by refs().size()) that lead to
  /// content on `layer`.
  [[nodiscard]] std::span<const std::uint32_t> children_on_layer(cell_id id,
                                                                 layer_t layer) const;

  /// Partial re-index after cell `id` was edited in place (polygons changed,
  /// references added/removed/moved) — the incremental sessions' hook
  /// (odrc::serve). Re-walks only the edited cell's polygons, rebuilds its
  /// inverted-index entries, then recomputes the hierarchy aggregates
  /// (per-layer MBRs and duplicated child lists) for every cell from the
  /// cached own-geometry MBRs — no other cell's polygons are touched. A
  /// frozen-adopted index thaws (copies the node arrays out of the mapping)
  /// before the first mutation.
  ///
  /// Returns false when the edit cannot be absorbed incrementally — the
  /// library's cell count changed, or the cell now carries a layer the index
  /// has no slot for — in which case the caller must build a fresh index.
  bool update_cell(cell_id id);

  /// True while the node arrays still alias a mapped snapshot blob.
  [[nodiscard]] bool frozen() const { return mbr_.frozen(); }

  /// Spans over the current node arrays — the frozen-snapshot builder's
  /// input. Valid until the next mutation.
  [[nodiscard]] frozen_view freeze_view() const;

 private:
  [[nodiscard]] std::size_t layer_slot(layer_t layer) const;

  /// Copy every frozen span into owned storage (no-op when already owned).
  void thaw();

  /// Re-walk cell `id`'s own polygons into own_mbr_ and the inverted CSR.
  /// Returns false on a layer without a slot.
  bool scan_own_geometry(cell_id id);

  /// Recompute mbr_ / total_mbr_ / children_ from own_mbr_ in topological
  /// order (no polygon walks).
  void aggregate();

  std::uint64_t query_rec(cell_id id, std::size_t slot, layer_t layer, const rect& window,
                          const transform& to_top,
                          const std::function<void(const layer_hit&)>& visit) const;

  const library* lib_;
  // Sorted distinct layers; slot = rank. Always owned (a handful of entries
  // — copying them out of a frozen blob is cheaper than the aliasing rules
  // a borrowed span would impose on layers()' callers).
  std::vector<layer_t> layers_;
  // mbr_[cell * layer_count + slot]; own_mbr_ covers only the cell's direct
  // polygons (no references) so update_cell can re-aggregate without
  // re-walking any geometry.
  odrc::storage_span<rect> mbr_;
  odrc::storage_span<rect> own_mbr_;
  odrc::storage_span<rect> total_mbr_;
  // Inverted index in CSR form: inverted_data_[inverted_off_[slot] ..
  // inverted_off_[slot+1]) = all polygon elements on that layer.
  odrc::storage_span<element_ref> inverted_data_;
  odrc::storage_span<std::uint32_t> inverted_off_;
  // Duplicated child lists in CSR form over (cell * layer_count + slot).
  odrc::storage_span<std::uint32_t> children_data_;
  odrc::storage_span<std::uint32_t> children_off_;
  static const rect empty_rect_;
};

}  // namespace odrc::db
