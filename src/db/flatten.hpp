// Hierarchy expansion.
//
// Baseline checkers (KLayout-flat analogue) and the parallel mode's edge
// packing need flat per-layer geometry. `flatten_layer` expands a top cell's
// hierarchy into transformed polygons on one layer; `flat_instance_list`
// expands to (cell master, transform) instance pairs without copying
// geometry, which the row partitioner consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "db/layout.hpp"
#include "db/mbr_index.hpp"

namespace odrc::db {

/// One fully transformed polygon in top-cell coordinates.
struct flat_polygon {
  odrc::polygon poly;
  layer_t layer = 0;
  element_ref origin;  ///< defining cell + polygon index (for reporting)
};

/// Expand every polygon on `layer` under `top` into top coordinates.
[[nodiscard]] std::vector<flat_polygon> flatten_layer(const library& lib, cell_id top,
                                                      layer_t layer);

/// Expand every polygon on every layer under `top`.
[[nodiscard]] std::vector<flat_polygon> flatten_all(const library& lib, cell_id top);

/// One placed instance of a cell master.
struct placed_cell {
  cell_id master = invalid_cell;
  transform to_top;
};

/// Expand the hierarchy into a flat list of *leaf-level placements*: one
/// entry per instantiation of every cell that directly contains polygons.
/// Cells that only aggregate references produce no entries of their own.
[[nodiscard]] std::vector<placed_cell> flat_instance_list(const library& lib, cell_id top);

/// Like flat_instance_list but only instances with content on `layer`
/// (pruned via the MBR index's per-layer duplicated children).
[[nodiscard]] std::vector<placed_cell> flat_instance_list(const mbr_index& index, cell_id top,
                                                          layer_t layer);

}  // namespace odrc::db
