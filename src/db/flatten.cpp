#include "db/flatten.hpp"

namespace odrc::db {

namespace {

template <typename Visit>
void walk_instances(const library& lib, cell_id id, const transform& to_top, Visit&& visit) {
  const cell& c = lib.at(id);
  visit(id, to_top);
  for (const cell_ref& r : c.refs()) {
    walk_instances(lib, r.target, to_top.compose(r.trans), visit);
  }
  for (const cell_array& a : c.arrays()) {
    for (std::uint16_t rr = 0; rr < a.rows; ++rr) {
      for (std::uint16_t cc = 0; cc < a.cols; ++cc) {
        walk_instances(lib, a.target, to_top.compose(a.instance(cc, rr)), visit);
      }
    }
  }
}

}  // namespace

std::vector<flat_polygon> flatten_layer(const library& lib, cell_id top, layer_t layer) {
  std::vector<flat_polygon> out;
  walk_instances(lib, top, transform{}, [&](cell_id id, const transform& t) {
    const cell& c = lib.at(id);
    for (std::uint32_t pi = 0; pi < c.polygons().size(); ++pi) {
      const polygon_elem& p = c.polygons()[pi];
      if (p.layer != layer) continue;
      out.push_back({p.poly.transformed(t), p.layer, {id, pi}});
    }
  });
  return out;
}

std::vector<flat_polygon> flatten_all(const library& lib, cell_id top) {
  std::vector<flat_polygon> out;
  walk_instances(lib, top, transform{}, [&](cell_id id, const transform& t) {
    const cell& c = lib.at(id);
    for (std::uint32_t pi = 0; pi < c.polygons().size(); ++pi) {
      const polygon_elem& p = c.polygons()[pi];
      out.push_back({p.poly.transformed(t), p.layer, {id, pi}});
    }
  });
  return out;
}

std::vector<placed_cell> flat_instance_list(const library& lib, cell_id top) {
  std::vector<placed_cell> out;
  walk_instances(lib, top, transform{}, [&](cell_id id, const transform& t) {
    if (!lib.at(id).polygons().empty()) out.push_back({id, t});
  });
  return out;
}

namespace {

void walk_layer(const mbr_index& index, cell_id id, layer_t layer, const transform& to_top,
                std::vector<placed_cell>& out) {
  const library& lib = index.lib();
  const cell& c = lib.at(id);
  bool has_direct = false;
  for (const polygon_elem& p : c.polygons()) {
    if (p.layer == layer) {
      has_direct = true;
      break;
    }
  }
  if (has_direct) out.push_back({id, to_top});
  const auto ref_count = static_cast<std::uint32_t>(c.refs().size());
  for (std::uint32_t child : index.children_on_layer(id, layer)) {
    if (child < ref_count) {
      const cell_ref& r = c.refs()[child];
      walk_layer(index, r.target, layer, to_top.compose(r.trans), out);
    } else {
      const cell_array& a = c.arrays()[child - ref_count];
      for (std::uint16_t rr = 0; rr < a.rows; ++rr) {
        for (std::uint16_t cc = 0; cc < a.cols; ++cc) {
          walk_layer(index, a.target, layer, to_top.compose(a.instance(cc, rr)), out);
        }
      }
    }
  }
}

}  // namespace

std::vector<placed_cell> flat_instance_list(const mbr_index& index, cell_id top, layer_t layer) {
  std::vector<placed_cell> out;
  walk_layer(index, top, layer, transform{}, out);
  return out;
}

}  // namespace odrc::db
