#include "engine/plan.hpp"

#include <algorithm>

namespace odrc::engine {

sweep::device_check_config exec_plan::device_config(sweep::sweep_axis axis) const {
  sweep::device_check_config cfg;
  cfg.kind = device_kind;
  cfg.distance = inflate;
  cfg.layer1 = layer1;
  cfg.layer2 = layer2;
  cfg.axis = axis;
  if (rule.kind == checks::rule_kind::spacing) cfg.table = rule.spacing;
  return cfg;
}

void exec_plan::check_single(const polygon& p, std::vector<checks::violation>& out,
                             checks::check_stats& cs) const {
  if (!intra_object) return;
  checks::check_spacing_notch(p, layer1, rule.spacing, out, cs);
}

void exec_plan::check_pair(const polygon& a, const rect& am, const polygon& b, const rect& bm,
                           std::vector<checks::violation>& out, std::uint8_t* a_contained,
                           checks::check_stats& cs) const {
  switch (rule.kind) {
    case checks::rule_kind::spacing:
      if (!am.inflated(rule.spacing.max_distance()).overlaps(bm)) return;
      checks::check_spacing(a, b, layer1, rule.spacing, out, cs);
      break;
    case checks::rule_kind::enclosure:
      if (!am.inflated(rule.distance).overlaps(bm)) return;
      if (checks::check_enclosure(a, b, layer1, layer2, rule.distance, out, cs) && a_contained) {
        *a_contained = 1;
      }
      break;
    default: break;  // other kinds have no pair predicate
  }
}

exec_plan compile_plan(const rules::rule& r) {
  exec_plan p;
  p.rule = r;
  p.layer1 = r.layer1;
  p.layer2 = r.layer2;
  switch (r.kind) {
    case checks::rule_kind::width:
    case checks::rule_kind::area:
    case checks::rule_kind::rectilinear:
    case checks::rule_kind::custom:
      p.cls = plan_class::intra;
      p.inflate = r.distance;
      if (r.kind == checks::rule_kind::width) p.device_kind = sweep::pair_check::width;
      break;
    case checks::rule_kind::spacing:
      p.cls = plan_class::pair;
      // Normalise: a plain-distance spacing rule becomes a one-tier table so
      // the host and device predicates have a single form to evaluate.
      if (p.rule.spacing.count == 0) {
        p.rule.spacing = checks::spacing_table::simple(r.distance);
      }
      p.inflate = p.rule.spacing.max_distance();
      p.intra_object = true;
      p.device_kind = sweep::pair_check::spacing;
      break;
    case checks::rule_kind::enclosure:
      p.cls = plan_class::pair;
      p.inflate = r.distance;
      p.two_layer = true;
      p.track_containment = true;
      p.device_kind = sweep::pair_check::enclosure;
      break;
    case checks::rule_kind::overlap_area:
    case checks::rule_kind::notcut_area:
    case checks::rule_kind::coloring:
      p.cls = plan_class::global;
      p.inflate = r.distance;
      break;
  }
  return p;
}

std::vector<plan_group> group_pair_plans(std::span<const exec_plan> plans) {
  std::vector<plan_group> groups;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const exec_plan& p = plans[i];
    if (p.cls != plan_class::pair) continue;
    auto it = std::find_if(groups.begin(), groups.end(), [&](const plan_group& g) {
      return g.layer1 == p.layer1 && g.layer2 == p.layer2 && g.two_layer == p.two_layer;
    });
    if (it == groups.end()) {
      groups.push_back({p.layer1, p.layer2, p.two_layer, p.inflate, {i}});
    } else {
      it->inflate = std::max(it->inflate, p.inflate);
      it->members.push_back(i);
    }
  }
  return groups;
}

}  // namespace odrc::engine
