#include "engine/engine.hpp"

#include <algorithm>
#include <optional>

#include "db/flatten.hpp"
#include "db/mbr_index.hpp"
#include "engine/pipeline.hpp"
#include "engine/plan.hpp"
#include "geo/boolean.hpp"
#include "infra/thread_pool.hpp"
#include "infra/trace.hpp"

namespace odrc::engine {

namespace {

using checks::violation;
using db::cell_id;
using db::layer_t;

// Shared-phase time of a group's shared report: the phases paid once per
// group regardless of how many rules it batches.
double shared_phase_seconds(const check_report& r) {
  const auto snapshot = r.phases.phases();
  double s = 0;
  for (const char* name : {"partition", "sweepline", "pack", "device"}) {
    auto it = snapshot.find(name);
    if (it != snapshot.end()) s += it->second;
  }
  return s;
}

// Amortization accounting for one executed group: the shared phases ran once
// instead of once per member rule.
void count_group(deck_stats& ds, const check_report& shared, std::size_t members) {
  const double secs = shared_phase_seconds(shared);
  ds.groups += 1;
  if (members > 1) ds.batched_rules += members;
  ds.shared_seconds += secs;
  ds.saved_seconds += secs * static_cast<double>(members - 1);
}

// One singleton group per pair plan: the batch=off execution shape.
std::vector<plan_group> singleton_groups(std::span<const exec_plan> plans) {
  std::vector<plan_group> groups;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const exec_plan& p = plans[i];
    if (p.cls != plan_class::pair) continue;
    groups.push_back({p.layer1, p.layer2, p.two_layer, p.inflate, {i}});
  }
  return groups;
}

// Supplies the layout snapshot for one deck run. With cfg.snapshot (the
// default) every group shares one snapshot; with the ablation off, get()
// rebuilds a fresh one per call — the pre-snapshot per-group behaviour.
// Single-threaded use only (check_concurrent handles sharing itself).
class snapshot_source {
 public:
  snapshot_source(const db::library& lib, bool share) : lib_(lib), share_(share) {
    if (share_) shared_.emplace(lib_);
  }

  layout_snapshot& get() {
    if (share_) return *shared_;
    fresh_.emplace(lib_);
    return *fresh_;
  }

 private:
  const db::library& lib_;
  bool share_;
  std::optional<layout_snapshot> shared_;
  std::optional<layout_snapshot> fresh_;
};

}  // namespace

// ---------------------------------------------------------------------------
// drc_engine
// ---------------------------------------------------------------------------

struct drc_engine::impl {
  stream_pool streams;
  // Active region-of-interest (set only inside check_region): instance
  // collection prunes to it and the final report is filtered to it.
  std::optional<rect> region;
};

drc_engine::drc_engine(engine_config cfg) : cfg_(cfg), impl_(std::make_unique<impl>()) {
  simd::set_mode(cfg_.simd);
}
drc_engine::~drc_engine() = default;

void drc_engine::add_rules(std::vector<rules::rule> deck) {
  deck_.insert(deck_.end(), std::make_move_iterator(deck.begin()),
               std::make_move_iterator(deck.end()));
}

check_report drc_engine::check(const db::library& lib) {
  if (cfg_.batch) return check_deck(lib).total;
  check_report merged;
  for (const rules::rule& r : deck_) merged.merge_from(check(lib, r));
  return merged;
}

deck_report drc_engine::check_deck(const db::library& lib) {
  trace::span ts("engine", "check_deck", "rules", static_cast<std::int64_t>(deck_.size()));
  deck_report out;
  out.per_rule.resize(deck_.size());

  std::vector<exec_plan> plans;
  plans.reserve(deck_.size());
  for (const rules::rule& r : deck_) plans.push_back(compile_plan(r));
  const std::vector<plan_group> groups =
      cfg_.batch ? group_pair_plans(plans) : singleton_groups(plans);

  snapshot_source src(lib, cfg_.snapshot);
  for (const plan_group& g : groups) {
    group_report gr = run_pair_group(cfg_, impl_->streams, src.get(), plans, g, impl_->region);
    count_group(out.total.deck, gr.shared, g.members.size());
    for (std::size_t k = 0; k < g.members.size(); ++k) {
      out.per_rule[g.members[k]].merge_from(std::move(gr.per_rule[k]));
    }
    out.total.merge_from(std::move(gr.shared));
  }
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (plans[i].cls == plan_class::pair) continue;
    // The plan was compiled at the top of this function — run it directly
    // instead of re-dispatching through check(lib, rule), which recompiled.
    out.per_rule[i] = run_compiled(lib, plans[i], impl_->streams, src.get(), impl_->region);
  }
  for (const check_report& r : out.per_rule) out.total.merge_from(check_report(r));
  return out;
}

deck_report drc_engine::check_deck(const db::library& lib, std::span<const exec_plan> plans,
                                   layout_snapshot& snap,
                                   const std::optional<rect>& window) {
  trace::span ts("engine", "check_deck_plans", "rules", static_cast<std::int64_t>(plans.size()));
  deck_report out;
  out.per_rule.resize(plans.size());
  const std::vector<plan_group> groups =
      cfg_.batch ? group_pair_plans(plans) : singleton_groups(plans);
  for (const plan_group& g : groups) {
    group_report gr = run_pair_group(cfg_, impl_->streams, snap, plans, g, window);
    count_group(out.total.deck, gr.shared, g.members.size());
    for (std::size_t k = 0; k < g.members.size(); ++k) {
      out.per_rule[g.members[k]].merge_from(std::move(gr.per_rule[k]));
    }
    out.total.merge_from(std::move(gr.shared));
  }
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (plans[i].cls == plan_class::pair) continue;
    out.per_rule[i] = run_compiled(lib, plans[i], impl_->streams, snap, window);
  }
  for (const check_report& r : out.per_rule) out.total.merge_from(check_report(r));
  return out;
}

deck_report drc_engine::check_region(const db::library& lib, std::span<const exec_plan> plans,
                                     layout_snapshot& snap, const rect& window) {
  deck_report out = check_deck(lib, plans, snap, window);
  // Exact semantics (mirrors the single-rule check_region): keep precisely
  // the violations with an offending edge touching the window.
  const auto outside = [&](const checks::violation& v) {
    return !window.overlaps(v.e1.mbr()) && !window.overlaps(v.e2.mbr());
  };
  std::erase_if(out.total.violations, outside);
  for (check_report& r : out.per_rule) std::erase_if(r.violations, outside);
  return out;
}

check_report drc_engine::check_concurrent(const db::library& lib) {
  trace::span ts("engine", "check_concurrent", "rules", static_cast<std::int64_t>(deck_.size()));
  std::vector<exec_plan> plans;
  plans.reserve(deck_.size());
  for (const rules::rule& r : deck_) plans.push_back(compile_plan(r));
  const std::vector<plan_group> groups =
      cfg_.batch ? group_pair_plans(plans) : singleton_groups(plans);
  std::vector<std::size_t> solo;  // non-pair rules, one task each
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (plans[i].cls != plan_class::pair) solo.push_back(i);
  }

  // One task per group + one per remaining rule. Each task owns its stream
  // pool and memo tables; the layout snapshot is the exception — its caches
  // are thread-safe, so all tasks share ONE instead of each rebuilding the
  // hierarchy. With the snapshot ablation off each task builds its own.
  std::optional<layout_snapshot> shared_snap;
  if (cfg_.snapshot) shared_snap.emplace(lib);
  const std::size_t ntasks = groups.size() + solo.size();
  std::vector<check_report> reports(ntasks);
  thread_pool::global().parallel_for(0, ntasks, [&](std::size_t t) {
    stream_pool local_streams;
    std::optional<layout_snapshot> local_snap;
    layout_snapshot& snap = shared_snap ? *shared_snap : local_snap.emplace(lib);
    if (t < groups.size()) {
      group_report gr =
          run_pair_group(cfg_, local_streams, snap, plans, groups[t], impl_->region);
      count_group(reports[t].deck, gr.shared, groups[t].members.size());
      reports[t].merge_from(std::move(gr).merged());
    } else {
      reports[t] =
          run_compiled(lib, plans[solo[t - groups.size()]], local_streams, snap, impl_->region);
    }
  });
  check_report merged;
  for (check_report& r : reports) merged.merge_from(std::move(r));
  return merged;
}

check_report drc_engine::check(const db::library& lib, const rules::rule& r) {
  switch (r.kind) {
    case checks::rule_kind::width: return run_width(lib, r.layer1, r.distance);
    case checks::rule_kind::area: return run_area(lib, r.layer1, r.min_area);
    case checks::rule_kind::rectilinear: return run_rectilinear(lib, r.layer1);
    case checks::rule_kind::custom: return run_custom(lib, r.layer1, r.predicate);
    case checks::rule_kind::spacing:
      return r.spacing.count > 0 ? run_spacing(lib, r.layer1, r.spacing)
                                 : run_spacing(lib, r.layer1, r.distance);
    case checks::rule_kind::enclosure:
      return run_enclosure(lib, r.layer1, r.layer2, r.distance);
    case checks::rule_kind::overlap_area:
    case checks::rule_kind::notcut_area:
      return run_derived_area(lib, r.kind, r.layer1, r.layer2, r.min_area);
    case checks::rule_kind::coloring:
      return run_coloring(lib, r.layer1, r.distance);
  }
  return {};
}

check_report drc_engine::check_region(const db::library& lib, const rules::rule& r,
                                      const rect& window) {
  impl_->region = window;
  check_report report;
  try {
    report = check(lib, r);
  } catch (...) {
    impl_->region.reset();
    throw;
  }
  impl_->region.reset();
  // Exact semantics: keep precisely the violations with an offending edge
  // touching the window (candidate pruning above examined a halo).
  std::erase_if(report.violations, [&](const checks::violation& v) {
    return !window.overlaps(v.e1.mbr()) && !window.overlaps(v.e2.mbr());
  });
  return report;
}

// ---------------------------------------------------------------------------
// Single-rule entry points: compile the rule into a plan and hand it to the
// pipeline driver (a pair rule is a one-member group).
// ---------------------------------------------------------------------------

namespace {

check_report run_single_pair_plan(const engine_config& cfg, stream_pool& streams,
                                  layout_snapshot& snap, const rules::rule& r,
                                  const std::optional<rect>& window) {
  const exec_plan plan = compile_plan(r);
  const plan_group g{plan.layer1, plan.layer2, plan.two_layer, plan.inflate, {0}};
  return run_pair_group(cfg, streams, snap, std::span(&plan, 1), g, window).merged();
}

}  // namespace

check_report drc_engine::run_compiled(const db::library& lib, const exec_plan& plan,
                                      stream_pool& streams, layout_snapshot& snap,
                                      const std::optional<rect>& window) {
  switch (plan.cls) {
    case plan_class::intra: return run_intra_plan(cfg_, streams, snap, plan, window);
    case plan_class::pair: {
      const plan_group g{plan.layer1, plan.layer2, plan.two_layer, plan.inflate, {0}};
      return run_pair_group(cfg_, streams, snap, std::span(&plan, 1), g, window).merged();
    }
    case plan_class::global: break;
  }
  // Global plans flatten whole layers themselves; nothing in the snapshot
  // applies to them.
  const rules::rule& r = plan.rule;
  if (r.kind == checks::rule_kind::coloring) return run_coloring(lib, r.layer1, r.distance);
  return run_derived_area(lib, r.kind, r.layer1, r.layer2, r.min_area);
}

check_report drc_engine::run_width(const db::library& lib, layer_t layer, coord_t min_width) {
  rules::rule r{checks::rule_kind::width, layer, layer, min_width, 0, {}, {}};
  layout_snapshot snap(lib);
  return run_intra_plan(cfg_, impl_->streams, snap, compile_plan(r), impl_->region);
}

check_report drc_engine::run_area(const db::library& lib, layer_t layer, area_t min_area) {
  rules::rule r{checks::rule_kind::area, layer, layer, 0, min_area, {}, {}};
  layout_snapshot snap(lib);
  return run_intra_plan(cfg_, impl_->streams, snap, compile_plan(r), impl_->region);
}

check_report drc_engine::run_rectilinear(const db::library& lib, layer_t layer) {
  rules::rule r{checks::rule_kind::rectilinear, layer, layer, 0, 0, {}, {}};
  layout_snapshot snap(lib);
  return run_intra_plan(cfg_, impl_->streams, snap, compile_plan(r), impl_->region);
}

check_report drc_engine::run_custom(const db::library& lib, layer_t layer,
                                    const std::function<bool(const db::polygon_elem&)>& pred) {
  rules::rule r{checks::rule_kind::custom, layer, layer, 0, 0, pred, {}};
  layout_snapshot snap(lib);
  return run_intra_plan(cfg_, impl_->streams, snap, compile_plan(r), impl_->region);
}

check_report drc_engine::run_spacing(const db::library& lib, layer_t layer, coord_t min_space) {
  return run_spacing(lib, layer, checks::spacing_table::simple(min_space));
}

check_report drc_engine::run_spacing(const db::library& lib, layer_t layer,
                                     const checks::spacing_table& table) {
  rules::rule r{checks::rule_kind::spacing, layer,      layer, table.max_distance(),
                0,                          {},         {},    table};
  layout_snapshot snap(lib);
  return run_single_pair_plan(cfg_, impl_->streams, snap, r, impl_->region);
}

check_report drc_engine::run_enclosure(const db::library& lib, layer_t inner, layer_t outer,
                                       coord_t min_enclosure) {
  rules::rule r{checks::rule_kind::enclosure, inner, outer, min_enclosure, 0, {}, {}};
  layout_snapshot snap(lib);
  return run_single_pair_plan(cfg_, impl_->streams, snap, r, impl_->region);
}

// ---------------------------------------------------------------------------
// Multi-patterning coloring
// ---------------------------------------------------------------------------

check_report drc_engine::run_coloring(const db::library& lib, layer_t layer,
                                      coord_t same_mask_spacing) {
  check_report report;
  for (const cell_id top : lib.top_cells()) {
    const auto flat = db::flatten_layer(lib, top, layer);
    report.instances += flat.size();
    if (flat.empty()) continue;

    // Conflict graph: shapes whose boundary distance is below the same-mask
    // spacing must be assigned to different masks.
    std::vector<rect> mbrs(flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i) mbrs[i] = flat[i].poly.mbr();
    std::vector<std::vector<std::uint32_t>> adj(flat.size());
    {
      auto t = report.phases.measure("sweepline");
      sweep::overlap_pairs_inflated(
          mbrs, same_mask_spacing,
          [&](std::uint32_t i, std::uint32_t j) {
            ++report.check_stats.polygon_pairs_tested;
            if (checks::polygons_within(flat[i].poly, flat[j].poly, same_mask_spacing)) {
              adj[i].push_back(j);
              adj[j].push_back(i);
            }
          },
          &report.sweep_stats);
    }

    // BFS 2-coloring; an edge between equal colors closes an odd cycle.
    auto t = report.phases.measure("edge_check");
    std::vector<std::int8_t> color(flat.size(), -1);
    std::vector<std::uint32_t> queue;
    for (std::uint32_t seed = 0; seed < flat.size(); ++seed) {
      if (color[seed] != -1) continue;
      color[seed] = 0;
      queue.assign(1, seed);
      while (!queue.empty()) {
        const std::uint32_t u = queue.back();
        queue.pop_back();
        for (const std::uint32_t v : adj[u]) {
          if (color[v] == -1) {
            color[v] = static_cast<std::int8_t>(1 - color[u]);
            queue.push_back(v);
          } else if (color[v] == color[u] && u < v) {
            // Odd cycle: this conflict cannot be resolved with two masks.
            const rect ma = mbrs[u], mb = mbrs[v];
            report.violations.push_back(
                {checks::rule_kind::coloring, layer, layer,
                 edge{{ma.x_min, ma.y_min}, {ma.x_max, ma.y_max}},
                 edge{{mb.x_min, mb.y_min}, {mb.x_max, mb.y_max}}, 0});
          }
        }
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Derived-layer area rules (boolean masks)
// ---------------------------------------------------------------------------

check_report drc_engine::run_derived_area(const db::library& lib, checks::rule_kind kind,
                                          layer_t a, layer_t b, area_t min_area) {
  check_report report;
  const geo::bool_op op =
      kind == checks::rule_kind::overlap_area ? geo::bool_op::intersect : geo::bool_op::subtract;

  for (const cell_id top : lib.top_cells()) {
    // Derived layers are global layer expressions: flatten both operands,
    // run the boolean scanline, then group slabs into connected regions.
    auto t = report.phases.measure("boolean");
    const auto fa = db::flatten_layer(lib, top, a);
    const auto fb = db::flatten_layer(lib, top, b);
    report.instances += fa.size() + fb.size();
    if (fa.empty()) continue;
    std::vector<polygon> pa, pb;
    pa.reserve(fa.size());
    pb.reserve(fb.size());
    for (const auto& fp : fa) pa.push_back(fp.poly);
    for (const auto& fp : fb) pb.push_back(fp.poly);

    const std::vector<rect> slabs = geo::boolean_rects(pa, pb, op);
    for (const geo::component& c : geo::connected_components(slabs)) {
      if (c.area >= min_area) continue;
      report.violations.push_back({kind, a, b,
                                   edge{{c.mbr.x_min, c.mbr.y_min}, {c.mbr.x_max, c.mbr.y_min}},
                                   edge{{c.mbr.x_min, c.mbr.y_max}, {c.mbr.x_max, c.mbr.y_max}},
                                   c.area});
    }
  }
  return report;
}

}  // namespace odrc::engine
