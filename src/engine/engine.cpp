#include "engine/engine.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "db/flatten.hpp"
#include "db/mbr_index.hpp"
#include "geo/boolean.hpp"
#include "geo/quadtree.hpp"
#include "geo/rtree.hpp"
#include "device/device.hpp"
#include "infra/logger.hpp"
#include "infra/thread_pool.hpp"

namespace odrc::engine {

namespace {

using checks::check_stats;
using checks::violation;
using db::cell_id;
using db::layer_t;

// ---------------------------------------------------------------------------
// Per-master layer views
// ---------------------------------------------------------------------------

// The polygons a master contributes *directly* to one layer (its references
// appear as separate placed instances, so they are excluded here).
struct master_layer_view {
  std::vector<std::uint32_t> poly_indices;
  std::vector<rect> poly_mbrs;  // master-local frame
  rect mbr;                     // union of the above

  [[nodiscard]] bool empty() const { return poly_indices.empty(); }
};

master_layer_view make_layer_view(const db::cell& c, layer_t layer) {
  master_layer_view v;
  for (std::uint32_t pi = 0; pi < c.polygons().size(); ++pi) {
    const db::polygon_elem& p = c.polygons()[pi];
    if (layer != rules::any_layer && p.layer != layer) continue;
    v.poly_indices.push_back(pi);
    v.poly_mbrs.push_back(p.poly.mbr());
    v.mbr = v.mbr.join(v.poly_mbrs.back());
  }
  return v;
}

// Cache of layer views per (master, layer) for one check run.
class view_cache {
 public:
  explicit view_cache(const db::library& lib) : lib_(lib) {}

  const master_layer_view& get(cell_id id, layer_t layer) {
    const std::uint64_t key = (static_cast<std::uint64_t>(id) << 16) |
                              static_cast<std::uint16_t>(layer);
    auto it = map_.find(key);
    if (it != map_.end()) return it->second;
    return map_.emplace(key, make_layer_view(lib_.at(id), layer)).first->second;
  }

 private:
  const db::library& lib_;
  std::unordered_map<std::uint64_t, master_layer_view> map_;
};

// ---------------------------------------------------------------------------
// Check objects
// ---------------------------------------------------------------------------

// A check object: either a whole placed cell (poly_index == whole_cell), or
// one individual polygon of a placed cell. Masters instantiated exactly once
// with many polygons (typically the top cell holding the routing) are split
// into per-polygon objects so the adaptive partition operates on wires, not
// on one giant pseudo-cell; there is no reuse to lose since the master
// occurs once.
inline constexpr std::uint32_t whole_cell = 0xFFFFFFFFu;

struct inst {
  cell_id master = db::invalid_cell;
  std::uint32_t poly_index = whole_cell;  // index into the layer view's list
  transform t;
  rect mbr;  // transformed layer MBR (of the cell or the single polygon)

  [[nodiscard]] bool split() const { return poly_index != whole_cell; }
};

// Threshold above which a single-use master is split into polygon objects.
inline constexpr std::size_t split_poly_threshold = 8;

std::vector<inst> collect_instances(const db::mbr_index& idx, view_cache& views, cell_id top,
                                    layer_t layer,
                                    const std::optional<rect>& window = std::nullopt,
                                    coord_t inflate = 0) {
  const auto placed = db::flat_instance_list(idx, top, layer);
  std::unordered_map<cell_id, std::uint32_t> occurrences;
  for (const db::placed_cell& pc : placed) ++occurrences[pc.master];

  std::vector<inst> out;
  for (const db::placed_cell& pc : placed) {
    const master_layer_view& v = views.get(pc.master, layer);
    if (v.empty()) continue;
    const rect cell_mbr = pc.to_top.apply(v.mbr);
    if (window && !window->inflated(inflate).overlaps(cell_mbr)) continue;
    if (occurrences[pc.master] == 1 && v.poly_indices.size() > split_poly_threshold) {
      for (std::uint32_t k = 0; k < v.poly_indices.size(); ++k) {
        const rect pm = pc.to_top.apply(v.poly_mbrs[k]);
        if (window && !window->inflated(inflate).overlaps(pm)) continue;
        out.push_back({pc.master, k, pc.to_top, pm});
      }
    } else {
      out.push_back({pc.master, whole_cell, pc.to_top, cell_mbr});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Partition helper
// ---------------------------------------------------------------------------

partition::partition_result partition_instances(const engine_config& cfg,
                                                std::span<const rect> mbrs, coord_t distance,
                                                check_report& report) {
  partition::partition_result part;
  if (cfg.enable_partition) {
    auto t = report.phases.measure("partition");
    part = partition::partition_rows(mbrs, distance, cfg.merge);
  } else {
    // Ablation: one row, one clip, everything inside.
    partition::row r;
    partition::clip c;
    for (std::uint32_t i = 0; i < mbrs.size(); ++i) {
      if (!mbrs[i].empty()) c.members.push_back(i);
    }
    r.clips.push_back(std::move(c));
    part.rows.push_back(std::move(r));
  }
  report.rows += part.rows.size();
  report.clips += part.clip_count();
  return part;
}

// Sound candidate inflation: a violating pair's MBR gap is strictly below
// the rule distance, so inflating BOTH sides by ceil(d/2) already makes the
// MBRs overlap. Using d here would double the candidate halo and enumerate
// pairs the partition correctly proves independent.
constexpr coord_t half_distance(coord_t d) { return static_cast<coord_t>((d + 1) / 2); }

// Candidate pair enumeration inside one clip: sweepline (paper default) or
// packed R-tree, per engine_config::candidates.
void enumerate_overlap_pairs(const engine_config& cfg, std::span<const rect> mbrs,
                             coord_t inflate, sweep::sweep_stats& stats,
                             const std::function<void(std::uint32_t, std::uint32_t)>& report) {
  if (cfg.candidates == candidate_strategy::sweepline) {
    sweep::overlap_pairs_inflated(mbrs, inflate, report, &stats);
    return;
  }
  std::vector<rect> inflated(mbrs.size());
  for (std::size_t i = 0; i < mbrs.size(); ++i) inflated[i] = mbrs[i].inflated(inflate);
  auto count_and_report = [&](std::uint32_t i, std::uint32_t j) {
    ++stats.pairs_reported;
    report(i, j);
  };
  if (cfg.candidates == candidate_strategy::rtree) {
    const geo::rtree tree(inflated);
    tree.overlap_pairs(count_and_report);
  } else {
    const geo::quadtree tree(inflated);
    tree.overlap_pairs(count_and_report);
  }
}

// ---------------------------------------------------------------------------
// Intra-polygon rules (width / area / rectilinear / custom)
// ---------------------------------------------------------------------------

// Compute the master-local violations of an intra rule.
std::vector<violation> compute_intra_master(const db::cell& c, const master_layer_view& v,
                                            const rules::rule& r, check_stats& cs) {
  std::vector<violation> out;
  for (std::uint32_t pi : v.poly_indices) {
    const db::polygon_elem& p = c.polygons()[pi];
    switch (r.kind) {
      case checks::rule_kind::width:
        checks::check_width(p.poly, p.layer, r.distance, out, cs);
        break;
      case checks::rule_kind::area:
        checks::check_area(p.poly, p.layer, r.min_area, out, cs);
        break;
      case checks::rule_kind::rectilinear:
        checks::check_rectilinear(p.poly, p.layer, out, cs);
        break;
      case checks::rule_kind::custom: {
        ++cs.polygons_tested;
        if (r.predicate && !r.predicate(p)) {
          const rect m = p.poly.mbr();
          out.push_back({checks::rule_kind::custom, p.layer, p.layer,
                         edge{{m.x_min, m.y_min}, {m.x_max, m.y_min}},
                         edge{{m.x_min, m.y_max}, {m.x_max, m.y_max}}, 0});
        }
        break;
      }
      default: break;
    }
  }
  return out;
}

// Intra checks over already-transformed polygons (used for magnified
// instances, whose master results cannot be reused: distances scale).
std::vector<violation> compute_intra_polys(std::span<const polygon> polys, layer_t layer,
                                           const rules::rule& r, check_stats& cs) {
  std::vector<violation> out;
  for (const polygon& p : polys) {
    switch (r.kind) {
      case checks::rule_kind::width:
        checks::check_width(p, layer, r.distance, out, cs);
        break;
      case checks::rule_kind::area:
        checks::check_area(p, layer, r.min_area, out, cs);
        break;
      case checks::rule_kind::rectilinear:
        checks::check_rectilinear(p, layer, out, cs);
        break;
      default: break;  // custom rules are transform-independent
    }
  }
  return out;
}

// Device variant of the width check for one master (paper: intra checks also
// run on the GPU in parallel mode; Table I's "Par" column).
std::vector<violation> compute_intra_master_device(device::stream& s, const db::cell& c,
                                                   const master_layer_view& v,
                                                   const rules::rule& r,
                                                   const engine_config& cfg,
                                                   sweep::device_check_stats& ds) {
  std::vector<sweep::packed_edge> edges;
  for (std::size_t k = 0; k < v.poly_indices.size(); ++k) {
    const db::polygon_elem& p = c.polygons()[v.poly_indices[k]];
    sweep::pack_polygon_edges(p.poly, static_cast<std::uint32_t>(k), 0, edges);
  }
  std::vector<violation> out;
  sweep::device_check_config dcfg{sweep::pair_check::width, r.distance, r.layer1, r.layer1,
                                  sweep::sweep_axis::y};
  sweep::device_check_edges_with(s, edges, dcfg, cfg.executor, out, ds, cfg.brute_threshold);
  return out;
}

// ---------------------------------------------------------------------------
// Pair computations (shared predicates)
// ---------------------------------------------------------------------------

// The polygons of one check object, pre-transformed into the check frame.
struct poly_set {
  std::vector<polygon> polys;
  std::vector<rect> mbrs;
};

poly_set transformed_polys(const db::cell& c, const master_layer_view& v, const transform& t) {
  poly_set ps;
  ps.polys.reserve(v.poly_indices.size());
  ps.mbrs.reserve(v.poly_indices.size());
  for (std::uint32_t pi : v.poly_indices) {
    ps.polys.push_back(t.is_identity() ? c.polygons()[pi].poly
                                       : c.polygons()[pi].poly.transformed(t));
    ps.mbrs.push_back(ps.polys.back().mbr());
  }
  return ps;
}

// Polygons of a check object in the frame `frame ∘ inst.t` (pass the
// identity frame for top coordinates).
poly_set polys_of(const db::library& lib, view_cache& views, const inst& in, layer_t layer,
                  const transform& extra) {
  const db::cell& c = lib.at(in.master);
  const master_layer_view& v = views.get(in.master, layer);
  const transform t = extra.compose(in.t);
  if (!in.split()) return transformed_polys(c, v, t);
  poly_set ps;
  const std::uint32_t pi = v.poly_indices[in.poly_index];
  ps.polys.push_back(t.is_identity() ? c.polygons()[pi].poly
                                     : c.polygons()[pi].poly.transformed(t));
  ps.mbrs.push_back(ps.polys.back().mbr());
  return ps;
}

// Intra-master spacing: polygon-pair gaps + per-polygon notches, in the
// master's local frame.
std::vector<violation> compute_spacing_intra(const db::cell& c, const master_layer_view& v,
                                             layer_t layer, const checks::spacing_table& table,
                                             check_stats& cs, sweep::sweep_stats& ss) {
  const coord_t dist = table.max_distance();
  std::vector<violation> out;
  for (std::uint32_t pi : v.poly_indices) {
    checks::check_spacing_notch(c.polygons()[pi].poly, layer, table, out, cs);
  }
  sweep::overlap_pairs_inflated(v.poly_mbrs, half_distance(dist),
                                [&](std::uint32_t i, std::uint32_t j) {
                                  checks::check_spacing(c.polygons()[v.poly_indices[i]].poly,
                                                        c.polygons()[v.poly_indices[j]].poly,
                                                        layer, table, out, cs);
                                },
                                &ss);
  return out;
}

// Spacing between two poly sets (already in a common frame).
void spacing_between(const poly_set& a, const poly_set& b, layer_t layer,
                     const checks::spacing_table& table, std::vector<violation>& out,
                     check_stats& cs) {
  const coord_t dist = table.max_distance();
  for (std::size_t i = 0; i < a.polys.size(); ++i) {
    const rect am = a.mbrs[i].inflated(dist);
    for (std::size_t j = 0; j < b.polys.size(); ++j) {
      if (!am.overlaps(b.mbrs[j])) continue;
      checks::check_spacing(a.polys[i], b.polys[j], layer, table, out, cs);
    }
  }
}

// Enclosure between inner set `a` and outer set `b` (common frame);
// `a_contained[i]` is set when outer polygon fully contains inner i.
void enclosure_between(const poly_set& a, const poly_set& b, layer_t inner, layer_t outer,
                       coord_t enc, std::vector<violation>& out,
                       std::vector<std::uint8_t>& a_contained, check_stats& cs) {
  for (std::size_t i = 0; i < a.polys.size(); ++i) {
    const rect im = a.mbrs[i].inflated(enc);
    for (std::size_t j = 0; j < b.polys.size(); ++j) {
      if (!im.overlaps(b.mbrs[j])) continue;
      if (checks::check_enclosure(a.polys[i], b.polys[j], inner, outer, enc, out, cs)) {
        a_contained[i] = 1;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// drc_engine
// ---------------------------------------------------------------------------

struct drc_engine::impl {
  // One device stream per pipeline slot, created on first use (paper V-C:
  // "OpenDRC creates CUDA stream objects that are responsible for
  // asynchronous operations").
  std::vector<std::unique_ptr<device::stream>> streams;
  // Active region-of-interest (set only inside check_region): instance
  // collection prunes to it and the final report is filtered to it.
  std::optional<rect> region;

  device::stream& get_stream(std::size_t slot = 0) {
    while (streams.size() <= slot) {
      streams.push_back(std::make_unique<device::stream>(device::context::instance()));
    }
    return *streams[slot];
  }
};

drc_engine::drc_engine(engine_config cfg) : cfg_(cfg), impl_(std::make_unique<impl>()) {}
drc_engine::~drc_engine() = default;

void drc_engine::add_rules(std::vector<rules::rule> deck) {
  deck_.insert(deck_.end(), std::make_move_iterator(deck.begin()),
               std::make_move_iterator(deck.end()));
}

check_report drc_engine::check(const db::library& lib) {
  check_report merged;
  for (const rules::rule& r : deck_) merged.merge_from(check(lib, r));
  return merged;
}

check_report drc_engine::check_concurrent(const db::library& lib) {
  std::vector<check_report> reports(deck_.size());
  thread_pool::global().parallel_for(0, deck_.size(), [&](std::size_t i) {
    // A private engine per task: no shared memo tables, no shared stream.
    drc_engine worker(cfg_);
    reports[i] = worker.check(lib, deck_[i]);
  });
  check_report merged;
  for (check_report& r : reports) merged.merge_from(std::move(r));
  return merged;
}

check_report drc_engine::check(const db::library& lib, const rules::rule& r) {
  switch (r.kind) {
    case checks::rule_kind::width: return run_width(lib, r.layer1, r.distance);
    case checks::rule_kind::area: return run_area(lib, r.layer1, r.min_area);
    case checks::rule_kind::rectilinear: return run_rectilinear(lib, r.layer1);
    case checks::rule_kind::custom: return run_custom(lib, r.layer1, r.predicate);
    case checks::rule_kind::spacing:
      return r.spacing.count > 0 ? run_spacing(lib, r.layer1, r.spacing)
                                 : run_spacing(lib, r.layer1, r.distance);
    case checks::rule_kind::enclosure:
      return run_enclosure(lib, r.layer1, r.layer2, r.distance);
    case checks::rule_kind::overlap_area:
    case checks::rule_kind::notcut_area:
      return run_derived_area(lib, r.kind, r.layer1, r.layer2, r.min_area);
    case checks::rule_kind::coloring:
      return run_coloring(lib, r.layer1, r.distance);
  }
  return {};
}

// ---------------------------------------------------------------------------
// Multi-patterning coloring
// ---------------------------------------------------------------------------

check_report drc_engine::run_coloring(const db::library& lib, layer_t layer,
                                      coord_t same_mask_spacing) {
  check_report report;
  for (const cell_id top : lib.top_cells()) {
    const auto flat = db::flatten_layer(lib, top, layer);
    report.instances += flat.size();
    if (flat.empty()) continue;

    // Conflict graph: shapes whose boundary distance is below the same-mask
    // spacing must be assigned to different masks.
    std::vector<rect> mbrs(flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i) mbrs[i] = flat[i].poly.mbr();
    std::vector<std::vector<std::uint32_t>> adj(flat.size());
    {
      auto t = report.phases.measure("sweepline");
      sweep::overlap_pairs_inflated(
          mbrs, same_mask_spacing,
          [&](std::uint32_t i, std::uint32_t j) {
            ++report.check_stats.polygon_pairs_tested;
            if (checks::polygons_within(flat[i].poly, flat[j].poly, same_mask_spacing)) {
              adj[i].push_back(j);
              adj[j].push_back(i);
            }
          },
          &report.sweep_stats);
    }

    // BFS 2-coloring; an edge between equal colors closes an odd cycle.
    auto t = report.phases.measure("edge_check");
    std::vector<std::int8_t> color(flat.size(), -1);
    std::vector<std::uint32_t> queue;
    for (std::uint32_t seed = 0; seed < flat.size(); ++seed) {
      if (color[seed] != -1) continue;
      color[seed] = 0;
      queue.assign(1, seed);
      while (!queue.empty()) {
        const std::uint32_t u = queue.back();
        queue.pop_back();
        for (const std::uint32_t v : adj[u]) {
          if (color[v] == -1) {
            color[v] = static_cast<std::int8_t>(1 - color[u]);
            queue.push_back(v);
          } else if (color[v] == color[u] && u < v) {
            // Odd cycle: this conflict cannot be resolved with two masks.
            const rect ma = mbrs[u], mb = mbrs[v];
            report.violations.push_back(
                {checks::rule_kind::coloring, layer, layer,
                 edge{{ma.x_min, ma.y_min}, {ma.x_max, ma.y_max}},
                 edge{{mb.x_min, mb.y_min}, {mb.x_max, mb.y_max}}, 0});
          }
        }
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Derived-layer area rules (boolean masks)
// ---------------------------------------------------------------------------

check_report drc_engine::run_derived_area(const db::library& lib, checks::rule_kind kind,
                                          layer_t a, layer_t b, area_t min_area) {
  check_report report;
  const geo::bool_op op =
      kind == checks::rule_kind::overlap_area ? geo::bool_op::intersect : geo::bool_op::subtract;

  for (const cell_id top : lib.top_cells()) {
    // Derived layers are global layer expressions: flatten both operands,
    // run the boolean scanline, then group slabs into connected regions.
    auto t = report.phases.measure("boolean");
    const auto fa = db::flatten_layer(lib, top, a);
    const auto fb = db::flatten_layer(lib, top, b);
    report.instances += fa.size() + fb.size();
    if (fa.empty()) continue;
    std::vector<polygon> pa, pb;
    pa.reserve(fa.size());
    pb.reserve(fb.size());
    for (const auto& fp : fa) pa.push_back(fp.poly);
    for (const auto& fp : fb) pb.push_back(fp.poly);

    const std::vector<rect> slabs = geo::boolean_rects(pa, pb, op);
    for (const geo::component& c : geo::connected_components(slabs)) {
      if (c.area >= min_area) continue;
      report.violations.push_back({kind, a, b,
                                   edge{{c.mbr.x_min, c.mbr.y_min}, {c.mbr.x_max, c.mbr.y_min}},
                                   edge{{c.mbr.x_min, c.mbr.y_max}, {c.mbr.x_max, c.mbr.y_max}},
                                   c.area});
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Intra-polygon rules
// ---------------------------------------------------------------------------

namespace {

check_report run_intra_rule(const engine_config& cfg, device::stream* stream,
                            const db::library& lib, const rules::rule& r,
                            const std::optional<rect>& window = std::nullopt) {
  check_report report;
  const db::mbr_index idx(lib);
  view_cache views(lib);

  // Layers this rule touches: a specific layer, or every populated layer.
  std::vector<layer_t> layers;
  if (r.layer1 == rules::any_layer) {
    layers = idx.layers();
  } else {
    layers.push_back(r.layer1);
  }

  for (const layer_t layer : layers) {
    // The memo caches master-local results for ONE layer; a master can carry
    // several layers, so the cache must not leak across layer passes.
    intra_memo memo;
    for (const cell_id top : lib.top_cells()) {
      rules::rule layer_rule = r;
      layer_rule.layer1 = layer;
      auto t = report.phases.measure("edge_check");
      for (const db::placed_cell& pc : db::flat_instance_list(idx, top, layer)) {
        const master_layer_view& v = views.get(pc.master, layer);
        if (v.empty()) continue;
        if (window && !window->overlaps(pc.to_top.apply(v.mbr))) continue;
        ++report.instances;
        if (!pc.to_top.is_isometry() && r.kind != checks::rule_kind::custom &&
            r.kind != checks::rule_kind::rectilinear) {
          // Magnification scales distances and areas: the memoized master
          // result does not transfer (paper IV-C: reuse only when "the
          // transformations preserve the target properties of the check").
          const poly_set ps = transformed_polys(lib.at(pc.master), v, pc.to_top);
          for (const violation& lv :
               compute_intra_polys(ps.polys, layer, layer_rule, report.check_stats)) {
            report.violations.push_back(lv);
          }
          continue;
        }
        const std::vector<violation>* local = cfg.enable_memoization ? memo.find(pc.master)
                                                                     : nullptr;
        if (local) {
          ++report.prune.intra_reused;
        } else {
          ++report.prune.intra_computed;
          std::vector<violation> computed;
          if (cfg.run_mode == mode::parallel && r.kind == checks::rule_kind::width && stream) {
            computed = compute_intra_master_device(*stream, lib.at(pc.master), v, layer_rule,
                                                   cfg, report.device_stats);
          } else {
            computed = compute_intra_master(lib.at(pc.master), v, layer_rule,
                                            report.check_stats);
          }
          if (cfg.enable_memoization) {
            local = &memo.store(pc.master, std::move(computed));
          } else {
            for (const violation& lv : computed) {
              report.violations.push_back(transformed(lv, pc.to_top));
            }
            continue;
          }
        }
        for (const violation& lv : *local) {
          report.violations.push_back(transformed(lv, pc.to_top));
        }
      }
    }
  }
  return report;
}

}  // namespace

check_report drc_engine::run_width(const db::library& lib, layer_t layer, coord_t min_width) {
  rules::rule r{checks::rule_kind::width, layer, layer, min_width, 0, {}, {}};
  return run_intra_rule(cfg_, cfg_.run_mode == mode::parallel ? &impl_->get_stream() : nullptr,
                        lib, r, impl_->region);
}

check_report drc_engine::run_area(const db::library& lib, layer_t layer, area_t min_area) {
  rules::rule r{checks::rule_kind::area, layer, layer, 0, min_area, {}, {}};
  return run_intra_rule(cfg_, nullptr, lib, r, impl_->region);
}

check_report drc_engine::run_rectilinear(const db::library& lib, layer_t layer) {
  rules::rule r{checks::rule_kind::rectilinear, layer, layer, 0, 0, {}, {}};
  return run_intra_rule(cfg_, nullptr, lib, r, impl_->region);
}

check_report drc_engine::run_custom(const db::library& lib, layer_t layer,
                                    const std::function<bool(const db::polygon_elem&)>& pred) {
  rules::rule r{checks::rule_kind::custom, layer, layer, 0, 0, pred, {}};
  return run_intra_rule(cfg_, nullptr, lib, r, impl_->region);
}

check_report drc_engine::check_region(const db::library& lib, const rules::rule& r,
                                      const rect& window) {
  impl_->region = window;
  check_report report;
  try {
    report = check(lib, r);
  } catch (...) {
    impl_->region.reset();
    throw;
  }
  impl_->region.reset();
  // Exact semantics: keep precisely the violations with an offending edge
  // touching the window (candidate pruning above examined a halo).
  std::erase_if(report.violations, [&](const checks::violation& v) {
    return !window.overlaps(v.e1.mbr()) && !window.overlaps(v.e2.mbr());
  });
  return report;
}

// ---------------------------------------------------------------------------
// Spacing
// ---------------------------------------------------------------------------

check_report drc_engine::run_spacing(const db::library& lib, layer_t layer, coord_t min_space) {
  return run_spacing(lib, layer, checks::spacing_table::simple(min_space));
}

check_report drc_engine::run_spacing(const db::library& lib, layer_t layer,
                                     const checks::spacing_table& table) {
  const coord_t min_space = table.max_distance();
  check_report report;
  const db::mbr_index idx(lib);
  view_cache views(lib);
  intra_memo imemo;
  pair_memo pmemo;

  for (const cell_id top : lib.top_cells()) {
    const std::vector<inst> insts =
        collect_instances(idx, views, top, layer, impl_->region, min_space);
    report.instances += insts.size();
    if (insts.empty()) continue;

    std::vector<rect> mbrs(insts.size());
    for (std::size_t i = 0; i < insts.size(); ++i) mbrs[i] = insts[i].mbr;
    const partition::partition_result part =
        partition_instances(cfg_, mbrs, min_space, report);

    if (cfg_.run_mode == mode::parallel) {
      // Row pipeline (Section V-C): up to pipeline_depth rows are in flight,
      // each on its own stream, while the host packs the next row.
      const std::size_t depth = std::max<std::size_t>(1, cfg_.pipeline_depth);
      sweep::device_check_config dcfg{sweep::pair_check::spacing, min_space, layer, layer,
                                      sweep::sweep_axis::x, table};

      auto pack_row = [&](const partition::row& row) {
        auto t = report.phases.measure("pack");
        std::vector<sweep::packed_edge> edges;
        std::uint32_t poly_id = 0;
        for (const partition::clip& c : row.clips) {
          for (const std::uint32_t m : c.members) {
            const poly_set ps = polys_of(lib, views, insts[m], layer, transform{});
            for (const polygon& p : ps.polys) {
              sweep::pack_polygon_edges(p, poly_id++, 0, edges);
            }
          }
        }
        return edges;
      };

      std::deque<sweep::async_edge_check> in_flight;
      std::size_t slot = 0;
      for (std::size_t ri = 0; ri < part.rows.size(); ++ri) {
        std::vector<sweep::packed_edge> edges = pack_row(part.rows[ri]);
        // Earlier rows keep running on their streams while this row was
        // packed; drain the oldest only once the pipeline is full.
        if (in_flight.size() >= depth) {
          auto t = report.phases.measure("device");
          in_flight.front().finish(report.violations, report.device_stats);
          in_flight.pop_front();
        }
        in_flight.emplace_back(impl_->get_stream(slot++ % depth), std::move(edges), dcfg,
                               cfg_.executor, cfg_.brute_threshold);
      }
      while (!in_flight.empty()) {
        auto t = report.phases.measure("device");
        in_flight.front().finish(report.violations, report.device_stats);
        in_flight.pop_front();
      }
      continue;
    }

    // Sequential branch: per clip, sweepline over object MBRs, then memoized
    // intra/pair edge checks. Clips are mutually independent (partition
    // soundness), so under cfg_.host_parallel they run on the worker pool;
    // the shared memo tables sit behind mutexes. unordered_map references
    // are node-stable, so a reference obtained under the lock stays valid
    // after it is released — but an existing entry is never overwritten
    // (another thread may be reading it).
    std::mutex imemo_mu, pmemo_mu;

    auto process_clip = [&](const partition::clip& clip, check_report& rep) {
      // Intra-object results (memoized per master for whole-cell objects; a
      // split object is a single polygon whose only intra concern is its
      // notches).
      for (const std::uint32_t m : clip.members) {
        const inst& in = insts[m];
        if (in.split()) {
          auto t = rep.phases.measure("edge_check");
          const master_layer_view& v = views.get(in.master, layer);
          const db::cell& c = lib.at(in.master);
          std::vector<violation> local;
          checks::check_spacing_notch(c.polygons()[v.poly_indices[in.poly_index]].poly, layer,
                                      table, local, rep.check_stats);
          for (const violation& lv : local) {
            rep.violations.push_back(transformed(lv, in.t));
          }
          continue;
        }
        if (!in.t.is_isometry()) {
          // Magnified instance: distances scale, master results do not
          // transfer; check the transformed geometry directly.
          auto t = rep.phases.measure("edge_check");
          const poly_set ps = polys_of(lib, views, in, layer, transform{});
          for (std::size_t pi = 0; pi < ps.polys.size(); ++pi) {
            checks::check_spacing_notch(ps.polys[pi], layer, table, rep.violations,
                                        rep.check_stats);
            for (std::size_t pj = pi + 1; pj < ps.polys.size(); ++pj) {
              if (!ps.mbrs[pi].inflated(min_space).overlaps(ps.mbrs[pj])) continue;
              checks::check_spacing(ps.polys[pi], ps.polys[pj], layer, table, rep.violations,
                                    rep.check_stats);
            }
          }
          continue;
        }
        const std::vector<violation>* local = nullptr;
        if (cfg_.enable_memoization) {
          std::lock_guard lk(imemo_mu);
          local = imemo.find(in.master);
        }
        if (local) {
          ++rep.prune.intra_reused;
        } else {
          ++rep.prune.intra_computed;
          auto t = rep.phases.measure("edge_check");
          std::vector<violation> computed =
              compute_spacing_intra(lib.at(in.master), views.get(in.master, layer), layer,
                                    table, rep.check_stats, rep.sweep_stats);
          if (cfg_.enable_memoization) {
            std::lock_guard lk(imemo_mu);
            const std::vector<violation>* existing = imemo.find(in.master);
            local = existing ? existing : &imemo.store(in.master, std::move(computed));
          } else {
            for (const violation& lv : computed) {
              rep.violations.push_back(transformed(lv, in.t));
            }
            continue;
          }
        }
        for (const violation& lv : *local) {
          rep.violations.push_back(transformed(lv, in.t));
        }
      }

      // Candidate object pairs from the sweepline (Fig. 3).
      std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
      {
        auto t = rep.phases.measure("sweepline");
        std::vector<rect> clip_mbrs(clip.members.size());
        for (std::size_t k = 0; k < clip.members.size(); ++k) {
          clip_mbrs[k] = insts[clip.members[k]].mbr;
        }
        enumerate_overlap_pairs(
            cfg_, clip_mbrs, half_distance(min_space),
            rep.sweep_stats,
            [&](std::uint32_t i, std::uint32_t j) {
              pairs.emplace_back(clip.members[i], clip.members[j]);
            });
        rep.prune.pairs_pruned_mbr +=
            clip.members.size() * (clip.members.size() - 1) / 2 - pairs.size();
      }

      auto t = rep.phases.measure("edge_check");
      for (const auto& [ia, ib] : pairs) {
        const inst& a = insts[ia];
        const inst& b = insts[ib];
        if (!a.split() && !b.split() && cfg_.enable_memoization && a.t.is_isometry() &&
            b.t.is_isometry()) {
          // Relative placement of B in A's frame — the memo key. Only valid
          // for isometries: transform::inverse requires mag == 1, and
          // magnified geometry scales the distances the memo caches.
          const transform rel = a.t.inverse().compose(b.t);
          const pair_key key{a.master, b.master, rel};
          const pair_result* pr = nullptr;
          {
            std::lock_guard lk(pmemo_mu);
            pr = pmemo.find(key);
          }
          if (pr) {
            ++rep.prune.pairs_reused;
          } else {
            ++rep.prune.pairs_computed;
            pair_result computed;
            spacing_between(
                transformed_polys(lib.at(a.master), views.get(a.master, layer), transform{}),
                transformed_polys(lib.at(b.master), views.get(b.master, layer), rel), layer,
                table, computed.local, rep.check_stats);
            std::lock_guard lk(pmemo_mu);
            const pair_result* existing = pmemo.find(key);
            pr = existing ? existing : &pmemo.store(key, std::move(computed));
          }
          for (const violation& lv : pr->local) {
            rep.violations.push_back(transformed(lv, a.t));
          }
        } else {
          // Direct path (split objects or memoization disabled): check in
          // top coordinates.
          ++rep.prune.pairs_computed;
          spacing_between(polys_of(lib, views, a, layer, transform{}),
                          polys_of(lib, views, b, layer, transform{}), layer, table,
                          rep.violations, rep.check_stats);
        }
      }
    };

    std::vector<const partition::clip*> clips;
    for (const partition::row& row : part.rows) {
      for (const partition::clip& clip : row.clips) clips.push_back(&clip);
    }
    if (cfg_.host_parallel && clips.size() > 1) {
      std::vector<check_report> locals(clips.size());
      thread_pool::global().parallel_for(
          0, clips.size(), [&](std::size_t i) { process_clip(*clips[i], locals[i]); });
      for (check_report& lr : locals) report.merge_from(std::move(lr));
    } else {
      for (const partition::clip* c : clips) process_clip(*c, report);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Enclosure
// ---------------------------------------------------------------------------

check_report drc_engine::run_enclosure(const db::library& lib, layer_t inner, layer_t outer,
                                       coord_t min_enclosure) {
  check_report report;
  const db::mbr_index idx(lib);
  view_cache views(lib);
  pair_memo pmemo;

  for (const cell_id top : lib.top_cells()) {
    const std::vector<inst> inner_insts =
        collect_instances(idx, views, top, inner, impl_->region, min_enclosure);
    const std::vector<inst> outer_insts =
        collect_instances(idx, views, top, outer, impl_->region, min_enclosure);
    report.instances += inner_insts.size() + outer_insts.size();
    if (inner_insts.empty()) continue;

    // Combined MBR list: inner objects first, then outer.
    const std::size_t ni = inner_insts.size();
    std::vector<rect> mbrs(ni + outer_insts.size());
    for (std::size_t i = 0; i < ni; ++i) mbrs[i] = inner_insts[i].mbr;
    for (std::size_t j = 0; j < outer_insts.size(); ++j) mbrs[ni + j] = outer_insts[j].mbr;
    const partition::partition_result part =
        partition_instances(cfg_, mbrs, min_enclosure, report);

    // Containment flags per inner polygon, ORed across pairs.
    auto inner_poly_count = [&](const inst& in) -> std::size_t {
      return in.split() ? 1 : views.get(in.master, inner).poly_indices.size();
    };
    std::vector<std::vector<std::uint8_t>> contained(ni);
    for (std::size_t i = 0; i < ni; ++i) contained[i].assign(inner_poly_count(inner_insts[i]), 0);

    std::mutex pmemo_mu, contained_mu;
    auto run_pair = [&](std::uint32_t ii, std::uint32_t oj, check_report& rep) {
      const inst& a = inner_insts[ii];
      const inst& b = outer_insts[oj];
      if (!a.split() && !b.split() && cfg_.enable_memoization && a.t.is_isometry() &&
          b.t.is_isometry()) {
        const transform rel = a.t.inverse().compose(b.t);
        const pair_key key{a.master, b.master, rel};
        const pair_result* pr = nullptr;
        {
          std::lock_guard lk(pmemo_mu);
          pr = pmemo.find(key);
        }
        if (pr) {
          ++rep.prune.pairs_reused;
        } else {
          ++rep.prune.pairs_computed;
          pair_result computed;
          const poly_set pa =
              transformed_polys(lib.at(a.master), views.get(a.master, inner), transform{});
          computed.a_contained.assign(pa.polys.size(), 0);
          enclosure_between(pa,
                            transformed_polys(lib.at(b.master), views.get(b.master, outer), rel),
                            inner, outer, min_enclosure, computed.local, computed.a_contained,
                            rep.check_stats);
          std::lock_guard lk(pmemo_mu);
          const pair_result* existing = pmemo.find(key);
          pr = existing ? existing : &pmemo.store(key, std::move(computed));
        }
        for (const violation& lv : pr->local) {
          rep.violations.push_back(transformed(lv, a.t));
        }
        std::lock_guard lk(contained_mu);
        for (std::size_t k = 0; k < pr->a_contained.size(); ++k) {
          if (pr->a_contained[k]) contained[ii][k] = 1;
        }
      } else {
        ++rep.prune.pairs_computed;
        const poly_set pa = polys_of(lib, views, a, inner, transform{});
        std::vector<std::uint8_t> local_contained(pa.polys.size(), 0);
        enclosure_between(pa, polys_of(lib, views, b, outer, transform{}), inner, outer,
                          min_enclosure, rep.violations, local_contained,
                          rep.check_stats);
        std::lock_guard lk(contained_mu);
        for (std::size_t k = 0; k < local_contained.size(); ++k) {
          if (local_contained[k]) contained[ii][k] = 1;
        }
      }
    };

    if (cfg_.run_mode == mode::parallel) {
      const std::size_t depth = std::max<std::size_t>(1, cfg_.pipeline_depth);
      sweep::device_check_config dcfg{sweep::pair_check::enclosure, min_enclosure, inner, outer,
                                      sweep::sweep_axis::x};

      auto pack_row = [&](const partition::row& row) {
        auto t = report.phases.measure("pack");
        std::vector<sweep::packed_edge> edges;
        std::uint32_t poly_id = 0;
        for (const partition::clip& c : row.clips) {
          for (const std::uint32_t m : c.members) {
            const bool is_inner = m < ni;
            const inst& in = is_inner ? inner_insts[m] : outer_insts[m - ni];
            const poly_set ps = polys_of(lib, views, in, is_inner ? inner : outer, transform{});
            for (const polygon& p : ps.polys) {
              sweep::pack_polygon_edges(p, poly_id++, is_inner ? 0 : 1, edges);
            }
          }
        }
        return edges;
      };

      std::deque<sweep::async_edge_check> in_flight;
      std::size_t slot = 0;
      for (std::size_t ri = 0; ri < part.rows.size(); ++ri) {
        std::vector<sweep::packed_edge> edges = pack_row(part.rows[ri]);
        if (in_flight.size() >= depth) {
          auto t = report.phases.measure("device");
          in_flight.front().finish(report.violations, report.device_stats);
          in_flight.pop_front();
        }
        in_flight.emplace_back(impl_->get_stream(slot++ % depth), std::move(edges), dcfg,
                               cfg_.executor, cfg_.brute_threshold);
      }
      while (!in_flight.empty()) {
        auto t = report.phases.measure("device");
        in_flight.front().finish(report.violations, report.device_stats);
        in_flight.pop_front();
      }
      // Containment runs on the host (polygon containment is not an
      // edge-pair-decomposable predicate).
      auto t = report.phases.measure("edge_check");
      for (std::size_t i = 0; i < ni; ++i) {
        const poly_set pa = polys_of(lib, views, inner_insts[i], inner, transform{});
        for (std::size_t k = 0; k < pa.polys.size(); ++k) {
          const rect im = pa.mbrs[k];
          for (const inst& oj : outer_insts) {
            if (contained[i][k]) break;
            if (!oj.mbr.inflated(0).overlaps(im)) continue;
            const poly_set po = polys_of(lib, views, oj, outer, transform{});
            for (std::size_t q = 0; q < po.polys.size(); ++q) {
              if (!po.mbrs[q].contains(im)) continue;
              bool all_in = true;
              for (const point& p : pa.polys[k].vertices()) {
                if (!po.polys[q].contains(p)) {
                  all_in = false;
                  break;
                }
              }
              if (all_in) {
                contained[i][k] = 1;
                break;
              }
            }
          }
          if (!contained[i][k]) {
            checks::report_uncontained(pa.polys[k], inner, outer, report.violations);
          }
        }
      }
      continue;
    }

    // Sequential branch: clips are independent, optionally parallel on the
    // host pool (cfg_.host_parallel).
    auto process_clip = [&](const partition::clip& clip, check_report& rep) {
      std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;  // (inner idx, outer idx)
      {
        auto t = rep.phases.measure("sweepline");
        std::vector<rect> clip_mbrs(clip.members.size());
        for (std::size_t k = 0; k < clip.members.size(); ++k) {
          clip_mbrs[k] = mbrs[clip.members[k]];
        }
        enumerate_overlap_pairs(
            cfg_, clip_mbrs, half_distance(min_enclosure),
            rep.sweep_stats,
            [&](std::uint32_t i, std::uint32_t j) {
              const std::uint32_t gi = clip.members[i];
              const std::uint32_t gj = clip.members[j];
              const bool i_inner = gi < ni;
              const bool j_inner = gj < ni;
              if (i_inner && !j_inner) {
                pairs.emplace_back(gi, gj - static_cast<std::uint32_t>(ni));
              } else if (!i_inner && j_inner) {
                pairs.emplace_back(gj, gi - static_cast<std::uint32_t>(ni));
              }
            });
      }

      auto t = rep.phases.measure("edge_check");
      for (const auto& [ii, oj] : pairs) run_pair(ii, oj, rep);
    };

    std::vector<const partition::clip*> clips;
    for (const partition::row& row : part.rows) {
      for (const partition::clip& clip : row.clips) clips.push_back(&clip);
    }
    if (cfg_.host_parallel && clips.size() > 1) {
      std::vector<check_report> locals(clips.size());
      thread_pool::global().parallel_for(
          0, clips.size(), [&](std::size_t i) { process_clip(*clips[i], locals[i]); });
      for (check_report& lr : locals) report.merge_from(std::move(lr));
    } else {
      for (const partition::clip* c : clips) process_clip(*c, report);
    }

    // Report inner polygons contained by nothing.
    auto t = report.phases.measure("edge_check");
    for (std::size_t i = 0; i < ni; ++i) {
      const poly_set pa = polys_of(lib, views, inner_insts[i], inner, transform{});
      for (std::size_t k = 0; k < pa.polys.size(); ++k) {
        if (contained[i][k]) continue;
        checks::report_uncontained(pa.polys[k], inner, outer, report.violations);
      }
    }
  }
  return report;
}

}  // namespace odrc::engine
