// The OpenDRC engine (paper Sections III, IV-C/D/E, V).
//
// The engine is the application-layer controller: it takes a layout library
// and a rule deck, performs the adaptive row-based partition, prunes checks
// through the hierarchy memos, and dispatches the remaining work to the
// sequential (CPU cell-level sweep) or parallel (device edge-kernel) branch.
//
// Sequential mode, distance rules:
//   1. enumerate placed instances carrying the rule's layer(s);
//   2. adaptive row partition of the instance MBRs (rule-distance inflated);
//   3. per clip: sweepline over instance MBRs -> candidate instance pairs;
//   4. intra-instance results come from the per-master memo (checked once
//      per master); inter-instance pairs from the relative-placement memo;
//   5. remaining pairs run edge-to-edge checks (shared predicates).
//
// Parallel mode, distance rules:
//   1-2. as above;
//   3. per row: pack the row's transformed polygon edges into a flat array,
//      enqueue upload + check kernels on a device stream, and immediately
//      start packing the NEXT row on the host — the Section V-C overlap;
//   4. the device executor is brute-force (threads per polygon/pair) for
//      small rows, two-kernel parallel sweep for large ones (Section IV-E).
//
// Intra-polygon rules (width, area, shape) run per master in both modes and
// reuse results across instances (Section IV-C intra-polygon pruning).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "checks/poly_checks.hpp"
#include "checks/violation.hpp"
#include "db/layout.hpp"
#include "engine/rule.hpp"
#include "engine/task_prune.hpp"
#include "infra/simd.hpp"
#include "infra/timer.hpp"
#include "partition/row_partition.hpp"
#include "sweep/device_sweep.hpp"
#include "sweep/sweepline.hpp"

namespace odrc::engine {

struct exec_plan;       // plan.hpp
class stream_pool;      // pipeline.hpp
class layout_snapshot;  // snapshot.hpp

/// Execution branch (paper Fig. 1: sequential CPU / parallel GPU).
enum class mode { sequential, parallel };

/// How the sequential branch enumerates candidate MBR-overlap pairs inside a
/// clip: the paper's sweepline + interval tree (Fig. 3), a packed R-tree, or
/// a region quadtree (the alternatives Sections I/IV-A cite). Exposed for
/// the ablation bench.
enum class candidate_strategy { sweepline, rtree, quadtree };

struct engine_config {
  mode run_mode = mode::sequential;

  /// Ablation switches (all default to the paper's configuration).
  bool enable_partition = true;    ///< off: one row containing everything
  bool enable_memoization = true;  ///< off: recompute every instance/pair
  partition::merge_strategy merge = partition::merge_strategy::pigeonhole;
  candidate_strategy candidates = candidate_strategy::sweepline;
  sweep::executor_choice executor = sweep::executor_choice::automatic;
  std::size_t brute_threshold = sweep::default_brute_threshold;

  /// Parallel-mode row pipeline depth: how many rows are in flight on the
  /// device at once, each on its own stream (paper Section V-C uses multiple
  /// CUDA streams to overlap copies, kernels and host preprocessing).
  std::size_t pipeline_depth = 2;

  /// Sequential-mode host multithreading: run independent clips on the
  /// worker pool (the partition guarantees clip independence — the paper's
  /// "check pruning and/or parallel processing"). Memo tables are shared
  /// behind locks; results are identical to the serial order up to
  /// violation ordering.
  bool host_parallel = false;

  /// Deck batching: rules whose compiled plans share a check-object space
  /// (same layer set) execute over one shared pipeline pass — one instance
  /// enumeration, one partition, one candidate sweep, and in parallel mode
  /// one packed-edge upload per row evaluating every rule's predicate. Off:
  /// each rule runs its own full pass (the pre-batching behaviour).
  bool batch = true;

  /// Deck-wide layout snapshot: one mbr_index / view cache / flat instance
  /// list / master packed-edge cache shared by every rule group of a check
  /// call (snapshot.hpp). Off (ablation): each group rebuilds them from
  /// scratch — the pre-snapshot behaviour.
  bool snapshot = true;

  /// SIMD dispatch policy for the hot kernels (simd.hpp): `automatic` probes
  /// CPUID (overridable per-process via ODRC_SIMD=off|avx2|auto), `off`
  /// forces the scalar path (ablation), `avx2` forces AVX2 where the CPU has
  /// it (degrades to scalar with a warning otherwise). Process-wide: the
  /// engine constructor applies it via simd::set_mode.
  simd::mode simd = simd::mode::automatic;
};

/// Deck-batching amortization counters (reported by the CLI's --batch path).
struct deck_stats {
  std::size_t groups = 0;        ///< pair-plan groups executed
  std::size_t batched_rules = 0; ///< rules that shared a group with others
  double shared_seconds = 0;     ///< shared-phase time paid once per group
  double saved_seconds = 0;      ///< est. shared time avoided vs per-rule runs

  deck_stats& operator+=(const deck_stats& o) {
    groups += o.groups;
    batched_rules += o.batched_rules;
    shared_seconds += o.shared_seconds;
    saved_seconds += o.saved_seconds;
    return *this;
  }
};

/// Everything a check run produces: violations plus the instrumentation the
/// benches report (work counters, partition shape, Fig. 4 phase breakdown).
struct check_report {
  std::vector<checks::violation> violations;

  checks::check_stats check_stats;
  sweep::sweep_stats sweep_stats;
  sweep::device_check_stats device_stats;
  prune_stats prune;
  phase_profiler phases;  ///< "partition" / "sweepline" / "edge_check" / ...
  deck_stats deck;        ///< batching amortization (deck-level runs only)

  std::size_t rows = 0;
  std::size_t clips = 0;
  std::size_t instances = 0;

  /// Plain accumulation. Batched group runs keep shared-phase time
  /// (partition / sweepline / pack / device) in exactly ONE report — the
  /// group's shared report, never the per-rule reports (pipeline.hpp
  /// group_report) — so merging a group's reports cannot double-count a
  /// phase that was paid once for several rules.
  void merge_from(check_report&& o) {
    violations.insert(violations.end(), std::make_move_iterator(o.violations.begin()),
                      std::make_move_iterator(o.violations.end()));
    check_stats += o.check_stats;
    sweep_stats += o.sweep_stats;
    device_stats += o.device_stats;
    prune += o.prune;
    for (const auto& [name, secs] : o.phases.phases()) phases.add(name, secs);
    deck += o.deck;
    rows += o.rows;
    clips += o.clips;
    instances += o.instances;
  }
};

/// Deck-level result with per-rule attribution preserved: `per_rule[i]` is
/// rule i's own report (its violations, predicate counters and edge_check
/// time; shared group phases are not attributed to individual rules), and
/// `total` merges everything plus the shared phase reports once per group.
struct deck_report {
  check_report total;
  std::vector<check_report> per_rule;  ///< parallel to drc_engine::deck()
};

/// The DRC engine. Holds configuration and an optional rule deck; each
/// run_* method executes one rule and returns its report.
class drc_engine {
 public:
  explicit drc_engine(engine_config cfg = {});
  ~drc_engine();

  drc_engine(const drc_engine&) = delete;
  drc_engine& operator=(const drc_engine&) = delete;

  [[nodiscard]] const engine_config& config() const { return cfg_; }

  // --- rule deck interface (paper Listing 1) -------------------------------
  void add_rules(std::vector<rules::rule> deck);
  [[nodiscard]] std::span<const rules::rule> deck() const { return deck_; }

  /// Run every rule in the deck against `lib`; reports are merged. With
  /// engine_config::batch (the default) this is check_deck(lib).total.
  check_report check(const db::library& lib);

  /// Run the whole deck with per-rule report attribution. Rules whose plans
  /// share a layer set are grouped (plan.hpp group_pair_plans) and executed
  /// over one shared pipeline pass when engine_config::batch is set;
  /// total.deck carries the amortization counters.
  deck_report check_deck(const db::library& lib);

  /// Plan-level variant for warm-path callers (odrc::serve sessions, the
  /// CLI --window route): run already-compiled `plans` against a
  /// caller-owned snapshot — no recompilation, no snapshot rebuild.
  /// `per_rule` is parallel to `plans`. `window` restricts candidate
  /// collection to its rule-halo inflation; the reports are NOT filtered to
  /// the window (use the check_region overload for the exact region
  /// semantics). Global plans (derived-area, coloring) ignore the window and
  /// run in full.
  deck_report check_deck(const db::library& lib, std::span<const exec_plan> plans,
                         layout_snapshot& snap, const std::optional<rect>& window = {});

  /// Region-of-interest over precompiled plans: exactly the violations with
  /// at least one offending edge intersecting `window`, examining only
  /// objects near the window. The deck/plan-level analogue of the
  /// single-rule check_region below.
  deck_report check_region(const db::library& lib, std::span<const exec_plan> plans,
                           layout_snapshot& snap, const rect& window);

  /// Task parallelism (paper Section I: "different design rules can be
  /// checked concurrently"): run the deck's rules as independent tasks on
  /// the host worker pool. Each task gets its own engine instance (and, in
  /// parallel mode, its own device stream), so rule checks never share
  /// mutable state. The merged report equals check(lib) up to ordering.
  check_report check_concurrent(const db::library& lib);

  /// Run a single rule.
  check_report check(const db::library& lib, const rules::rule& r);

  /// Region-of-interest (incremental) checking: report exactly the
  /// violations with at least one offending edge intersecting `window`,
  /// while only *examining* objects near the window — the re-check
  /// primitive an incremental flow (e.g. a router fixing one net) needs.
  /// Candidate soundness follows from the MBR argument of Section IV-C: an
  /// edge in the window belongs to an object whose MBR overlaps the window,
  /// and its violation partner lies within the rule distance of it, hence
  /// within the rule-distance-inflated window.
  check_report check_region(const db::library& lib, const rules::rule& r, const rect& window);

  // --- individual checks ----------------------------------------------------
  check_report run_width(const db::library& lib, db::layer_t layer, coord_t min_width);
  check_report run_area(const db::library& lib, db::layer_t layer, area_t min_area);
  check_report run_rectilinear(const db::library& lib, db::layer_t layer);
  check_report run_custom(const db::library& lib, db::layer_t layer,
                          const std::function<bool(const db::polygon_elem&)>& pred);
  check_report run_spacing(const db::library& lib, db::layer_t layer, coord_t min_space);

  /// Conditional (PRL) spacing: requirement depends on the facing pair's
  /// parallel run length (paper Section II "conditional rules").
  check_report run_spacing(const db::library& lib, db::layer_t layer,
                           const checks::spacing_table& table);
  check_report run_enclosure(const db::library& lib, db::layer_t inner, db::layer_t outer,
                             coord_t min_enclosure);

  /// Derived-layer area rules (paper Section I's inter-layer constraint
  /// examples): every connected region of op(A, B) must have at least
  /// `min_area`, where op is AND (overlap_area) or AND-NOT (notcut_area).
  check_report run_derived_area(const db::library& lib, checks::rule_kind kind, db::layer_t a,
                                db::layer_t b, area_t min_area);

  /// Multi-patterning decomposition check: build the same-mask conflict
  /// graph (shapes closer than `same_mask_spacing`) and verify it is
  /// 2-colorable; every odd cycle produces one violation at the edge that
  /// closes it.
  check_report run_coloring(const db::library& lib, db::layer_t layer,
                            coord_t same_mask_spacing);

 private:
  /// Run one already-compiled plan against a shared snapshot — the deck
  /// paths use this so a plan compiled once is never recompiled for
  /// dispatch. Global plans (derived-area, coloring) flatten the layout
  /// themselves and ignore the snapshot and the window.
  check_report run_compiled(const db::library& lib, const exec_plan& plan, stream_pool& streams,
                            layout_snapshot& snap, const std::optional<rect>& window);

  struct impl;
  engine_config cfg_;
  std::vector<rules::rule> deck_;
  std::unique_ptr<impl> impl_;
};

}  // namespace odrc::engine

namespace odrc {
using engine::drc_engine;
using engine::engine_config;
}  // namespace odrc
