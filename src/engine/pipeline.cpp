#include "engine/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <future>
#include <mutex>

#include "geo/quadtree.hpp"
#include "geo/rtree.hpp"
#include "infra/thread_pool.hpp"
#include "infra/trace.hpp"

namespace odrc::engine {

namespace {

using checks::check_stats;
using checks::violation;
using db::cell_id;
using db::layer_t;

}  // namespace

std::vector<inst> collect_instances(layout_snapshot& snap, cell_id top, layer_t layer,
                                    const std::optional<rect>& window, coord_t inflate) {
  const instance_set& set = snap.instances(top, layer);
  view_cache& views = snap.views();

  // The pruning halo is loop-invariant; inflating inside the per-instance
  // and per-polygon loops recomputed it for every MBR test.
  const std::optional<rect> halo =
      window ? std::optional<rect>(window->inflated(inflate)) : std::nullopt;

  std::vector<inst> out;
  for (const db::placed_cell& pc : set.placed) {
    const master_layer_view& v = views.get(pc.master, layer);
    if (v.empty()) continue;
    const rect cell_mbr = pc.to_top.apply(v.mbr);
    if (halo && !halo->overlaps(cell_mbr)) continue;
    if (set.occurrences(pc.master) == 1 && v.poly_indices.size() > split_poly_threshold) {
      for (std::uint32_t k = 0; k < v.poly_indices.size(); ++k) {
        const rect pm = pc.to_top.apply(v.poly_mbrs[k]);
        if (halo && !halo->overlaps(pm)) continue;
        out.push_back({pc.master, k, pc.to_top, pm});
      }
    } else {
      out.push_back({pc.master, whole_cell, pc.to_top, cell_mbr});
    }
  }
  return out;
}

partition::partition_result partition_instances(const engine_config& cfg,
                                                std::span<const rect> mbrs, coord_t distance,
                                                check_report& report) {
  partition::partition_result part;
  if (cfg.enable_partition) {
    auto t = report.phases.measure("partition");
    trace::span ts("pipeline", "partition", "objects", static_cast<std::int64_t>(mbrs.size()));
    part = partition::partition_rows(mbrs, distance, cfg.merge);
  } else {
    // Ablation: one row, one clip, everything inside.
    partition::row r;
    partition::clip c;
    for (std::uint32_t i = 0; i < mbrs.size(); ++i) {
      if (!mbrs[i].empty()) c.members.push_back(i);
    }
    r.clips.push_back(std::move(c));
    part.rows.push_back(std::move(r));
  }
  report.rows += part.rows.size();
  report.clips += part.clip_count();
  return part;
}

void enumerate_overlap_pairs(const engine_config& cfg, std::span<const rect> mbrs,
                             coord_t inflate, sweep::sweep_stats& stats,
                             const std::function<void(std::uint32_t, std::uint32_t)>& report) {
  if (cfg.candidates == candidate_strategy::sweepline) {
    sweep::overlap_pairs_inflated(mbrs, inflate, report, &stats);
    return;
  }
  std::vector<rect> inflated(mbrs.size());
  for (std::size_t i = 0; i < mbrs.size(); ++i) inflated[i] = mbrs[i].inflated(inflate);
  auto count_and_report = [&](std::uint32_t i, std::uint32_t j) {
    ++stats.pairs_reported;
    report(i, j);
  };
  if (cfg.candidates == candidate_strategy::rtree) {
    const geo::rtree tree(inflated);
    tree.overlap_pairs(count_and_report);
  } else {
    const geo::quadtree tree(inflated);
    tree.overlap_pairs(count_and_report);
  }
}

poly_set transformed_polys(const db::cell& c, const master_layer_view& v, const transform& t) {
  poly_set ps;
  ps.polys.reserve(v.poly_indices.size());
  ps.mbrs.reserve(v.poly_indices.size());
  for (std::uint32_t pi : v.poly_indices) {
    ps.polys.push_back(t.is_identity() ? c.polygons()[pi].poly
                                       : c.polygons()[pi].poly.transformed(t));
    ps.mbrs.push_back(ps.polys.back().mbr());
  }
  return ps;
}

poly_set polys_of(const db::library& lib, view_cache& views, const inst& in, db::layer_t layer,
                  const transform& extra) {
  const db::cell& c = lib.at(in.master);
  const master_layer_view& v = views.get(in.master, layer);
  const transform t = extra.compose(in.t);
  if (!in.split()) return transformed_polys(c, v, t);
  poly_set ps;
  const std::uint32_t pi = v.poly_indices[in.poly_index];
  ps.polys.push_back(t.is_identity() ? c.polygons()[pi].poly
                                     : c.polygons()[pi].poly.transformed(t));
  ps.mbrs.push_back(ps.polys.back().mbr());
  return ps;
}

check_report group_report::merged() && {
  check_report total = std::move(shared);
  for (check_report& r : per_rule) total.merge_from(std::move(r));
  return total;
}

// ---------------------------------------------------------------------------
// Intra-class plans
// ---------------------------------------------------------------------------

namespace {

// Compute the master-local violations of an intra rule.
std::vector<violation> compute_intra_master(const db::cell& c, const master_layer_view& v,
                                            const rules::rule& r, check_stats& cs) {
  std::vector<violation> out;
  for (std::uint32_t pi : v.poly_indices) {
    const db::polygon_elem& p = c.polygons()[pi];
    switch (r.kind) {
      case checks::rule_kind::width:
        checks::check_width(p.poly, p.layer, r.distance, out, cs);
        break;
      case checks::rule_kind::area:
        checks::check_area(p.poly, p.layer, r.min_area, out, cs);
        break;
      case checks::rule_kind::rectilinear:
        checks::check_rectilinear(p.poly, p.layer, out, cs);
        break;
      case checks::rule_kind::custom: {
        ++cs.polygons_tested;
        if (r.predicate && !r.predicate(p)) {
          const rect m = p.poly.mbr();
          out.push_back({checks::rule_kind::custom, p.layer, p.layer,
                         edge{{m.x_min, m.y_min}, {m.x_max, m.y_min}},
                         edge{{m.x_min, m.y_max}, {m.x_max, m.y_max}}, 0});
        }
        break;
      }
      default: break;
    }
  }
  return out;
}

// Intra checks over already-transformed polygons (used for magnified
// instances, whose master results cannot be reused: distances scale).
std::vector<violation> compute_intra_polys(std::span<const polygon> polys, layer_t layer,
                                           const rules::rule& r, check_stats& cs) {
  std::vector<violation> out;
  for (const polygon& p : polys) {
    switch (r.kind) {
      case checks::rule_kind::width:
        checks::check_width(p, layer, r.distance, out, cs);
        break;
      case checks::rule_kind::area:
        checks::check_area(p, layer, r.min_area, out, cs);
        break;
      case checks::rule_kind::rectilinear:
        checks::check_rectilinear(p, layer, out, cs);
        break;
      default: break;  // custom rules are transform-independent
    }
  }
  return out;
}

// Device variant of the width check for one master (paper: intra checks also
// run on the GPU in parallel mode; Table I's "Par" column). The master's
// packed edges come straight from the snapshot cache — poly ids are the
// view-local indices with group 0, exactly what a from-scratch pack produced.
std::vector<violation> compute_intra_master_device(device::stream& s,
                                                   const packed_master_edges& pm,
                                                   const rules::rule& r,
                                                   const engine_config& cfg,
                                                   sweep::device_check_stats& ds) {
  std::vector<violation> out;
  sweep::device_check_config dcfg{sweep::pair_check::width, r.distance, r.layer1, r.layer1,
                                  sweep::sweep_axis::y};
  sweep::device_check_edges_with(s, pm.edges, dcfg, cfg.executor, out, ds, cfg.brute_threshold);
  return out;
}

}  // namespace

check_report run_intra_plan(const engine_config& cfg, stream_pool& streams,
                            layout_snapshot& snap, const exec_plan& plan,
                            const std::optional<rect>& window) {
  const rules::rule& r = plan.rule;
  trace::span ts("engine", "run_intra_plan", "kind", static_cast<std::int64_t>(r.kind), "layer",
                 r.layer1);
  check_report report;
  const db::library& lib = snap.lib();
  view_cache& views = snap.views();
  device::stream* stream =
      cfg.run_mode == mode::parallel && r.kind == checks::rule_kind::width ? &streams.get()
                                                                           : nullptr;

  // Layers this rule touches: a specific layer, or every populated layer.
  std::vector<layer_t> layers;
  if (r.layer1 == rules::any_layer) {
    layers = snap.index().layers();
  } else {
    layers.push_back(r.layer1);
  }

  for (const layer_t layer : layers) {
    // The memo caches master-local results for ONE layer; a master can carry
    // several layers, so the cache must not leak across layer passes.
    intra_memo memo;
    for (const cell_id top : lib.top_cells()) {
      rules::rule layer_rule = r;
      layer_rule.layer1 = layer;
      auto t = report.phases.measure("edge_check");
      for (const db::placed_cell& pc : snap.instances(top, layer).placed) {
        const master_layer_view& v = views.get(pc.master, layer);
        if (v.empty()) continue;
        if (window && !window->overlaps(pc.to_top.apply(v.mbr))) continue;
        ++report.instances;
        if (!pc.to_top.is_isometry() && r.kind != checks::rule_kind::custom &&
            r.kind != checks::rule_kind::rectilinear) {
          // Magnification scales distances and areas: the memoized master
          // result does not transfer (paper IV-C: reuse only when "the
          // transformations preserve the target properties of the check").
          const poly_set ps = transformed_polys(lib.at(pc.master), v, pc.to_top);
          for (const violation& lv :
               compute_intra_polys(ps.polys, layer, layer_rule, report.check_stats)) {
            report.violations.push_back(lv);
          }
          continue;
        }
        const std::vector<violation>* local = cfg.enable_memoization ? memo.find(pc.master)
                                                                     : nullptr;
        if (local) {
          ++report.prune.intra_reused;
        } else {
          ++report.prune.intra_computed;
          std::vector<violation> computed;
          if (stream) {
            computed = compute_intra_master_device(*stream, snap.packed(pc.master, layer),
                                                   layer_rule, cfg, report.device_stats);
          } else {
            computed = compute_intra_master(lib.at(pc.master), v, layer_rule,
                                            report.check_stats);
          }
          if (cfg.enable_memoization) {
            local = &memo.store(pc.master, std::move(computed));
          } else {
            for (const violation& lv : computed) {
              report.violations.push_back(transformed(lv, pc.to_top));
            }
            continue;
          }
        }
        for (const violation& lv : *local) {
          report.violations.push_back(transformed(lv, pc.to_top));
        }
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Pair-class plan groups
// ---------------------------------------------------------------------------

namespace {

// Per-plan memo tables with their locks. Built once per run_pair_group call;
// never resized (mutexes are not movable).
struct memo_slot {
  intra_memo intra;
  pair_memo pairs;
  std::mutex intra_mu;
  std::mutex pairs_mu;
};

// One row of the pack-ahead pipeline. Both the pool workers offered the row
// and the driver call pack_ahead_into(); the atomic claim guarantees exactly
// one of them packs it, and a claimed row is being *actively* packed by some
// thread, so waiting on its future is bounded — the driver never blocks on a
// task still sitting in the pool queue (which could deadlock when
// run_pair_group itself runs on a pool worker under check_concurrent).
struct pack_slot {
  std::atomic_flag claimed;  // default-clear (C++20)
  std::promise<std::vector<sweep::packed_edge>> result;
  std::future<std::vector<sweep::packed_edge>> ready;
  bool scheduled = false;  // touched by the driver thread only
};

// Shared between the driver and the offered pool tasks. Tasks hold it by
// shared_ptr, so the driver never has to *join* them: a task left in the
// queue when the driver moves on (every pool worker was busy — possible when
// several deck tasks share the pool) eventually runs as a pure no-op. The
// driver must NOT block on queued tasks; with concurrent run_pair_group
// calls saturating the pool, two drivers joining each other's queued tasks
// is a deadlock.
//
// `pack` references driver-frame locals. That is safe: the driver claims
// every row before leaving its loop and waits for each claimed row's future
// inside the loop, so any pack body still executing keeps the driver (and
// its frame) inside the loop; once the driver exits, every row is claimed
// and no stale task can enter `pack` again.
struct pack_ahead_state {
  std::unique_ptr<pack_slot[]> slots;
  std::function<std::vector<sweep::packed_edge>(std::size_t)> pack;
};

void pack_ahead_into(pack_ahead_state& st, std::size_t ri) {
  if (st.slots[ri].claimed.test_and_set()) return;
  try {
    st.slots[ri].result.set_value(st.pack(ri));
  } catch (...) {
    st.slots[ri].result.set_exception(std::current_exception());
  }
}

// Intra-master work of one plan: per-polygon predicate (spacing notches) plus
// polygon pairs within the master, candidate-filtered by a local sweepline.
std::vector<violation> compute_intra_for_plan(const db::cell& c, const master_layer_view& v,
                                              const exec_plan& plan, check_stats& cs,
                                              sweep::sweep_stats& ss) {
  std::vector<violation> out;
  for (std::uint32_t pi : v.poly_indices) {
    plan.check_single(c.polygons()[pi].poly, out, cs);
  }
  sweep::overlap_pairs_inflated(
      v.poly_mbrs, half_distance(plan.inflate),
      [&](std::uint32_t i, std::uint32_t j) {
        plan.check_pair(c.polygons()[v.poly_indices[i]].poly, v.poly_mbrs[i],
                        c.polygons()[v.poly_indices[j]].poly, v.poly_mbrs[j], out, nullptr, cs);
      },
      &ss);
  return out;
}

}  // namespace

group_report run_pair_group(const engine_config& cfg, stream_pool& streams,
                            layout_snapshot& snap, std::span<const exec_plan> plans,
                            const plan_group& g, const std::optional<rect>& window) {
  trace::span ts("engine", "run_pair_group", "layer1", g.layer1, "layer2", g.layer2);
  group_report out;
  const std::size_t nplans = g.members.size();
  out.per_rule.resize(nplans);
  check_report& shared = out.shared;
  if (nplans == 0) return out;

  std::vector<const exec_plan*> mp(nplans);
  for (std::size_t k = 0; k < nplans; ++k) mp[k] = &plans[g.members[k]];
  // Group invariants (group_pair_plans keys on (layer1, layer2, two_layer)):
  // single-layer groups hold spacing plans (intra part, no containment),
  // two-layer groups hold enclosure plans (containment, no intra part).
  const bool track = mp.front()->track_containment;
  const bool has_intra = mp.front()->intra_object;

  const db::library& lib = snap.lib();
  view_cache& views = snap.views();
  const auto memos = std::make_unique<memo_slot[]>(nplans);

  for (const cell_id top : lib.top_cells()) {
    const std::vector<inst> a_insts = collect_instances(snap, top, g.layer1, window, g.inflate);
    std::vector<inst> b_insts;
    if (g.two_layer) b_insts = collect_instances(snap, top, g.layer2, window, g.inflate);
    shared.instances += a_insts.size() + b_insts.size();
    if (a_insts.empty()) continue;
    const std::size_t ni = a_insts.size();

    std::vector<rect> mbrs(ni + b_insts.size());
    for (std::size_t i = 0; i < ni; ++i) mbrs[i] = a_insts[i].mbr;
    for (std::size_t j = 0; j < b_insts.size(); ++j) mbrs[ni + j] = b_insts[j].mbr;
    const partition::partition_result part = partition_instances(cfg, mbrs, g.inflate, shared);

    // Containment flags per inner polygon, ORed across pairs. The flags are
    // plan-independent (containment is pure geometry, no distance), so one
    // array serves every member plan.
    auto inner_poly_count = [&](const inst& in) -> std::size_t {
      return in.split() ? 1 : views.get(in.master, g.layer1).poly_indices.size();
    };
    std::vector<std::vector<std::uint8_t>> contained;
    if (track) {
      contained.resize(ni);
      for (std::size_t i = 0; i < ni; ++i) contained[i].assign(inner_poly_count(a_insts[i]), 0);
    }
    std::mutex contained_mu;

    if (cfg.run_mode == mode::parallel) {
      // Row pipeline (Section V-C): up to pipeline_depth rows are in flight,
      // each on its own stream, while host threads pack the next rows ahead
      // of the driver. One upload per row; the multi-config kernel evaluates
      // every member plan's predicate per candidate pair.
      const std::size_t depth = std::max<std::size_t>(1, cfg.pipeline_depth);
      std::vector<sweep::device_check_config> cfgs(nplans);
      for (std::size_t k = 0; k < nplans; ++k) {
        cfgs[k] = mp[k]->device_config(sweep::sweep_axis::x);
      }
      std::vector<std::vector<violation>*> outs(nplans);
      for (std::size_t k = 0; k < nplans; ++k) outs[k] = &out.per_rule[k].violations;

      auto pack_row = [&](const partition::row& row, std::size_t ri) {
        auto t = shared.phases.measure("pack");
        trace::span pts("pipeline", "pack", "row", static_cast<std::int64_t>(ri));
        std::vector<sweep::packed_edge> edges;
        std::uint32_t poly_id = 0;
        for (const partition::clip& c : row.clips) {
          for (const std::uint32_t m : c.members) {
            const bool primary = m < ni;
            const inst& in = primary ? a_insts[m] : b_insts[m - ni];
            const std::uint16_t group = primary ? 0 : 1;
            const packed_master_edges& pm =
                snap.packed(in.master, primary ? g.layer1 : g.layer2);
            if (in.split()) {
              append_packed_polygon(pm, in.poly_index, in.t, poly_id++, group, edges);
            } else {
              append_packed_instance(pm, in.t, poly_id, group, edges);
              poly_id += static_cast<std::uint32_t>(pm.poly_count());
            }
          }
        }
        return edges;
      };

      // Pack-ahead slots: rows (ri, ri+depth) are offered to the global pool
      // while the driver consumes row ri, so up to `depth` rows pack
      // concurrently with the streams already executing earlier rows.
      // depth == 1 degenerates to the old serial pack loop.
      const std::size_t nrows = part.rows.size();
      const auto ahead = std::make_shared<pack_ahead_state>();
      ahead->slots = std::make_unique<pack_slot[]>(nrows);
      for (std::size_t i = 0; i < nrows; ++i) {
        ahead->slots[i].ready = ahead->slots[i].result.get_future();
      }
      ahead->pack = [&](std::size_t ri) { return pack_row(part.rows[ri], ri); };

      std::deque<sweep::async_multi_check> in_flight;
      std::size_t slot = 0;
      std::size_t drained = 0;
      for (std::size_t ri = 0; ri < nrows; ++ri) {
        // Offer the lookahead window before touching row ri, so worker packs
        // overlap both ri's own pack and ri's device wait. The returned
        // futures are deliberately dropped — see pack_ahead_state.
        for (std::size_t rj = ri + 1; rj < std::min(nrows, ri + depth); ++rj) {
          if (ahead->slots[rj].scheduled) continue;
          ahead->slots[rj].scheduled = true;
          thread_pool::global().submit([ahead, rj] { pack_ahead_into(*ahead, rj); });
        }
        pack_ahead_into(*ahead, ri);  // no-op when a worker claimed the row
        std::vector<sweep::packed_edge> edges = ahead->slots[ri].ready.get();
        // Earlier rows keep running on their streams while this row was
        // packed; drain the oldest only once the pipeline is full.
        if (in_flight.size() >= depth) {
          auto t = shared.phases.measure("device");
          trace::span dts("pipeline", "device_wait", "row",
                          static_cast<std::int64_t>(drained++));
          in_flight.front().finish(outs, shared.device_stats);
          in_flight.pop_front();
        }
        in_flight.emplace_back(streams.get(slot++ % depth), std::move(edges), cfgs,
                               cfg.executor, cfg.brute_threshold);
      }
      while (!in_flight.empty()) {
        auto t = shared.phases.measure("device");
        trace::span dts("pipeline", "device_wait", "row", static_cast<std::int64_t>(drained++));
        in_flight.front().finish(outs, shared.device_stats);
        in_flight.pop_front();
      }

      if (track) {
        // Containment runs on the host (polygon containment is not an
        // edge-pair-decomposable predicate); the scan is shared, the
        // uncontained verdict is reported once per member plan. The outer
        // instances' geometry is hoisted out of the i-loop — the previous
        // inner-loop polys_of re-transformed every outer instance once per
        // inner instance, O(ni×nb) transforms for nb cheap MBR rejections.
        auto t = shared.phases.measure("edge_check");
        std::vector<poly_set> outer(b_insts.size());
        for (std::size_t j = 0; j < b_insts.size(); ++j) {
          outer[j] = polys_of(lib, views, b_insts[j], g.layer2, transform{});
        }
        for (std::size_t i = 0; i < ni; ++i) {
          const poly_set pa = polys_of(lib, views, a_insts[i], g.layer1, transform{});
          for (std::size_t k = 0; k < pa.polys.size(); ++k) {
            const rect im = pa.mbrs[k];
            for (std::size_t j = 0; j < b_insts.size(); ++j) {
              if (contained[i][k]) break;
              if (!b_insts[j].mbr.overlaps(im)) continue;
              const poly_set& po = outer[j];
              for (std::size_t q = 0; q < po.polys.size(); ++q) {
                if (!po.mbrs[q].contains(im)) continue;
                bool all_in = true;
                for (const point& p : pa.polys[k].vertices()) {
                  if (!po.polys[q].contains(p)) {
                    all_in = false;
                    break;
                  }
                }
                if (all_in) {
                  contained[i][k] = 1;
                  break;
                }
              }
            }
            if (!contained[i][k]) {
              for (std::size_t kp = 0; kp < nplans; ++kp) {
                checks::report_uncontained(pa.polys[k], g.layer1, g.layer2,
                                           out.per_rule[kp].violations);
              }
            }
          }
        }
      }
      continue;
    }

    // Sequential branch. Clips are mutually independent (partition
    // soundness), so under cfg.host_parallel they run on the worker pool;
    // the per-plan memo tables sit behind mutexes. unordered_map references
    // are node-stable, so a reference obtained under the lock stays valid
    // after it is released — but an existing entry is never overwritten
    // (another thread may be reading it).

    // Evaluate every member plan on one candidate object pair.
    auto run_pair = [&](std::uint32_t ia, std::uint32_t ib, std::span<check_report> pr) {
      const inst& a = a_insts[ia];
      const inst& b = g.two_layer ? b_insts[ib] : a_insts[ib];
      const layer_t lb = g.two_layer ? g.layer2 : g.layer1;
      if (!a.split() && !b.split() && cfg.enable_memoization && a.t.is_isometry() &&
          b.t.is_isometry()) {
        // Relative placement of B in A's frame — the memo key. Only valid
        // for isometries: transform::inverse requires mag == 1, and
        // magnified geometry scales the distances the memo caches.
        const transform rel = a.t.inverse().compose(b.t);
        const pair_key key{a.master, b.master, rel};
        // The transformed geometry is shared across member plans that miss
        // their memo; built lazily so all-hit pairs pay nothing.
        std::optional<poly_set> pa, pb;
        for (std::size_t k = 0; k < nplans; ++k) {
          const pair_result* res = nullptr;
          {
            std::lock_guard lk(memos[k].pairs_mu);
            res = memos[k].pairs.find(key);
          }
          if (res) {
            ++pr[k].prune.pairs_reused;
          } else {
            ++pr[k].prune.pairs_computed;
            auto t = pr[k].phases.measure("edge_check");
            if (!pa) {
              pa = transformed_polys(lib.at(a.master), views.get(a.master, g.layer1),
                                     transform{});
              pb = transformed_polys(lib.at(b.master), views.get(b.master, lb), rel);
            }
            pair_result computed;
            if (track) computed.a_contained.assign(pa->polys.size(), 0);
            for (std::size_t i = 0; i < pa->polys.size(); ++i) {
              for (std::size_t j = 0; j < pb->polys.size(); ++j) {
                mp[k]->check_pair(pa->polys[i], pa->mbrs[i], pb->polys[j], pb->mbrs[j],
                                  computed.local, track ? &computed.a_contained[i] : nullptr,
                                  pr[k].check_stats);
              }
            }
            std::lock_guard lk(memos[k].pairs_mu);
            const pair_result* existing = memos[k].pairs.find(key);
            res = existing ? existing : &memos[k].pairs.store(key, std::move(computed));
          }
          for (const violation& lv : res->local) {
            pr[k].violations.push_back(transformed(lv, a.t));
          }
          if (track) {
            std::lock_guard lk(contained_mu);
            for (std::size_t q = 0; q < res->a_contained.size(); ++q) {
              if (res->a_contained[q]) contained[ia][q] = 1;
            }
          }
        }
      } else {
        // Direct path (split objects, magnification, or memoization
        // disabled): check in top coordinates. Geometry is shared across
        // member plans.
        const poly_set pa = polys_of(lib, views, a, g.layer1, transform{});
        const poly_set pb = polys_of(lib, views, b, lb, transform{});
        std::vector<std::uint8_t> local_contained;
        if (track) local_contained.assign(pa.polys.size(), 0);
        for (std::size_t k = 0; k < nplans; ++k) {
          ++pr[k].prune.pairs_computed;
          auto t = pr[k].phases.measure("edge_check");
          for (std::size_t i = 0; i < pa.polys.size(); ++i) {
            for (std::size_t j = 0; j < pb.polys.size(); ++j) {
              mp[k]->check_pair(pa.polys[i], pa.mbrs[i], pb.polys[j], pb.mbrs[j],
                                pr[k].violations, track ? &local_contained[i] : nullptr,
                                pr[k].check_stats);
            }
          }
        }
        if (track) {
          std::lock_guard lk(contained_mu);
          for (std::size_t q = 0; q < local_contained.size(); ++q) {
            if (local_contained[q]) contained[ia][q] = 1;
          }
        }
      }
    };

    // Intra-object work of one instance, every member plan (single-layer
    // groups only; a two-layer group's cross-layer pairs all come from the
    // candidate sweep).
    auto run_intra_inst = [&](const inst& in, std::span<check_report> pr) {
      if (in.split()) {
        const master_layer_view& v = views.get(in.master, g.layer1);
        const polygon& poly = lib.at(in.master).polygons()[v.poly_indices[in.poly_index]].poly;
        for (std::size_t k = 0; k < nplans; ++k) {
          auto t = pr[k].phases.measure("edge_check");
          std::vector<violation> local;
          mp[k]->check_single(poly, local, pr[k].check_stats);
          for (const violation& lv : local) {
            pr[k].violations.push_back(transformed(lv, in.t));
          }
        }
        return;
      }
      if (!in.t.is_isometry()) {
        // Magnified instance: distances scale, master results do not
        // transfer; check the transformed geometry directly.
        const poly_set ps = polys_of(lib, views, in, g.layer1, transform{});
        for (std::size_t k = 0; k < nplans; ++k) {
          auto t = pr[k].phases.measure("edge_check");
          for (std::size_t pi = 0; pi < ps.polys.size(); ++pi) {
            mp[k]->check_single(ps.polys[pi], pr[k].violations, pr[k].check_stats);
            for (std::size_t pj = pi + 1; pj < ps.polys.size(); ++pj) {
              mp[k]->check_pair(ps.polys[pi], ps.mbrs[pi], ps.polys[pj], ps.mbrs[pj],
                                pr[k].violations, nullptr, pr[k].check_stats);
            }
          }
        }
        return;
      }
      for (std::size_t k = 0; k < nplans; ++k) {
        const std::vector<violation>* local = nullptr;
        if (cfg.enable_memoization) {
          std::lock_guard lk(memos[k].intra_mu);
          local = memos[k].intra.find(in.master);
        }
        if (local) {
          ++pr[k].prune.intra_reused;
        } else {
          ++pr[k].prune.intra_computed;
          auto t = pr[k].phases.measure("edge_check");
          std::vector<violation> computed =
              compute_intra_for_plan(lib.at(in.master), views.get(in.master, g.layer1), *mp[k],
                                     pr[k].check_stats, pr[k].sweep_stats);
          if (cfg.enable_memoization) {
            std::lock_guard lk(memos[k].intra_mu);
            const std::vector<violation>* existing = memos[k].intra.find(in.master);
            local = existing ? existing : &memos[k].intra.store(in.master, std::move(computed));
          } else {
            for (const violation& lv : computed) {
              pr[k].violations.push_back(transformed(lv, in.t));
            }
            continue;
          }
        }
        for (const violation& lv : *local) {
          pr[k].violations.push_back(transformed(lv, in.t));
        }
      }
    };

    auto process_clip = [&](const partition::clip& clip, check_report& sh,
                            std::span<check_report> pr) {
      trace::span cts("pipeline", "clip", "members",
                      static_cast<std::int64_t>(clip.members.size()));
      if (has_intra) {
        for (const std::uint32_t m : clip.members) run_intra_inst(a_insts[m], pr);
      }

      // Candidate object pairs from the sweepline (Fig. 3).
      std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
      {
        auto t = sh.phases.measure("sweepline");
        trace::span sts("pipeline", "sweepline", "members",
                        static_cast<std::int64_t>(clip.members.size()));
        std::vector<rect> clip_mbrs(clip.members.size());
        for (std::size_t k = 0; k < clip.members.size(); ++k) {
          clip_mbrs[k] = mbrs[clip.members[k]];
        }
        enumerate_overlap_pairs(cfg, clip_mbrs, half_distance(g.inflate), sh.sweep_stats,
                                [&](std::uint32_t i, std::uint32_t j) {
                                  const std::uint32_t gi = clip.members[i];
                                  const std::uint32_t gj = clip.members[j];
                                  if (!g.two_layer) {
                                    pairs.emplace_back(gi, gj);
                                    return;
                                  }
                                  const bool i_inner = gi < ni;
                                  const bool j_inner = gj < ni;
                                  if (i_inner && !j_inner) {
                                    pairs.emplace_back(gi, gj - static_cast<std::uint32_t>(ni));
                                  } else if (!i_inner && j_inner) {
                                    pairs.emplace_back(gj, gi - static_cast<std::uint32_t>(ni));
                                  }
                                });
        if (!g.two_layer) {
          sh.prune.pairs_pruned_mbr +=
              clip.members.size() * (clip.members.size() - 1) / 2 - pairs.size();
        }
      }

      for (const auto& [ia, ib] : pairs) run_pair(ia, ib, pr);
    };

    std::vector<const partition::clip*> clips;
    for (const partition::row& row : part.rows) {
      for (const partition::clip& clip : row.clips) clips.push_back(&clip);
    }
    if (cfg.host_parallel && clips.size() > 1) {
      // Per-clip local reports, merged afterwards: clip tasks never write a
      // shared report concurrently.
      std::vector<check_report> local_shared(clips.size());
      std::vector<std::vector<check_report>> local_rules(clips.size());
      for (auto& lr : local_rules) lr.resize(nplans);
      thread_pool::global().parallel_for(0, clips.size(), [&](std::size_t i) {
        process_clip(*clips[i], local_shared[i], local_rules[i]);
      });
      for (std::size_t i = 0; i < clips.size(); ++i) {
        shared.merge_from(std::move(local_shared[i]));
        for (std::size_t k = 0; k < nplans; ++k) {
          out.per_rule[k].merge_from(std::move(local_rules[i][k]));
        }
      }
    } else {
      for (const partition::clip* c : clips) process_clip(*c, shared, out.per_rule);
    }

    if (track) {
      // Report inner polygons contained by nothing, once per member plan.
      auto t = shared.phases.measure("edge_check");
      for (std::size_t i = 0; i < ni; ++i) {
        const poly_set pa = polys_of(lib, views, a_insts[i], g.layer1, transform{});
        for (std::size_t k = 0; k < pa.polys.size(); ++k) {
          if (contained[i][k]) continue;
          for (std::size_t kp = 0; kp < nplans; ++kp) {
            checks::report_uncontained(pa.polys[k], g.layer1, g.layer2,
                                       out.per_rule[kp].violations);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace odrc::engine
