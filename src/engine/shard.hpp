// Band-based shard planner for the serve cluster (DESIGN.md §10).
//
// The coordinator splits a layout across N workers by horizontal bands — the
// same y-axis decomposition the row partitioner (paper Section IV-B) uses for
// intra-process parallelism, lifted one level: rows of mutually
// non-interacting top-level objects are greedily packed into N contiguous
// groups of roughly equal object count, and each group becomes one worker's
// band. Band boundaries land between row extents (in the dead zone where no
// object lies), so most violations fall wholly inside one band; the ones that
// straddle a seam are reported by every band their edges touch and
// deduplicated by violation key at the coordinator.
//
// The bands tile the whole plane (first band extends to the bottom clamp,
// last to the top): a check_region over any band union equals the full
// check, regardless of where edits later add geometry. Clamps sit at
// coord_t min/4 and max/4 so a rule-halo inflate of a band never overflows.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "db/layout.hpp"
#include "infra/geometry.hpp"

namespace odrc::engine {

/// y-extent clamp for the outermost bands: far beyond any real layout, but
/// with headroom so rect::inflated(halo) cannot overflow coord_t.
inline constexpr coord_t shard_clamp_min = std::numeric_limits<coord_t>::min() / 4;
inline constexpr coord_t shard_clamp_max = std::numeric_limits<coord_t>::max() / 4;

/// Partition the plane into at most `n` horizontal bands balanced by the
/// number of `mbrs` whose rows fall in each band. The returned bands are
/// ascending in y, pairwise disjoint, and tile
/// [shard_clamp_min, shard_clamp_max] in y and x. Returns fewer than `n`
/// bands when the layout has fewer independent rows. Never returns zero
/// bands: with no objects the whole plane is one band.
[[nodiscard]] std::vector<rect> plan_shards(std::span<const rect> mbrs, std::size_t n);

/// Convenience overload: gather the MBRs of all top-level objects (polygons,
/// refs, arrays — arrays contribute their corner-instance join, not every
/// element) of every top cell and plan over those.
[[nodiscard]] std::vector<rect> plan_shards(const db::library& lib, std::size_t n);

}  // namespace odrc::engine
