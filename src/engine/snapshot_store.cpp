#include "engine/snapshot_store.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "engine/rule.hpp"
#include "infra/trace.hpp"

namespace odrc::engine {

namespace {

using odrc::arena;
using odrc::offset_span;

// ---------------------------------------------------------------------------
// On-disk records. All file-absolute offsets; all trivially copyable.
// ---------------------------------------------------------------------------

static_assert(std::is_trivially_copyable_v<point>);
static_assert(std::is_trivially_copyable_v<rect>);
static_assert(std::is_trivially_copyable_v<transform>);
static_assert(std::is_trivially_copyable_v<db::cell_ref>);
static_assert(std::is_trivially_copyable_v<db::cell_array>);
static_assert(std::is_trivially_copyable_v<db::element_ref>);
static_assert(std::is_trivially_copyable_v<db::placed_cell>);
static_assert(std::is_trivially_copyable_v<sweep::packed_edge>);
static_assert(std::is_trivially_copyable_v<occurrence_entry>);

struct file_header {
  std::uint64_t magic = snapshot_magic;
  std::uint32_t version = snapshot_version;
  std::uint32_t section_count = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t cell_count = 0;
  std::uint32_t layer_count = 0;
  std::uint32_t top_count = 0;
  std::uint64_t table_off = 0;
  std::uint64_t table_hash = 0;
  double user_unit = 0;
  double meter_unit = 0;
};

enum section_id : std::uint32_t {
  sec_library = 1,
  sec_mbr = 2,
  sec_views = 3,
  sec_instances = 4,
  sec_packed = 5,
};
constexpr std::uint32_t section_total = 5;

struct poly_rec {
  db::layer_t layer = 0;
  db::datatype_t datatype = 0;
  std::uint32_t pad = 0;
  offset_span<point> verts;
  offset_span<char> name;
};

struct text_rec {
  db::layer_t layer = 0;
  db::datatype_t datatype = 0;
  point position{};
  offset_span<char> text;
};

struct cell_rec {
  offset_span<char> name;
  offset_span<poly_rec> polys;
  offset_span<db::cell_ref> refs;
  offset_span<db::cell_array> arrays;
  offset_span<text_rec> texts;
};

struct lib_sec_header {
  offset_span<char> name;
  offset_span<cell_rec> cells;
  double user_unit = 0;
  double meter_unit = 0;
};

struct mbr_sec_header {
  offset_span<db::layer_t> layers;
  offset_span<rect> mbr;
  offset_span<rect> own_mbr;
  offset_span<rect> total_mbr;
  offset_span<db::element_ref> inverted_data;
  offset_span<std::uint32_t> inverted_off;
  offset_span<std::uint32_t> children_data;
  offset_span<std::uint32_t> children_off;
};

/// Header of the three keyed sections: a flat hash whose values are the
/// file-absolute offsets of the records.
struct keyed_sec_header {
  std::uint64_t table_off = 0;
  std::uint64_t record_count = 0;
};

struct view_rec {
  offset_span<std::uint32_t> poly_indices;
  offset_span<rect> poly_mbrs;
  rect mbr;
};

struct inst_rec {
  offset_span<db::placed_cell> placed;
  offset_span<occurrence_entry> occ;
};

struct pack_rec {
  offset_span<sweep::packed_edge> edges;
  offset_span<std::uint32_t> poly_offsets;
  offset_span<std::uint8_t> clockwise;
};

/// (cell, layer) -> table key. Injective: cell occupies the high 32 bits,
/// the sign-extended-then-truncated layer the low 32.
std::uint64_t pack_key(db::cell_id cell, std::int32_t layer) {
  return (static_cast<std::uint64_t>(cell) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(layer));
}

offset_span<char> put_string(arena& a, const std::string& s) {
  return a.put_array(s.data(), s.size());
}

std::string get_string(const void* base, const offset_span<char>& s) {
  const auto sp = s.get(base);
  return {sp.data(), sp.size()};
}

/// The layer domain the engine can request views/instances/packs for: every
/// populated layer plus the any-layer wildcard.
std::vector<std::int32_t> layer_domain(const db::mbr_index& index) {
  std::vector<std::int32_t> out;
  out.reserve(index.layers().size() + 1);
  for (const db::layer_t l : index.layers()) out.push_back(l);
  out.push_back(rules::any_layer);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

snapshot_build_stats build_snapshot_file(const db::library& lib, const std::string& path) {
  layout_snapshot snap(lib);
  const std::vector<std::int32_t> domain = layer_domain(snap.index());
  const std::vector<db::cell_id> tops = lib.top_cells();

  arena a;
  a.put_zeros(sizeof(file_header));
  a.align_to(8);
  const std::uint64_t table_off = a.put_zeros(section_total * sizeof(snapshot_section));
  snapshot_section table[section_total];
  snapshot_build_stats stats;

  auto begin_section = [&](std::uint32_t id) {
    a.align_to(8);
    snapshot_section s;
    s.id = id;
    s.offset = a.size();
    return s;
  };
  auto end_section = [&](snapshot_section s, std::size_t slot) {
    s.bytes = a.size() - s.offset;
    table[slot] = s;
  };

  // [1] library ------------------------------------------------------------
  {
    snapshot_section s = begin_section(sec_library);
    const std::uint64_t hdr_off = a.put_zeros(sizeof(lib_sec_header));
    std::vector<cell_rec> cells;
    cells.reserve(lib.cell_count());
    for (const db::cell& c : lib.cells()) {
      cell_rec cr;
      cr.name = put_string(a, c.name());
      std::vector<poly_rec> polys;
      polys.reserve(c.polygons().size());
      for (const db::polygon_elem& p : c.polygons()) {
        poly_rec pr;
        pr.layer = p.layer;
        pr.datatype = p.datatype;
        pr.verts = a.put_array(p.poly.vertices());
        pr.name = put_string(a, p.name);
        polys.push_back(pr);
      }
      cr.polys = a.put_array(polys.data(), polys.size());
      cr.refs = a.put_array(c.refs());
      cr.arrays = a.put_array(c.arrays());
      std::vector<text_rec> texts;
      texts.reserve(c.texts().size());
      for (const db::text_elem& t : c.texts()) {
        text_rec tr;
        tr.layer = t.layer;
        tr.datatype = t.datatype;
        tr.position = t.position;
        tr.text = put_string(a, t.text);
        texts.push_back(tr);
      }
      cr.texts = a.put_array(texts.data(), texts.size());
      cells.push_back(cr);
    }
    lib_sec_header hdr;
    hdr.name = put_string(a, lib.name());
    hdr.cells = a.put_array(cells.data(), cells.size());
    hdr.user_unit = lib.user_unit;
    hdr.meter_unit = lib.meter_unit;
    a.patch(hdr_off, hdr);
    end_section(s, 0);
    stats.cells = lib.cell_count();
  }

  // [2] mbr_index node arrays ----------------------------------------------
  {
    snapshot_section s = begin_section(sec_mbr);
    const std::uint64_t hdr_off = a.put_zeros(sizeof(mbr_sec_header));
    const db::mbr_index::frozen_view fv = snap.index().freeze_view();
    mbr_sec_header hdr;
    hdr.layers = a.put_array(fv.layers);
    hdr.mbr = a.put_array(fv.mbr);
    hdr.own_mbr = a.put_array(fv.own_mbr);
    hdr.total_mbr = a.put_array(fv.total_mbr);
    hdr.inverted_data = a.put_array(fv.inverted_data);
    hdr.inverted_off = a.put_array(fv.inverted_off);
    hdr.children_data = a.put_array(fv.children_data);
    hdr.children_off = a.put_array(fv.children_off);
    a.patch(hdr_off, hdr);
    end_section(s, 1);
  }

  // [3] master layer views + [5] packed master edges -----------------------
  // Walked together: packed derives from the view, and both skip masters
  // that contribute nothing to the layer (a runtime miss on an absent key
  // just rebuilds the empty entry from the library — cheap and cached).
  odrc::flat_hash_builder views_table;
  odrc::flat_hash_builder pack_table;
  {
    snapshot_section s = begin_section(sec_views);
    const std::uint64_t hdr_off = a.put_zeros(sizeof(keyed_sec_header));
    for (db::cell_id id = 0; id < lib.cell_count(); ++id) {
      for (const std::int32_t layer : domain) {
        const master_layer_view& v = snap.views().get(id, static_cast<db::layer_t>(layer));
        if (v.empty()) continue;
        view_rec vr;
        vr.poly_indices = a.put_array(v.poly_indices.span());
        vr.poly_mbrs = a.put_array(v.poly_mbrs.span());
        vr.mbr = v.mbr;
        const std::uint64_t rec_off = a.put(vr);
        views_table.insert(pack_key(id, layer), rec_off);
        ++stats.views;
      }
    }
    keyed_sec_header hdr;
    hdr.table_off = views_table.write(a);
    hdr.record_count = views_table.size();
    a.patch(hdr_off, hdr);
    end_section(s, 2);
  }

  // [4] flat instance sets --------------------------------------------------
  {
    snapshot_section s = begin_section(sec_instances);
    const std::uint64_t hdr_off = a.put_zeros(sizeof(keyed_sec_header));
    odrc::flat_hash_builder inst_table;
    for (const db::cell_id top : tops) {
      for (const std::int32_t layer : domain) {
        const instance_set& set = snap.instances(top, static_cast<db::layer_t>(layer));
        inst_rec ir;
        ir.placed = a.put_array(set.placed.span());
        ir.occ = a.put_array(set.occ.span());
        const std::uint64_t rec_off = a.put(ir);
        inst_table.insert(pack_key(top, layer), rec_off);
        ++stats.instance_sets;
      }
    }
    keyed_sec_header hdr;
    hdr.table_off = inst_table.write(a);
    hdr.record_count = inst_table.size();
    a.patch(hdr_off, hdr);
    end_section(s, 3);
  }

  // [5] packed master edges -------------------------------------------------
  {
    snapshot_section s = begin_section(sec_packed);
    const std::uint64_t hdr_off = a.put_zeros(sizeof(keyed_sec_header));
    for (db::cell_id id = 0; id < lib.cell_count(); ++id) {
      for (const std::int32_t layer : domain) {
        const master_layer_view& v = snap.views().get(id, static_cast<db::layer_t>(layer));
        if (v.empty()) continue;
        const packed_master_edges& pm = snap.packed(id, static_cast<db::layer_t>(layer));
        pack_rec pr;
        pr.edges = a.put_array(pm.edges.span());
        pr.poly_offsets = a.put_array(pm.poly_offsets.span());
        pr.clockwise = a.put_array(pm.clockwise.span());
        const std::uint64_t rec_off = a.put(pr);
        pack_table.insert(pack_key(id, layer), rec_off);
        ++stats.packed_sets;
      }
    }
    keyed_sec_header hdr;
    hdr.table_off = pack_table.write(a);
    hdr.record_count = pack_table.size();
    a.patch(hdr_off, hdr);
    end_section(s, 4);
  }

  // Finalize: section hashes, table, header ---------------------------------
  for (snapshot_section& s : table) {
    s.hash = odrc::xxhash64(a.data() + s.offset, s.bytes);
  }
  for (std::uint32_t i = 0; i < section_total; ++i) {
    a.patch(table_off + i * sizeof(snapshot_section), table[i]);
  }
  file_header hdr;
  hdr.section_count = section_total;
  hdr.file_bytes = a.size();
  hdr.cell_count = lib.cell_count();
  hdr.layer_count = static_cast<std::uint32_t>(snap.index().layers().size());
  hdr.top_count = static_cast<std::uint32_t>(tops.size());
  hdr.table_off = table_off;
  hdr.table_hash = odrc::xxhash64(a.data() + table_off, section_total * sizeof(snapshot_section));
  hdr.user_unit = lib.user_unit;
  hdr.meter_unit = lib.meter_unit;
  a.patch(0, hdr);

  // Write via a temp file + rename so a concurrent boot never maps a
  // half-written blob (hot-swap builds while a server is live).
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("snapshot build: cannot open " + tmp);
  const std::size_t written = std::fwrite(a.data(), 1, a.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != a.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot build: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot build: cannot rename " + tmp + " -> " + path);
  }

  stats.file_bytes = a.size();
  stats.sections = section_total;
  return stats;
}

warm_stats warm_snapshot(layout_snapshot& snap) {
  warm_stats w;
  const db::library& lib = snap.lib();
  const std::vector<std::int32_t> domain = layer_domain(snap.index());
  for (db::cell_id id = 0; id < lib.cell_count(); ++id) {
    for (const std::int32_t layer : domain) {
      const master_layer_view& v = snap.views().get(id, static_cast<db::layer_t>(layer));
      ++w.views;
      if (v.empty()) continue;
      (void)snap.packed(id, static_cast<db::layer_t>(layer));
      ++w.packed_sets;
    }
  }
  for (const db::cell_id top : lib.top_cells()) {
    for (const std::int32_t layer : domain) {
      (void)snap.instances(top, static_cast<db::layer_t>(layer));
      ++w.instance_sets;
    }
  }
  return w;
}

// ---------------------------------------------------------------------------
// mapped_file
// ---------------------------------------------------------------------------

mapped_file::~mapped_file() {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
}

mapped_file::mapped_file(mapped_file&& o) noexcept : data_(o.data_), size_(o.size_) {
  o.data_ = nullptr;
  o.size_ = 0;
}

mapped_file& mapped_file::operator=(mapped_file&& o) noexcept {
  if (this == &o) return *this;
  if (data_ != nullptr) ::munmap(const_cast<unsigned char*>(data_), size_);
  data_ = o.data_;
  size_ = o.size_;
  o.data_ = nullptr;
  o.size_ = 0;
  return *this;
}

mapped_file mapped_file::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw snapshot_format_error("cannot open snapshot file: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    throw snapshot_format_error("cannot stat snapshot file: " + path);
  }
  void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (p == MAP_FAILED) throw snapshot_format_error("cannot mmap snapshot file: " + path);
  mapped_file m;
  m.data_ = static_cast<const unsigned char*>(p);
  m.size_ = static_cast<std::size_t>(st.st_size);
  return m;
}

// ---------------------------------------------------------------------------
// frozen_snapshot
// ---------------------------------------------------------------------------

namespace {

const file_header& header_of(const unsigned char* base) {
  return *reinterpret_cast<const file_header*>(base);
}

const snapshot_section* table_of(const unsigned char* base) {
  return reinterpret_cast<const snapshot_section*>(base + header_of(base).table_off);
}

}  // namespace

std::shared_ptr<const frozen_snapshot> frozen_snapshot::load(const std::string& path) {
  trace::span ts("snapshot", "snapshot_boot");
  auto fs = std::shared_ptr<frozen_snapshot>(new frozen_snapshot());
  fs->map_ = mapped_file::open(path);
  fs->validate_and_attach();
  trace::counter("snapshot", "mapped_bytes", static_cast<std::int64_t>(fs->map_.size()));
  trace::counter("snapshot", "sections_validated",
                 static_cast<std::int64_t>(fs->section_count()));
  return fs;
}

void frozen_snapshot::validate_and_attach() {
  const unsigned char* b = base();
  const std::size_t n = map_.size();
  if (n < sizeof(file_header)) throw snapshot_format_error("snapshot too small for header");
  const file_header& hdr = header_of(b);
  if (hdr.magic != snapshot_magic) throw snapshot_format_error("bad snapshot magic");
  if (hdr.version != snapshot_version) {
    throw snapshot_format_error("unsupported snapshot version " + std::to_string(hdr.version));
  }
  if (hdr.file_bytes != n) throw snapshot_format_error("snapshot size mismatch (truncated?)");
  if (hdr.section_count != section_total) {
    throw snapshot_format_error("unexpected section count " + std::to_string(hdr.section_count));
  }
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(hdr.section_count) * sizeof(snapshot_section);
  if (hdr.table_off > n || table_bytes > n - hdr.table_off) {
    throw snapshot_format_error("section table out of bounds");
  }
  if (odrc::xxhash64(b + hdr.table_off, table_bytes) != hdr.table_hash) {
    throw snapshot_format_error("section table checksum mismatch");
  }
  const snapshot_section* table = table_of(b);
  for (std::uint32_t i = 0; i < hdr.section_count; ++i) {
    const snapshot_section& s = table[i];
    if (s.offset > n || s.bytes > n - s.offset) {
      throw snapshot_format_error("section " + std::to_string(s.id) + " out of bounds");
    }
    if (odrc::xxhash64(b + s.offset, s.bytes) != s.hash) {
      throw snapshot_format_error("section " + std::to_string(s.id) + " checksum mismatch");
    }
    switch (s.id) {
      case sec_library: lib_off_ = s.offset; break;
      case sec_mbr: mbr_off_ = s.offset; break;
      case sec_views: views_off_ = s.offset; break;
      case sec_instances: inst_off_ = s.offset; break;
      case sec_packed: pack_off_ = s.offset; break;
      default: throw snapshot_format_error("unknown section id " + std::to_string(s.id));
    }
  }
  if (lib_off_ == 0 || mbr_off_ == 0 || views_off_ == 0 || inst_off_ == 0 || pack_off_ == 0) {
    throw snapshot_format_error("missing snapshot section");
  }
  const auto attach_table = [&](std::uint64_t sec_off) {
    keyed_sec_header h;
    std::memcpy(&h, b + sec_off, sizeof(h));
    if (h.table_off > n) throw snapshot_format_error("hash table out of bounds");
    return odrc::flat_hash_view(b, h.table_off);
  };
  views_idx_ = attach_table(views_off_);
  inst_idx_ = attach_table(inst_off_);
  pack_idx_ = attach_table(pack_off_);
}

std::uint32_t frozen_snapshot::section_count() const {
  return header_of(base()).section_count;
}

std::uint64_t frozen_snapshot::cell_count() const {
  return header_of(base()).cell_count;
}

db::library frozen_snapshot::make_library() const {
  const unsigned char* b = base();
  lib_sec_header hdr;
  std::memcpy(&hdr, b + lib_off_, sizeof(hdr));
  db::library lib(get_string(b, hdr.name));
  lib.user_unit = hdr.user_unit;
  lib.meter_unit = hdr.meter_unit;
  for (const cell_rec& cr : hdr.cells.get(b)) {
    const db::cell_id id = lib.add_cell(get_string(b, cr.name));
    db::cell& c = lib.at(id);
    for (const poly_rec& pr : cr.polys.get(b)) {
      const auto verts = pr.verts.get(b);
      db::polygon_elem p;
      p.layer = pr.layer;
      p.datatype = pr.datatype;
      p.poly = polygon(std::vector<point>(verts.begin(), verts.end()));
      p.name = get_string(b, pr.name);
      c.add_polygon(std::move(p));
    }
    for (const db::cell_ref& r : cr.refs.get(b)) c.add_ref(r);
    for (const db::cell_array& ar : cr.arrays.get(b)) c.add_array(ar);
    for (const text_rec& tr : cr.texts.get(b)) {
      db::text_elem t;
      t.layer = tr.layer;
      t.datatype = tr.datatype;
      t.position = tr.position;
      t.text = get_string(b, tr.text);
      c.add_text(std::move(t));
    }
  }
  return lib;
}

db::mbr_index frozen_snapshot::make_index(const db::library& lib) const {
  const unsigned char* b = base();
  mbr_sec_header hdr;
  std::memcpy(&hdr, b + mbr_off_, sizeof(hdr));
  if (lib.cell_count() != header_of(b).cell_count) {
    throw snapshot_format_error("library does not match snapshot (cell count)");
  }
  db::mbr_index::frozen_view fv;
  fv.layers = hdr.layers.get(b);
  fv.mbr = hdr.mbr.get(b);
  fv.own_mbr = hdr.own_mbr.get(b);
  fv.total_mbr = hdr.total_mbr.get(b);
  fv.inverted_data = hdr.inverted_data.get(b);
  fv.inverted_off = hdr.inverted_off.get(b);
  fv.children_data = hdr.children_data.get(b);
  fv.children_off = hdr.children_off.get(b);
  return {lib, fv};
}

bool frozen_snapshot::fill_view(db::cell_id cell, std::int32_t layer,
                                master_layer_view& out) const {
  std::uint64_t rec_off = 0;
  if (!views_idx_.find(pack_key(cell, layer), rec_off)) return false;
  const unsigned char* b = base();
  view_rec vr;
  std::memcpy(&vr, b + rec_off, sizeof(vr));
  out.poly_indices.adopt(vr.poly_indices.get(b));
  out.poly_mbrs.adopt(vr.poly_mbrs.get(b));
  out.mbr = vr.mbr;
  return true;
}

bool frozen_snapshot::fill_instances(db::cell_id top, std::int32_t layer,
                                     instance_set& out) const {
  std::uint64_t rec_off = 0;
  if (!inst_idx_.find(pack_key(top, layer), rec_off)) return false;
  const unsigned char* b = base();
  inst_rec ir;
  std::memcpy(&ir, b + rec_off, sizeof(ir));
  out.placed.adopt(ir.placed.get(b));
  out.occ.adopt(ir.occ.get(b));
  return true;
}

bool frozen_snapshot::fill_packed(db::cell_id master, std::int32_t layer,
                                  packed_master_edges& out) const {
  std::uint64_t rec_off = 0;
  if (!pack_idx_.find(pack_key(master, layer), rec_off)) return false;
  const unsigned char* b = base();
  pack_rec pr;
  std::memcpy(&pr, b + rec_off, sizeof(pr));
  out.edges.adopt(pr.edges.get(b));
  out.poly_offsets.adopt(pr.poly_offsets.get(b));
  out.clockwise.adopt(pr.clockwise.get(b));
  return true;
}

std::string frozen_snapshot::info_text() const {
  const unsigned char* b = base();
  const file_header& hdr = header_of(b);
  std::ostringstream os;
  os << "snapshot version " << hdr.version << "\n"
     << "file_bytes " << hdr.file_bytes << "\n"
     << "cells " << hdr.cell_count << "\n"
     << "layers " << hdr.layer_count << "\n"
     << "tops " << hdr.top_count << "\n"
     << "sections " << hdr.section_count << "\n";
  static const char* names[] = {"?", "library", "mbr_index", "views", "instances", "packed"};
  const snapshot_section* table = table_of(b);
  for (std::uint32_t i = 0; i < hdr.section_count; ++i) {
    const snapshot_section& s = table[i];
    const char* name = s.id <= 5 ? names[s.id] : "?";
    os << "section " << name << " offset " << s.offset << " bytes " << s.bytes << " hash "
       << std::hex << s.hash << std::dec << "\n";
  }
  return os.str();
}

}  // namespace odrc::engine
