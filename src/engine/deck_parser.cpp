#include "engine/deck_parser.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>

namespace odrc::rules {

namespace {

// key=value token map of one rule line; tracks which keys were consumed so
// unknown keys can be reported.
class kv_args {
 public:
  kv_args(std::size_t line) : line_(line) {}

  void put(const std::string& key, const std::string& value) {
    if (!map_.emplace(key, value).second) {
      throw deck_error("duplicate key '" + key + "'", line_);
    }
  }

  [[nodiscard]] bool has(const std::string& key) const { return map_.contains(key); }

  [[nodiscard]] std::string take_str(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) throw deck_error("missing key '" + key + "'", line_);
    std::string v = it->second;
    map_.erase(it);
    return v;
  }

  template <typename T>
  [[nodiscard]] T take_int(const std::string& key) {
    const std::string v = take_str(key);
    T out{};
    const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc{} || ptr != v.data() + v.size()) {
      throw deck_error("invalid integer '" + v + "' for key '" + key + "'", line_);
    }
    return out;
  }

  template <typename T>
  [[nodiscard]] T take_int_or(const std::string& key, T fallback) {
    return has(key) ? take_int<T>(key) : fallback;
  }

  void expect_empty() const {
    if (!map_.empty()) {
      throw deck_error("unknown key '" + map_.begin()->first + "'", line_);
    }
  }

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
  std::map<std::string, std::string> map_;
};

// Parse "500:24,1500:30" into extra spacing tiers.
void parse_prl(const std::string& spec, rule& r, std::size_t line) {
  std::stringstream ss(spec);
  std::string tier;
  while (std::getline(ss, tier, ',')) {
    const std::size_t colon = tier.find(':');
    if (colon == std::string::npos) {
      throw deck_error("prl tier '" + tier + "' must be <projection>:<distance>", line);
    }
    coord_t proj = 0, dist = 0;
    const std::string ps = tier.substr(0, colon), ds = tier.substr(colon + 1);
    auto rc1 = std::from_chars(ps.data(), ps.data() + ps.size(), proj);
    auto rc2 = std::from_chars(ds.data(), ds.data() + ds.size(), dist);
    if (rc1.ec != std::errc{} || rc2.ec != std::errc{}) {
      throw deck_error("invalid prl tier '" + tier + "'", line);
    }
    if (r.spacing.count >= r.spacing.tiers.size()) {
      throw deck_error("too many prl tiers (max " + std::to_string(r.spacing.tiers.size() - 1) +
                           " beyond the base)",
                       line);
    }
    r.spacing.add_tier(proj, dist);
  }
  r.distance = r.spacing.max_distance();
}

rule parse_rule(const std::string& name, const std::string& kind, kv_args& args) {
  const std::size_t line = args.line();
  rule r;
  r.name = name;
  if (kind == "width") {
    r = layer(args.take_int<db::layer_t>("layer")).width()
            .greater_than(args.take_int<coord_t>("min"));
  } else if (kind == "spacing") {
    r = layer(args.take_int<db::layer_t>("layer")).spacing()
            .greater_than(args.take_int<coord_t>("min"));
    if (args.has("prl")) parse_prl(args.take_str("prl"), r, line);
  } else if (kind == "enclosure") {
    r = layer(args.take_int<db::layer_t>("inner"))
            .enclosed_by(args.take_int<db::layer_t>("outer"))
            .greater_than(args.take_int<coord_t>("min"));
  } else if (kind == "area") {
    r = layer(args.take_int<db::layer_t>("layer")).area()
            .greater_than(args.take_int<area_t>("min"));
  } else if (kind == "rectilinear") {
    const db::layer_t l = args.take_int_or<db::layer_t>("layer", any_layer);
    r = (l == any_layer ? polygons() : layer(l).polygons()).is_rectilinear();
  } else if (kind == "overlap") {
    r = layer(args.take_int<db::layer_t>("layer"))
            .overlap_with(args.take_int<db::layer_t>("with"))
            .area_at_least(args.take_int<area_t>("min_area"));
  } else if (kind == "notcut") {
    r = layer(args.take_int<db::layer_t>("layer"))
            .not_cut_by(args.take_int<db::layer_t>("with"))
            .area_at_least(args.take_int<area_t>("min_area"));
  } else {
    throw deck_error("unknown rule kind '" + kind + "'", line);
  }
  args.expect_empty();
  r.name = name;
  return r;
}

}  // namespace

std::vector<rule> parse_deck(std::istream& in) {
  std::vector<rule> deck;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments and whitespace.
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::stringstream ss(raw);
    std::string keyword;
    if (!(ss >> keyword)) continue;  // blank line
    if (keyword != "rule") throw deck_error("expected 'rule', got '" + keyword + "'", line_no);
    std::string name, kind;
    if (!(ss >> name >> kind)) throw deck_error("rule needs a name and a kind", line_no);
    kv_args args(line_no);
    std::string token;
    while (ss >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        throw deck_error("expected key=value, got '" + token + "'", line_no);
      }
      args.put(token.substr(0, eq), token.substr(eq + 1));
    }
    deck.push_back(parse_rule(name, kind, args));
  }
  return deck;
}

std::vector<rule> parse_deck(const std::string& text) {
  std::istringstream ss(text);
  return parse_deck(ss);
}

std::vector<rule> parse_deck_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open rule deck '" + path + "'");
  return parse_deck(f);
}

}  // namespace odrc::rules
