// Task pruning from the hierarchy tree (paper Section IV-C).
//
// Two memoization tables realize the paper's check-reuse strategy:
//
//  - `intra_memo` caches intra-cell results per master: once a master's
//    polygons have been checked (width, area, shape, intra-cell spacing),
//    every further instantiation reuses the result, because the transforms
//    OpenDRC admits (translation, 90-degree rotation, reflection) are
//    isometries that "preserve the target properties of the check".
//
//  - `pair_memo` caches inter-instance results keyed by (master A, master B,
//    relative placement of B in A's frame). The paper reuses a pair result
//    when both instances share a parent cell — the relative-placement key is
//    the general form of that condition: two pairs with equal keys have
//    identical relative geometry wherever they occur.
//
// Checks are also *eliminated* (never run) when the rule-distance-inflated
// MBRs of the two objects are disjoint, and duplicate (b, a) checks are
// skipped by id ordering; both implemented in the engine drivers and counted
// here.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "checks/violation.hpp"
#include "db/layout.hpp"
#include "infra/geometry.hpp"

namespace odrc::engine {

struct prune_stats {
  std::uint64_t intra_computed = 0;   ///< masters actually checked
  std::uint64_t intra_reused = 0;     ///< instance-level reuses
  std::uint64_t pairs_computed = 0;   ///< distinct relative placements checked
  std::uint64_t pairs_reused = 0;     ///< pair-level reuses
  std::uint64_t pairs_pruned_mbr = 0; ///< eliminated by disjoint inflated MBRs

  prune_stats& operator+=(const prune_stats& o) {
    intra_computed += o.intra_computed;
    intra_reused += o.intra_reused;
    pairs_computed += o.pairs_computed;
    pairs_reused += o.pairs_reused;
    pairs_pruned_mbr += o.pairs_pruned_mbr;
    return *this;
  }
};

/// Transform a violation's geometry into another frame.
[[nodiscard]] inline checks::violation transformed(const checks::violation& v,
                                                   const transform& t) {
  checks::violation out = v;
  out.e1 = {t.apply(v.e1.from), t.apply(v.e1.to)};
  out.e2 = {t.apply(v.e2.from), t.apply(v.e2.to)};
  return out;
}

/// Per-master memo of intra-cell check results (violations in the master's
/// own frame).
class intra_memo {
 public:
  [[nodiscard]] const std::vector<checks::violation>* find(db::cell_id id) const {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }

  const std::vector<checks::violation>& store(db::cell_id id,
                                              std::vector<checks::violation> vs) {
    return map_[id] = std::move(vs);
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<db::cell_id, std::vector<checks::violation>> map_;
};

/// Key of an inter-instance pair check: the two masters plus the placement
/// of B expressed in A's coordinate frame.
struct pair_key {
  db::cell_id a = db::invalid_cell;
  db::cell_id b = db::invalid_cell;
  transform rel;

  friend bool operator==(const pair_key&, const pair_key&) = default;
};

struct pair_key_hash {
  std::size_t operator()(const pair_key& k) const {
    // FNV-1a over the packed fields.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.a);
    mix(k.b);
    mix(static_cast<std::uint32_t>(k.rel.offset.x));
    mix(static_cast<std::uint32_t>(k.rel.offset.y));
    mix((static_cast<std::uint64_t>(k.rel.rotation) << 2) |
        (static_cast<std::uint64_t>(k.rel.reflect_x) << 1));
    mix(static_cast<std::uint32_t>(k.rel.mag));
    return static_cast<std::size_t>(h);
  }
};

/// Result of one inter-instance pair check, in A's frame. For enclosure
/// pairs the containment flags record, per inner polygon of A (resp. B),
/// whether *this* outer instance contains it; the engine ORs the flags
/// across all pairs before reporting uncontained shapes.
struct pair_result {
  std::vector<checks::violation> local;
  std::vector<std::uint8_t> a_contained;
  std::vector<std::uint8_t> b_contained;
};

class pair_memo {
 public:
  [[nodiscard]] const pair_result* find(const pair_key& k) const {
    auto it = map_.find(k);
    return it == map_.end() ? nullptr : &it->second;
  }

  const pair_result& store(const pair_key& k, pair_result r) {
    return map_[k] = std::move(r);
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<pair_key, pair_result, pair_key_hash> map_;
};

}  // namespace odrc::engine
