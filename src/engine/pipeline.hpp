// The generic check pipeline driver (paper Sections IV-C/D/E, V-C).
//
// Every distance rule executes the same way: enumerate the placed instances
// carrying the rule's layer(s), partition their MBRs into adaptive rows and
// clips, enumerate candidate pairs inside each clip, and evaluate an edge
// predicate per candidate. This module owns that machinery ONCE; the engine's
// run_* entry points compile their rule into an exec_plan (plan.hpp) and hand
// it here.
//
// The driver is written against plan *groups* rather than single plans:
// run_pair_group() executes every member plan of one plan_group over a single
// instance enumeration, a single row partition, a single candidate sweep and
// (in parallel mode) a single packed-edge upload per row — the deck-batching
// amortization. A single rule is just a group with one member.
//
// Reports come back split (group_report): the `shared` report carries the
// phases paid once per group (partition / sweepline / pack / device) plus the
// partition shape and device counters; each `per_rule` report carries that
// plan's violations, edge_check time, predicate counters and prune counters.
// The split is what makes per-rule attribution sound — merging a group's
// reports never double-counts the shared phases because they exist in exactly
// one report.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "db/mbr_index.hpp"
#include "device/device.hpp"
#include "engine/engine.hpp"
#include "engine/plan.hpp"
#include "engine/snapshot.hpp"

namespace odrc::engine {

// ---------------------------------------------------------------------------
// Check objects
// ---------------------------------------------------------------------------

/// Sentinel poly_index: the object is a whole placed cell.
inline constexpr std::uint32_t whole_cell = 0xFFFFFFFFu;

/// A check object: either a whole placed cell (poly_index == whole_cell), or
/// one individual polygon of a placed cell. Masters instantiated exactly once
/// with many polygons (typically the top cell holding the routing) are split
/// into per-polygon objects so the adaptive partition operates on wires, not
/// on one giant pseudo-cell; there is no reuse to lose since the master
/// occurs once.
struct inst {
  db::cell_id master = db::invalid_cell;
  std::uint32_t poly_index = whole_cell;  ///< index into the layer view's list
  transform t;
  rect mbr;  ///< transformed layer MBR (of the cell or the single polygon)

  [[nodiscard]] bool split() const { return poly_index != whole_cell; }
};

/// Threshold above which a single-use master is split into polygon objects.
inline constexpr std::size_t split_poly_threshold = 8;

/// Enumerate the check objects of one top cell on one layer, pruned to the
/// `inflate`-inflated window when one is given (region-of-interest checking).
/// Uses the snapshot's memoized instance lists and layer views — repeated
/// calls for the same (top, layer) across rule groups walk the hierarchy once.
[[nodiscard]] std::vector<inst> collect_instances(layout_snapshot& snap, db::cell_id top,
                                                  db::layer_t layer,
                                                  const std::optional<rect>& window = std::nullopt,
                                                  coord_t inflate = 0);

// ---------------------------------------------------------------------------
// Partition + candidate enumeration
// ---------------------------------------------------------------------------

/// Adaptive row partition of the object MBRs (or the one-row ablation
/// fallback); records the "partition" phase and the partition shape in
/// `report`.
[[nodiscard]] partition::partition_result partition_instances(const engine_config& cfg,
                                                              std::span<const rect> mbrs,
                                                              coord_t distance,
                                                              check_report& report);

/// Sound candidate inflation: a violating pair's MBR gap is strictly below
/// the rule distance, so inflating BOTH sides by ceil(d/2) already makes the
/// MBRs overlap. Using d here would double the candidate halo and enumerate
/// pairs the partition correctly proves independent.
[[nodiscard]] constexpr coord_t half_distance(coord_t d) {
  return static_cast<coord_t>((d + 1) / 2);
}

/// Candidate pair enumeration inside one clip: sweepline (paper default),
/// packed R-tree, or quadtree, per engine_config::candidates.
void enumerate_overlap_pairs(const engine_config& cfg, std::span<const rect> mbrs,
                             coord_t inflate, sweep::sweep_stats& stats,
                             const std::function<void(std::uint32_t, std::uint32_t)>& report);

// ---------------------------------------------------------------------------
// Object geometry
// ---------------------------------------------------------------------------

/// A master's layer polygons transformed by `t`.
[[nodiscard]] poly_set transformed_polys(const db::cell& c, const master_layer_view& v,
                                         const transform& t);

/// Polygons of a check object in the frame `extra ∘ in.t` (pass the identity
/// frame for top coordinates).
[[nodiscard]] poly_set polys_of(const db::library& lib, view_cache& views, const inst& in,
                                db::layer_t layer, const transform& extra);

// ---------------------------------------------------------------------------
// Device streams
// ---------------------------------------------------------------------------

/// Lazily-created device streams, one per row-pipeline slot (paper V-C:
/// "OpenDRC creates CUDA stream objects that are responsible for
/// asynchronous operations").
class stream_pool {
 public:
  device::stream& get(std::size_t slot = 0) {
    while (streams_.size() <= slot) {
      streams_.push_back(std::make_unique<device::stream>(device::context::instance()));
    }
    return *streams_[slot];
  }

 private:
  std::vector<std::unique_ptr<device::stream>> streams_;
};

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Result of running one plan group: the shared machinery's report plus one
/// report per member plan (parallel to plan_group::members).
struct group_report {
  check_report shared;
  std::vector<check_report> per_rule;

  /// Collapse into a single report (single-rule entry points). Shared phases
  /// appear once; per-rule phases and counters sum.
  [[nodiscard]] check_report merged() &&;
};

/// Run an intra-class plan (width / area / rectilinear / custom): per-master
/// checks, memoized across instances, device width kernel in parallel mode.
[[nodiscard]] check_report run_intra_plan(const engine_config& cfg, stream_pool& streams,
                                          layout_snapshot& snap, const exec_plan& plan,
                                          const std::optional<rect>& window = std::nullopt);

/// Run every member plan of `g` over one shared pipeline pass: one instance
/// enumeration, one partition, one candidate sweep per clip — and in parallel
/// mode one packed-edge upload per row with all member predicates evaluated
/// by a single multi-config kernel (sweep::async_multi_check). In parallel
/// mode rows are packed ahead on thread_pool::global() (up to
/// `cfg.pipeline_depth` rows in flight) while earlier rows run on device
/// streams.
[[nodiscard]] group_report run_pair_group(const engine_config& cfg, stream_pool& streams,
                                          layout_snapshot& snap,
                                          std::span<const exec_plan> plans, const plan_group& g,
                                          const std::optional<rect>& window = std::nullopt);

}  // namespace odrc::engine
