// Frozen snapshot store (ROADMAP item 2, DESIGN.md §9).
//
// Serializes everything a warm `layout_snapshot` holds into one relocatable,
// versioned, checksummed blob — the `.snap` file — so a later process boots
// by mmap-ing it instead of re-parsing GDSII and re-walking the hierarchy:
//
//   file_header                 magic, version, counts, section table hash
//   section table               (id, offset, bytes, xxhash64) per section
//   [1] library                 serialized cells (the only copied section:
//                               the mutable db::library cannot alias a
//                               read-only mapping, but deserializing it is
//                               far cheaper than parsing GDSII)
//   [2] mbr_index node arrays   adopted zero-copy (storage_span views)
//   [3] master layer views      flat hash (cell,layer) -> record + arrays
//   [4] flat instance sets      flat hash (top,layer)  -> record + arrays
//   [5] packed master edges     flat hash (cell,layer) -> record + arrays
//
// Every offset inside the blob is file-absolute, so the mapping needs zero
// fix-up wherever it lands. Load-time validation is O(sections): magic,
// version, table bounds, then one xxhash64 pass per section. Hash keys pack
// (cell_id << 32) | u32(layer) — injective at u32 cell x i32 layer widths.
//
// Hot-swap: sessions hold the mapping via shared_ptr<const frozen_snapshot>;
// `reload` flips the pointer between checks and the old mapping unmaps when
// the last in-flight reference drains (frozen_snapshot destructor).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "db/layout.hpp"
#include "db/mbr_index.hpp"
#include "engine/snapshot.hpp"
#include "infra/arena.hpp"

namespace odrc::engine {

/// A malformed, truncated, corrupted, or version-mismatched .snap file.
class snapshot_format_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint64_t snapshot_magic = 0x50414E5343524F44ull;  // "ODRCSNAP" LE
inline constexpr std::uint32_t snapshot_version = 1;

/// Per-section directory entry (on disk).
struct snapshot_section {
  std::uint32_t id = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hash = 0;  ///< xxhash64 of the section's bytes
};

/// Build stats returned by build_snapshot_file (and shown by the CLI).
struct snapshot_build_stats {
  std::uint64_t file_bytes = 0;
  std::uint32_t sections = 0;
  std::uint64_t cells = 0;
  std::uint64_t views = 0;
  std::uint64_t instance_sets = 0;
  std::uint64_t packed_sets = 0;
};

/// Walk every (cell, layer) view / packed record and every (top, layer)
/// instance set of `lib` — the exact key domain the engine can request — and
/// write the frozen blob to `path`. Throws std::runtime_error on I/O errors.
snapshot_build_stats build_snapshot_file(const db::library& lib, const std::string& path);

/// Force-build every structure of `snap` (same key domain as the builder).
/// The "cold parse+build" bench leg and tests use it to pay the full build
/// cost up front.
struct warm_stats {
  std::uint64_t views = 0;
  std::uint64_t instance_sets = 0;
  std::uint64_t packed_sets = 0;
};
warm_stats warm_snapshot(layout_snapshot& snap);

/// Read-only mmap of a file. Move-only; unmaps on destruction.
class mapped_file {
 public:
  mapped_file() = default;
  ~mapped_file();
  mapped_file(mapped_file&& o) noexcept;
  mapped_file& operator=(mapped_file&& o) noexcept;
  mapped_file(const mapped_file&) = delete;
  mapped_file& operator=(const mapped_file&) = delete;

  /// Map `path` read-only. Throws snapshot_format_error when the file
  /// cannot be opened or mapped.
  static mapped_file open(const std::string& path);

  [[nodiscard]] const unsigned char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

/// One mapped, validated .snap file. All fill_* lookups construct span views
/// into the mapping (zero data copy); make_library() deserializes the
/// library section into an owned, mutable db::library (the boot-time
/// replacement for the GDSII parse).
class frozen_snapshot final : public frozen_backing {
 public:
  /// Map + validate `path`. Throws snapshot_format_error on any validation
  /// failure (bad magic/version, out-of-bounds section, checksum mismatch).
  /// Emits the "snapshot":"snapshot_boot" trace span with mapped-bytes and
  /// sections-validated counters.
  static std::shared_ptr<const frozen_snapshot> load(const std::string& path);

  /// Owned, mutable library deserialized from the library section.
  [[nodiscard]] db::library make_library() const;

  // frozen_backing
  [[nodiscard]] bool fill_view(db::cell_id cell, std::int32_t layer,
                               master_layer_view& out) const override;
  [[nodiscard]] bool fill_instances(db::cell_id top, std::int32_t layer,
                                    instance_set& out) const override;
  [[nodiscard]] bool fill_packed(db::cell_id master, std::int32_t layer,
                                 packed_master_edges& out) const override;
  [[nodiscard]] db::mbr_index make_index(const db::library& lib) const override;

  [[nodiscard]] std::uint64_t mapped_bytes() const { return map_.size(); }
  [[nodiscard]] std::uint32_t section_count() const;
  [[nodiscard]] std::uint64_t cell_count() const;

  /// Human-readable section directory (the `odrc snapshot info` output).
  [[nodiscard]] std::string info_text() const;

 private:
  frozen_snapshot() = default;
  void validate_and_attach();  ///< throws snapshot_format_error

  [[nodiscard]] const unsigned char* base() const { return map_.data(); }

  mapped_file map_;
  // Section payload offsets, resolved once at load.
  std::uint64_t lib_off_ = 0;
  std::uint64_t mbr_off_ = 0;
  std::uint64_t views_off_ = 0;
  std::uint64_t inst_off_ = 0;
  std::uint64_t pack_off_ = 0;
  odrc::flat_hash_view views_idx_;
  odrc::flat_hash_view inst_idx_;
  odrc::flat_hash_view pack_idx_;
};

}  // namespace odrc::engine
