#include "engine/shard.hpp"

#include <functional>
#include <optional>

#include "partition/row_partition.hpp"

namespace odrc::engine {

namespace {

rect whole_plane() {
  return {shard_clamp_min, shard_clamp_min, shard_clamp_max, shard_clamp_max};
}

/// Local-frame extent of a cell including everything it references,
/// memoized across the DAG. Arrays join their four corner instances only:
/// the per-instance linear part is shared, so the join of the corners covers
/// the whole grid.
class extent_cache {
 public:
  explicit extent_cache(const db::library& lib) : lib_(lib), memo_(lib.cell_count()) {}

  rect of(db::cell_id id) {
    if (memo_[id]) return *memo_[id];
    rect ext;  // default-empty
    const db::cell& c = lib_.at(id);
    for (const db::polygon_elem& p : c.polygons()) ext = ext.join(p.poly.mbr());
    for (const db::cell_ref& r : c.refs()) ext = ext.join(r.trans.apply(of(r.target)));
    for (const db::cell_array& a : c.arrays()) {
      const rect child = of(a.target);
      if (child.empty()) continue;
      const std::uint16_t cl = static_cast<std::uint16_t>(a.cols - 1);
      const std::uint16_t rl = static_cast<std::uint16_t>(a.rows - 1);
      rect arr = a.instance(0, 0).apply(child);
      arr = arr.join(a.instance(cl, 0).apply(child));
      arr = arr.join(a.instance(0, rl).apply(child));
      arr = arr.join(a.instance(cl, rl).apply(child));
      ext = ext.join(arr);
    }
    memo_[id] = ext;
    return ext;
  }

 private:
  const db::library& lib_;
  std::vector<std::optional<rect>> memo_;
};

}  // namespace

std::vector<rect> plan_shards(std::span<const rect> mbrs, std::size_t n) {
  if (n <= 1 || mbrs.empty()) return {whole_plane()};

  const partition::partition_result part = partition::partition_rows(mbrs, /*distance=*/0);
  const std::vector<partition::row>& rows = part.rows;
  if (rows.size() <= 1) return {whole_plane()};

  std::size_t total = 0;
  for (const partition::row& r : rows) total += r.member_count();

  // Greedy contiguous grouping: cut after a row once the group holds its
  // fair share of what remains, or when the rows after it are only just
  // enough to give every remaining group one row. The last row is never a
  // cut — at the final row acc == remaining so the fair-share test always
  // fires, and a cut there would read rows[cut + 1] out of bounds and emit
  // an empty final band. Guarantees at most n groups and at least one row
  // per group.
  std::vector<std::size_t> cuts;  // index of the last row of each group but the final one
  std::size_t groups_left = std::min(n, rows.size());
  std::size_t remaining = total;
  std::size_t acc = 0;
  for (std::size_t i = 0; i + 1 < rows.size() && groups_left > 1; ++i) {
    acc += rows[i].member_count();
    const std::size_t rows_left = rows.size() - i - 1;
    if (acc * groups_left >= remaining || rows_left < groups_left) {
      cuts.push_back(i);
      remaining -= acc;
      acc = 0;
      --groups_left;
    }
  }

  std::vector<rect> bands;
  bands.reserve(cuts.size() + 1);
  coord_t y_lo = shard_clamp_min;
  for (const std::size_t cut : cuts) {
    // Boundary in the dead zone between the cut row and the next: no object
    // row straddles it, so seam straddlers are limited to violations whose
    // two edges sit in different rows (closer than the rule distance —
    // exactly the spacing pairs the halo reconciliation dedups).
    const coord_t hi = rows[cut].y_range.hi;
    const coord_t lo_next = rows[cut + 1].y_range.lo;
    const coord_t boundary = static_cast<coord_t>(hi + (lo_next - hi) / 2);
    bands.push_back({shard_clamp_min, y_lo, shard_clamp_max, boundary});
    y_lo = static_cast<coord_t>(boundary + 1);
  }
  bands.push_back({shard_clamp_min, y_lo, shard_clamp_max, shard_clamp_max});
  return bands;
}

std::vector<rect> plan_shards(const db::library& lib, std::size_t n) {
  extent_cache cache(lib);
  std::vector<rect> mbrs;
  for (const db::cell_id top : lib.top_cells()) {
    const db::cell& c = lib.at(top);
    for (const db::polygon_elem& p : c.polygons()) mbrs.push_back(p.poly.mbr());
    for (const db::cell_ref& r : c.refs()) {
      const rect e = cache.of(r.target);
      if (!e.empty()) mbrs.push_back(r.trans.apply(e));
    }
    for (const db::cell_array& a : c.arrays()) {
      const rect child = cache.of(a.target);
      if (child.empty()) continue;
      // One MBR per array instance keeps the balance honest for big AREFs
      // without flattening geometry; cap the contribution so a degenerate
      // million-instance array cannot blow up planning.
      const std::uint32_t cap = 4096;
      if (a.count() <= cap) {
        for (std::uint16_t r = 0; r < a.rows; ++r) {
          for (std::uint16_t cc = 0; cc < a.cols; ++cc) {
            mbrs.push_back(a.instance(cc, r).apply(child));
          }
        }
      } else {
        const std::uint16_t cl = static_cast<std::uint16_t>(a.cols - 1);
        const std::uint16_t rl = static_cast<std::uint16_t>(a.rows - 1);
        rect arr = a.instance(0, 0).apply(child);
        arr = arr.join(a.instance(cl, 0).apply(child));
        arr = arr.join(a.instance(0, rl).apply(child));
        arr = arr.join(a.instance(cl, rl).apply(child));
        mbrs.push_back(arr);
      }
    }
  }
  return plan_shards(mbrs, n);
}

}  // namespace odrc::engine
