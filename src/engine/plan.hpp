// Rule-plan compilation (the layer between the rule DSL and the pipeline
// driver).
//
// A `rules::rule` is declarative data; an `exec_plan` is the same rule
// compiled into what the generic check pipeline needs to execute it:
//
//   - which layers contribute check objects (one layer, or an ordered
//     inner/outer pair);
//   - the interaction distance (`inflate`) that makes the adaptive row
//     partition and the candidate MBR halo sound for this rule;
//   - the per-candidate-pair edge predicate (evaluated host-side through
//     check_pair(), device-side through device_config());
//   - whether the rule has an intra-object component (spacing notches) and
//     whether it needs the containment post-pass (enclosure).
//
// Plans exist so the pipeline driver (pipeline.hpp) can be written once:
// every distance rule is "enumerate objects, partition, sweep candidates,
// evaluate predicates", and a deck of rules over the same layers can share
// the enumerate/partition/sweep work by evaluating several plans' predicates
// per candidate (group_pair_plans below — the deck-batching key).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "checks/poly_checks.hpp"
#include "checks/violation.hpp"
#include "db/layout.hpp"
#include "engine/rule.hpp"
#include "infra/geometry.hpp"
#include "sweep/device_sweep.hpp"

namespace odrc::engine {

/// Which pipeline a compiled rule runs through.
enum class plan_class : std::uint8_t {
  intra,   ///< width / area / rectilinear / custom — per-master, memoized
  pair,    ///< spacing / enclosure — partition + candidate sweep + edge pairs
  global,  ///< derived-layer booleans, coloring — whole-layer algorithms
};

/// The polygons of one check object, pre-transformed into a common frame.
struct poly_set {
  std::vector<polygon> polys;
  std::vector<rect> mbrs;
};

/// A rule compiled for execution by the pipeline driver.
struct exec_plan {
  rules::rule rule;
  plan_class cls = plan_class::intra;
  db::layer_t layer1 = rules::any_layer;  ///< primary / inner layer
  db::layer_t layer2 = rules::any_layer;  ///< outer layer (two_layer plans)
  bool two_layer = false;          ///< objects come from two layers (enclosure)
  coord_t inflate = 0;             ///< interaction distance (partition + halo)
  bool intra_object = false;       ///< has an intra-object part (spacing notches)
  bool track_containment = false;  ///< needs the enclosure containment post-pass
  sweep::pair_check device_kind = sweep::pair_check::spacing;

  /// Device kernel configuration for this plan's edge predicate.
  [[nodiscard]] sweep::device_check_config device_config(sweep::sweep_axis axis) const;

  /// Intra-object predicate: edge pairs within one polygon (spacing
  /// notches). No-op unless `intra_object`.
  void check_single(const polygon& p, std::vector<checks::violation>& out,
                    checks::check_stats& cs) const;

  /// Pair predicate between two polygons in a common frame, with this plan's
  /// own MBR prefilter (`am`/`bm` are the polygons' MBRs in that frame). For
  /// containment-tracking plans, `*a_contained` is set when `b` fully
  /// contains `a`. For two_layer plans `a` must come from layer1 and `b`
  /// from layer2.
  void check_pair(const polygon& a, const rect& am, const polygon& b, const rect& bm,
                  std::vector<checks::violation>& out, std::uint8_t* a_contained,
                  checks::check_stats& cs) const;
};

/// Compile one rule. Every rule kind compiles; `cls` tells the caller which
/// driver to hand the plan to.
[[nodiscard]] exec_plan compile_plan(const rules::rule& r);

/// A batch of pair plans sharing the same check-object space: identical
/// (layer1, layer2, two_layer). The pipeline enumerates instances, computes
/// the row partition, and (in parallel mode) packs row edges ONCE per group
/// with the group-maximal interaction distance, then evaluates every member
/// plan's predicate per candidate — one upload, N rules.
struct plan_group {
  db::layer_t layer1 = rules::any_layer;
  db::layer_t layer2 = rules::any_layer;
  bool two_layer = false;
  coord_t inflate = 0;                ///< max over member plans (sound for all)
  std::vector<std::size_t> members;   ///< indices into the compiled plan list
};

/// Group the pair-class plans of a compiled deck (plans of other classes are
/// ignored). Groups preserve first-appearance deck order; members keep deck
/// order within a group.
[[nodiscard]] std::vector<plan_group> group_pair_plans(std::span<const exec_plan> plans);

}  // namespace odrc::engine
