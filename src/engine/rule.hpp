// Rule deck and the chaining rule-definition DSL (paper Section III-B,
// Listing 1).
//
//   odrc::drc_engine e;
//   e.add_rules({
//       odrc::rules::polygons().is_rectilinear(),
//       odrc::rules::layer(19).width().greater_than(18),
//       odrc::rules::layer(19).spacing().greater_than(18),
//       odrc::rules::layer(21).enclosed_by(19).greater_than(9),
//       odrc::rules::layer(19).area().greater_than(1000),
//       odrc::rules::layer(20).polygons().ensures(
//           [](const odrc::db::polygon_elem& p) { return !p.name.empty(); }),
//   });
//   auto report = e.check(db);
//
// Selectors (layer(), width(), spacing(), enclosed_by(), area(), polygons())
// locate the target objects; predicates (greater_than(), is_rectilinear(),
// ensures()) state the condition. Each chain terminates in a `rule` value;
// rules are plain data the engine dispatches on.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "checks/edge_checks.hpp"
#include "checks/violation.hpp"
#include "db/layout.hpp"
#include "infra/geometry.hpp"

namespace odrc::rules {

/// All-layers sentinel for shape rules.
inline constexpr db::layer_t any_layer = -1;

/// A fully specified design rule.
struct rule {
  checks::rule_kind kind = checks::rule_kind::width;
  db::layer_t layer1 = any_layer;
  db::layer_t layer2 = any_layer;  ///< outer layer for enclosure rules
  coord_t distance = 0;            ///< min width / spacing / enclosure (dbu)
  area_t min_area = 0;             ///< min area (dbu^2)
  std::function<bool(const db::polygon_elem&)> predicate;  ///< custom rules
  std::string name;                ///< report label, e.g. "M1.S.1"
  checks::spacing_table spacing{}; ///< conditional spacing tiers (spacing rules)

  /// Attach a report label (fluent).
  rule named(std::string n) && {
    name = std::move(n);
    return std::move(*this);
  }

  /// Add a conditional spacing tier (paper: "different spacing constraints
  /// given different projection lengths"): facing pairs whose parallel run
  /// is at least `projection` must keep `dist` instead of the base spacing.
  rule when_projection_over(coord_t projection, coord_t dist) && {
    spacing.add_tier(projection, dist);
    distance = spacing.max_distance();
    return std::move(*this);
  }
};

namespace detail {

class width_sel {
 public:
  explicit width_sel(db::layer_t l) : layer_(l) {}
  /// Minimum width: every interior span must exceed `w` dbu.
  [[nodiscard]] rule greater_than(coord_t w) const {
    return {checks::rule_kind::width, layer_, layer_, w, 0, {}, {}};
  }

 private:
  db::layer_t layer_;
};

class spacing_sel {
 public:
  explicit spacing_sel(db::layer_t l) : layer_(l) {}
  /// Minimum spacing: every exterior gap must exceed `s` dbu. Chain
  /// `.when_projection_over(p, s2)` for conditional (PRL) tiers.
  [[nodiscard]] rule greater_than(coord_t s) const {
    return {checks::rule_kind::spacing, layer_, layer_, s,
            0,  {},     {},    checks::spacing_table::simple(s)};
  }

 private:
  db::layer_t layer_;
};

class enclosure_sel {
 public:
  enclosure_sel(db::layer_t inner, db::layer_t outer) : inner_(inner), outer_(outer) {}
  /// Minimum enclosure margin of the inner layer by the outer layer.
  [[nodiscard]] rule greater_than(coord_t e) const {
    return {checks::rule_kind::enclosure, inner_, outer_, e, 0, {}, {}};
  }

 private:
  db::layer_t inner_;
  db::layer_t outer_;
};

class area_sel {
 public:
  explicit area_sel(db::layer_t l) : layer_(l) {}
  /// Minimum polygon area in dbu^2.
  [[nodiscard]] rule greater_than(area_t a) const {
    return {checks::rule_kind::area, layer_, layer_, 0, a, {}, {}};
  }

 private:
  db::layer_t layer_;
};

class derived_area_sel {
 public:
  derived_area_sel(checks::rule_kind kind, db::layer_t a, db::layer_t b)
      : kind_(kind), a_(a), b_(b) {}

  /// Every connected region of the derived layer must have at least this
  /// area (dbu^2); smaller fragments are violations. The paper's intro names
  /// both forms: "constraints on the NOT CUT result between layers" and
  /// "minimum overlapping area constraints".
  [[nodiscard]] rule area_at_least(area_t min_area) const {
    return {kind_, a_, b_, 0, min_area, {}, {}};
  }

 private:
  checks::rule_kind kind_;
  db::layer_t a_;
  db::layer_t b_;
};

class polygons_sel {
 public:
  explicit polygons_sel(db::layer_t l) : layer_(l) {}

  /// All selected polygons must be axis-aligned.
  [[nodiscard]] rule is_rectilinear() const {
    return {checks::rule_kind::rectilinear, layer_, layer_, 0, 0, {}, {}};
  }

  /// User-defined predicate over each selected polygon element; a polygon
  /// for which `pred` returns false is a violation.
  [[nodiscard]] rule ensures(std::function<bool(const db::polygon_elem&)> pred) const {
    return {checks::rule_kind::custom, layer_, layer_, 0, 0, std::move(pred), {}};
  }

 private:
  db::layer_t layer_;
};

}  // namespace detail

/// Layer selector: the entry point of most rule chains.
class layer_sel {
 public:
  explicit layer_sel(db::layer_t l) : layer_(l) {}

  [[nodiscard]] detail::width_sel width() const { return detail::width_sel{layer_}; }
  [[nodiscard]] detail::spacing_sel spacing() const { return detail::spacing_sel{layer_}; }
  [[nodiscard]] detail::area_sel area() const { return detail::area_sel{layer_}; }
  [[nodiscard]] detail::polygons_sel polygons() const { return detail::polygons_sel{layer_}; }

  /// Enclosure of this (inner) layer by `outer`, e.g.
  /// layer(V1).enclosed_by(M1).greater_than(9).
  [[nodiscard]] detail::enclosure_sel enclosed_by(db::layer_t outer) const {
    return detail::enclosure_sel{layer_, outer};
  }

  /// Derived layer: the overlap (boolean AND) of this layer with `other`,
  /// e.g. layer(V2).overlap_with(M2).area_at_least(64) requires every via
  /// landing pad to be fully covered.
  [[nodiscard]] detail::derived_area_sel overlap_with(db::layer_t other) const {
    return detail::derived_area_sel{checks::rule_kind::overlap_area, layer_, other};
  }

  /// Multi-patterning decomposability (paper Section II: "multi-color design
  /// rules for multi-patterning lithography"): shapes closer than
  /// `same_mask_spacing` must go to different masks; the rule is violated
  /// wherever the conflict graph is not 2-colorable (an odd cycle exists),
  /// i.e. the layer cannot be decomposed for LELE double patterning.
  [[nodiscard]] rule two_colorable(coord_t same_mask_spacing) const {
    return {checks::rule_kind::coloring, layer_, layer_, same_mask_spacing, 0, {}, {}};
  }

  /// Derived layer: this layer NOT CUT by `other` (boolean A AND NOT B),
  /// e.g. layer(M1).not_cut_by(V1).area_at_least(200) flags slivers of metal
  /// left after subtracting the cut mask.
  [[nodiscard]] detail::derived_area_sel not_cut_by(db::layer_t other) const {
    return detail::derived_area_sel{checks::rule_kind::notcut_area, layer_, other};
  }

 private:
  db::layer_t layer_;
};

/// Select a layer by GDSII layer number.
[[nodiscard]] inline layer_sel layer(db::layer_t l) { return layer_sel{l}; }

/// Select all polygons on all layers (shape rules).
[[nodiscard]] inline detail::polygons_sel polygons() { return detail::polygons_sel{any_layer}; }

}  // namespace odrc::rules
