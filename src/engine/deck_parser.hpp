// Text rule-deck parser (interface layer, paper Section V-A: "reading design
// files, defining rule decks, adaptors to design databases, and result
// output").
//
// While the C++ DSL (rule.hpp) is the primary interface, end users running
// the CLI need a file format. The deck format is line-based:
//
//   # ASAP7-like BEOL deck
//   rule M1.W.1     width       layer=19 min=18
//   rule M1.S.1     spacing     layer=19 min=18
//   rule M1.S.PRL   spacing     layer=19 min=18 prl=500:24,1500:30
//   rule V1.M1.EN.1 enclosure   inner=21 outer=19 min=5
//   rule M1.A.1     area        layer=19 min=1000
//   rule SHAPES     rectilinear
//   rule SHAPES.M2  rectilinear layer=20
//   rule V2.M2.OV   overlap     layer=25 with=20 min_area=64
//   rule M1.NC      notcut      layer=19 with=21 min_area=200
//
// '#' starts a comment; blank lines are ignored; unknown keys or malformed
// values raise deck_error with the line number.
#pragma once

#include <istream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/rule.hpp"

namespace odrc::rules {

class deck_error : public std::runtime_error {
 public:
  deck_error(const std::string& what, std::size_t line)
      : std::runtime_error("deck line " + std::to_string(line) + ": " + what), line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parse a rule deck from a stream.
[[nodiscard]] std::vector<rule> parse_deck(std::istream& in);

/// Parse a rule deck from a string (convenience for tests).
[[nodiscard]] std::vector<rule> parse_deck(const std::string& text);

/// Parse a rule deck file from disk.
[[nodiscard]] std::vector<rule> parse_deck_file(const std::string& path);

}  // namespace odrc::rules
