// Deck-wide layout snapshot (paper Section IV-C taken seriously across the
// whole deck, not per rule group).
//
// The hierarchical structures a check run needs — the layer-wise MBR index,
// the per-(master, layer) polygon views, the flattened instance lists and the
// packed edge arrays the device executors consume — depend only on the
// (library, window) pair, never on the rule being checked. Before this module
// existed every plan group rebuilt all of them from scratch, so a 20-rule
// deck paid the hierarchy walk ~20 times. A `layout_snapshot` owns them once
// per check call:
//
//   - one `db::mbr_index` over the library;
//   - one `view_cache` of per-(master, layer) polygon views;
//   - memoized `flat_instance_list(top, layer)` results plus the per-master
//     occurrence counts the instance collector consults for splitting;
//   - a master-local packed-edge cache: `pack_polygon_edges` runs once per
//     (master, layer), and packing an *instance* afterwards only applies the
//     placement transform to the cached records (append_packed_instance).
//
// Lifetime and invalidation: the engine entry points create a snapshot on
// the stack per check call and drop it on return. Incremental sessions
// (odrc::serve) instead keep one warm across edits and call the invalidation
// hooks — invalidate_master() after editing a cell's polygons or references
// (drops that master's layer views and packed edges and refreshes the MBR
// index partially via mbr_index::update_cell, falling back to a full
// rebuild), invalidate_instances() when placements changed. Invalidation is
// NOT thread-safe against concurrent readers: a session must serialize edits
// against checks (the serve session mutex does). All read caches remain
// thread-safe (shared_mutex, node-stable unordered_map values):
// `check_concurrent` tasks and pack-ahead pipeline stages share one snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "db/flatten.hpp"
#include "db/layout.hpp"
#include "db/mbr_index.hpp"
#include "sweep/device_sweep.hpp"

namespace odrc::engine {

// ---------------------------------------------------------------------------
// Per-master layer views
// ---------------------------------------------------------------------------

/// The polygons a master contributes *directly* to one layer (its references
/// appear as separate placed instances, so they are excluded here).
struct master_layer_view {
  std::vector<std::uint32_t> poly_indices;
  std::vector<rect> poly_mbrs;  ///< master-local frame
  rect mbr;                     ///< union of the above

  [[nodiscard]] bool empty() const { return poly_indices.empty(); }
};

/// Cache of layer views per (master, layer) for one check run. Thread-safe:
/// host_parallel clip tasks and pipelined pack stages hit it concurrently.
/// References are stable (unordered_map nodes) so a caller may keep one
/// across later insertions.
class view_cache {
 public:
  /// Cache key: the (master, layer) pair held at full width. The previous
  /// packed-integer key `(cell_id << 16) | uint16(layer)` was injective only
  /// by accident of the current type widths — a cell id using bits >= 48, or
  /// a layer type wider than 16 bits (where the sign-extension of
  /// rules::any_layer no longer truncates to 0xFFFF), would silently alias
  /// distinct pairs and get() would return the wrong master's view. A
  /// struct key with field-wise equality cannot alias, whatever the widths.
  struct key {
    std::uint64_t cell = 0;
    std::int32_t layer = 0;
    [[nodiscard]] bool operator==(const key&) const = default;
  };
  struct key_hash {
    [[nodiscard]] std::size_t operator()(const key& k) const {
      // splitmix64 finalizer over both fields; collisions here only cost a
      // bucket probe — equality is exact.
      std::uint64_t x =
          k.cell ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.layer)) << 32);
      x += 0x9E3779B97F4A7C15ull;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

  [[nodiscard]] static key make_key(std::uint64_t cell, std::int32_t layer) {
    return {cell, layer};
  }

  explicit view_cache(const db::library& lib) : lib_(lib) {}

  const master_layer_view& get(db::cell_id id, db::layer_t layer);

  /// Drop every layer's view of `id` (a polygon edit shifts the element
  /// indices of ALL layers' views in that cell, not just the edited layer's).
  void invalidate(db::cell_id id);

 private:
  const db::library& lib_;
  std::shared_mutex mu_;
  std::unordered_map<key, master_layer_view, key_hash> map_;
};

// ---------------------------------------------------------------------------
// Memoized flat instance lists
// ---------------------------------------------------------------------------

/// The flattened placements of one (top, layer) plus the per-master
/// occurrence counts the instance collector uses for split decisions. Both
/// are window-independent, so one entry serves every rule group.
struct instance_set {
  std::vector<db::placed_cell> placed;
  std::unordered_map<db::cell_id, std::uint32_t> occurrences;
};

// ---------------------------------------------------------------------------
// Master-local packed edges
// ---------------------------------------------------------------------------

/// The packed edges of one (master, layer): every polygon of the layer view,
/// packed once in master-local coordinates with `poly` = the view-local
/// polygon index and `group` = 0. Instance packs re-tag and transform these
/// records instead of re-walking the polygons.
struct packed_master_edges {
  std::vector<sweep::packed_edge> edges;
  std::vector<std::uint32_t> poly_offsets;  ///< size poly_count()+1, into edges
  /// Per view-local polygon: was the master ring clockwise? A reflecting
  /// placement flips orientation and polygon::transformed() restores the
  /// clockwise invariant by reversing the ring — for packed records that is
  /// exactly a from/to swap per edge, applied iff this flag is set.
  std::vector<std::uint8_t> clockwise;

  [[nodiscard]] std::size_t poly_count() const {
    return poly_offsets.empty() ? 0 : poly_offsets.size() - 1;
  }
};

/// Append one placed instance of a cached master: apply `t` to every cached
/// edge and re-tag polygons `first_poly_id .. first_poly_id+poly_count()-1`.
/// Byte-for-byte equivalent (up to intra-polygon edge order) to transforming
/// the master's polygons and packing them from scratch.
void append_packed_instance(const packed_master_edges& pm, const transform& t,
                            std::uint32_t first_poly_id, std::uint16_t group,
                            std::vector<sweep::packed_edge>& out);

/// Same for a single view-local polygon (split check objects).
void append_packed_polygon(const packed_master_edges& pm, std::size_t local_poly,
                           const transform& t, std::uint32_t poly_id, std::uint16_t group,
                           std::vector<sweep::packed_edge>& out);

// ---------------------------------------------------------------------------
// The snapshot
// ---------------------------------------------------------------------------

/// Every rule-independent structure of one check run over one library. See
/// the file comment for the ownership/lifetime contract.
class layout_snapshot {
 public:
  explicit layout_snapshot(const db::library& lib)
      : lib_(lib), index_(lib), views_(lib) {}

  layout_snapshot(const layout_snapshot&) = delete;
  layout_snapshot& operator=(const layout_snapshot&) = delete;

  [[nodiscard]] const db::library& lib() const { return lib_; }
  [[nodiscard]] const db::mbr_index& index() const { return index_; }
  [[nodiscard]] view_cache& views() { return views_; }

  /// Memoized flat_instance_list(index, top, layer) + occurrence counts.
  /// Thread-safe; the reference is stable for the snapshot's lifetime.
  const instance_set& instances(db::cell_id top, db::layer_t layer);

  /// Memoized master-local packed edges of (master, layer). Thread-safe;
  /// the reference is stable for the snapshot's lifetime.
  const packed_master_edges& packed(db::cell_id master, db::layer_t layer);

  // -- Incremental-session invalidation (see the file comment). Callers must
  //    hold off concurrent readers; previously returned references into the
  //    invalidated entries dangle.

  /// Cell `master`'s polygons or references changed in place: drop its layer
  /// views and packed edges and refresh the MBR index (partial update, full
  /// rebuild as fallback). Does NOT touch the flat-instance memo — call
  /// invalidate_instances() too if placements or per-layer emptiness changed.
  void invalidate_master(db::cell_id master);

  /// Placements changed (instance added/removed/moved, or a cell's content
  /// appeared on / vanished from a layer): drop all memoized flat instance
  /// lists.
  void invalidate_instances();

 private:
  const db::library& lib_;
  db::mbr_index index_;
  view_cache views_;

  std::shared_mutex inst_mu_;
  std::unordered_map<view_cache::key, instance_set, view_cache::key_hash> inst_map_;
  std::shared_mutex pack_mu_;
  std::unordered_map<view_cache::key, packed_master_edges, view_cache::key_hash> pack_map_;
};

}  // namespace odrc::engine
