// Deck-wide layout snapshot (paper Section IV-C taken seriously across the
// whole deck, not per rule group).
//
// The hierarchical structures a check run needs — the layer-wise MBR index,
// the per-(master, layer) polygon views, the flattened instance lists and the
// packed edge arrays the device executors consume — depend only on the
// (library, window) pair, never on the rule being checked. Before this module
// existed every plan group rebuilt all of them from scratch, so a 20-rule
// deck paid the hierarchy walk ~20 times. A `layout_snapshot` owns them once
// per check call:
//
//   - one `db::mbr_index` over the library;
//   - one `view_cache` of per-(master, layer) polygon views;
//   - memoized `flat_instance_list(top, layer)` results plus the per-master
//     occurrence counts the instance collector consults for splitting;
//   - a master-local packed-edge cache: `pack_polygon_edges` runs once per
//     (master, layer), and packing an *instance* afterwards only applies the
//     placement transform to the cached records (append_packed_instance).
//
// Frozen backing (DESIGN.md §9): every cached structure stores its arrays in
// `odrc::storage_span`s, so an entry is either built from the library
// (owning vectors — the cold path) or adopted zero-copy from a mapped
// `frozen_snapshot` blob via the `frozen_backing` interface. A cache miss
// first consults the backing; only masked (edited) masters fall back to a
// fresh build — the copy-on-write overlay. The mapped file is never
// modified.
//
// Lifetime and invalidation: the engine entry points create a snapshot on
// the stack per check call and drop it on return. Incremental sessions
// (odrc::serve) instead keep one warm across edits and call the invalidation
// hooks — invalidate_master() after editing a cell's polygons or references
// (drops that master's layer views and packed edges, masks its frozen
// records, and refreshes the MBR index partially via mbr_index::update_cell,
// falling back to a full rebuild), invalidate_instances() when placements
// changed (also disables all frozen instance records). Invalidation is
// NOT thread-safe against concurrent readers: a session must serialize edits
// against checks (the serve session mutex does). All read caches remain
// thread-safe (shared_mutex, node-stable unordered_map values):
// `check_concurrent` tasks and pack-ahead pipeline stages share one snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/flatten.hpp"
#include "db/layout.hpp"
#include "db/mbr_index.hpp"
#include "infra/arena.hpp"
#include "sweep/device_sweep.hpp"

namespace odrc::engine {

// ---------------------------------------------------------------------------
// Per-master layer views
// ---------------------------------------------------------------------------

/// The polygons a master contributes *directly* to one layer (its references
/// appear as separate placed instances, so they are excluded here).
struct master_layer_view {
  odrc::storage_span<std::uint32_t> poly_indices;
  odrc::storage_span<rect> poly_mbrs;  ///< master-local frame
  rect mbr;                            ///< union of the above

  [[nodiscard]] bool empty() const { return poly_indices.empty(); }
};

/// One (master, count) pair of an instance set's occurrence table, sorted by
/// master id for binary-search lookup. POD so the frozen store serializes
/// the table verbatim.
struct occurrence_entry {
  db::cell_id cell = db::invalid_cell;
  std::uint32_t count = 0;
};

/// The flattened placements of one (top, layer) plus the per-master
/// occurrence counts the instance collector uses for split decisions. Both
/// are window-independent, so one entry serves every rule group.
struct instance_set {
  odrc::storage_span<db::placed_cell> placed;
  odrc::storage_span<occurrence_entry> occ;  ///< sorted by cell id

  /// Placement count of `master` in this set (0 when absent).
  [[nodiscard]] std::uint32_t occurrences(db::cell_id master) const;
};

/// The packed edges of one (master, layer): every polygon of the layer view,
/// packed once in master-local coordinates with `poly` = the view-local
/// polygon index and `group` = 0. Instance packs re-tag and transform these
/// records instead of re-walking the polygons.
struct packed_master_edges {
  odrc::storage_span<sweep::packed_edge> edges;
  odrc::storage_span<std::uint32_t> poly_offsets;  ///< size poly_count()+1, into edges
  /// Per view-local polygon: was the master ring clockwise? A reflecting
  /// placement flips orientation and polygon::transformed() restores the
  /// clockwise invariant by reversing the ring — for packed records that is
  /// exactly a from/to swap per edge, applied iff this flag is set.
  odrc::storage_span<std::uint8_t> clockwise;

  [[nodiscard]] std::size_t poly_count() const {
    return poly_offsets.empty() ? 0 : poly_offsets.size() - 1;
  }
};

// ---------------------------------------------------------------------------
// Frozen backing interface
// ---------------------------------------------------------------------------

/// What a mapped snapshot blob provides to the runtime caches. Implemented
/// by `frozen_snapshot` (src/engine/snapshot_store.hpp); the interface keeps
/// the store's file format out of this header. Every fill_* call constructs
/// span-views referencing the mapped bytes (no data copy) and returns false
/// when the blob has no record for the key — the caller then builds from the
/// library as usual.
class frozen_backing {
 public:
  virtual ~frozen_backing() = default;
  [[nodiscard]] virtual bool fill_view(db::cell_id cell, std::int32_t layer,
                                       master_layer_view& out) const = 0;
  [[nodiscard]] virtual bool fill_instances(db::cell_id top, std::int32_t layer,
                                            instance_set& out) const = 0;
  [[nodiscard]] virtual bool fill_packed(db::cell_id master, std::int32_t layer,
                                         packed_master_edges& out) const = 0;
  /// Zero-copy mbr_index over the mapped node arrays.
  [[nodiscard]] virtual db::mbr_index make_index(const db::library& lib) const = 0;
};

// ---------------------------------------------------------------------------
// View cache
// ---------------------------------------------------------------------------

/// Cache of layer views per (master, layer) for one check run. Thread-safe:
/// host_parallel clip tasks and pipelined pack stages hit it concurrently.
/// References are stable (unordered_map nodes) so a caller may keep one
/// across later insertions.
class view_cache {
 public:
  /// Cache key: the (master, layer) pair held at full width. The previous
  /// packed-integer key `(cell_id << 16) | uint16(layer)` was injective only
  /// by accident of the current type widths — a cell id using bits >= 48, or
  /// a layer type wider than 16 bits (where the sign-extension of
  /// rules::any_layer no longer truncates to 0xFFFF), would silently alias
  /// distinct pairs and get() would return the wrong master's view. A
  /// struct key with field-wise equality cannot alias, whatever the widths.
  struct key {
    std::uint64_t cell = 0;
    std::int32_t layer = 0;
    [[nodiscard]] bool operator==(const key&) const = default;
  };
  struct key_hash {
    [[nodiscard]] std::size_t operator()(const key& k) const {
      return static_cast<std::size_t>(odrc::mix64(
          k.cell ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.layer)) << 32)));
    }
  };

  [[nodiscard]] static key make_key(std::uint64_t cell, std::int32_t layer) {
    return {cell, layer};
  }

  explicit view_cache(const db::library& lib, const frozen_backing* frozen = nullptr)
      : lib_(lib), frozen_(frozen) {}

  const master_layer_view& get(db::cell_id id, db::layer_t layer);

  /// Drop every layer's view of `id` (a polygon edit shifts the element
  /// indices of ALL layers' views in that cell, not just the edited layer's)
  /// and mask its frozen records: later misses rebuild from the (mutated)
  /// library instead of the stale blob.
  void invalidate(db::cell_id id);

  /// Masked masters — the copy-on-write overlay's size.
  [[nodiscard]] std::size_t masked_count() const;

 private:
  const db::library& lib_;
  const frozen_backing* frozen_;
  mutable std::shared_mutex mu_;
  std::unordered_map<key, master_layer_view, key_hash> map_;
  std::unordered_set<std::uint64_t> masked_;  ///< cells whose frozen records are stale
};

/// Append one placed instance of a cached master: apply `t` to every cached
/// edge and re-tag polygons `first_poly_id .. first_poly_id+poly_count()-1`.
/// Byte-for-byte equivalent (up to intra-polygon edge order) to transforming
/// the master's polygons and packing them from scratch.
void append_packed_instance(const packed_master_edges& pm, const transform& t,
                            std::uint32_t first_poly_id, std::uint16_t group,
                            std::vector<sweep::packed_edge>& out);

/// Same for a single view-local polygon (split check objects).
void append_packed_polygon(const packed_master_edges& pm, std::size_t local_poly,
                           const transform& t, std::uint32_t poly_id, std::uint16_t group,
                           std::vector<sweep::packed_edge>& out);

// ---------------------------------------------------------------------------
// The snapshot
// ---------------------------------------------------------------------------

/// Every rule-independent structure of one check run over one library. See
/// the file comment for the ownership/lifetime contract.
class layout_snapshot {
 public:
  explicit layout_snapshot(const db::library& lib)
      : lib_(lib), index_(lib), views_(lib) {}

  /// Frozen-backed snapshot: the MBR index adopts the blob's node arrays
  /// zero-copy and every cache miss consults the blob before building.
  /// `lib` must be the library the blob was built from (the session
  /// deserializes it from the same file); the shared_ptr keeps the mapping
  /// alive for the snapshot's lifetime.
  layout_snapshot(const db::library& lib, std::shared_ptr<const frozen_backing> frozen)
      : lib_(lib),
        frozen_(std::move(frozen)),
        index_(frozen_->make_index(lib)),
        views_(lib, frozen_.get()) {}

  layout_snapshot(const layout_snapshot&) = delete;
  layout_snapshot& operator=(const layout_snapshot&) = delete;

  [[nodiscard]] const db::library& lib() const { return lib_; }
  [[nodiscard]] const db::mbr_index& index() const { return index_; }
  [[nodiscard]] view_cache& views() { return views_; }

  /// True when backed by a mapped frozen snapshot.
  [[nodiscard]] bool frozen_backed() const { return frozen_ != nullptr; }

  /// Copy-on-write overlay size: masked masters plus the instance-memo
  /// disable flag. 0 until the first invalidation of a frozen-backed
  /// snapshot.
  [[nodiscard]] std::size_t overlay_entries() const;

  /// Memoized flat_instance_list(index, top, layer) + occurrence counts.
  /// Thread-safe; the reference is stable for the snapshot's lifetime.
  const instance_set& instances(db::cell_id top, db::layer_t layer);

  /// Memoized master-local packed edges of (master, layer). Thread-safe;
  /// the reference is stable for the snapshot's lifetime.
  const packed_master_edges& packed(db::cell_id master, db::layer_t layer);

  // -- Incremental-session invalidation (see the file comment). Callers must
  //    hold off concurrent readers; previously returned references into the
  //    invalidated entries dangle.

  /// Cell `master`'s polygons or references changed in place: drop its layer
  /// views and packed edges (masking their frozen records) and refresh the
  /// MBR index (partial update — thaws a frozen index — with a full rebuild
  /// as fallback). Does NOT touch the flat-instance memo — call
  /// invalidate_instances() too if placements or per-layer emptiness changed.
  void invalidate_master(db::cell_id master);

  /// Placements changed (instance added/removed/moved, or a cell's content
  /// appeared on / vanished from a layer): drop all memoized flat instance
  /// lists and stop consulting the blob's instance records.
  void invalidate_instances();

 private:
  const db::library& lib_;
  std::shared_ptr<const frozen_backing> frozen_;
  db::mbr_index index_;
  view_cache views_;

  mutable std::shared_mutex inst_mu_;
  std::unordered_map<view_cache::key, instance_set, view_cache::key_hash> inst_map_;
  bool inst_frozen_enabled_ = true;  ///< guarded by inst_mu_

  mutable std::shared_mutex pack_mu_;
  std::unordered_map<view_cache::key, packed_master_edges, view_cache::key_hash> pack_map_;
  std::unordered_set<std::uint64_t> pack_masked_;  ///< guarded by pack_mu_
};

}  // namespace odrc::engine
