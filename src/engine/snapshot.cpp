#include "engine/snapshot.hpp"

#include "engine/rule.hpp"

namespace odrc::engine {

namespace {

master_layer_view make_layer_view(const db::cell& c, db::layer_t layer) {
  master_layer_view v;
  for (std::uint32_t pi = 0; pi < c.polygons().size(); ++pi) {
    const db::polygon_elem& p = c.polygons()[pi];
    if (layer != rules::any_layer && p.layer != layer) continue;
    v.poly_indices.push_back(pi);
    v.poly_mbrs.push_back(p.poly.mbr());
    v.mbr = v.mbr.join(v.poly_mbrs.back());
  }
  return v;
}

}  // namespace

const master_layer_view& view_cache::get(db::cell_id id, db::layer_t layer) {
  const key k = make_key(id, layer);
  {
    std::shared_lock lk(mu_);
    auto it = map_.find(k);
    if (it != map_.end()) return it->second;
  }
  master_layer_view v = make_layer_view(lib_.at(id), layer);
  std::unique_lock lk(mu_);
  // Another thread may have inserted meanwhile; emplace keeps the winner.
  return map_.emplace(k, std::move(v)).first->second;
}

void view_cache::invalidate(db::cell_id id) {
  std::unique_lock lk(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.cell == id) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void layout_snapshot::invalidate_master(db::cell_id master) {
  views_.invalidate(master);
  {
    std::unique_lock lk(pack_mu_);
    for (auto it = pack_map_.begin(); it != pack_map_.end();) {
      if (it->first.cell == master) {
        it = pack_map_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!index_.update_cell(master)) index_ = db::mbr_index(lib_);
}

void layout_snapshot::invalidate_instances() {
  std::unique_lock lk(inst_mu_);
  inst_map_.clear();
}

const instance_set& layout_snapshot::instances(db::cell_id top, db::layer_t layer) {
  const view_cache::key k = view_cache::make_key(top, layer);
  {
    std::shared_lock lk(inst_mu_);
    auto it = inst_map_.find(k);
    if (it != inst_map_.end()) return it->second;
  }
  instance_set set;
  set.placed = db::flat_instance_list(index_, top, layer);
  for (const db::placed_cell& pc : set.placed) ++set.occurrences[pc.master];
  std::unique_lock lk(inst_mu_);
  return inst_map_.emplace(k, std::move(set)).first->second;
}

const packed_master_edges& layout_snapshot::packed(db::cell_id master, db::layer_t layer) {
  const view_cache::key k = view_cache::make_key(master, layer);
  {
    std::shared_lock lk(pack_mu_);
    auto it = pack_map_.find(k);
    if (it != pack_map_.end()) return it->second;
  }
  const master_layer_view& v = views_.get(master, layer);
  const db::cell& c = lib_.at(master);
  packed_master_edges pm;
  pm.poly_offsets.reserve(v.poly_indices.size() + 1);
  pm.clockwise.reserve(v.poly_indices.size());
  pm.poly_offsets.push_back(0);
  for (std::size_t k2 = 0; k2 < v.poly_indices.size(); ++k2) {
    const polygon& p = c.polygons()[v.poly_indices[k2]].poly;
    sweep::pack_polygon_edges(p, static_cast<std::uint32_t>(k2), 0, pm.edges);
    pm.poly_offsets.push_back(static_cast<std::uint32_t>(pm.edges.size()));
    pm.clockwise.push_back(p.is_clockwise() ? 1 : 0);
  }
  std::unique_lock lk(pack_mu_);
  return pack_map_.emplace(k, std::move(pm)).first->second;
}

namespace {

// One polygon's cached records into `out` under `t`. `reverse` replays the
// ring reversal polygon::transformed() performs for orientation-flipping
// placements: the directed-edge multiset then matches a from-scratch pack of
// the transformed polygon exactly (edge order within the polygon differs,
// which the device executors are insensitive to — they sort by sweep key).
void append_edge_range(const sweep::packed_edge* first, const sweep::packed_edge* last,
                       const transform& t, bool reverse, std::uint32_t poly_id,
                       std::uint16_t group, std::vector<sweep::packed_edge>& out) {
  if (t.is_identity()) {
    for (const sweep::packed_edge* e = first; e != last; ++e) {
      out.push_back({e->from, e->to, poly_id, group, 0});
    }
    return;
  }
  for (const sweep::packed_edge* e = first; e != last; ++e) {
    const point a = t.apply(e->from);
    const point b = t.apply(e->to);
    if (reverse) {
      out.push_back({b, a, poly_id, group, 0});
    } else {
      out.push_back({a, b, poly_id, group, 0});
    }
  }
}

}  // namespace

void append_packed_polygon(const packed_master_edges& pm, std::size_t local_poly,
                           const transform& t, std::uint32_t poly_id, std::uint16_t group,
                           std::vector<sweep::packed_edge>& out) {
  const std::uint32_t lo = pm.poly_offsets[local_poly];
  const std::uint32_t hi = pm.poly_offsets[local_poly + 1];
  // Reflection flips ring orientation; transformed() restores clockwise by
  // reversing iff the master ring was clockwise to begin with.
  const bool reverse = t.reflect_x && pm.clockwise[local_poly] != 0;
  append_edge_range(pm.edges.data() + lo, pm.edges.data() + hi, t, reverse, poly_id, group,
                    out);
}

void append_packed_instance(const packed_master_edges& pm, const transform& t,
                            std::uint32_t first_poly_id, std::uint16_t group,
                            std::vector<sweep::packed_edge>& out) {
  out.reserve(out.size() + pm.edges.size());
  const std::size_t n = pm.poly_count();
  for (std::size_t k = 0; k < n; ++k) {
    append_packed_polygon(pm, k, t, first_poly_id + static_cast<std::uint32_t>(k), group, out);
  }
}

}  // namespace odrc::engine
