#include "engine/snapshot.hpp"

#include <algorithm>

#include "engine/rule.hpp"

namespace odrc::engine {

namespace {

master_layer_view make_layer_view(const db::cell& c, db::layer_t layer) {
  master_layer_view v;
  for (std::uint32_t pi = 0; pi < c.polygons().size(); ++pi) {
    const db::polygon_elem& p = c.polygons()[pi];
    if (layer != rules::any_layer && p.layer != layer) continue;
    v.poly_indices.push_back(pi);
    v.poly_mbrs.push_back(p.poly.mbr());
    v.mbr = v.mbr.join(v.poly_mbrs.back());
  }
  return v;
}

}  // namespace

std::uint32_t instance_set::occurrences(db::cell_id master) const {
  const auto it = std::lower_bound(
      occ.begin(), occ.end(), master,
      [](const occurrence_entry& e, db::cell_id m) { return e.cell < m; });
  if (it == occ.end() || it->cell != master) return 0;
  return it->count;
}

const master_layer_view& view_cache::get(db::cell_id id, db::layer_t layer) {
  const key k = make_key(id, layer);
  bool use_frozen = frozen_ != nullptr;
  {
    std::shared_lock lk(mu_);
    auto it = map_.find(k);
    if (it != map_.end()) return it->second;
    if (use_frozen) use_frozen = !masked_.contains(id);
  }
  master_layer_view v;
  if (!use_frozen || !frozen_->fill_view(id, layer, v)) {
    v = make_layer_view(lib_.at(id), layer);
  }
  std::unique_lock lk(mu_);
  // Another thread may have inserted meanwhile; emplace keeps the winner.
  return map_.emplace(k, std::move(v)).first->second;
}

void view_cache::invalidate(db::cell_id id) {
  std::unique_lock lk(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.cell == id) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  if (frozen_ != nullptr) masked_.insert(id);
}

std::size_t view_cache::masked_count() const {
  std::shared_lock lk(mu_);
  return masked_.size();
}

std::size_t layout_snapshot::overlay_entries() const {
  std::size_t n = views_.masked_count();
  {
    std::shared_lock lk(pack_mu_);
    n += pack_masked_.size();
  }
  {
    std::shared_lock lk(inst_mu_);
    if (!inst_frozen_enabled_ && frozen_ != nullptr) ++n;
  }
  return n;
}

void layout_snapshot::invalidate_master(db::cell_id master) {
  views_.invalidate(master);
  {
    std::unique_lock lk(pack_mu_);
    for (auto it = pack_map_.begin(); it != pack_map_.end();) {
      if (it->first.cell == master) {
        it = pack_map_.erase(it);
      } else {
        ++it;
      }
    }
    if (frozen_ != nullptr) pack_masked_.insert(master);
  }
  if (!index_.update_cell(master)) index_ = db::mbr_index(lib_);
}

void layout_snapshot::invalidate_instances() {
  std::unique_lock lk(inst_mu_);
  inst_map_.clear();
  // Placements changed somewhere: every blob instance record is suspect.
  inst_frozen_enabled_ = false;
}

const instance_set& layout_snapshot::instances(db::cell_id top, db::layer_t layer) {
  const view_cache::key k = view_cache::make_key(top, layer);
  bool use_frozen = frozen_ != nullptr;
  {
    std::shared_lock lk(inst_mu_);
    auto it = inst_map_.find(k);
    if (it != inst_map_.end()) return it->second;
    use_frozen = use_frozen && inst_frozen_enabled_;
  }
  instance_set set;
  if (!use_frozen || !frozen_->fill_instances(top, layer, set)) {
    std::vector<db::placed_cell> placed = db::flat_instance_list(index_, top, layer);
    std::vector<occurrence_entry> occ;
    for (const db::placed_cell& pc : placed) {
      auto it = std::lower_bound(
          occ.begin(), occ.end(), pc.master,
          [](const occurrence_entry& e, db::cell_id m) { return e.cell < m; });
      if (it != occ.end() && it->cell == pc.master) {
        ++it->count;
      } else {
        occ.insert(it, {pc.master, 1});
      }
    }
    set.placed.assign(std::move(placed));
    set.occ.assign(std::move(occ));
  }
  std::unique_lock lk(inst_mu_);
  return inst_map_.emplace(k, std::move(set)).first->second;
}

const packed_master_edges& layout_snapshot::packed(db::cell_id master, db::layer_t layer) {
  const view_cache::key k = view_cache::make_key(master, layer);
  bool use_frozen = frozen_ != nullptr;
  {
    std::shared_lock lk(pack_mu_);
    auto it = pack_map_.find(k);
    if (it != pack_map_.end()) return it->second;
    if (use_frozen) use_frozen = !pack_masked_.contains(master);
  }
  packed_master_edges pm;
  if (!use_frozen || !frozen_->fill_packed(master, layer, pm)) {
    const master_layer_view& v = views_.get(master, layer);
    const db::cell& c = lib_.at(master);
    std::vector<sweep::packed_edge> edges;
    pm.poly_offsets.reserve(v.poly_indices.size() + 1);
    pm.clockwise.reserve(v.poly_indices.size());
    pm.poly_offsets.push_back(0);
    for (std::size_t k2 = 0; k2 < v.poly_indices.size(); ++k2) {
      const polygon& p = c.polygons()[v.poly_indices[k2]].poly;
      sweep::pack_polygon_edges(p, static_cast<std::uint32_t>(k2), 0, edges);
      pm.poly_offsets.push_back(static_cast<std::uint32_t>(edges.size()));
      pm.clockwise.push_back(p.is_clockwise() ? 1 : 0);
    }
    pm.edges.assign(std::move(edges));
  }
  std::unique_lock lk(pack_mu_);
  return pack_map_.emplace(k, std::move(pm)).first->second;
}

namespace {

// One polygon's cached records into `out` under `t`. `reverse` replays the
// ring reversal polygon::transformed() performs for orientation-flipping
// placements: the directed-edge multiset then matches a from-scratch pack of
// the transformed polygon exactly (edge order within the polygon differs,
// which the device executors are insensitive to — they sort by sweep key).
void append_edge_range(const sweep::packed_edge* first, const sweep::packed_edge* last,
                       const transform& t, bool reverse, std::uint32_t poly_id,
                       std::uint16_t group, std::vector<sweep::packed_edge>& out) {
  if (t.is_identity()) {
    for (const sweep::packed_edge* e = first; e != last; ++e) {
      out.push_back({e->from, e->to, poly_id, group, 0});
    }
    return;
  }
  for (const sweep::packed_edge* e = first; e != last; ++e) {
    const point a = t.apply(e->from);
    const point b = t.apply(e->to);
    if (reverse) {
      out.push_back({b, a, poly_id, group, 0});
    } else {
      out.push_back({a, b, poly_id, group, 0});
    }
  }
}

}  // namespace

void append_packed_polygon(const packed_master_edges& pm, std::size_t local_poly,
                           const transform& t, std::uint32_t poly_id, std::uint16_t group,
                           std::vector<sweep::packed_edge>& out) {
  const std::uint32_t lo = pm.poly_offsets[local_poly];
  const std::uint32_t hi = pm.poly_offsets[local_poly + 1];
  // Reflection flips ring orientation; transformed() restores clockwise by
  // reversing iff the master ring was clockwise to begin with.
  const bool reverse = t.reflect_x && pm.clockwise[local_poly] != 0;
  append_edge_range(pm.edges.data() + lo, pm.edges.data() + hi, t, reverse, poly_id, group,
                    out);
}

void append_packed_instance(const packed_master_edges& pm, const transform& t,
                            std::uint32_t first_poly_id, std::uint16_t group,
                            std::vector<sweep::packed_edge>& out) {
  out.reserve(out.size() + pm.edges.size());
  const std::size_t n = pm.poly_count();
  for (std::size_t k = 0; k < n; ++k) {
    append_packed_polygon(pm, k, t, first_poly_id + static_cast<std::uint32_t>(k), group, out);
  }
}

}  // namespace odrc::engine
