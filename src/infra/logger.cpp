#include "infra/logger.hpp"

#include <cstdlib>
#include <cstring>

namespace odrc {

namespace {

log_level level_from_env() {
  const char* env = std::getenv("ODRC_LOG");
  if (!env) return log_level::warn;
  if (!std::strcmp(env, "trace")) return log_level::trace;
  if (!std::strcmp(env, "debug")) return log_level::debug;
  if (!std::strcmp(env, "info")) return log_level::info;
  if (!std::strcmp(env, "warn")) return log_level::warn;
  if (!std::strcmp(env, "error")) return log_level::error;
  if (!std::strcmp(env, "off")) return log_level::off;
  return log_level::warn;
}

constexpr std::string_view level_name(log_level lvl) {
  switch (lvl) {
    case log_level::trace: return "TRACE";
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}

}  // namespace

logger::logger() : level_(level_from_env()) {}

logger& logger::instance() {
  static logger lg;
  return lg;
}

void logger::write(log_level lvl, std::string_view msg) {
  std::lock_guard lock(mutex_);
  std::clog << "[odrc:" << level_name(lvl) << "] " << msg << '\n';
}

}  // namespace odrc
