// Union-find with path halving and union by size. Used by the boolean-ops
// module to group result rectangles into connected components.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace odrc {

class disjoint_set {
 public:
  explicit disjoint_set(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  [[nodiscard]] std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Union the sets containing a and b; returns false if already joined.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  [[nodiscard]] bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

  [[nodiscard]] std::size_t set_size(std::size_t x) { return size_[find(x)]; }

  [[nodiscard]] std::size_t element_count() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace odrc
