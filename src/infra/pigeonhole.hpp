// Interval merging for adaptive layout partition (paper Algorithm 1).
//
// Merges a set of closed intervals over a discretized domain into the minimal
// set of non-overlapping intervals covering them, in Theta(k + N) time where
// k is the number of intervals (cells) and N the domain size (unique
// y-coordinates). A "pigeonhole array" indexed by left endpoint stores the
// furthest right endpoint seen; a single forward scan then emits maximal
// merged runs.
//
// A sort-based O(k log k) alternative is provided for the ablation bench —
// the paper argues the pigeonhole variant wins because k >> N in row-placed
// layouts and arrays have better locality.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "infra/interval.hpp"

namespace odrc {

/// Pigeonhole-array interval merger over the coordinate domain
/// [domain_lo, domain_hi]. Coordinates are mapped to array slots by
/// subtracting domain_lo; callers that first coordinate-compress (map unique
/// y values to ranks) get the paper's exact N = #unique-coordinates bound.
class pigeonhole_merger {
 public:
  /// Prepare a merger over [domain_lo, domain_hi] (inclusive).
  pigeonhole_merger(coord_t domain_lo, coord_t domain_hi);

  /// Step 2 of Algorithm 1: A[l] <- max(A[l], r). O(1).
  void add(coord_t lo, coord_t hi);

  void add(const interval& iv) { add(iv.lo, iv.hi); }

  /// Step 3: scan the array and return the merged non-overlapping intervals,
  /// in increasing order. Only intervals actually added are covered (slots
  /// never touched do not produce output). O(N).
  [[nodiscard]] std::vector<interval> merged() const;

  /// Reset all slots for reuse without reallocating.
  void reset();

  [[nodiscard]] coord_t domain_lo() const { return lo_; }
  [[nodiscard]] coord_t domain_hi() const { return hi_; }

 private:
  coord_t lo_;
  coord_t hi_;
  // slots_[i] = furthest right endpoint of any interval starting at lo_ + i,
  // or sentinel (lo_ + i - 1, i.e. "self - 1") when no interval starts here.
  // Using r < l as the "empty" marker lets the scan treat untouched slots
  // uniformly.
  std::vector<coord_t> slots_;
};

/// Sort-based reference implementation: O(k log k), independent of domain
/// size. Produces the same merged cover as pigeonhole_merger.
[[nodiscard]] std::vector<interval> merge_intervals_by_sort(std::span<const interval> ivs);

}  // namespace odrc
