// Fixed-size worker thread pool.
//
// Backs both the host-side parallel helpers and the simulated device's
// SPMD execution units. Tasks are type-erased nullary callables; submit()
// returns a future. parallel_for() provides the blocked index-space loop the
// kernel launcher uses.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace odrc {

class thread_pool {
 public:
  /// Spawn `workers` threads; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit thread_pool(std::size_t workers = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Enqueue a task; the returned future resolves with its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run f(i) for every i in [begin, end), split into `worker_count()`
  /// contiguous blocks executed on the pool. Blocks until complete.
  /// The calling thread participates (executes the first block), so the
  /// pool also works with zero queued capacity.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& f);

  /// Process-wide pool, sized from ODRC_WORKERS env var when set.
  static thread_pool& global();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace odrc
