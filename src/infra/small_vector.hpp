// A vector with inline storage for the first N elements.
//
// Used in hot paths (sweepline candidate lists, per-node child lists) where
// the common case is a handful of elements and heap traffic dominates.
// Only the operations the engine needs are provided; elements must be
// trivially copyable, which every geometry POD in this codebase is.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>

namespace odrc {

template <typename T, std::size_t N>
class small_vector {
  static_assert(std::is_trivially_copyable_v<T>,
                "small_vector is restricted to trivially copyable types");

 public:
  small_vector() = default;

  small_vector(const small_vector& o) { assign(o.data(), o.size_); }
  small_vector& operator=(const small_vector& o) {
    if (this != &o) assign(o.data(), o.size_);
    return *this;
  }

  small_vector(small_vector&& o) noexcept { move_from(std::move(o)); }
  small_vector& operator=(small_vector&& o) noexcept {
    if (this != &o) {
      release();
      move_from(std::move(o));
    }
    return *this;
  }

  ~small_vector() { release(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] bool is_inline() const { return heap_ == nullptr; }

  [[nodiscard]] T* data() { return heap_ ? heap_ : reinterpret_cast<T*>(inline_); }
  [[nodiscard]] const T* data() const {
    return heap_ ? heap_ : reinterpret_cast<const T*>(inline_);
  }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& back() {
    assert(size_ > 0);
    return data()[size_ - 1];
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = v;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

 private:
  void grow(std::size_t new_cap) {
    new_cap = std::max(new_cap, std::size_t{2} * N);
    T* mem = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    std::memcpy(mem, data(), size_ * sizeof(T));
    release();
    heap_ = mem;
    cap_ = new_cap;
  }

  void assign(const T* src, std::size_t n) {
    clear();
    reserve(n);
    std::memcpy(data(), src, n * sizeof(T));
    size_ = n;
  }

  void move_from(small_vector&& o) {
    if (o.heap_) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.cap_ = N;
      o.size_ = 0;
    } else {
      heap_ = nullptr;
      cap_ = N;
      // An inline source holds at most N elements; the min() also lets the
      // optimizer see the bound.
      size_ = std::min(o.size_, N);
      std::memcpy(inline_, o.inline_, size_ * sizeof(T));
      o.size_ = 0;
    }
  }

  void release() {
    if (heap_) {
      ::operator delete(heap_);
      heap_ = nullptr;
      cap_ = N;
    }
  }

  alignas(T) std::byte inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace odrc
