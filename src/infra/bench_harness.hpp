// odrc::bench — the continuous-benchmarking harness every bench/ executable
// registers into (ROADMAP: performance as a regression-gated signal).
//
// The paper's claims are quantitative (Tables I/II, Fig. 4), so the repo
// needs a machine-readable performance record, not 11 free-form stdout
// formats. The harness runs each registered case with warmup + repetitions,
// records wall and CPU time per repetition plus one extra *instrumented*
// repetition that captures the odrc::trace device counters (kernel launches,
// bytes copied, stream occupancy) without polluting the timed samples,
// computes robust statistics (median, MAD, min, p95 — chosen because bench
// noise is one-sided: interference makes runs slower, never faster), and
// emits a schema-versioned JSON report `BENCH_<suite>.json` alongside the
// suite's human-readable tables.
//
// The same module implements the comparison side: `compare_reports` diffs
// two reports with a noise-aware threshold — a case regresses only if its
// median grew by more than max(rel_threshold · baseline, mad_k · MAD,
// min_abs_s) — so the CI gate (tools/bench_compare.cpp) fails on real
// slowdowns but not on scheduler jitter.
//
// Usage in a bench executable:
//
//   int main(int argc, char** argv) {
//     bench::suite s("micro_partition");
//     if (auto rc = s.parse(argc, argv)) return *rc;
//     s.add("pigeonhole/k=4096", [](bench::case_context& ctx) {
//       auto input = make_input(ctx.scale());     // setup is untimed
//       while (ctx.next_rep()) run_once(input);   // each pass is one sample
//       ctx.counter("items", input.size());
//     });
//     return s.run();                             // table + BENCH_*.json
//   }
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace odrc::bench {

// ---------------------------------------------------------------------------
// Robust statistics
// ---------------------------------------------------------------------------

/// Median of a sample set (average of the two middle elements for even
/// counts, 0 for an empty set). Takes a copy: sorting is destructive.
[[nodiscard]] double median_of(std::vector<double> v);

/// Summary of one sample population. MAD is the *median absolute deviation*
/// (median of |x - median|), the robust spread estimate the regression
/// threshold leans on — a single cold-cache outlier cannot inflate it the
/// way it inflates a standard deviation.
struct stat_summary {
  std::size_t count = 0;
  double median = 0;
  double mad = 0;
  double min = 0;
  double p95 = 0;  ///< nearest-rank 95th percentile
  double mean = 0;
};

[[nodiscard]] stat_summary summarize(std::vector<double> samples);

// ---------------------------------------------------------------------------
// Report model and JSON serialization
// ---------------------------------------------------------------------------

inline constexpr const char* schema_name = "odrc-bench";
inline constexpr int schema_version = 1;

struct case_result {
  std::string name;
  std::size_t repetitions = 0;
  std::size_t warmup = 0;
  std::string error;           ///< nonempty when the case body threw
  std::vector<double> wall_s;  ///< raw wall-clock samples, one per repetition
  std::vector<double> cpu_s;   ///< raw process-CPU samples
  stat_summary wall;
  stat_summary cpu;
  /// Work counters: values the case sets itself (edge pairs, items, ...)
  /// plus `trace:`-prefixed device counters from the instrumented rep.
  std::map<std::string, double> counters;

  /// Recompute `wall`/`cpu` from the raw samples.
  void finalize();
};

struct suite_report {
  std::string suite;
  std::string mode = "full";  ///< "quick" | "full" | "cli"
  double scale = 1.0;
  std::vector<case_result> cases;

  [[nodiscard]] const case_result* find(const std::string& name) const;
};

/// Median wall seconds of a named case, or `fallback` when the case is
/// absent or failed (summary tables print those cells as "-").
[[nodiscard]] double median_or(const suite_report& r, const std::string& name,
                               double fallback = -1.0);

/// A recorded counter of a named case, or `fallback`.
[[nodiscard]] double counter_or(const suite_report& r, const std::string& name,
                                const std::string& counter, double fallback = 0);

/// Serialize to the versioned JSON schema (see DESIGN.md "Continuous
/// benchmarking" for the field-by-field description).
void write_json(std::ostream& os, const suite_report& r);

/// Parse a report. Throws std::runtime_error on malformed JSON, a foreign
/// schema name, or a schema_version newer than this binary understands.
[[nodiscard]] suite_report read_json(std::istream& is);
[[nodiscard]] suite_report read_json_file(const std::string& path);

// ---------------------------------------------------------------------------
// Comparison (the regression gate)
// ---------------------------------------------------------------------------

struct compare_options {
  /// Relative slack: a median must move by more than this fraction of the
  /// baseline median to count at all.
  double rel_threshold = 0.10;
  /// Noise slack: ... and by more than mad_k times the larger MAD of the two
  /// runs, so a case whose timings genuinely wobble needs a bigger move.
  double mad_k = 3.0;
  /// Absolute floor: sub-threshold cases (scheduler-quantum territory) never
  /// regress on time alone.
  double min_abs_s = 5e-4;
  /// Gate self-test hook: pretend current medians (and MADs) are this factor
  /// larger before judging. `--scale-current=2` must turn an identical-file
  /// comparison into a failure, proving the gate can fire.
  double scale_current = 1.0;
};

enum class verdict { similar, regression, improvement };

/// Noise-aware single-case judgement (exposed for unit tests).
[[nodiscard]] verdict judge(const stat_summary& baseline, const stat_summary& current,
                            const compare_options& o);

struct case_delta {
  std::string name;
  double base_median = 0;
  double cur_median = 0;
  double ratio = 1.0;  ///< current / baseline (1.0 when baseline is ~0)
  verdict v = verdict::similar;
};

struct compare_result {
  std::vector<case_delta> deltas;  ///< cases present in both reports
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;
  /// Deterministic-counter drift (work counters shifted > 0.1%): informative
  /// lines, never a failure by themselves.
  std::vector<std::string> counter_notes;
  std::size_t regressions = 0;
  std::size_t improvements = 0;

  [[nodiscard]] bool ok() const { return regressions == 0; }
};

[[nodiscard]] compare_result compare_reports(const suite_report& baseline,
                                             const suite_report& current,
                                             const compare_options& o);

/// Human rendering of a comparison (the bench_compare CLI output).
void write_compare(std::ostream& os, const compare_result& c, const compare_options& o);

// ---------------------------------------------------------------------------
// The run-time harness
// ---------------------------------------------------------------------------

/// Harness flags shared by every bench executable (parsed by suite::parse):
///   --quick | --full     workload size preset (CI uses --quick)
///   --scale=X            workload scale override (else ODRC_BENCH_SCALE)
///   --reps=N --warmup=N  repetition counts (else ODRC_BENCH_REPEATS)
///   --json=PATH          report path (default BENCH_<suite>.json)
///   --no-json            skip the JSON report
///   --no-trace-rep       skip the instrumented device-counter repetition
///   --filter=SUBSTR      run only matching cases
///   --list               print case names and exit
struct options {
  bool quick = false;
  int repetitions = 0;  ///< 0: preset default (quick 3, full 5)
  int warmup = -1;      ///< -1: preset default (1)
  double scale = 0;     ///< 0: preset default (quick 0.25, full 1.0)
  std::string json_path;
  bool no_json = false;
  bool trace_rep = true;
  std::string filter;
  bool list = false;
};

class suite;

/// Handed to each case body. Setup before the first next_rep() call and
/// teardown after the last are untimed; everything between two consecutive
/// next_rep() calls is one timed sample.
class case_context {
 public:
  [[nodiscard]] bool quick() const { return quick_; }
  /// Effective workload scale (preset/env/flag-resolved).
  [[nodiscard]] double scale() const { return scale_; }

  /// Drive the measured loop: `while (ctx.next_rep()) { work(); }`.
  /// Runs warmup passes (timed, discarded), then the measured repetitions,
  /// then — unless disabled — one instrumented pass with the trace recorder
  /// enabled, harvested into `trace:*` counters.
  [[nodiscard]] bool next_rep();

  /// Record a work counter (overwrites; last call wins).
  void counter(const std::string& name, double value);

 private:
  friend class suite;
  case_context(case_result* result, bool quick, double scale, int warmup, int reps,
               bool trace_rep);
  void harvest_trace();
  [[nodiscard]] double wall_timer_seconds() const;

  enum class phase { before, warmup, measured, traced, done };

  case_result* result_;
  bool quick_;
  double scale_;
  int warmup_count_;
  int rep_count_;
  bool trace_rep_;
  phase phase_ = phase::before;
  int done_in_phase_ = 0;
  double wall_start_ns_ = 0;
  double cpu_start_ = 0;
};

class suite {
 public:
  explicit suite(std::string name);

  /// Parse harness flags. Returns an exit code to return immediately (help
  /// printed, or bad usage), or nullopt to continue into add()/run().
  [[nodiscard]] std::optional<int> parse(int argc, char** argv);

  /// Parsed flags — registration typically branches on opts().quick.
  [[nodiscard]] const options& opts() const { return opts_; }

  /// Register a named case. Cases run in registration order, so a later
  /// case may compare against state a former one captured.
  void add(std::string case_name, std::function<void(case_context&)> body);

  /// Run all (filter-matching) cases, print the stats table, call
  /// `summarize` with the finished report (suite-specific paper tables),
  /// write the JSON report. Returns 0, or 1 if any case body threw.
  int run(const std::function<void(const suite_report&)>& summarize = {});

 private:
  struct registered_case {
    std::string name;
    std::function<void(case_context&)> body;
  };

  std::string name_;
  options opts_;
  std::vector<registered_case> cases_;
};

}  // namespace odrc::bench
