// SIMD hot-kernel layer: runtime-dispatched AVX2 primitives with scalar
// fallbacks (DESIGN.md §11).
//
// The packed-edge arrays the device executors operate on (device_sweep.hpp)
// are SoA-friendly; the inner loops — edge-pair distance tests, the parallel
// sweep's range scan, the brute-force executor — were scalar. This module
// vectorizes the *candidate filtering* part of those loops 8-wide and leaves
// the final check-predicate decision to the shared scalar predicates
// (checks/edge_checks.hpp), so the scalar and vector paths produce identical
// violation sets by construction: the filter only ever removes pairs that
// provably cannot violate (their bounding boxes are farther apart than the
// batch's maximum rule distance along some axis).
//
// Dispatch is per-process, not per-call: both paths are compiled into every
// binary (the AVX2 functions carry `__attribute__((target("avx2")))`, so no
// -march flag is needed and one binary runs everywhere); the active tier is
// resolved once from (explicit engine_config::simd, the ODRC_SIMD
// environment override, the CPUID probe) and cached in an atomic. Kernels
// capture the tier at enqueue time, so an in-flight device check never
// changes tier mid-run. Resolution precedence:
//
//   1. an explicit mode (off / avx2) from engine_config::simd or set_mode();
//   2. ODRC_SIMD=off|avx2|auto — the CI matrix legs use this to exercise the
//      scalar path on AVX2 runners and to force AVX2 where it exists;
//   3. automatic: the CPUID probe picks the best supported tier.
//
// Requesting avx2 on a CPU without it falls back to scalar (with a warning
// line) instead of dying on SIGILL; `odrc version` reports the selected tier
// so a mis-dispatch is diagnosable from CI logs.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ODRC_SIMD_X86 1
#else
#define ODRC_SIMD_X86 0
#endif

#include "infra/geometry.hpp"

namespace odrc::simd {

/// Instruction tier actually executed. Exactly one is active per process.
enum class tier : std::uint8_t { scalar = 0, avx2 = 1 };

/// Requested dispatch policy (engine_config::simd / ODRC_SIMD / --simd).
enum class mode : std::uint8_t { automatic = 0, off = 1, avx2 = 2 };

/// CPUID probe: true iff this CPU can execute AVX2 instructions. Cached.
[[nodiscard]] bool cpu_has_avx2();

/// Pure resolution logic (unit-testable without touching process state):
/// explicit off/avx2 beats the env override beats the probe; avx2 without
/// CPU support degrades to scalar.
[[nodiscard]] tier resolve(mode requested, std::optional<mode> env_override, bool cpu_avx2);

/// Parse an ODRC_SIMD-style value. "off" / "avx2" / "auto" (case-sensitive);
/// nullopt for empty/absent; garbage parses as nullopt (ignored, logged by
/// the dispatcher).
[[nodiscard]] std::optional<mode> parse_mode(const char* value);

/// Set the process-wide requested mode and re-resolve the active tier.
/// Called from the drc_engine constructor (engine_config::simd) and the
/// equivalence tests; the last call wins.
void set_mode(mode m);

/// The resolved tier every kernel dispatches on.
[[nodiscard]] tier active();

/// The currently requested mode (before resolution).
[[nodiscard]] mode requested();

[[nodiscard]] const char* tier_name(tier t);
[[nodiscard]] const char* mode_name(mode m);

/// One-line dispatch report for `odrc version` and CI logs, e.g.
/// "simd: avx2 (mode=auto, env=-, cpu avx2=yes)".
[[nodiscard]] std::string describe();

// ---------------------------------------------------------------------------
// Kernel primitives. All of them take padded SoA arrays: the caller rounds
// the element count up to a multiple of 8 (padded_size) so 8-wide loads are
// always in bounds; lanes beyond the live range are masked off by index, so
// padding values are never acted on.
// ---------------------------------------------------------------------------

/// Round a count up to the 8-lane granularity of the AVX2 kernels.
[[nodiscard]] constexpr std::uint32_t padded_size(std::uint32_t n) { return (n + 7u) & ~7u; }

/// Closed candidate window around one query edge's bounding box, inflated by
/// the batch's maximum rule distance and saturated at the int32 limits (the
/// inflation is computed in 64-bit, so INT32-extreme coordinates clamp
/// instead of wrapping — clamping only widens the window, which is sound).
struct filter_bounds {
  coord_t x_lo, x_hi, y_lo, y_hi;
};

[[nodiscard]] inline filter_bounds make_bounds(coord_t x_lo, coord_t x_hi, coord_t y_lo,
                                               coord_t y_hi, coord_t dist) {
  const auto lo = [](coord_t v, coord_t d) {
    const std::int64_t w = static_cast<std::int64_t>(v) - d;
    return w < std::numeric_limits<coord_t>::min() ? std::numeric_limits<coord_t>::min()
                                                   : static_cast<coord_t>(w);
  };
  const auto hi = [](coord_t v, coord_t d) {
    const std::int64_t w = static_cast<std::int64_t>(v) + d;
    return w > std::numeric_limits<coord_t>::max() ? std::numeric_limits<coord_t>::max()
                                                   : static_cast<coord_t>(w);
  };
  return {lo(x_lo, dist), hi(x_hi, dist), lo(y_lo, dist), hi(y_hi, dist)};
}

/// Borrowed pointers into the padded SoA mirror of a packed-edge array.
struct edge_soa {
  const coord_t* x_lo = nullptr;
  const coord_t* x_hi = nullptr;
  const coord_t* y_lo = nullptr;
  const coord_t* y_hi = nullptr;
};

/// 8-lane candidate filter: bit l of the result is set iff edge base+l's
/// bounding box intersects the closed window `b` (i.e. the pair can possibly
/// violate a rule of the batch). Scalar reference implementation.
[[nodiscard]] inline std::uint32_t filter_mask8_scalar(const edge_soa& soa, std::uint32_t base,
                                                       const filter_bounds& b) {
  std::uint32_t m = 0;
  for (std::uint32_t l = 0; l < 8; ++l) {
    const std::uint32_t j = base + l;
    if (soa.x_lo[j] <= b.x_hi && soa.x_hi[j] >= b.x_lo && soa.y_lo[j] <= b.y_hi &&
        soa.y_hi[j] >= b.y_lo) {
      m |= 1u << l;
    }
  }
  return m;
}

#if ODRC_SIMD_X86
/// AVX2 twin of filter_mask8_scalar: four 8x32 loads, eight compares, one
/// movemask. Must only be called when active() == tier::avx2.
__attribute__((target("avx2"))) [[nodiscard]] inline std::uint32_t filter_mask8_avx2(
    const edge_soa& soa, std::uint32_t base, const filter_bounds& b) {
  const __m256i xl = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(soa.x_lo + base));
  const __m256i xh = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(soa.x_hi + base));
  const __m256i yl = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(soa.y_lo + base));
  const __m256i yh = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(soa.y_hi + base));
  // A lane fails when its box lies strictly outside the window on any axis.
  const __m256i fail = _mm256_or_si256(
      _mm256_or_si256(_mm256_cmpgt_epi32(xl, _mm256_set1_epi32(b.x_hi)),
                      _mm256_cmpgt_epi32(_mm256_set1_epi32(b.x_lo), xh)),
      _mm256_or_si256(_mm256_cmpgt_epi32(yl, _mm256_set1_epi32(b.y_hi)),
                      _mm256_cmpgt_epi32(_mm256_set1_epi32(b.y_lo), yh)));
  return static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(fail))) ^ 0xffu;
}
#endif

/// 8-lane interval filter (the 1-D sibling, used by the host sweepline's
/// live-interval scan): bit l set iff [lo[base+l], hi[base+l]] intersects
/// the closed query interval [q_lo, q_hi].
[[nodiscard]] inline std::uint32_t interval_mask8_scalar(const coord_t* lo, const coord_t* hi,
                                                         std::uint32_t base, coord_t q_lo,
                                                         coord_t q_hi) {
  std::uint32_t m = 0;
  for (std::uint32_t l = 0; l < 8; ++l) {
    const std::uint32_t j = base + l;
    if (lo[j] <= q_hi && hi[j] >= q_lo) m |= 1u << l;
  }
  return m;
}

#if ODRC_SIMD_X86
__attribute__((target("avx2"))) [[nodiscard]] inline std::uint32_t interval_mask8_avx2(
    const coord_t* lo, const coord_t* hi, std::uint32_t base, coord_t q_lo, coord_t q_hi) {
  const __m256i vlo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + base));
  const __m256i vhi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + base));
  const __m256i fail = _mm256_or_si256(_mm256_cmpgt_epi32(vlo, _mm256_set1_epi32(q_hi)),
                                       _mm256_cmpgt_epi32(_mm256_set1_epi32(q_lo), vhi));
  return static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(fail))) ^ 0xffu;
}
#endif

/// Dispatched interval filter.
[[nodiscard]] inline std::uint32_t interval_mask8(tier t, const coord_t* lo, const coord_t* hi,
                                                  std::uint32_t base, coord_t q_lo, coord_t q_hi) {
#if ODRC_SIMD_X86
  if (t == tier::avx2) return interval_mask8_avx2(lo, hi, base, q_lo, q_hi);
#else
  (void)t;
#endif
  return interval_mask8_scalar(lo, hi, base, q_lo, q_hi);
}

/// Visit every index j in [begin, end) whose SoA box passes the filter,
/// 8 lanes at a time; `fn(j)` runs the exact scalar predicate on survivors.
/// `lanes_active` accumulates the number of surviving lanes (the
/// simd:lanes_active trace counter). `t` is the tier captured at enqueue
/// time — dispatching here (not per lane) keeps the branch out of the hot
/// loop body.
template <typename Fn>
inline void for_candidates(tier t, const edge_soa& soa, std::uint32_t begin, std::uint32_t end,
                           const filter_bounds& b, std::uint64_t& lanes_active, Fn&& fn) {
  if (begin >= end) return;
  for (std::uint32_t base = begin & ~7u; base < end; base += 8) {
    std::uint32_t m;
#if ODRC_SIMD_X86
    m = t == tier::avx2 ? filter_mask8_avx2(soa, base, b) : filter_mask8_scalar(soa, base, b);
#else
    (void)t;
    m = filter_mask8_scalar(soa, base, b);
#endif
    // Mask off lanes outside [begin, end): head lanes of the first (unaligned)
    // block and tail lanes when end % 8 != 0 — padding values never matter.
    if (base < begin) m &= ~((1u << (begin - base)) - 1u);
    if (base + 8 > end) m &= (1u << (end - base)) - 1u;
    lanes_active += static_cast<std::uint32_t>(__builtin_popcount(m));
    while (m != 0) {
      const std::uint32_t j = base + static_cast<std::uint32_t>(__builtin_ctz(m));
      fn(j);
      m &= m - 1;
    }
  }
}

/// First index j in [lo, hi) with keys[j] > bound, where keys is ascending
/// (the parallel sweep's kernel-1 range scan). Scalar reference: classic
/// upper_bound binary search — the pre-SIMD behavior.
[[nodiscard]] inline std::uint32_t range_end_scalar(const coord_t* keys, std::uint32_t lo,
                                                    std::uint32_t hi, coord_t bound) {
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (keys[mid] <= bound) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

#if ODRC_SIMD_X86
/// AVX2 range scan: check ranges are usually short (an edge's candidates sit
/// right after it in the sorted order), so probe 8-wide linearly for a few
/// blocks and fall back to binary search for the rare long range. `keys`
/// must be padded to padded_size(hi). Result is identical to
/// range_end_scalar for every input.
__attribute__((target("avx2"))) [[nodiscard]] inline std::uint32_t range_end_avx2(
    const coord_t* keys, std::uint32_t lo, std::uint32_t hi, coord_t bound) {
  constexpr std::uint32_t probe_blocks = 8;  // 64 candidates before bisecting
  const __m256i vbound = _mm256_set1_epi32(bound);
  std::uint32_t base = lo & ~7u;
  for (std::uint32_t p = 0; p < probe_blocks && base < hi; ++p, base += 8) {
    const __m256i k = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + base));
    std::uint32_t gt =
        static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(k, vbound))));
    if (base < lo) gt &= ~((1u << (lo - base)) - 1u);  // lanes before lo don't count
    if (gt != 0) {
      const std::uint32_t j = base + static_cast<std::uint32_t>(__builtin_ctz(gt));
      return j < hi ? j : hi;
    }
  }
  return range_end_scalar(keys, base < hi ? (base > lo ? base : lo) : hi, hi, bound);
}
#endif

/// Dispatched range scan.
[[nodiscard]] inline std::uint32_t range_end(tier t, const coord_t* keys, std::uint32_t lo,
                                             std::uint32_t hi, coord_t bound) {
#if ODRC_SIMD_X86
  if (t == tier::avx2) return range_end_avx2(keys, lo, hi, bound);
#else
  (void)t;
#endif
  return range_end_scalar(keys, lo, hi, bound);
}

}  // namespace odrc::simd
