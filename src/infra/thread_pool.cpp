#include "infra/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace odrc {

thread_pool::thread_pool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void thread_pool::parallel_for(std::size_t begin, std::size_t end,
                               const std::function<void(std::size_t)>& f) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t blocks = std::min(n, worker_count() + 1);
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::vector<std::future<void>> futs;
  futs.reserve(blocks - 1);
  for (std::size_t b = 1; b < blocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &f] {
      for (std::size_t i = lo; i < hi; ++i) f(i);
    }));
  }
  // Caller runs the first block, keeping a single-worker pool deadlock-free.
  for (std::size_t i = begin; i < std::min(end, begin + chunk); ++i) f(i);
  for (auto& fut : futs) fut.get();
}

thread_pool& thread_pool::global() {
  static thread_pool pool{[] {
    if (const char* env = std::getenv("ODRC_WORKERS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }()};
  return pool;
}

}  // namespace odrc
