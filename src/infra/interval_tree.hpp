// Dynamic interval tree (paper Section IV-D).
//
// "An interval tree is a binary search tree that stores an interval I in the
//  highest node satisfying u in I, where u is the key of this node.
//  Specifically, every node of the interval tree maintains its intervals in
//  two separate lists: one is sorted by left endpoints, and the other is
//  sorted by right endpoints."
//
// The tree supports the three operations the sweepline needs: insert an
// interval, remove an interval, and report all stored intervals overlapping a
// query interval. Node keys are chosen lazily: the first interval routed to
// an empty subtree creates a node keyed at its midpoint, which keeps the tree
// balanced in practice for sweepline workloads (interval positions are close
// to uniformly distributed across a row). Nodes whose interval lists empty
// out are kept (keys remain useful for routing) but skipped during queries
// via subtree occupancy counts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "infra/interval.hpp"

namespace odrc {

class interval_tree {
 public:
  interval_tree() = default;

  /// Number of intervals currently stored.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Insert `iv`. Duplicate ids are allowed; removal erases one matching
  /// occurrence.
  void insert(const interval& iv);

  /// Remove one interval equal to `iv` (same lo/hi/id). Returns false if no
  /// such interval is stored.
  bool remove(const interval& iv);

  /// Append the ids of all stored intervals overlapping [q.lo, q.hi] to
  /// `out`. Closed-interval semantics: touching endpoints report.
  void query(const interval& q, std::vector<std::uint32_t>& out) const;

  /// Convenience wrapper returning a fresh vector.
  [[nodiscard]] std::vector<std::uint32_t> query(const interval& q) const {
    std::vector<std::uint32_t> out;
    query(q, out);
    return out;
  }

  /// Remove everything (keeps allocated nodes for reuse).
  void clear();

  /// Height of the routing tree; exposed for tests and benchmarks.
  [[nodiscard]] int height() const { return height_of(root_.get()); }

 private:
  struct node {
    coord_t key;
    // Intervals containing `key`, maintained in two sort orders as in the
    // paper: by ascending left endpoint and by descending right endpoint.
    // Queries that end left of the key scan `by_lo` until lo > q.hi; queries
    // that start right of the key scan `by_hi` until hi < q.lo.
    std::vector<interval> by_lo;
    std::vector<interval> by_hi;
    std::size_t subtree_count = 0;  // intervals stored in this subtree
    std::unique_ptr<node> left;
    std::unique_ptr<node> right;

    explicit node(coord_t k) : key(k) {}
  };

  void insert_rec(std::unique_ptr<node>& n, const interval& iv);
  bool remove_rec(node* n, const interval& iv);
  void query_rec(const node* n, const interval& q, std::vector<std::uint32_t>& out) const;
  static int height_of(const node* n);

  std::unique_ptr<node> root_;
  std::size_t size_ = 0;
};

}  // namespace odrc
