// Structured run telemetry (ROADMAP: observability toward production scale).
//
// The coarse phase_profiler (timer.hpp) can only say how much wall-clock each
// named phase consumed in total; it cannot show the paper's Section V-C
// claims — stream overlap, per-row pipelining, device queue behaviour. This
// module records *spans*: begin/end event pairs carrying the recording
// thread, a category, a static name, and up to two numeric labels (row index,
// clip count, rule id, byte counts...), plus counter samples. The recording
// is exported as Chrome trace-event JSON (chrome://tracing, Perfetto's
// legacy-JSON importer) and aggregated into a metrics summary (span count,
// p50/p95/max per category:name, device counter totals).
//
// Overhead contract:
//  - disabled (the default): every instrumentation site costs ONE relaxed
//    atomic load and a predictable branch;
//  - compiled away: building with -DODRC_TRACE_DISABLED turns enabled() into
//    `constexpr false`, so the optimizer deletes the sites entirely;
//  - enabled: events append to per-thread buffers behind a per-buffer mutex
//    that only its owner thread and the exporter ever contend on.
//
// Device streams appear as their own tracks: each simulated stream's
// dispatcher thread names itself "stream N" (device.cpp), so kernel and copy
// spans land on per-stream rows in the viewer — the row-pipeline overlap is
// directly visible.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace odrc::trace {

/// One recorded event. `name`/`cat` and the argument keys must be string
/// literals (or otherwise outlive the recorder) — events store the pointers.
struct event {
  enum class kind : std::uint8_t { begin, end, counter, instant };

  std::uint64_t ts_ns = 0;  ///< nanoseconds since the recorder was enabled
  const char* cat = "";
  const char* name = "";
  kind k = kind::instant;
  const char* arg0_key = nullptr;
  std::int64_t arg0 = 0;
  const char* arg1_key = nullptr;
  std::int64_t arg1 = 0;
};

/// An event plus the track it was recorded on (filled in by snapshot()).
struct tagged_event {
  event e;
  std::uint32_t tid = 0;          ///< stable per-thread track id
  const std::string* thread_name; ///< may be empty, never null
};

/// Aggregated statistics of one span population (category:name).
struct span_stats {
  std::string key;  ///< "cat:name"
  std::size_t count = 0;
  double total_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double max_ms = 0;
};

/// Aggregated counter: the final (maximum) sampled value. Device counters
/// sample running totals, so the maximum is the end-of-run total.
struct counter_stats {
  std::string key;  ///< "cat:name"
  std::int64_t last = 0;
};

/// Per-track busy time: the union-length of the track's spans. For stream
/// tracks this is the occupancy numerator of the Section V-C overlap claim.
struct track_stats {
  std::string name;
  std::uint32_t tid = 0;
  double busy_ms = 0;
};

struct metrics_summary {
  std::vector<span_stats> spans;      ///< sorted by key
  std::vector<counter_stats> counters;///< sorted by key
  std::vector<track_stats> tracks;    ///< sorted by tid
  double wall_ms = 0;                 ///< last event ts (recording wall span)
};

/// The process-wide span recorder.
class recorder {
 public:
  static recorder& instance();

  /// True while recording. The disabled path is the hot path: one relaxed
  /// load, or constant false under ODRC_TRACE_DISABLED.
  static bool enabled() {
#ifdef ODRC_TRACE_DISABLED
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }

  /// Start recording: clears previous events and resets the epoch.
  void enable();
  /// Stop recording. Buffers are kept for export.
  void disable();
  /// Drop all recorded events (thread registrations and names persist).
  void clear();

  /// Name the calling thread's track ("stream 0", "sm worker 3", ...).
  /// Cheap and unconditional — names persist across enable()/clear().
  void name_this_thread(std::string name);

  // --- event emission (call only when enabled(); span/counter below gate) --
  void begin(const char* cat, const char* name, const char* k0 = nullptr,
             std::int64_t a0 = 0, const char* k1 = nullptr, std::int64_t a1 = 0);
  void end(const char* cat, const char* name);
  void counter(const char* cat, const char* name, std::int64_t value);
  void instant(const char* cat, const char* name, const char* k0 = nullptr,
               std::int64_t a0 = 0);

  /// All events recorded so far, tagged with their track, sorted by (tid, ts).
  /// Safe to call while other threads record (they keep appending; the
  /// snapshot is a consistent prefix per thread).
  [[nodiscard]] std::vector<tagged_event> snapshot();

  /// Chrome trace-event JSON ("traceEvents" array of B/E/C/M records).
  void write_chrome_json(std::ostream& os);

  /// Aggregate the recording. Unbalanced spans (begin without end at
  /// snapshot time) are ignored.
  [[nodiscard]] metrics_summary metrics();

  /// Human-readable rendering of metrics() (the CLI's --metrics output).
  void write_metrics(std::ostream& os);

 private:
  struct thread_buf {
    std::mutex mu;
    std::uint32_t tid = 0;
    std::string name;
    std::vector<event> events;
  };

  recorder() = default;
  thread_buf& local_buf();
  void emit(const event& e);

#ifndef ODRC_TRACE_DISABLED
  static std::atomic<bool> enabled_;
#endif
  std::atomic<std::uint64_t> epoch_ns_{0};
  std::mutex registry_mu_;
  std::vector<std::shared_ptr<thread_buf>> buffers_;
  std::uint32_t next_tid_ = 0;
};

/// RAII span: records begin on construction and end on destruction when the
/// recorder is enabled at construction time. Arguments attach to the begin
/// event.
class span {
 public:
  span(const char* cat, const char* name, const char* k0 = nullptr, std::int64_t a0 = 0,
       const char* k1 = nullptr, std::int64_t a1 = 0)
      : cat_(cat), name_(name), active_(recorder::enabled()) {
    if (active_) recorder::instance().begin(cat_, name_, k0, a0, k1, a1);
  }
  ~span() {
    if (active_) recorder::instance().end(cat_, name_);
  }
  span(const span&) = delete;
  span& operator=(const span&) = delete;

 private:
  const char* cat_;
  const char* name_;
  bool active_;
};

/// Gated counter sample.
inline void counter(const char* cat, const char* name, std::int64_t value) {
  if (recorder::enabled()) recorder::instance().counter(cat, name, value);
}

/// Gated instant event.
inline void instant(const char* cat, const char* name, const char* k0 = nullptr,
                    std::int64_t a0 = 0) {
  if (recorder::enabled()) recorder::instance().instant(cat, name, k0, a0);
}

}  // namespace odrc::trace
