#include "infra/interval_tree.hpp"

#include <algorithm>
#include <ostream>

namespace odrc {

std::ostream& operator<<(std::ostream& os, const interval& iv) {
  return os << '[' << iv.lo << ',' << iv.hi << "]#" << iv.id;
}

void interval_tree::insert(const interval& iv) {
  insert_rec(root_, iv);
  ++size_;
}

void interval_tree::insert_rec(std::unique_ptr<node>& n, const interval& iv) {
  if (!n) {
    // Lazily create a routing node keyed at the interval midpoint; the
    // interval is stored here by construction (midpoint is inside it).
    n = std::make_unique<node>(static_cast<coord_t>(iv.lo + (iv.hi - iv.lo) / 2));
  }
  node* cur = n.get();
  ++cur->subtree_count;
  if (iv.contains(cur->key)) {
    auto lo_pos = std::upper_bound(cur->by_lo.begin(), cur->by_lo.end(), iv,
                                   [](const interval& a, const interval& b) { return a.lo < b.lo; });
    cur->by_lo.insert(lo_pos, iv);
    auto hi_pos = std::upper_bound(cur->by_hi.begin(), cur->by_hi.end(), iv,
                                   [](const interval& a, const interval& b) { return a.hi > b.hi; });
    cur->by_hi.insert(hi_pos, iv);
    return;
  }
  insert_rec(iv.hi < cur->key ? cur->left : cur->right, iv);
}

bool interval_tree::remove(const interval& iv) {
  if (!root_ || !remove_rec(root_.get(), iv)) return false;
  --size_;
  return true;
}

bool interval_tree::remove_rec(node* n, const interval& iv) {
  if (!n || n->subtree_count == 0) return false;
  if (iv.contains(n->key)) {
    auto pos = std::find(n->by_lo.begin(), n->by_lo.end(), iv);
    if (pos == n->by_lo.end()) return false;
    n->by_lo.erase(pos);
    n->by_hi.erase(std::find(n->by_hi.begin(), n->by_hi.end(), iv));
    --n->subtree_count;
    return true;
  }
  node* child = iv.hi < n->key ? n->left.get() : n->right.get();
  if (remove_rec(child, iv)) {
    --n->subtree_count;
    return true;
  }
  return false;
}

void interval_tree::query(const interval& q, std::vector<std::uint32_t>& out) const {
  query_rec(root_.get(), q, out);
}

void interval_tree::query_rec(const node* n, const interval& q,
                              std::vector<std::uint32_t>& out) const {
  if (!n || n->subtree_count == 0) return;
  if (q.hi < n->key) {
    // The query lies entirely left of the key. A stored interval [lo,hi]
    // (which contains key, so hi >= key > q.hi) overlaps iff lo <= q.hi;
    // scan the lo-sorted list and stop at the first lo beyond the query.
    for (const interval& iv : n->by_lo) {
      if (iv.lo > q.hi) break;
      out.push_back(iv.id);
    }
    query_rec(n->left.get(), q, out);
  } else if (q.lo > n->key) {
    // Symmetric: stored lo <= key < q.lo, so overlap iff hi >= q.lo; scan
    // the hi-descending list.
    for (const interval& iv : n->by_hi) {
      if (iv.hi < q.lo) break;
      out.push_back(iv.id);
    }
    query_rec(n->right.get(), q, out);
  } else {
    // Key inside the query: every interval stored here overlaps, and both
    // subtrees may hold more.
    for (const interval& iv : n->by_lo) out.push_back(iv.id);
    query_rec(n->left.get(), q, out);
    query_rec(n->right.get(), q, out);
  }
}

void interval_tree::clear() {
  root_.reset();
  size_ = 0;
}

int interval_tree::height_of(const node* n) {
  if (!n) return 0;
  return 1 + std::max(height_of(n->left.get()), height_of(n->right.get()));
}

}  // namespace odrc
