// Relocatable arena storage (ROADMAP item 2, DESIGN.md §9).
//
// The frozen snapshot store serializes every hierarchical structure of a
// `layout_snapshot` into one contiguous blob that a later process maps
// read-only and uses in place — no pointer fix-up, no deserialization of the
// hot arrays. Everything here exists to make that possible:
//
//   - `arena`: an append-only bump allocator over a byte vector. put() copies
//     trivially-copyable values/arrays and returns their byte offset; the
//     final blob is written to disk verbatim, so every recorded offset stays
//     valid wherever the file is mapped.
//   - `offset_ptr<T>` / `offset_span<T>`: typed offsets into the blob,
//     resolved against the mapping base at read time. POD themselves, so
//     they can be embedded in on-disk records.
//   - `flat_hash_builder` / `flat_hash_view`: an open-addressing hash table
//     (u64 key -> u64 value) laid out flat in the arena and probed directly
//     from the mapped file — the offset-addressed replacement for the
//     unordered_maps the mutable snapshot caches use.
//   - `storage_span<T>`: the container the refactored runtime structures
//     hold — either an owning vector (mutable/cold path) or a borrowed view
//     into a mapped blob (frozen path), with an explicit thaw() for
//     copy-on-write edits.
//   - `xxhash64`: section checksums for O(1) load-time validation. In-repo
//     implementation of the public XXH64 algorithm — no external dependency.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace odrc {

// ---------------------------------------------------------------------------
// xxhash64 (XXH64, public algorithm)
// ---------------------------------------------------------------------------

namespace detail {

inline constexpr std::uint64_t xxp1 = 0x9E3779B185EBCA87ull;
inline constexpr std::uint64_t xxp2 = 0xC2B2AE3D27D4EB4Full;
inline constexpr std::uint64_t xxp3 = 0x165667B19E3779F9ull;
inline constexpr std::uint64_t xxp4 = 0x85EBCA77C2B2AE63ull;
inline constexpr std::uint64_t xxp5 = 0x27D4EB2F165667C5ull;

inline std::uint64_t xx_rotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t xx_read64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian hosts only (the whole blob format is LE)
}

inline std::uint32_t xx_read32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t xx_round(std::uint64_t acc, std::uint64_t input) {
  acc += input * xxp2;
  acc = xx_rotl(acc, 31);
  return acc * xxp1;
}

inline std::uint64_t xx_merge_round(std::uint64_t acc, std::uint64_t val) {
  acc ^= xx_round(0, val);
  return acc * xxp1 + xxp4;
}

}  // namespace detail

/// XXH64 of `n` bytes with `seed`. Used for snapshot section checksums.
inline std::uint64_t xxhash64(const void* data, std::size_t n, std::uint64_t seed = 0) {
  using namespace detail;
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + n;
  std::uint64_t h;
  if (n >= 32) {
    std::uint64_t v1 = seed + xxp1 + xxp2;
    std::uint64_t v2 = seed + xxp2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - xxp1;
    const unsigned char* limit = end - 32;
    do {
      v1 = xx_round(v1, xx_read64(p)); p += 8;
      v2 = xx_round(v2, xx_read64(p)); p += 8;
      v3 = xx_round(v3, xx_read64(p)); p += 8;
      v4 = xx_round(v4, xx_read64(p)); p += 8;
    } while (p <= limit);
    h = xx_rotl(v1, 1) + xx_rotl(v2, 7) + xx_rotl(v3, 12) + xx_rotl(v4, 18);
    h = xx_merge_round(h, v1);
    h = xx_merge_round(h, v2);
    h = xx_merge_round(h, v3);
    h = xx_merge_round(h, v4);
  } else {
    h = seed + xxp5;
  }
  h += static_cast<std::uint64_t>(n);
  while (p + 8 <= end) {
    h ^= xx_round(0, xx_read64(p));
    h = xx_rotl(h, 27) * xxp1 + xxp4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(xx_read32(p)) * xxp1;
    h = xx_rotl(h, 23) * xxp2 + xxp3;
    p += 4;
  }
  while (p < end) {
    h ^= *p * xxp5;
    h = xx_rotl(h, 11) * xxp1;
    ++p;
  }
  h ^= h >> 33;
  h *= xxp2;
  h ^= h >> 29;
  h *= xxp3;
  h ^= h >> 32;
  return h;
}

/// splitmix64 finalizer — the probe hash of the flat tables. Collisions only
/// cost extra probes; key equality is exact.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------
// Offset-addressed views
// ---------------------------------------------------------------------------

/// A typed byte offset into a relocatable blob. 0 encodes null (offset 0 is
/// always the file header, never a payload object).
template <typename T>
struct offset_ptr {
  std::uint64_t off = 0;

  [[nodiscard]] const T* get(const void* base) const {
    return off == 0 ? nullptr
                    : reinterpret_cast<const T*>(static_cast<const unsigned char*>(base) + off);
  }
};

/// A typed (offset, count) array view into a relocatable blob.
template <typename T>
struct offset_span {
  std::uint64_t off = 0;
  std::uint64_t count = 0;

  [[nodiscard]] std::span<const T> get(const void* base) const {
    if (count == 0) return {};
    return {reinterpret_cast<const T*>(static_cast<const unsigned char*>(base) + off),
            static_cast<std::size_t>(count)};
  }
};

// ---------------------------------------------------------------------------
// Bump arena
// ---------------------------------------------------------------------------

/// Append-only builder for one relocatable blob. All put() overloads align
/// the write to alignof(T) (zero padding) and return the byte offset.
class arena {
 public:
  [[nodiscard]] std::uint64_t size() const { return bytes_.size(); }

  std::uint64_t align_to(std::size_t alignment) {
    const std::size_t rem = bytes_.size() % alignment;
    if (rem != 0) bytes_.resize(bytes_.size() + (alignment - rem), 0);
    return bytes_.size();
  }

  std::uint64_t put_bytes(const void* data, std::size_t n) {
    const std::uint64_t off = bytes_.size();
    const auto* p = static_cast<const unsigned char*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
    return off;
  }

  template <typename T>
  std::uint64_t put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    align_to(alignof(T));
    return put_bytes(&value, sizeof(T));
  }

  template <typename T>
  offset_span<T> put_array(const T* data, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    align_to(alignof(T));
    if (n == 0) return {0, 0};
    return {put_bytes(data, n * sizeof(T)), n};
  }

  template <typename T>
  offset_span<T> put_array(std::span<const T> s) {
    return put_array(s.data(), s.size());
  }

  /// Reserve `n` zero bytes (e.g. a header patched after the payload is
  /// known) and return their offset.
  std::uint64_t put_zeros(std::size_t n) {
    const std::uint64_t off = bytes_.size();
    bytes_.resize(bytes_.size() + n, 0);
    return off;
  }

  /// Patch a previously reserved record in place.
  template <typename T>
  void patch(std::uint64_t off, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(off + sizeof(T) <= bytes_.size());
    std::memcpy(bytes_.data() + off, &value, sizeof(T));
  }

  [[nodiscard]] const unsigned char* data() const { return bytes_.data(); }
  [[nodiscard]] const std::vector<unsigned char>& bytes() const { return bytes_; }

 private:
  std::vector<unsigned char> bytes_;
};

// ---------------------------------------------------------------------------
// Flat open-addressing hash (u64 key -> u64 value), usable in place
// ---------------------------------------------------------------------------

/// One bucket of the on-disk table. `empty_key` never collides with real
/// keys: snapshot keys pack (cell_id << 32) | u32(layer) and cell_id
/// 0xFFFFFFFF is db::invalid_cell, which is never stored.
struct flat_hash_bucket {
  std::uint64_t key = ~0ull;
  std::uint64_t value = 0;
};

inline constexpr std::uint64_t flat_hash_empty_key = ~0ull;

class flat_hash_builder {
 public:
  void insert(std::uint64_t key, std::uint64_t value) {
    assert(key != flat_hash_empty_key);
    entries_.push_back({key, value});
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Lay the table out in `a`: u64 bucket_count followed by the bucket
  /// array, sized to keep load factor <= 0.5 (power of two for mask probing).
  /// Returns the offset of the bucket_count word.
  std::uint64_t write(arena& a) const {
    std::uint64_t buckets = 8;
    while (buckets < entries_.size() * 2) buckets *= 2;
    std::vector<flat_hash_bucket> table(buckets);
    for (const flat_hash_bucket& e : entries_) {
      std::uint64_t i = mix64(e.key) & (buckets - 1);
      while (table[i].key != flat_hash_empty_key) {
        assert(table[i].key != e.key);  // duplicate insert
        i = (i + 1) & (buckets - 1);
      }
      table[i] = e;
    }
    a.align_to(alignof(std::uint64_t));
    const std::uint64_t off = a.put(buckets);
    a.put_array(table.data(), table.size());
    return off;
  }

 private:
  std::vector<flat_hash_bucket> entries_;
};

/// Read-side view of a table written by flat_hash_builder, probing the
/// mapped bytes directly.
class flat_hash_view {
 public:
  flat_hash_view() = default;
  flat_hash_view(const void* base, std::uint64_t off) {
    const auto* p = static_cast<const unsigned char*>(base) + off;
    std::memcpy(&buckets_, p, sizeof(buckets_));
    table_ = reinterpret_cast<const flat_hash_bucket*>(p + sizeof(std::uint64_t));
  }

  [[nodiscard]] bool find(std::uint64_t key, std::uint64_t& value) const {
    if (buckets_ == 0) return false;
    std::uint64_t i = mix64(key) & (buckets_ - 1);
    for (std::uint64_t probes = 0; probes < buckets_; ++probes) {
      const flat_hash_bucket& b = table_[i];
      if (b.key == key) {
        value = b.value;
        return true;
      }
      if (b.key == flat_hash_empty_key) return false;
      i = (i + 1) & (buckets_ - 1);
    }
    return false;
  }

  /// Bytes the table occupies in the blob (for section accounting).
  [[nodiscard]] std::uint64_t byte_size() const {
    return sizeof(std::uint64_t) + buckets_ * sizeof(flat_hash_bucket);
  }

 private:
  std::uint64_t buckets_ = 0;
  const flat_hash_bucket* table_ = nullptr;
};

// ---------------------------------------------------------------------------
// storage_span: owning vector OR borrowed view into a mapped blob
// ---------------------------------------------------------------------------

/// The array type of the refactored snapshot structures. Owning mode behaves
/// like a std::vector (the mutable/cold path builds through it); frozen mode
/// borrows a span of mapped memory (the blob outlives the span via the
/// shared mapping handle the snapshot holds). thaw() converts frozen ->
/// owning by copying — the copy-on-write step of an edit session.
template <typename T>
class storage_span {
 public:
  storage_span() = default;
  storage_span(std::vector<T> v) : own_(std::move(v)) { sync(); }

  // Owning copies/moves must re-point data_ at their own vector; frozen
  // copies keep borrowing the shared mapping.
  storage_span(const storage_span& o)
      : own_(o.own_), data_(o.data_), size_(o.size_), frozen_(o.frozen_) {
    if (!frozen_) sync();
  }
  storage_span& operator=(const storage_span& o) {
    if (this == &o) return *this;
    own_ = o.own_;
    data_ = o.data_;
    size_ = o.size_;
    frozen_ = o.frozen_;
    if (!frozen_) sync();
    return *this;
  }
  storage_span(storage_span&& o) noexcept
      : own_(std::move(o.own_)), data_(o.data_), size_(o.size_), frozen_(o.frozen_) {
    if (!frozen_) sync();
    o.own_.clear();
    o.data_ = nullptr;
    o.size_ = 0;
    o.frozen_ = false;
  }
  storage_span& operator=(storage_span&& o) noexcept {
    if (this == &o) return *this;
    own_ = std::move(o.own_);
    data_ = o.data_;
    size_ = o.size_;
    frozen_ = o.frozen_;
    if (!frozen_) sync();
    o.own_.clear();
    o.data_ = nullptr;
    o.size_ = 0;
    o.frozen_ = false;
    return *this;
  }

  /// Borrow `s` (mapped memory). The caller guarantees the backing mapping
  /// outlives this object.
  void adopt(std::span<const T> s) {
    own_.clear();
    data_ = s.data();
    size_ = s.size();
    frozen_ = true;
  }

  /// Frozen -> owning copy; no-op when already owning.
  void thaw() {
    if (!frozen_) return;
    own_.assign(data_, data_ + size_);
    frozen_ = false;
    sync();
  }

  [[nodiscard]] bool frozen() const { return frozen_; }

  // --- owning-mode mutation (asserts on a frozen span) ---
  void assign(std::size_t n, const T& value) {
    assert(!frozen_);
    own_.assign(n, value);
    sync();
  }
  void assign(std::vector<T> v) {
    own_ = std::move(v);
    frozen_ = false;
    sync();
  }
  void push_back(const T& value) {
    assert(!frozen_);
    own_.push_back(value);
    sync();
  }
  void reserve(std::size_t n) {
    assert(!frozen_);
    own_.reserve(n);
    sync();
  }
  void clear() {
    own_.clear();
    frozen_ = false;
    sync();
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(!frozen_);
    return own_[i];
  }

  // --- reads (both modes) ---
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }
  [[nodiscard]] std::span<const T> span() const { return {data_, size_}; }
  operator std::span<const T>() const { return span(); }
  [[nodiscard]] std::vector<T> to_vector() const { return {data_, data_ + size_}; }

 private:
  void sync() {
    data_ = own_.data();
    size_ = own_.size();
  }

  std::vector<T> own_;
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  bool frozen_ = false;
};

}  // namespace odrc
