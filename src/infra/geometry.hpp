// OpenDRC reproduction — infrastructure layer.
//
// Integer geometry primitives used throughout the engine: points, rectangles
// (axis-aligned MBRs), directed axis-parallel edges, rectilinear polygons and
// GDSII-style affine transforms (translate / mirror / rotate by multiples of
// 90 degrees / integral magnification).
//
// All coordinates are 32-bit database units (1 dbu = 1 nm in the bundled
// ASAP7-like workloads), matching the 4-byte signed integers of the GDSII
// stream format. Derived quantities that can overflow 32 bits (areas, squared
// distances) are computed in 64-bit.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <span>
#include <vector>

namespace odrc {

/// Database-unit coordinate type (GDSII XY records are 4-byte signed).
using coord_t = std::int32_t;
/// Wide type for products of coordinates (areas, squared distances).
using area_t = std::int64_t;

/// A point in database units.
struct point {
  coord_t x = 0;
  coord_t y = 0;

  friend constexpr bool operator==(const point&, const point&) = default;
  friend constexpr auto operator<=>(const point&, const point&) = default;

  constexpr point operator+(const point& o) const { return {static_cast<coord_t>(x + o.x), static_cast<coord_t>(y + o.y)}; }
  constexpr point operator-(const point& o) const { return {static_cast<coord_t>(x - o.x), static_cast<coord_t>(y - o.y)}; }
};

std::ostream& operator<<(std::ostream& os, const point& p);

/// Closed axis-aligned rectangle [x_min, x_max] x [y_min, y_max].
///
/// The empty rectangle is represented by an inverted extent
/// (x_min > x_max or y_min > y_max); `rect{}` is empty. Empty rectangles
/// behave as identity under `join` and as annihilator under `meet`.
struct rect {
  coord_t x_min = std::numeric_limits<coord_t>::max();
  coord_t y_min = std::numeric_limits<coord_t>::max();
  coord_t x_max = std::numeric_limits<coord_t>::min();
  coord_t y_max = std::numeric_limits<coord_t>::min();

  friend constexpr bool operator==(const rect&, const rect&) = default;

  [[nodiscard]] constexpr bool empty() const { return x_min > x_max || y_min > y_max; }
  [[nodiscard]] constexpr coord_t width() const { return static_cast<coord_t>(x_max - x_min); }
  [[nodiscard]] constexpr coord_t height() const { return static_cast<coord_t>(y_max - y_min); }
  [[nodiscard]] constexpr area_t area() const {
    return empty() ? 0 : static_cast<area_t>(width()) * static_cast<area_t>(height());
  }

  /// True iff the two closed rectangles share at least one point.
  [[nodiscard]] constexpr bool overlaps(const rect& o) const {
    return !empty() && !o.empty() && x_min <= o.x_max && o.x_min <= x_max &&
           y_min <= o.y_max && o.y_min <= y_max;
  }

  /// True iff the interiors intersect (touching boundaries do not count).
  [[nodiscard]] constexpr bool overlaps_strictly(const rect& o) const {
    return !empty() && !o.empty() && x_min < o.x_max && o.x_min < x_max &&
           y_min < o.y_max && o.y_min < y_max;
  }

  [[nodiscard]] constexpr bool contains(const point& p) const {
    return x_min <= p.x && p.x <= x_max && y_min <= p.y && p.y <= y_max;
  }

  [[nodiscard]] constexpr bool contains(const rect& o) const {
    return !o.empty() && x_min <= o.x_min && o.x_max <= x_max && y_min <= o.y_min &&
           o.y_max <= y_max;
  }

  /// Smallest rectangle covering both operands.
  [[nodiscard]] constexpr rect join(const rect& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {std::min(x_min, o.x_min), std::min(y_min, o.y_min),
            std::max(x_max, o.x_max), std::max(y_max, o.y_max)};
  }

  /// Intersection; empty if the operands do not overlap.
  [[nodiscard]] constexpr rect meet(const rect& o) const {
    rect r{std::max(x_min, o.x_min), std::max(y_min, o.y_min),
           std::min(x_max, o.x_max), std::min(y_max, o.y_max)};
    return r.empty() ? rect{} : r;
  }

  /// Rectangle inflated by `d` on every side. Used to widen MBRs by a rule
  /// distance so that MBR-disjointness certifies absence of violations
  /// (paper Section IV-C).
  [[nodiscard]] constexpr rect inflated(coord_t d) const {
    if (empty()) return {};
    return {static_cast<coord_t>(x_min - d), static_cast<coord_t>(y_min - d),
            static_cast<coord_t>(x_max + d), static_cast<coord_t>(y_max + d)};
  }

  [[nodiscard]] constexpr rect translated(const point& p) const {
    if (empty()) return {};
    return {static_cast<coord_t>(x_min + p.x), static_cast<coord_t>(y_min + p.y),
            static_cast<coord_t>(x_max + p.x), static_cast<coord_t>(y_max + p.y)};
  }

  /// Extend to cover `p`.
  constexpr void expand(const point& p) {
    x_min = std::min(x_min, p.x);
    y_min = std::min(y_min, p.y);
    x_max = std::max(x_max, p.x);
    y_max = std::max(y_max, p.y);
  }

  static constexpr rect of(point a, point b) {
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x), std::max(a.y, b.y)};
  }
};

std::ostream& operator<<(std::ostream& os, const rect& r);

/// Orientation of a directed axis-parallel polygon edge.
///
/// With vertices stored in clockwise order and positive y pointing up, the
/// polygon interior lies to the LEFT of each directed edge... no: for a
/// clockwise rectilinear polygon the interior lies to the *right* of each
/// directed edge. The orientation therefore tells which side is inside:
/// an edge running east (left-to-right) has the interior below it.
enum class edge_dir : std::uint8_t { east, north, west, south };

[[nodiscard]] constexpr bool is_horizontal(edge_dir d) {
  return d == edge_dir::east || d == edge_dir::west;
}
[[nodiscard]] constexpr edge_dir opposite(edge_dir d) {
  return static_cast<edge_dir>((static_cast<int>(d) + 2) % 4);
}

/// A directed axis-parallel edge of a rectilinear polygon.
struct edge {
  point from;
  point to;

  friend constexpr bool operator==(const edge&, const edge&) = default;

  [[nodiscard]] constexpr bool horizontal() const { return from.y == to.y; }
  [[nodiscard]] constexpr bool vertical() const { return from.x == to.x; }

  [[nodiscard]] constexpr edge_dir dir() const {
    if (horizontal()) return to.x > from.x ? edge_dir::east : edge_dir::west;
    return to.y > from.y ? edge_dir::north : edge_dir::south;
  }

  [[nodiscard]] constexpr coord_t length() const {
    return horizontal() ? static_cast<coord_t>(std::abs(to.x - from.x))
                        : static_cast<coord_t>(std::abs(to.y - from.y));
  }

  [[nodiscard]] constexpr rect mbr() const { return rect::of(from, to); }

  /// The invariant coordinate: y for horizontal edges, x for vertical ones.
  [[nodiscard]] constexpr coord_t level() const { return horizontal() ? from.y : from.x; }

  /// Span along the varying axis, normalized so lo <= hi.
  [[nodiscard]] constexpr coord_t lo() const {
    return horizontal() ? std::min(from.x, to.x) : std::min(from.y, to.y);
  }
  [[nodiscard]] constexpr coord_t hi() const {
    return horizontal() ? std::max(from.x, to.x) : std::max(from.y, to.y);
  }

  [[nodiscard]] constexpr edge reversed() const { return {to, from}; }
};

std::ostream& operator<<(std::ostream& os, const edge& e);

/// Projected overlap length of two parallel edges along their varying axis;
/// zero or negative when the projections do not overlap. This is the
/// "projection length" that conditional spacing rules discriminate on.
[[nodiscard]] constexpr coord_t projection_overlap(const edge& a, const edge& b) {
  return static_cast<coord_t>(std::min(a.hi(), b.hi()) - std::max(a.lo(), b.lo()));
}

/// Saturate a 128-bit intermediate into area_t. Coordinate products near the
/// coord_t limits exceed 64 bits (dx up to 2^32 squares to 2^64); clamping
/// keeps comparisons against realistic rule limits correct instead of
/// wrapping into negative values (signed overflow is UB).
[[nodiscard]] constexpr area_t saturate_area(__int128 v) {
  constexpr __int128 hi = std::numeric_limits<area_t>::max();
  constexpr __int128 lo = -std::numeric_limits<area_t>::max();  // abs()-safe
  return static_cast<area_t>(v > hi ? hi : (v < lo ? lo : v));
}

/// Squared Euclidean distance between two points (saturating: the true value
/// can reach 2^65 for corner-to-corner spans of the coordinate space).
[[nodiscard]] constexpr area_t squared_distance(const point& a, const point& b) {
  const area_t dx = static_cast<area_t>(a.x) - b.x;
  const area_t dy = static_cast<area_t>(a.y) - b.y;
  return saturate_area(static_cast<__int128>(dx) * dx + static_cast<__int128>(dy) * dy);
}

/// Squared Euclidean distance between two axis-parallel edges treated as
/// closed segments.
[[nodiscard]] area_t squared_distance(const edge& a, const edge& b);

/// GDSII structure-reference transform (STRANS): optional mirroring about the
/// x-axis *before* rotation, rotation by a multiple of 90 degrees, integral
/// magnification, then translation.
///
/// OpenDRC restricts rotations to multiples of 90deg (the only
/// rectilinearity-preserving rotations) as the paper's hierarchy reuse logic
/// assumes transforms that keep shapes axis-aligned.
struct transform {
  point offset{};
  std::uint16_t rotation = 0;  ///< degrees / 90, i.e. 0..3
  bool reflect_x = false;      ///< mirror about x-axis (y -> -y) before rotating
  coord_t mag = 1;             ///< integral magnification

  friend constexpr bool operator==(const transform&, const transform&) = default;

  [[nodiscard]] constexpr bool is_identity() const {
    return offset == point{} && rotation == 0 && !reflect_x && mag == 1;
  }

  /// True iff the linear part is the identity (pure translation). Pure
  /// translations preserve *all* geometric check results, so memoized
  /// intra-cell results can always be reused across them (Section IV-C).
  [[nodiscard]] constexpr bool is_translation() const {
    return rotation == 0 && !reflect_x && mag == 1;
  }

  /// True iff distances are preserved (no magnification). Rotations by 90deg
  /// and reflections are isometries of the integer grid.
  [[nodiscard]] constexpr bool is_isometry() const { return mag == 1; }

  [[nodiscard]] constexpr point apply(point p) const {
    coord_t x = static_cast<coord_t>(p.x * mag);
    coord_t y = static_cast<coord_t>(p.y * mag);
    if (reflect_x) y = static_cast<coord_t>(-y);
    coord_t rx = x, ry = y;
    switch (rotation & 3) {
      case 0: break;
      case 1: rx = static_cast<coord_t>(-y); ry = x; break;
      case 2: rx = static_cast<coord_t>(-x); ry = static_cast<coord_t>(-y); break;
      case 3: rx = y; ry = static_cast<coord_t>(-x); break;
    }
    return {static_cast<coord_t>(rx + offset.x), static_cast<coord_t>(ry + offset.y)};
  }

  [[nodiscard]] constexpr rect apply(const rect& r) const {
    if (r.empty()) return {};
    const point a = apply(point{r.x_min, r.y_min});
    const point b = apply(point{r.x_max, r.y_max});
    return rect::of(a, b);
  }

  /// Inverse of an isometry (mag must be 1): inverse().apply(apply(p)) == p.
  /// Used to express one instance's frame in another's (relative-placement
  /// memoization keys in the engine).
  [[nodiscard]] constexpr transform inverse() const {
    // Linear part L = R_rot ∘ F (reflect first). L⁻¹ = F ∘ R_{-rot}, which in
    // reflect-first form is R_{rot} ∘ F when reflected (F R_a F = R_{-a}),
    // and R_{-rot} otherwise.
    transform inv;
    inv.reflect_x = reflect_x;
    inv.rotation = reflect_x ? rotation : static_cast<std::uint16_t>((4 - rotation) & 3);
    inv.mag = 1;
    const point t = inv.apply(offset);  // L⁻¹(offset), since inv.offset is 0 here
    inv.offset = {static_cast<coord_t>(-t.x), static_cast<coord_t>(-t.y)};
    return inv;
  }

  /// Composition: (this * inner).apply(p) == this->apply(inner.apply(p)).
  [[nodiscard]] constexpr transform compose(const transform& inner) const {
    transform out;
    out.mag = static_cast<coord_t>(mag * inner.mag);
    out.reflect_x = reflect_x != inner.reflect_x;
    // Reflection conjugates the rotation direction of the inner transform.
    const int inner_rot = reflect_x ? (4 - inner.rotation) & 3 : inner.rotation & 3;
    out.rotation = static_cast<std::uint16_t>((rotation + inner_rot) & 3);
    out.offset = apply(inner.offset);
    return out;
  }
};

std::ostream& operator<<(std::ostream& os, const transform& t);

/// A rectilinear polygon stored as a clockwise vertex ring (paper Section
/// IV-D: "polygon vertices are stored in clockwise order, so that positional
/// relations of edges are determined accordingly").
///
/// The ring is implicitly closed: an edge runs from vertices[i] to
/// vertices[(i+1) % size].
class polygon {
 public:
  polygon() = default;
  explicit polygon(std::vector<point> vertices) : vertices_(std::move(vertices)) {}

  [[nodiscard]] std::span<const point> vertices() const { return vertices_; }
  [[nodiscard]] std::size_t size() const { return vertices_.size(); }
  [[nodiscard]] bool valid() const { return vertices_.size() >= 4; }

  /// Number of edges (== number of vertices for a closed ring).
  [[nodiscard]] std::size_t edge_count() const { return vertices_.size(); }
  [[nodiscard]] edge edge_at(std::size_t i) const {
    return {vertices_[i], vertices_[(i + 1) % vertices_.size()]};
  }

  /// True iff every edge is axis-parallel and no edge is degenerate.
  [[nodiscard]] bool is_rectilinear() const;

  /// Signed area via the Shoelace Theorem (paper Section IV-D); positive for
  /// counter-clockwise rings, negative for clockwise rings.
  [[nodiscard]] area_t signed_area() const;

  [[nodiscard]] area_t area() const { return std::abs(signed_area()); }

  /// True iff vertices are in clockwise order (signed area < 0).
  [[nodiscard]] bool is_clockwise() const { return signed_area() < 0; }

  /// Reverse the ring in place so that it is clockwise. No-op if already so.
  void make_clockwise();

  [[nodiscard]] rect mbr() const;

  /// Append all edges (directed, clockwise) to `out`.
  void collect_edges(std::vector<edge>& out) const;

  /// Polygon with every vertex transformed. Clockwise orientation is
  /// restored if the transform includes a reflection (which flips it).
  [[nodiscard]] polygon transformed(const transform& t) const;

  /// Point-in-polygon test (even-odd rule); boundary points count as inside.
  [[nodiscard]] bool contains(const point& p) const;

  /// Axis-aligned rectangle as a 4-vertex clockwise polygon.
  static polygon from_rect(const rect& r);

  friend bool operator==(const polygon&, const polygon&) = default;

 private:
  std::vector<point> vertices_;
};

std::ostream& operator<<(std::ostream& os, const polygon& p);

}  // namespace odrc
