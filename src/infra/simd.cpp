#include "infra/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "infra/logger.hpp"

namespace odrc::simd {

namespace {

// Resolved dispatch state. `g_tier` is what every kernel reads; it is only
// ever rewritten under g_mutex by set_mode(), and kernels capture it at
// enqueue time, so an in-flight check never switches tiers.
std::atomic<tier> g_tier{tier::scalar};
std::atomic<mode> g_mode{mode::automatic};
std::atomic<bool> g_initialized{false};
std::mutex g_mutex;

std::optional<mode> env_override() {
  return parse_mode(std::getenv("ODRC_SIMD"));
}

void resolve_and_store(mode m) {
  const bool cpu = cpu_has_avx2();
  const std::optional<mode> env = env_override();
  const tier t = resolve(m, env, cpu);
  if ((m == mode::avx2 || (env && *env == mode::avx2)) && !cpu) {
    log_warn() << "simd: avx2 requested but the CPU does not support it; falling back to scalar";
  }
  g_mode.store(m, std::memory_order_relaxed);
  g_tier.store(t, std::memory_order_release);
  g_initialized.store(true, std::memory_order_release);
}

}  // namespace

bool cpu_has_avx2() {
#if ODRC_SIMD_X86
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

tier resolve(mode requested, std::optional<mode> env_override, bool cpu_avx2) {
  // An explicit off/avx2 (engine_config::simd, --simd, set_mode in tests)
  // beats the environment; the environment beats the probe. ODRC_SIMD is the
  // CI matrix's lever precisely because engines default to automatic.
  mode effective = requested;
  if (effective == mode::automatic && env_override) effective = *env_override;
  switch (effective) {
    case mode::off: return tier::scalar;
    case mode::avx2: return cpu_avx2 ? tier::avx2 : tier::scalar;
    case mode::automatic: break;
  }
  return cpu_avx2 ? tier::avx2 : tier::scalar;
}

std::optional<mode> parse_mode(const char* value) {
  if (value == nullptr || *value == '\0') return std::nullopt;
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "scalar") == 0) return mode::off;
  if (std::strcmp(value, "avx2") == 0) return mode::avx2;
  if (std::strcmp(value, "auto") == 0) return mode::automatic;
  return std::nullopt;
}

void set_mode(mode m) {
  std::lock_guard lock(g_mutex);
  resolve_and_store(m);
}

tier active() {
  if (!g_initialized.load(std::memory_order_acquire)) {
    std::lock_guard lock(g_mutex);
    if (!g_initialized.load(std::memory_order_relaxed)) resolve_and_store(mode::automatic);
  }
  return g_tier.load(std::memory_order_acquire);
}

mode requested() { return g_mode.load(std::memory_order_relaxed); }

const char* tier_name(tier t) { return t == tier::avx2 ? "avx2" : "scalar"; }

const char* mode_name(mode m) {
  switch (m) {
    case mode::off: return "off";
    case mode::avx2: return "avx2";
    case mode::automatic: break;
  }
  return "auto";
}

std::string describe() {
  const char* env = std::getenv("ODRC_SIMD");
  std::string out = "simd: ";
  out += tier_name(active());
  out += " (mode=";
  out += mode_name(requested());
  out += ", env=";
  out += (env != nullptr && *env != '\0') ? env : "-";
  out += ", cpu avx2=";
  out += cpu_has_avx2() ? "yes" : "no";
  out += ")";
  return out;
}

}  // namespace odrc::simd
