// Closed 1-D integer intervals and overlap predicates.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>

#include "infra/geometry.hpp"

namespace odrc {

/// A closed interval [lo, hi] on the integer line, carrying an opaque payload
/// id (typically the index of the MBR / cell the interval belongs to).
struct interval {
  coord_t lo = 0;
  coord_t hi = 0;
  std::uint32_t id = 0;

  friend constexpr bool operator==(const interval&, const interval&) = default;

  [[nodiscard]] constexpr bool valid() const { return lo <= hi; }
  [[nodiscard]] constexpr coord_t length() const { return static_cast<coord_t>(hi - lo); }

  [[nodiscard]] constexpr bool contains(coord_t v) const { return lo <= v && v <= hi; }

  /// Closed-interval overlap (shared endpoint counts).
  [[nodiscard]] constexpr bool overlaps(const interval& o) const {
    return lo <= o.hi && o.lo <= hi;
  }
};

std::ostream& operator<<(std::ostream& os, const interval& iv);

}  // namespace odrc
