// Execution policies and type traits (paper Section V-D, Listing 2).
//
// OpenDRC dispatches its generic functors (sweepline, check drivers) on an
// executor type at compile time: `odrc::execution::sequenced_policy` selects
// the CPU path, a device-stream wrapper selects the (simulated) GPU path.
// The `is_device_executor` trait mirrors the paper's `constexpr if` dispatch
// and avoids runtime branching in hot loops.
#pragma once

#include <type_traits>

namespace odrc::device {
class stream;  // defined in device/device.hpp
}

namespace odrc::execution {

/// Tag type selecting sequential CPU execution.
struct sequenced_policy {};
inline constexpr sequenced_policy seq{};

/// Wrapper around a device stream: operations dispatched with this executor
/// are appended to the stream's ordered asynchronous queue (the analogue of
/// passing a cudaStream_t).
struct device_policy {
  odrc::device::stream* stream = nullptr;
};

template <typename T>
struct is_device_executor : std::false_type {};

template <>
struct is_device_executor<device_policy> : std::true_type {};

template <typename T>
inline constexpr bool is_device_executor_v =
    is_device_executor<std::remove_cv_t<std::remove_reference_t<T>>>::value;

template <typename T>
inline constexpr bool is_sequenced_executor_v =
    std::is_same_v<std::remove_cv_t<std::remove_reference_t<T>>, sequenced_policy>;

template <typename T>
concept executor = is_device_executor_v<T> || is_sequenced_executor_v<T>;

}  // namespace odrc::execution
