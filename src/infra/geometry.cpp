#include "infra/geometry.hpp"

#include <ostream>

namespace odrc {

std::ostream& operator<<(std::ostream& os, const point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const rect& r) {
  if (r.empty()) return os << "[empty]";
  return os << '[' << r.x_min << ',' << r.y_min << " .. " << r.x_max << ',' << r.y_max << ']';
}

std::ostream& operator<<(std::ostream& os, const edge& e) {
  return os << e.from << "->" << e.to;
}

std::ostream& operator<<(std::ostream& os, const transform& t) {
  os << "T{" << t.offset;
  if (t.rotation) os << " R" << t.rotation * 90;
  if (t.reflect_x) os << " MX";
  if (t.mag != 1) os << " x" << t.mag;
  return os << '}';
}

namespace {

// Clamp v into [lo, hi].
constexpr coord_t clamp_coord(coord_t v, coord_t lo, coord_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

// Squared distance from a point to an axis-parallel closed segment.
area_t squared_point_segment(const point& p, const edge& e) {
  if (e.horizontal()) {
    const coord_t cx = clamp_coord(p.x, e.lo(), e.hi());
    return squared_distance(p, point{cx, e.level()});
  }
  const coord_t cy = clamp_coord(p.y, e.lo(), e.hi());
  return squared_distance(p, point{e.level(), cy});
}

}  // namespace

area_t squared_distance(const edge& a, const edge& b) {
  // Axis-parallel segments: the distance is attained either between a vertex
  // of one and the other segment, or — when the segments cross — is zero.
  if (a.horizontal() != b.horizontal()) {
    // Perpendicular pair: they intersect iff each spans the other's level.
    const edge& h = a.horizontal() ? a : b;
    const edge& v = a.horizontal() ? b : a;
    if (h.lo() <= v.level() && v.level() <= h.hi() && v.lo() <= h.level() &&
        h.level() <= v.hi()) {
      return 0;
    }
  } else {
    // Parallel: overlapping projections reduce to level distance.
    if (projection_overlap(a, b) >= 0) {
      const area_t d = static_cast<area_t>(a.level()) - b.level();
      return saturate_area(static_cast<__int128>(d) * d);
    }
  }
  return std::min(std::min(squared_point_segment(a.from, b), squared_point_segment(a.to, b)),
                  std::min(squared_point_segment(b.from, a), squared_point_segment(b.to, a)));
}

bool polygon::is_rectilinear() const {
  if (!valid()) return false;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const edge e = edge_at(i);
    const bool h = e.horizontal();
    const bool v = e.vertical();
    if (h == v) return false;  // diagonal (h==v==false) or degenerate (h==v==true)
  }
  return true;
}

area_t polygon::signed_area() const {
  // Shoelace Theorem: 2A = sum (x_i * y_{i+1} - x_{i+1} * y_i).
  // Accumulate in 128 bits: a single cross term reaches 2^63 for vertices
  // near the coord_t limits, and the partial sums grow with the vertex
  // count, so 64-bit accumulation overflows (UB) long before the final area
  // does. The result saturates to the area_t range — a polygon whose true
  // area exceeds 2^63-1 dbu^2 reports the maximum rather than wrapping
  // negative (which made check_area flag giant polygons as too small).
  if (vertices_.size() < 3) return 0;
  __int128 twice = 0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const point& p = vertices_[i];
    const point& q = vertices_[(i + 1) % vertices_.size()];
    twice += static_cast<__int128>(p.x) * q.y - static_cast<__int128>(q.x) * p.y;
  }
  return saturate_area(twice / 2);
}

void polygon::make_clockwise() {
  if (signed_area() > 0) std::reverse(vertices_.begin(), vertices_.end());
}

rect polygon::mbr() const {
  rect r;
  for (const point& p : vertices_) r.expand(p);
  return r;
}

void polygon::collect_edges(std::vector<edge>& out) const {
  out.reserve(out.size() + vertices_.size());
  for (std::size_t i = 0; i < vertices_.size(); ++i) out.push_back(edge_at(i));
}

polygon polygon::transformed(const transform& t) const {
  std::vector<point> vs;
  vs.reserve(vertices_.size());
  for (const point& p : vertices_) vs.push_back(t.apply(p));
  polygon out{std::move(vs)};
  // A reflection flips orientation; restore the clockwise invariant.
  if (t.reflect_x) out.make_clockwise();
  return out;
}

bool polygon::contains(const point& p) const {
  // Boundary counts as inside: check edges first, then even-odd ray cast.
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const edge e = edge_at(i);
    if (e.horizontal()) {
      if (p.y == e.level() && e.lo() <= p.x && p.x <= e.hi()) return true;
    } else {
      if (p.x == e.level() && e.lo() <= p.y && p.y <= e.hi()) return true;
    }
  }
  // Cast a ray towards +x; count crossings of vertical edges. Horizontal
  // edges never cross a horizontal ray properly; the half-open convention on
  // vertical spans avoids double-counting shared endpoints.
  bool inside = false;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const edge e = edge_at(i);
    if (!e.vertical()) continue;
    const coord_t ylo = e.lo(), yhi = e.hi();
    if (ylo <= p.y && p.y < yhi && e.level() > p.x) inside = !inside;
  }
  return inside;
}

polygon polygon::from_rect(const rect& r) {
  // Clockwise with +y up: start bottom-left, go up, right, down, left.
  return polygon{{{r.x_min, r.y_min}, {r.x_min, r.y_max}, {r.x_max, r.y_max}, {r.x_max, r.y_min}}};
}

std::ostream& operator<<(std::ostream& os, const polygon& p) {
  os << "poly{";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i) os << ' ';
    os << p.vertices()[i];
  }
  return os << '}';
}

}  // namespace odrc
