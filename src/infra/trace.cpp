#include "infra/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <ostream>
#include <string_view>

namespace odrc::trace {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// Minimal JSON string escaping; names are static literals but thread names
// are caller-provided.
void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      os << c;
    }
  }
}

}  // namespace

#ifndef ODRC_TRACE_DISABLED
std::atomic<bool> recorder::enabled_{false};
#endif

recorder& recorder::instance() {
  static recorder r;
  return r;
}

recorder::thread_buf& recorder::local_buf() {
  // The shared_ptr keeps the buffer alive past thread exit: the registry
  // holds a reference, so the exporter never reads freed memory.
  thread_local std::shared_ptr<thread_buf> buf = [this] {
    auto b = std::make_shared<thread_buf>();
    std::lock_guard lk(registry_mu_);
    b->tid = next_tid_++;
    buffers_.push_back(b);
    return b;
  }();
  return *buf;
}

void recorder::enable() {
  clear();
  epoch_ns_.store(now_ns(), std::memory_order_relaxed);
#ifndef ODRC_TRACE_DISABLED
  enabled_.store(true, std::memory_order_release);
#endif
}

void recorder::disable() {
#ifndef ODRC_TRACE_DISABLED
  enabled_.store(false, std::memory_order_release);
#endif
}

void recorder::clear() {
  std::lock_guard lk(registry_mu_);
  for (const auto& b : buffers_) {
    std::lock_guard blk(b->mu);
    b->events.clear();
  }
}

void recorder::name_this_thread(std::string name) {
  thread_buf& b = local_buf();
  std::lock_guard lk(b.mu);
  b.name = std::move(name);
}

void recorder::emit(const event& e) {
  thread_buf& b = local_buf();
  std::lock_guard lk(b.mu);
  b.events.push_back(e);
}

void recorder::begin(const char* cat, const char* name, const char* k0, std::int64_t a0,
                     const char* k1, std::int64_t a1) {
  const std::uint64_t ts = now_ns() - epoch_ns_.load(std::memory_order_relaxed);
  emit({ts, cat, name, event::kind::begin, k0, a0, k1, a1});
}

void recorder::end(const char* cat, const char* name) {
  const std::uint64_t ts = now_ns() - epoch_ns_.load(std::memory_order_relaxed);
  emit({ts, cat, name, event::kind::end, nullptr, 0, nullptr, 0});
}

void recorder::counter(const char* cat, const char* name, std::int64_t value) {
  const std::uint64_t ts = now_ns() - epoch_ns_.load(std::memory_order_relaxed);
  emit({ts, cat, name, event::kind::counter, "value", value, nullptr, 0});
}

void recorder::instant(const char* cat, const char* name, const char* k0, std::int64_t a0) {
  const std::uint64_t ts = now_ns() - epoch_ns_.load(std::memory_order_relaxed);
  emit({ts, cat, name, event::kind::instant, k0, a0, nullptr, 0});
}

std::vector<tagged_event> recorder::snapshot() {
  std::vector<std::shared_ptr<thread_buf>> bufs;
  {
    std::lock_guard lk(registry_mu_);
    bufs = buffers_;
  }
  std::vector<tagged_event> out;
  for (const auto& b : bufs) {
    std::lock_guard blk(b->mu);
    out.reserve(out.size() + b->events.size());
    for (const event& e : b->events) out.push_back({e, b->tid, &b->name});
  }
  // Events are appended in time order per thread; a stable sort by tid keeps
  // that order inside each track. (thread_buf names are only rebound under
  // the buffer mutex we just held; the pointers stay valid — buffers never
  // die while the registry holds them.)
  std::stable_sort(out.begin(), out.end(),
                   [](const tagged_event& a, const tagged_event& b) { return a.tid < b.tid; });
  return out;
}

void recorder::write_chrome_json(std::ostream& os) {
  const std::vector<tagged_event> events = snapshot();
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Track-name metadata first, one per named thread.
  std::uint32_t last_tid = ~0u;
  for (const tagged_event& te : events) {
    if (te.tid == last_tid) continue;
    last_tid = te.tid;
    if (te.thread_name->empty()) continue;
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << te.tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    write_escaped(os, *te.thread_name);
    os << "\"}}";
  }
  for (const tagged_event& te : events) {
    const event& e = te.e;
    const char* ph = "i";
    switch (e.k) {
      case event::kind::begin: ph = "B"; break;
      case event::kind::end: ph = "E"; break;
      case event::kind::counter: ph = "C"; break;
      case event::kind::instant: ph = "i"; break;
    }
    sep();
    // Chrome expects microsecond timestamps; keep ns resolution as decimals.
    os << "{\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << te.tid << ",\"ts\":" << e.ts_ns / 1000
       << "." << (e.ts_ns % 1000) / 100 << ",\"cat\":\"" << e.cat << "\",\"name\":\"" << e.name
       << "\"";
    if (e.arg0_key) {
      os << ",\"args\":{\"" << e.arg0_key << "\":" << e.arg0;
      if (e.arg1_key) os << ",\"" << e.arg1_key << "\":" << e.arg1;
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

metrics_summary recorder::metrics() {
  const std::vector<tagged_event> events = snapshot();
  metrics_summary out;

  struct open_span {
    const char* cat;
    const char* name;
    std::uint64_t ts;
  };
  std::map<std::string, std::vector<double>> durations;  // key -> ms samples
  std::map<std::string, std::int64_t> counters;
  std::map<std::uint32_t, track_stats> tracks;

  std::vector<open_span> stack;
  std::uint32_t cur_tid = ~0u;
  std::uint64_t busy_start = 0;
  for (const tagged_event& te : events) {
    if (te.tid != cur_tid) {
      stack.clear();  // events are grouped by track; spans never cross tracks
      cur_tid = te.tid;
      auto& tr = tracks[cur_tid];
      tr.tid = cur_tid;
      tr.name = *te.thread_name;
    }
    const event& e = te.e;
    out.wall_ms = std::max(out.wall_ms, static_cast<double>(e.ts_ns) / 1e6);
    switch (e.k) {
      case event::kind::begin:
        if (stack.empty()) busy_start = e.ts_ns;
        stack.push_back({e.cat, e.name, e.ts_ns});
        break;
      case event::kind::end: {
        // Match the innermost open span with this cat/name; unmatched ends
        // (recording enabled mid-span) are dropped.
        for (std::size_t i = stack.size(); i-- > 0;) {
          if (std::string_view(stack[i].name) == e.name &&
              std::string_view(stack[i].cat) == e.cat) {
            const double ms = static_cast<double>(e.ts_ns - stack[i].ts) / 1e6;
            durations[std::string(e.cat) + ":" + e.name].push_back(ms);
            stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
            if (stack.empty()) {
              tracks[cur_tid].busy_ms += static_cast<double>(e.ts_ns - busy_start) / 1e6;
            }
            break;
          }
        }
        break;
      }
      case event::kind::counter:
        counters[std::string(e.cat) + ":" + e.name] =
            std::max(counters[std::string(e.cat) + ":" + e.name], e.arg0);
        break;
      case event::kind::instant:
        // Instants carrying a "delta" payload are summable counters (e.g.
        // the per-finish device_check_stats increments from device_sweep).
        if (e.arg0_key && std::string_view(e.arg0_key) == "delta") {
          counters[std::string(e.cat) + ":" + e.name] += e.arg0;
        }
        break;
    }
  }

  for (auto& [key, samples] : durations) {
    std::sort(samples.begin(), samples.end());
    span_stats s;
    s.key = key;
    s.count = samples.size();
    for (const double d : samples) s.total_ms += d;
    s.p50_ms = samples[samples.size() / 2];
    s.p95_ms = samples[(samples.size() * 95) / 100 == samples.size()
                           ? samples.size() - 1
                           : (samples.size() * 95) / 100];
    s.max_ms = samples.back();
    out.spans.push_back(std::move(s));
  }
  for (const auto& [key, v] : counters) out.counters.push_back({key, v});
  for (const auto& [_, tr] : tracks) out.tracks.push_back(tr);
  return out;
}

void recorder::write_metrics(std::ostream& os) {
  const metrics_summary m = metrics();
  os << "trace metrics (wall " << m.wall_ms << " ms)\n";
  os << "  spans:                              count    total_ms      p50_ms      p95_ms      max_ms\n";
  for (const span_stats& s : m.spans) {
    char line[256];
    std::snprintf(line, sizeof(line), "    %-32s %8zu %11.3f %11.4f %11.4f %11.4f\n",
                  s.key.c_str(), s.count, s.total_ms, s.p50_ms, s.p95_ms, s.max_ms);
    os << line;
  }
  os << "  counters (end-of-run totals):\n";
  for (const counter_stats& c : m.counters) {
    os << "    " << c.key << " = " << c.last << "\n";
  }
  os << "  tracks:\n";
  for (const track_stats& t : m.tracks) {
    char line[256];
    std::snprintf(line, sizeof(line), "    tid %-3u %-16s busy %.3f ms (%.1f%% of wall)\n", t.tid,
                  t.name.empty() ? "(host)" : t.name.c_str(), t.busy_ms,
                  m.wall_ms > 0 ? 100.0 * t.busy_ms / m.wall_ms : 0.0);
    os << line;
  }
}

}  // namespace odrc::trace
