// Wall-clock timers and the named phase profiler behind Fig. 4.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace odrc {

/// Simple monotonic stopwatch.
class timer {
 public:
  timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_).count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase durations. The engine records the phases that
/// Fig. 4 of the paper breaks a sequential space check into: "partition",
/// "sweepline", and "edge_check".
///
/// Thread-safe: engine_config::host_parallel clip tasks and check_concurrent
/// rule tasks add phases from worker threads, so every access to the map is
/// serialized on an internal mutex. phases() therefore returns a snapshot by
/// value — holding a reference into a concurrently mutated map was the bug.
class phase_profiler {
 public:
  phase_profiler() = default;
  phase_profiler(const phase_profiler& o) : phases_(o.snapshot()) {}
  phase_profiler(phase_profiler&& o) noexcept : phases_(o.snapshot()) {}
  phase_profiler& operator=(const phase_profiler& o) {
    if (this != &o) {
      auto copy = o.snapshot();
      std::lock_guard lk(mu_);
      phases_ = std::move(copy);
    }
    return *this;
  }
  phase_profiler& operator=(phase_profiler&& o) noexcept {
    return *this = static_cast<const phase_profiler&>(o);
  }

  /// RAII scope: adds elapsed time to `name` on destruction.
  class scope {
   public:
    scope(phase_profiler& prof, std::string name) : prof_(prof), name_(std::move(name)) {}
    ~scope() { prof_.add(name_, t_.seconds()); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    phase_profiler& prof_;
    std::string name_;
    timer t_;
  };

  void add(const std::string& name, double seconds) {
    std::lock_guard lk(mu_);
    phases_[name] += seconds;
  }

  [[nodiscard]] scope measure(std::string name) { return scope{*this, std::move(name)}; }

  /// Snapshot of the accumulated phases (by value: the internal map keeps
  /// changing under concurrent recorders).
  [[nodiscard]] std::map<std::string, double> phases() const { return snapshot(); }

  [[nodiscard]] double total() const {
    std::lock_guard lk(mu_);
    double t = 0;
    for (const auto& [_, s] : phases_) t += s;
    return t;
  }

  /// Fraction of total time spent in `name` (0 when nothing recorded).
  [[nodiscard]] double fraction(const std::string& name) const {
    std::lock_guard lk(mu_);
    double t = 0;
    for (const auto& [_, s] : phases_) t += s;
    if (t <= 0) return 0;
    auto it = phases_.find(name);
    return it == phases_.end() ? 0 : it->second / t;
  }

  void clear() {
    std::lock_guard lk(mu_);
    phases_.clear();
  }

 private:
  [[nodiscard]] std::map<std::string, double> snapshot() const {
    std::lock_guard lk(mu_);
    return phases_;
  }

  mutable std::mutex mu_;
  std::map<std::string, double> phases_;
};

}  // namespace odrc
