// Wall-clock timers and the named phase profiler behind Fig. 4.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace odrc {

/// Simple monotonic stopwatch.
class timer {
 public:
  timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_).count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase durations. The engine records the phases that
/// Fig. 4 of the paper breaks a sequential space check into: "partition",
/// "sweepline", and "edge_check".
class phase_profiler {
 public:
  /// RAII scope: adds elapsed time to `name` on destruction.
  class scope {
   public:
    scope(phase_profiler& prof, std::string name) : prof_(prof), name_(std::move(name)) {}
    ~scope() { prof_.add(name_, t_.seconds()); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    phase_profiler& prof_;
    std::string name_;
    timer t_;
  };

  void add(const std::string& name, double seconds) { phases_[name] += seconds; }

  [[nodiscard]] scope measure(std::string name) { return scope{*this, std::move(name)}; }

  [[nodiscard]] const std::map<std::string, double>& phases() const { return phases_; }

  [[nodiscard]] double total() const {
    double t = 0;
    for (const auto& [_, s] : phases_) t += s;
    return t;
  }

  /// Fraction of total time spent in `name` (0 when nothing recorded).
  [[nodiscard]] double fraction(const std::string& name) const {
    const double t = total();
    if (t <= 0) return 0;
    auto it = phases_.find(name);
    return it == phases_.end() ? 0 : it->second / t;
  }

  void clear() { phases_.clear(); }

 private:
  std::map<std::string, double> phases_;
};

}  // namespace odrc
