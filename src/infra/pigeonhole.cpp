#include "infra/pigeonhole.hpp"

#include <cassert>
#include <stdexcept>

namespace odrc {

pigeonhole_merger::pigeonhole_merger(coord_t domain_lo, coord_t domain_hi)
    : lo_(domain_lo), hi_(domain_hi) {
  if (domain_hi < domain_lo) throw std::invalid_argument("pigeonhole_merger: inverted domain");
  slots_.resize(static_cast<std::size_t>(domain_hi) - domain_lo + 1);
  reset();
}

void pigeonhole_merger::add(coord_t lo, coord_t hi) {
  assert(lo >= lo_ && hi <= hi_ && lo <= hi);
  auto& slot = slots_[static_cast<std::size_t>(lo - lo_)];
  slot = std::max(slot, hi);
}

std::vector<interval> pigeonhole_merger::merged() const {
  std::vector<interval> out;
  // Scan with current interval end e; a slot starting past e opens a new
  // merged interval (Algorithm 1 lines 5-11).
  bool open = false;
  coord_t start = 0;
  coord_t e = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const coord_t l = static_cast<coord_t>(lo_ + static_cast<coord_t>(i));
    const coord_t r = slots_[i];
    if (r < l) continue;  // empty slot
    if (!open) {
      open = true;
      start = l;
      e = r;
    } else if (l > e) {
      out.push_back({start, e, static_cast<std::uint32_t>(out.size())});
      start = l;
      e = r;
    } else {
      e = std::max(e, r);
    }
  }
  if (open) out.push_back({start, e, static_cast<std::uint32_t>(out.size())});
  return out;
}

void pigeonhole_merger::reset() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    // "self - 1" marks an empty slot; see header.
    slots_[i] = static_cast<coord_t>(lo_ + static_cast<coord_t>(i) - 1);
  }
}

std::vector<interval> merge_intervals_by_sort(std::span<const interval> ivs) {
  std::vector<interval> sorted(ivs.begin(), ivs.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const interval& a, const interval& b) { return a.lo < b.lo; });
  std::vector<interval> out;
  for (const interval& iv : sorted) {
    if (!out.empty() && iv.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back({iv.lo, iv.hi, static_cast<std::uint32_t>(out.size())});
    }
  }
  return out;
}

}  // namespace odrc
