#include "infra/bench_harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "infra/trace.hpp"

namespace odrc::bench {

namespace {

double cpu_seconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double env_double(const char* name) {
  if (const char* v = std::getenv(name)) {
    const double x = std::atof(v);
    if (x > 0) return x;
  }
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

stat_summary summarize(std::vector<double> samples) {
  stat_summary out;
  out.count = samples.size();
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.min = samples.front();
  out.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
             static_cast<double>(samples.size());
  const std::size_t mid = samples.size() / 2;
  out.median = samples.size() % 2 ? samples[mid] : 0.5 * (samples[mid - 1] + samples[mid]);
  // Nearest-rank p95 on the sorted samples.
  const std::size_t rank =
      static_cast<std::size_t>(std::ceil(0.95 * static_cast<double>(samples.size())));
  out.p95 = samples[std::min(samples.size() - 1, rank > 0 ? rank - 1 : 0)];
  std::vector<double> dev(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) dev[i] = std::abs(samples[i] - out.median);
  out.mad = median_of(std::move(dev));
  return out;
}

void case_result::finalize() {
  wall = summarize(wall_s);
  cpu = summarize(cpu_s);
  repetitions = wall_s.size();
}

const case_result* suite_report::find(const std::string& name) const {
  for (const case_result& c : cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

double median_or(const suite_report& r, const std::string& name, double fallback) {
  const case_result* c = r.find(name);
  return c && c->error.empty() ? c->wall.median : fallback;
}

double counter_or(const suite_report& r, const std::string& name, const std::string& counter,
                  double fallback) {
  const case_result* c = r.find(name);
  if (!c) return fallback;
  const auto it = c->counters.find(counter);
  return it == c->counters.end() ? fallback : it->second;
}

// ---------------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------------

namespace {

void jstr(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void jnum(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;  // the schema has no NaN/Inf; clamp rather than emit invalid JSON
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void write_stats(std::ostream& os, const char* key, const stat_summary& s,
                 const std::vector<double>& samples) {
  os << '"' << key << "\":{\"median\":";
  jnum(os, s.median);
  os << ",\"mad\":";
  jnum(os, s.mad);
  os << ",\"min\":";
  jnum(os, s.min);
  os << ",\"p95\":";
  jnum(os, s.p95);
  os << ",\"mean\":";
  jnum(os, s.mean);
  os << ",\"samples\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i) os << ',';
    jnum(os, samples[i]);
  }
  os << "]}";
}

}  // namespace

void write_json(std::ostream& os, const suite_report& r) {
  os << "{\"schema\":\"" << schema_name << "\",\"schema_version\":" << schema_version
     << ",\"suite\":";
  jstr(os, r.suite);
  os << ",\"mode\":";
  jstr(os, r.mode);
  os << ",\"scale\":";
  jnum(os, r.scale);
  os << ",\"cases\":[";
  for (std::size_t i = 0; i < r.cases.size(); ++i) {
    const case_result& c = r.cases[i];
    if (i) os << ',';
    os << "\n {\"name\":";
    jstr(os, c.name);
    os << ",\"repetitions\":" << c.repetitions << ",\"warmup\":" << c.warmup;
    if (!c.error.empty()) {
      os << ",\"error\":";
      jstr(os, c.error);
    }
    os << ',';
    write_stats(os, "wall_s", c.wall, c.wall_s);
    os << ',';
    write_stats(os, "cpu_s", c.cpu, c.cpu_s);
    os << ",\"counters\":{";
    bool first = true;
    for (const auto& [k, v] : c.counters) {
      if (!first) os << ',';
      first = false;
      jstr(os, k);
      os << ':';
      jnum(os, v);
    }
    os << "}}";
  }
  os << "\n]}\n";
}

// ---------------------------------------------------------------------------
// JSON parsing (minimal recursive descent — only what the schema needs)
// ---------------------------------------------------------------------------

namespace {

struct jvalue {
  enum class kind { null, boolean, number, string, array, object };
  kind k = kind::null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<jvalue> arr;
  std::vector<std::pair<std::string, jvalue>> obj;

  [[nodiscard]] const jvalue* get(const std::string& key) const {
    for (const auto& [k2, v] : obj) {
      if (k2 == key) return &v;
    }
    return nullptr;
  }
};

class jparser {
 public:
  explicit jparser(const std::string& text) : p_(text.c_str()), end_(p_ + text.size()) {}

  jvalue parse() {
    jvalue v = value();
    ws();
    if (p_ != end_) fail("trailing data after top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("bench json: " + what);
  }

  void ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  char peek() {
    ws();
    if (p_ == end_) fail("unexpected end of input");
    return *p_;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++p_;
  }

  bool lit(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end_ - p_) >= n && std::strncmp(p_, s, n) == 0) {
      p_ += n;
      return true;
    }
    return false;
  }

  jvalue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        jvalue v;
        v.k = jvalue::kind::string;
        v.str = string();
        return v;
      }
      case 't':
      case 'f': {
        jvalue v;
        v.k = jvalue::kind::boolean;
        if (lit("true")) {
          v.b = true;
        } else if (lit("false")) {
          v.b = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!lit("null")) fail("bad literal");
        return {};
      default: return number();
    }
  }

  jvalue object() {
    jvalue v;
    v.k = jvalue::kind::object;
    expect('{');
    if (peek() == '}') {
      ++p_;
      return v;
    }
    while (true) {
      std::string key = (expect('"'), --p_, string());
      expect(':');
      v.obj.emplace_back(std::move(key), value());
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  jvalue array() {
    jvalue v;
    v.k = jvalue::kind::array;
    expect('[');
    if (peek() == ']') {
      ++p_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) fail("unterminated escape");
        switch (*p_++) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end_ - p_ < 4) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p_++;
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // The schema only emits control characters this way; keep the
            // low byte (sufficient for round-tripping our own output).
            out += static_cast<char>(code & 0xff);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (p_ == end_) fail("unterminated string");
    ++p_;  // closing quote
    return out;
  }

  jvalue number() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) fail("expected a value");
    jvalue v;
    v.k = jvalue::kind::number;
    v.num = std::strtod(std::string(start, p_).c_str(), nullptr);
    return v;
  }

  const char* p_;
  const char* end_;
};

double num_or(const jvalue& obj, const char* key, double fallback) {
  const jvalue* v = obj.get(key);
  return v && v->k == jvalue::kind::number ? v->num : fallback;
}

std::string str_or(const jvalue& obj, const char* key, const std::string& fallback) {
  const jvalue* v = obj.get(key);
  return v && v->k == jvalue::kind::string ? v->str : fallback;
}

stat_summary read_stats(const jvalue& obj, const char* key, std::vector<double>& samples_out) {
  stat_summary s;
  const jvalue* v = obj.get(key);
  if (!v || v->k != jvalue::kind::object) return s;
  s.median = num_or(*v, "median", 0);
  s.mad = num_or(*v, "mad", 0);
  s.min = num_or(*v, "min", 0);
  s.p95 = num_or(*v, "p95", 0);
  s.mean = num_or(*v, "mean", 0);
  if (const jvalue* arr = v->get("samples"); arr && arr->k == jvalue::kind::array) {
    for (const jvalue& e : arr->arr) {
      if (e.k == jvalue::kind::number) samples_out.push_back(e.num);
    }
  }
  s.count = samples_out.size();
  return s;
}

}  // namespace

suite_report read_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();  // must outlive the parser's pointers
  jparser parser(text);
  const jvalue root = parser.parse();
  if (root.k != jvalue::kind::object) throw std::runtime_error("bench json: not an object");
  if (str_or(root, "schema", "") != schema_name) {
    throw std::runtime_error("bench json: unknown schema (want '" + std::string(schema_name) +
                             "')");
  }
  const int version = static_cast<int>(num_or(root, "schema_version", 0));
  if (version < 1 || version > schema_version) {
    throw std::runtime_error("bench json: unsupported schema_version " +
                             std::to_string(version));
  }
  suite_report r;
  r.suite = str_or(root, "suite", "");
  r.mode = str_or(root, "mode", "full");
  r.scale = num_or(root, "scale", 1.0);
  if (const jvalue* cases = root.get("cases"); cases && cases->k == jvalue::kind::array) {
    for (const jvalue& jc : cases->arr) {
      if (jc.k != jvalue::kind::object) continue;
      case_result c;
      c.name = str_or(jc, "name", "");
      c.repetitions = static_cast<std::size_t>(num_or(jc, "repetitions", 0));
      c.warmup = static_cast<std::size_t>(num_or(jc, "warmup", 0));
      c.error = str_or(jc, "error", "");
      c.wall = read_stats(jc, "wall_s", c.wall_s);
      c.cpu = read_stats(jc, "cpu_s", c.cpu_s);
      if (const jvalue* ctr = jc.get("counters"); ctr && ctr->k == jvalue::kind::object) {
        for (const auto& [k, v] : ctr->obj) {
          if (v.k == jvalue::kind::number) c.counters[k] = v.num;
        }
      }
      r.cases.push_back(std::move(c));
    }
  }
  return r;
}

suite_report read_json_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("bench json: cannot open '" + path + "'");
  return read_json(is);
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

verdict judge(const stat_summary& baseline, const stat_summary& current,
              const compare_options& o) {
  const double cur_median = current.median * o.scale_current;
  const double cur_mad = current.mad * o.scale_current;
  const double noise = o.mad_k * std::max(baseline.mad, cur_mad);
  const double threshold =
      std::max({o.rel_threshold * baseline.median, noise, o.min_abs_s});
  const double diff = cur_median - baseline.median;
  if (diff > threshold) return verdict::regression;
  if (-diff > threshold) return verdict::improvement;
  return verdict::similar;
}

compare_result compare_reports(const suite_report& baseline, const suite_report& current,
                               const compare_options& o) {
  compare_result out;
  for (const case_result& b : baseline.cases) {
    const case_result* c = current.find(b.name);
    if (!c) {
      out.only_in_baseline.push_back(b.name);
      continue;
    }
    case_delta d;
    d.name = b.name;
    d.base_median = b.wall.median;
    d.cur_median = c->wall.median * o.scale_current;
    d.ratio = b.wall.median > 0 ? d.cur_median / b.wall.median : 1.0;
    d.v = judge(b.wall, c->wall, o);
    if (d.v == verdict::regression) ++out.regressions;
    if (d.v == verdict::improvement) ++out.improvements;
    out.deltas.push_back(std::move(d));

    // Work counters are deterministic; any drift means the algorithm now
    // does different work — worth a note even when timings look flat.
    for (const auto& [key, bval] : b.counters) {
      const auto it = c->counters.find(key);
      if (it == c->counters.end()) continue;
      const double cval = it->second;
      const double denom = std::max(std::abs(bval), 1e-12);
      if (std::abs(cval - bval) / denom > 1e-3) {
        char buf[256];
        std::snprintf(buf, sizeof buf, "%s: counter %s %.6g -> %.6g", b.name.c_str(),
                      key.c_str(), bval, cval);
        out.counter_notes.emplace_back(buf);
      }
    }
  }
  for (const case_result& c : current.cases) {
    if (!baseline.find(c.name)) out.only_in_current.push_back(c.name);
  }
  return out;
}

void write_compare(std::ostream& os, const compare_result& c, const compare_options& o) {
  char line[512];
  std::snprintf(line, sizeof line,
                "%-52s %12s %12s %8s  %s\n", "case", "base-median", "cur-median", "ratio",
                "verdict");
  os << line;
  for (const case_delta& d : c.deltas) {
    const char* v = d.v == verdict::regression    ? "REGRESSION"
                    : d.v == verdict::improvement ? "improved"
                                                  : "~";
    std::snprintf(line, sizeof line, "%-52s %11.6fs %11.6fs %7.2fx  %s\n", d.name.c_str(),
                  d.base_median, d.cur_median, d.ratio, v);
    os << line;
  }
  for (const std::string& n : c.only_in_baseline) os << "  missing in current: " << n << "\n";
  for (const std::string& n : c.only_in_current) os << "  new case: " << n << "\n";
  for (const std::string& n : c.counter_notes) os << "  note: " << n << "\n";
  std::snprintf(line, sizeof line,
                "%zu compared: %zu regressions, %zu improvements "
                "(threshold max(%.0f%%, %.1f*MAD, %.1fms))\n",
                c.deltas.size(), c.regressions, c.improvements, 100 * o.rel_threshold, o.mad_k,
                1e3 * o.min_abs_s);
  os << line;
}

// ---------------------------------------------------------------------------
// case_context
// ---------------------------------------------------------------------------

case_context::case_context(case_result* result, bool quick, double scale, int warmup, int reps,
                           bool trace_rep)
    : result_(result),
      quick_(quick),
      scale_(scale),
      warmup_count_(std::max(0, warmup)),
      rep_count_(std::max(1, reps)),
      trace_rep_(trace_rep) {
  result_->warmup = static_cast<std::size_t>(warmup_count_);
}

void case_context::counter(const std::string& name, double value) {
  result_->counters[name] = value;
}

bool case_context::next_rep() {
  // Close out the repetition that just ran.
  if (phase_ == phase::warmup || phase_ == phase::measured) {
    const double wall = wall_timer_seconds();
    const double cpu = cpu_seconds() - cpu_start_;
    if (phase_ == phase::measured) {
      result_->wall_s.push_back(wall);
      result_->cpu_s.push_back(cpu);
    }
    ++done_in_phase_;
  } else if (phase_ == phase::traced) {
    harvest_trace();
    phase_ = phase::done;
    return false;
  }

  // Advance phases.
  if (phase_ == phase::before) {
    phase_ = warmup_count_ > 0 ? phase::warmup : phase::measured;
    done_in_phase_ = 0;
  }
  if (phase_ == phase::warmup && done_in_phase_ >= warmup_count_) {
    phase_ = phase::measured;
    done_in_phase_ = 0;
  }
  if (phase_ == phase::measured && done_in_phase_ >= rep_count_) {
    if (!trace_rep_) {
      phase_ = phase::done;
      return false;
    }
    phase_ = phase::traced;
    trace::recorder::instance().enable();
  }

  // Start timing the next repetition.
  wall_start_ns_ = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  cpu_start_ = cpu_seconds();
  return true;
}

double case_context::wall_timer_seconds() const {
  const double now_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return (now_ns - wall_start_ns_) * 1e-9;
}

void case_context::harvest_trace() {
  auto& rec = trace::recorder::instance();
  rec.disable();
  const trace::metrics_summary m = rec.metrics();
  for (const trace::counter_stats& c : m.counters) {
    result_->counters["trace:" + c.key] = static_cast<double>(c.last);
  }
  double stream_busy_ms = 0;
  int stream_tracks = 0;
  for (const trace::track_stats& t : m.tracks) {
    if (t.name.rfind("stream", 0) == 0) {
      stream_busy_ms += t.busy_ms;
      ++stream_tracks;
    }
  }
  if (stream_tracks > 0 && m.wall_ms > 0) {
    result_->counters["trace:stream_busy_ms"] = stream_busy_ms;
    result_->counters["trace:stream_occupancy"] =
        stream_busy_ms / (m.wall_ms * stream_tracks);
  }
  rec.clear();
}

// ---------------------------------------------------------------------------
// suite
// ---------------------------------------------------------------------------

suite::suite(std::string name) : name_(std::move(name)) {}

std::optional<int> suite::parse(int argc, char** argv) {
  auto starts = [](const char* s, const char* prefix) {
    return std::strncmp(s, prefix, std::strlen(prefix)) == 0;
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      opts_.quick = true;
    } else if (std::strcmp(a, "--full") == 0) {
      opts_.quick = false;
    } else if (std::strcmp(a, "--list") == 0) {
      opts_.list = true;
    } else if (std::strcmp(a, "--no-json") == 0) {
      opts_.no_json = true;
    } else if (std::strcmp(a, "--no-trace-rep") == 0) {
      opts_.trace_rep = false;
    } else if (starts(a, "--json=")) {
      opts_.json_path = a + 7;
    } else if (starts(a, "--reps=")) {
      opts_.repetitions = std::atoi(a + 7);
    } else if (starts(a, "--repetitions=")) {
      opts_.repetitions = std::atoi(a + 14);
    } else if (starts(a, "--warmup=")) {
      opts_.warmup = std::atoi(a + 9);
    } else if (starts(a, "--scale=")) {
      opts_.scale = std::atof(a + 8);
    } else if (starts(a, "--filter=")) {
      opts_.filter = a + 9;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      std::printf(
          "usage: %s [--quick|--full] [--scale=X] [--reps=N] [--warmup=N]\n"
          "          [--json=PATH] [--no-json] [--no-trace-rep] [--filter=SUBSTR] [--list]\n"
          "Benchmark suite '%s'. Writes BENCH_%s.json unless --no-json.\n",
          argv[0], name_.c_str(), name_.c_str());
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s' (try --help)\n", argv[0], a);
      return 2;
    }
  }
  return std::nullopt;
}

void suite::add(std::string case_name, std::function<void(case_context&)> body) {
  cases_.push_back({std::move(case_name), std::move(body)});
}

int suite::run(const std::function<void(const suite_report&)>& summarize) {
  if (opts_.list) {
    for (const registered_case& c : cases_) std::printf("%s\n", c.name.c_str());
    return 0;
  }

  const double scale = opts_.scale > 0 ? opts_.scale
                       : env_double("ODRC_BENCH_SCALE") > 0
                           ? env_double("ODRC_BENCH_SCALE")
                           : (opts_.quick ? 0.25 : 1.0);
  const int reps = opts_.repetitions > 0 ? opts_.repetitions
                   : env_double("ODRC_BENCH_REPEATS") > 0
                       ? static_cast<int>(env_double("ODRC_BENCH_REPEATS"))
                       : (opts_.quick ? 3 : 5);
  const int warmup = opts_.warmup >= 0 ? opts_.warmup : 1;

  suite_report report;
  report.suite = name_;
  report.mode = opts_.quick ? "quick" : "full";
  report.scale = scale;

  std::size_t failed = 0;
  for (const registered_case& rc : cases_) {
    if (!opts_.filter.empty() && rc.name.find(opts_.filter) == std::string::npos) continue;
    case_result result;
    result.name = rc.name;
    case_context ctx(&result, opts_.quick, scale, warmup, reps, opts_.trace_rep);
    try {
      rc.body(ctx);
    } catch (const std::exception& e) {
      result.error = e.what();
      ++failed;
    }
    // A body that threw mid-loop may have left the recorder on.
    if (!result.error.empty()) trace::recorder::instance().disable();
    result.finalize();
    report.cases.push_back(std::move(result));
    std::fprintf(stderr, "[%s] %-48s %s\n", name_.c_str(), rc.name.c_str(),
                 report.cases.back().error.empty() ? "done" : "FAILED");
  }

  std::printf("\nSUITE %s: %zu cases (mode=%s, scale=%.2f, warmup=%d, reps=%d%s)\n",
              name_.c_str(), report.cases.size(), report.mode.c_str(), scale, warmup, reps,
              opts_.trace_rep ? ", +1 trace rep" : "");
  std::printf("%-52s %11s %11s %11s %11s %11s\n", "case", "median(s)", "mad(s)", "min(s)",
              "p95(s)", "cpu-med(s)");
  for (const case_result& c : report.cases) {
    if (!c.error.empty()) {
      std::printf("%-52s FAILED: %s\n", c.name.c_str(), c.error.c_str());
      continue;
    }
    std::printf("%-52s %11.6f %11.6f %11.6f %11.6f %11.6f\n", c.name.c_str(), c.wall.median,
                c.wall.mad, c.wall.min, c.wall.p95, c.cpu.median);
  }

  if (summarize) summarize(report);

  if (!opts_.no_json) {
    const std::string path =
        opts_.json_path.empty() ? "BENCH_" + name_ + ".json" : opts_.json_path;
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "%s: cannot write '%s'\n", name_.c_str(), path.c_str());
      return 1;
    }
    write_json(os, report);
    std::printf("wrote %s (%zu cases)\n", path.c_str(), report.cases.size());
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace odrc::bench
