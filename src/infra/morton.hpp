// Morton (Z-order) encoding for spatially coherent packing.
//
// The layer-wise hierarchy builder sorts leaf MBRs by the Morton code of
// their centers before bulk-loading, which keeps spatially close shapes
// close in memory and improves query locality.
#pragma once

#include <cstdint>

#include "infra/geometry.hpp"

namespace odrc {

/// Interleave the low 32 bits of v with zeros: bit i of v moves to bit 2i.
[[nodiscard]] constexpr std::uint64_t morton_spread(std::uint32_t v) {
  std::uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

/// 64-bit Morton code of an (x, y) pair of unsigned 32-bit values.
[[nodiscard]] constexpr std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y) {
  return morton_spread(x) | (morton_spread(y) << 1);
}

/// Morton code of a point, biased so negative coordinates order correctly
/// (signed coordinates are shifted into the unsigned range).
[[nodiscard]] constexpr std::uint64_t morton_code(const point& p) {
  const std::uint32_t ux = static_cast<std::uint32_t>(static_cast<std::int64_t>(p.x) + 0x80000000ll);
  const std::uint32_t uy = static_cast<std::uint32_t>(static_cast<std::int64_t>(p.y) + 0x80000000ll);
  return morton_encode(ux, uy);
}

/// Morton code of a rectangle's center (empty rects map to code 0).
[[nodiscard]] constexpr std::uint64_t morton_code(const rect& r) {
  if (r.empty()) return 0;
  return morton_code(point{static_cast<coord_t>(r.x_min + r.width() / 2),
                           static_cast<coord_t>(r.y_min + r.height() / 2)});
}

}  // namespace odrc
