// Minimal leveled logger (paper Section V-A: "various program utilities
// (timer, logger, etc.)").
//
// Thread-safe, printf-free: messages are composed with operator<< into a
// per-call buffer then emitted atomically. The global level is controlled
// programmatically or via the ODRC_LOG env var (trace|debug|info|warn|error).
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace odrc {

enum class log_level : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

class logger {
 public:
  static logger& instance();

  void set_level(log_level lvl) { level_ = lvl; }
  [[nodiscard]] log_level level() const { return level_; }
  [[nodiscard]] bool enabled(log_level lvl) const {
    return static_cast<int>(lvl) >= static_cast<int>(level_);
  }

  void write(log_level lvl, std::string_view msg);

  /// Builder that accumulates a message and emits it on destruction.
  class line {
   public:
    line(logger& lg, log_level lvl) : lg_(lg), lvl_(lvl), live_(lg.enabled(lvl)) {}
    ~line() {
      if (live_) lg_.write(lvl_, os_.str());
    }
    line(const line&) = delete;
    line& operator=(const line&) = delete;

    template <typename T>
    line& operator<<(const T& v) {
      if (live_) os_ << v;
      return *this;
    }

   private:
    logger& lg_;
    log_level lvl_;
    bool live_;
    std::ostringstream os_;
  };

 private:
  logger();
  log_level level_ = log_level::warn;
  std::mutex mutex_;
};

inline logger::line log_trace() { return {logger::instance(), log_level::trace}; }
inline logger::line log_debug() { return {logger::instance(), log_level::debug}; }
inline logger::line log_info() { return {logger::instance(), log_level::info}; }
inline logger::line log_warn() { return {logger::instance(), log_level::warn}; }
inline logger::line log_error() { return {logger::instance(), log_level::error}; }

}  // namespace odrc
