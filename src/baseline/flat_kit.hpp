// Shared flat-evaluation primitives for the baseline checkers: checks over a
// vector of already-flattened polygons. Used by flat_checker (whole layout)
// and tile_checker (per tile).
#pragma once

#include <span>
#include <vector>

#include "checks/poly_checks.hpp"
#include "db/flatten.hpp"
#include "engine/engine.hpp"
#include "sweep/sweepline.hpp"

namespace odrc::baseline::detail {

using checks::violation;

/// Spacing over a flat polygon set: per-polygon notches + MBR-sweepline
/// candidate pairs + edge checks.
inline void flat_spacing(std::span<const db::flat_polygon> polys, db::layer_t layer,
                         coord_t min_space, engine::check_report& report) {
  for (const db::flat_polygon& fp : polys) {
    checks::check_spacing_notch(fp.poly, layer, min_space, report.violations,
                                report.check_stats);
  }
  std::vector<rect> mbrs(polys.size());
  for (std::size_t i = 0; i < polys.size(); ++i) mbrs[i] = polys[i].poly.mbr();
  sweep::overlap_pairs_inflated(
      mbrs, min_space,
      [&](std::uint32_t i, std::uint32_t j) {
        checks::check_spacing(polys[i].poly, polys[j].poly, layer, min_space, report.violations,
                              report.check_stats);
      },
      &report.sweep_stats);
}

/// Enclosure over flat inner/outer polygon sets: sweepline over the combined
/// MBR list for (inner, outer) candidates, edge checks, containment
/// aggregation, uncontained reports.
inline void flat_enclosure(std::span<const db::flat_polygon> inner_polys,
                           std::span<const db::flat_polygon> outer_polys, db::layer_t inner,
                           db::layer_t outer, coord_t min_enclosure,
                           engine::check_report& report,
                           bool report_uncontained_shapes = true) {
  const std::size_t ni = inner_polys.size();
  std::vector<rect> mbrs(ni + outer_polys.size());
  for (std::size_t i = 0; i < ni; ++i) mbrs[i] = inner_polys[i].poly.mbr();
  for (std::size_t j = 0; j < outer_polys.size(); ++j) {
    mbrs[ni + j] = outer_polys[j].poly.mbr();
  }
  std::vector<std::uint8_t> contained(ni, 0);
  sweep::overlap_pairs_inflated(
      mbrs, min_enclosure,
      [&](std::uint32_t i, std::uint32_t j) {
        if ((i < ni) == (j < ni)) return;  // same-side pair
        const std::uint32_t ii = std::min(i, j);
        const std::uint32_t oj = std::max(i, j) - static_cast<std::uint32_t>(ni);
        const bool ok = checks::check_enclosure(inner_polys[ii].poly, outer_polys[oj].poly,
                                                inner, outer, min_enclosure, report.violations,
                                                report.check_stats);
        if (ok) contained[ii] = 1;
      },
      &report.sweep_stats);
  if (report_uncontained_shapes) {
    for (std::size_t i = 0; i < ni; ++i) {
      if (!contained[i]) {
        checks::report_uncontained(inner_polys[i].poly, inner, outer, report.violations);
      }
    }
  }
}

}  // namespace odrc::baseline::detail
