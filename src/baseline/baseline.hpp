// Baseline design rule checkers the paper compares against (Section VI).
//
// All baselines share the violation semantics of checks/edge_checks.hpp, so
// their outputs are set-equal to OpenDRC's (the integration tests assert
// this); they differ in candidate enumeration strategy — which is exactly
// what Tables I and II measure.
//
//  - flat_checker  — KLayout "flat mode" analogue: the hierarchy is fully
//    flattened, then shapes are processed with a single global sweepline.
//    No hierarchy reuse, no partition.
//  - deep_checker  — KLayout "deep (hierarchy) mode" analogue: intra-master
//    results are computed once per master, but inter-instance interactions
//    are evaluated per occurrence through a global sweepline over instance
//    MBRs, with no relative-placement memoization and no row partition.
//  - tile_checker  — KLayout "tiling mode" analogue: the layout extent is
//    cut into a grid of tiles, each tile is evaluated flat over the shapes
//    intersecting it plus a rule-distance halo, and tiles run on a worker
//    pool (KLayout's multi-CPU mode). A violation is attributed to the tile
//    containing its reference point so the merged output is duplicate-free.
//  - xcheck       — reimplementation of X-Check's vertical sweeping GPU
//    algorithm (Section 4.1 of [12], reimplemented by the paper as well):
//    the layer is flattened, ALL edges are packed into one flat array and
//    checked by the two-kernel device sweep along y. No hierarchy use, no
//    partition. X-Check cannot run area checks (Table I's empty column).
#pragma once

#include <optional>

#include "db/layout.hpp"
#include "engine/engine.hpp"

namespace odrc::baseline {

using engine::check_report;

/// KLayout flat-mode analogue.
class flat_checker {
 public:
  check_report run_width(const db::library& lib, db::layer_t layer, coord_t min_width);
  check_report run_area(const db::library& lib, db::layer_t layer, area_t min_area);
  check_report run_spacing(const db::library& lib, db::layer_t layer, coord_t min_space);
  check_report run_enclosure(const db::library& lib, db::layer_t inner, db::layer_t outer,
                             coord_t min_enclosure);
};

/// KLayout deep-mode analogue.
class deep_checker {
 public:
  check_report run_width(const db::library& lib, db::layer_t layer, coord_t min_width);
  check_report run_area(const db::library& lib, db::layer_t layer, area_t min_area);
  check_report run_spacing(const db::library& lib, db::layer_t layer, coord_t min_space);
  check_report run_enclosure(const db::library& lib, db::layer_t inner, db::layer_t outer,
                             coord_t min_enclosure);
};

/// KLayout tiling-mode analogue.
class tile_checker {
 public:
  /// `tiles_per_axis` controls the grid (KLayout's tile size option).
  explicit tile_checker(std::size_t tiles_per_axis = 8) : tiles_(tiles_per_axis) {}

  check_report run_width(const db::library& lib, db::layer_t layer, coord_t min_width);
  check_report run_area(const db::library& lib, db::layer_t layer, area_t min_area);
  check_report run_spacing(const db::library& lib, db::layer_t layer, coord_t min_space);
  check_report run_enclosure(const db::library& lib, db::layer_t inner, db::layer_t outer,
                             coord_t min_enclosure);

 private:
  std::size_t tiles_;
};

/// X-Check reimplementation (vertical sweep on the simulated device).
class xcheck {
 public:
  xcheck();
  ~xcheck();
  xcheck(const xcheck&) = delete;
  xcheck& operator=(const xcheck&) = delete;

  check_report run_width(const db::library& lib, db::layer_t layer, coord_t min_width);
  /// X-Check does not support area checks; returns nullopt (Table I).
  std::optional<check_report> run_area(const db::library& lib, db::layer_t layer,
                                       area_t min_area);
  check_report run_spacing(const db::library& lib, db::layer_t layer, coord_t min_space);
  check_report run_enclosure(const db::library& lib, db::layer_t inner, db::layer_t outer,
                             coord_t min_enclosure);

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace odrc::baseline
