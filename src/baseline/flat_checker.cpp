#include "baseline/baseline.hpp"
#include "baseline/flat_kit.hpp"

namespace odrc::baseline {

using engine::check_report;

namespace {

// Flatten `layer` under every top cell of `lib` into one vector, timing the
// expansion in the "flatten" phase (flat mode pays this cost every run).
std::vector<db::flat_polygon> flatten_tops(const db::library& lib, db::layer_t layer,
                                           check_report& report) {
  auto t = report.phases.measure("flatten");
  std::vector<db::flat_polygon> polys;
  for (const db::cell_id top : lib.top_cells()) {
    auto part = db::flatten_layer(lib, top, layer);
    polys.insert(polys.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
  }
  report.instances += polys.size();
  return polys;
}

}  // namespace

check_report flat_checker::run_width(const db::library& lib, db::layer_t layer,
                                     coord_t min_width) {
  check_report report;
  const auto polys = flatten_tops(lib, layer, report);
  auto t = report.phases.measure("edge_check");
  for (const db::flat_polygon& fp : polys) {
    checks::check_width(fp.poly, layer, min_width, report.violations, report.check_stats);
  }
  return report;
}

check_report flat_checker::run_area(const db::library& lib, db::layer_t layer, area_t min_area) {
  check_report report;
  const auto polys = flatten_tops(lib, layer, report);
  auto t = report.phases.measure("edge_check");
  for (const db::flat_polygon& fp : polys) {
    checks::check_area(fp.poly, layer, min_area, report.violations, report.check_stats);
  }
  return report;
}

check_report flat_checker::run_spacing(const db::library& lib, db::layer_t layer,
                                       coord_t min_space) {
  check_report report;
  const auto polys = flatten_tops(lib, layer, report);
  auto t = report.phases.measure("edge_check");
  detail::flat_spacing(polys, layer, min_space, report);
  return report;
}

check_report flat_checker::run_enclosure(const db::library& lib, db::layer_t inner,
                                         db::layer_t outer, coord_t min_enclosure) {
  check_report report;
  const auto inner_polys = flatten_tops(lib, inner, report);
  const auto outer_polys = flatten_tops(lib, outer, report);
  auto t = report.phases.measure("edge_check");
  detail::flat_enclosure(inner_polys, outer_polys, inner, outer, min_enclosure, report);
  return report;
}

}  // namespace odrc::baseline
