#include "baseline/baseline.hpp"
#include "baseline/flat_kit.hpp"
#include "device/device.hpp"
#include "sweep/device_sweep.hpp"

namespace odrc::baseline {

using engine::check_report;

// X-Check's vertical sweeping algorithm (Section 4.1 of [12]): flatten the
// layer, pack every edge into one array sorted by y, and run the two-kernel
// check (range scan + per-edge range checks) over the whole layout in one
// batch. No hierarchy reuse, no layout partition — the contrast the paper's
// Tables I/II measure against OpenDRC's partitioned, hierarchy-pruned flow.
struct xcheck::impl {
  device::stream stream{device::context::instance()};
};

xcheck::xcheck() : impl_(std::make_unique<impl>()) {}
xcheck::~xcheck() = default;

namespace {

std::vector<db::flat_polygon> flatten_tops(const db::library& lib, db::layer_t layer,
                                           check_report& report) {
  auto t = report.phases.measure("flatten");
  std::vector<db::flat_polygon> polys;
  for (const db::cell_id top : lib.top_cells()) {
    auto part = db::flatten_layer(lib, top, layer);
    polys.insert(polys.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
  }
  report.instances += polys.size();
  return polys;
}

std::vector<sweep::packed_edge> pack_all(std::span<const db::flat_polygon> polys,
                                         std::uint16_t group, std::uint32_t id_base,
                                         std::vector<sweep::packed_edge> edges = {}) {
  for (std::size_t i = 0; i < polys.size(); ++i) {
    sweep::pack_polygon_edges(polys[i].poly, id_base + static_cast<std::uint32_t>(i), group,
                              edges);
  }
  return edges;
}

}  // namespace

check_report xcheck::run_width(const db::library& lib, db::layer_t layer, coord_t min_width) {
  check_report report;
  const auto polys = flatten_tops(lib, layer, report);
  auto t = report.phases.measure("device");
  sweep::device_check_config cfg{sweep::pair_check::width, min_width, layer, layer,
                                 sweep::sweep_axis::y};
  // X-Check is sweep-based throughout; no brute-force fallback.
  sweep::device_check_edges_with(impl_->stream, pack_all(polys, 0, 0), cfg,
                                 sweep::executor_choice::sweep, report.violations,
                                 report.device_stats);
  return report;
}

std::optional<check_report> xcheck::run_area(const db::library&, db::layer_t, area_t) {
  // X-Check does not implement area checks (paper Table I leaves the column
  // empty: "X-Check is unable to perform area checks").
  return std::nullopt;
}

check_report xcheck::run_spacing(const db::library& lib, db::layer_t layer, coord_t min_space) {
  check_report report;
  const auto polys = flatten_tops(lib, layer, report);
  auto t = report.phases.measure("device");
  sweep::device_check_config cfg{sweep::pair_check::spacing, min_space, layer, layer,
                                 sweep::sweep_axis::y};
  sweep::device_check_edges_with(impl_->stream, pack_all(polys, 0, 0), cfg,
                                 sweep::executor_choice::sweep, report.violations,
                                 report.device_stats);
  return report;
}

check_report xcheck::run_enclosure(const db::library& lib, db::layer_t inner, db::layer_t outer,
                                   coord_t min_enclosure) {
  check_report report;
  const auto inner_polys = flatten_tops(lib, inner, report);
  const auto outer_polys = flatten_tops(lib, outer, report);
  {
    auto t = report.phases.measure("device");
    sweep::device_check_config cfg{sweep::pair_check::enclosure, min_enclosure, inner, outer,
                                   sweep::sweep_axis::y};
    auto edges = pack_all(inner_polys, 0, 0);
    edges = pack_all(outer_polys, 1, static_cast<std::uint32_t>(inner_polys.size()),
                     std::move(edges));
    sweep::device_check_edges_with(impl_->stream, edges, cfg, sweep::executor_choice::sweep,
                                   report.violations, report.device_stats);
  }
  // Containment on the host (as in the flat baseline).
  auto t = report.phases.measure("edge_check");
  for (const db::flat_polygon& ip : inner_polys) {
    const rect im = ip.poly.mbr();
    bool contained = false;
    for (const db::flat_polygon& op : outer_polys) {
      if (!op.poly.mbr().contains(im)) continue;
      bool all_in = true;
      for (const point& p : ip.poly.vertices()) {
        if (!op.poly.contains(p)) {
          all_in = false;
          break;
        }
      }
      if (all_in) {
        contained = true;
        break;
      }
    }
    if (!contained) {
      checks::report_uncontained(ip.poly, inner, outer, report.violations);
    }
  }
  return report;
}

}  // namespace odrc::baseline
