#include <mutex>

#include "baseline/baseline.hpp"
#include "baseline/flat_kit.hpp"
#include "infra/thread_pool.hpp"

namespace odrc::baseline {

using engine::check_report;

namespace {

// Reference point of a violation for tile ownership: the minimum corner of
// the joined geometry. Each violation is attributed to exactly one tile, so
// merging per-tile outputs yields no duplicates.
point ref_point(const checks::violation& v) {
  const rect m = v.e1.mbr().join(v.e2.mbr());
  return {m.x_min, m.y_min};
}

struct tile_grid {
  rect extent;
  std::size_t n;  // tiles per axis

  [[nodiscard]] rect tile_rect(std::size_t tx, std::size_t ty) const {
    const auto w = static_cast<std::int64_t>(extent.width()) + 1;
    const auto h = static_cast<std::int64_t>(extent.height()) + 1;
    const auto x0 = static_cast<coord_t>(extent.x_min + w * static_cast<std::int64_t>(tx) / static_cast<std::int64_t>(n));
    const auto x1 = static_cast<coord_t>(extent.x_min + w * static_cast<std::int64_t>(tx + 1) / static_cast<std::int64_t>(n) - 1);
    const auto y0 = static_cast<coord_t>(extent.y_min + h * static_cast<std::int64_t>(ty) / static_cast<std::int64_t>(n));
    const auto y1 = static_cast<coord_t>(extent.y_min + h * static_cast<std::int64_t>(ty + 1) / static_cast<std::int64_t>(n) - 1);
    return {x0, y0, x1, y1};
  }
};

std::vector<db::flat_polygon> flatten_tops(const db::library& lib, db::layer_t layer,
                                           check_report& report) {
  auto t = report.phases.measure("flatten");
  std::vector<db::flat_polygon> polys;
  for (const db::cell_id top : lib.top_cells()) {
    auto part = db::flatten_layer(lib, top, layer);
    polys.insert(polys.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
  }
  report.instances += polys.size();
  return polys;
}

rect extent_of(std::span<const db::flat_polygon> polys) {
  rect e;
  for (const db::flat_polygon& fp : polys) e = e.join(fp.poly.mbr());
  return e;
}

// Run `tile_fn(tile_proper, clipped_polygon_subset, local_report)` for every
// tile on the worker pool and merge results. The subset contains polygons
// whose MBR overlaps the halo-inflated tile.
template <typename TileFn>
void for_each_tile(std::span<const db::flat_polygon> polys, std::size_t tiles, coord_t halo,
                   check_report& report, TileFn&& tile_fn) {
  if (polys.empty()) return;
  const tile_grid grid{extent_of(polys), tiles};
  const std::size_t total = tiles * tiles;
  std::vector<check_report> locals(total);

  thread_pool::global().parallel_for(0, total, [&](std::size_t t) {
    const std::size_t tx = t % tiles, ty = t / tiles;
    const rect proper = grid.tile_rect(tx, ty);
    const rect with_halo = proper.inflated(halo);
    std::vector<db::flat_polygon> subset;
    for (const db::flat_polygon& fp : polys) {
      if (with_halo.overlaps(fp.poly.mbr())) subset.push_back(fp);
    }
    tile_fn(proper, subset, locals[t]);
  });
  for (check_report& lr : locals) report.merge_from(std::move(lr));
}

// Keep only violations owned by `proper`.
void filter_owned(const rect& proper, check_report& local) {
  std::erase_if(local.violations, [&](const checks::violation& v) {
    return !proper.contains(ref_point(v));
  });
}

}  // namespace

check_report tile_checker::run_width(const db::library& lib, db::layer_t layer,
                                     coord_t min_width) {
  check_report report;
  const auto polys = flatten_tops(lib, layer, report);
  auto t = report.phases.measure("edge_check");
  for_each_tile(polys, tiles_, min_width, report,
                [&](const rect& proper, std::span<const db::flat_polygon> subset,
                    check_report& local) {
                  for (const db::flat_polygon& fp : subset) {
                    // A polygon is owned by the tile containing its MBR min
                    // corner, so each is checked exactly once.
                    const rect m = fp.poly.mbr();
                    if (!proper.contains(point{m.x_min, m.y_min})) continue;
                    checks::check_width(fp.poly, layer, min_width, local.violations,
                                        local.check_stats);
                  }
                });
  return report;
}

check_report tile_checker::run_area(const db::library& lib, db::layer_t layer, area_t min_area) {
  check_report report;
  const auto polys = flatten_tops(lib, layer, report);
  auto t = report.phases.measure("edge_check");
  for_each_tile(polys, tiles_, 0, report,
                [&](const rect& proper, std::span<const db::flat_polygon> subset,
                    check_report& local) {
                  for (const db::flat_polygon& fp : subset) {
                    const rect m = fp.poly.mbr();
                    if (!proper.contains(point{m.x_min, m.y_min})) continue;
                    checks::check_area(fp.poly, layer, min_area, local.violations,
                                       local.check_stats);
                  }
                });
  return report;
}

check_report tile_checker::run_spacing(const db::library& lib, db::layer_t layer,
                                       coord_t min_space) {
  check_report report;
  const auto polys = flatten_tops(lib, layer, report);
  auto t = report.phases.measure("edge_check");
  for_each_tile(polys, tiles_, min_space, report,
                [&](const rect& proper, std::span<const db::flat_polygon> subset,
                    check_report& local) {
                  detail::flat_spacing(subset, layer, min_space, local);
                  filter_owned(proper, local);
                });
  return report;
}

check_report tile_checker::run_enclosure(const db::library& lib, db::layer_t inner,
                                         db::layer_t outer, coord_t min_enclosure) {
  check_report report;
  const auto inner_polys = flatten_tops(lib, inner, report);
  const auto outer_polys = flatten_tops(lib, outer, report);
  auto t = report.phases.measure("edge_check");
  // Tile over the union of both layers so every interacting pair lands in
  // some tile's halo region. Containment must look at the full halo subset,
  // and a via is owned by the tile containing its MBR min corner.
  if (inner_polys.empty()) return report;

  std::vector<db::flat_polygon> all(inner_polys);
  all.insert(all.end(), outer_polys.begin(), outer_polys.end());
  const tile_grid grid{extent_of(all), tiles_};
  const std::size_t total = tiles_ * tiles_;
  std::vector<check_report> locals(total);

  thread_pool::global().parallel_for(0, total, [&](std::size_t ti) {
    const std::size_t tx = ti % tiles_, ty = ti / tiles_;
    const rect proper = grid.tile_rect(tx, ty);
    const rect with_halo = proper.inflated(min_enclosure);
    std::vector<db::flat_polygon> in_sub, out_sub;
    for (const db::flat_polygon& fp : inner_polys) {
      if (with_halo.overlaps(fp.poly.mbr())) in_sub.push_back(fp);
    }
    for (const db::flat_polygon& fp : outer_polys) {
      if (with_halo.overlaps(fp.poly.mbr())) out_sub.push_back(fp);
    }
    check_report& local = locals[ti];
    detail::flat_enclosure(in_sub, out_sub, inner, outer, min_enclosure, local,
                           /*report_uncontained_shapes=*/false);
    filter_owned(proper, local);
    // Uncontained vias owned by this tile: the halo subset contains every
    // metal shape that could contain a via owned by the tile (a containing
    // shape overlaps the via, hence the halo).
    const std::size_t ni = in_sub.size();
    std::vector<std::uint8_t> contained(ni, 0);
    for (std::size_t i = 0; i < ni; ++i) {
      const rect im = in_sub[i].poly.mbr();
      if (!proper.contains(point{im.x_min, im.y_min})) {
        contained[i] = 1;  // not owned here; skip
        continue;
      }
      for (const db::flat_polygon& op : out_sub) {
        if (!op.poly.mbr().contains(im)) continue;
        bool all_in = true;
        for (const point& p : in_sub[i].poly.vertices()) {
          if (!op.poly.contains(p)) {
            all_in = false;
            break;
          }
        }
        if (all_in) {
          contained[i] = 1;
          break;
        }
      }
      if (!contained[i]) {
        checks::report_uncontained(in_sub[i].poly, inner, outer, local.violations);
      }
    }
  });
  for (check_report& lr : locals) report.merge_from(std::move(lr));
  return report;
}

}  // namespace odrc::baseline
