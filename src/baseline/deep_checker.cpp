#include <unordered_map>

#include "baseline/baseline.hpp"
#include "baseline/flat_kit.hpp"
#include "db/mbr_index.hpp"
#include "engine/task_prune.hpp"

namespace odrc::baseline {

using checks::violation;
using engine::check_report;
using engine::transformed;

namespace {

// Master-side view: the polygons a cell contributes directly to one layer.
struct master_view {
  std::vector<const polygon*> polys;
  std::vector<rect> mbrs;
  rect total;
};

master_view view_of(const db::cell& c, db::layer_t layer) {
  master_view v;
  for (const db::polygon_elem& p : c.polygons()) {
    if (p.layer != layer) continue;
    v.polys.push_back(&p.poly);
    v.mbrs.push_back(p.poly.mbr());
    v.total = v.total.join(v.mbrs.back());
  }
  return v;
}

struct inst {
  db::cell_id master;
  transform t;
  rect mbr;
};

std::vector<inst> instances_of(const db::library& lib, const db::mbr_index& idx,
                               db::layer_t layer,
                               std::unordered_map<db::cell_id, master_view>& views) {
  std::vector<inst> out;
  for (const db::cell_id top : lib.top_cells()) {
    for (const db::placed_cell& pc : db::flat_instance_list(idx, top, layer)) {
      auto it = views.find(pc.master);
      if (it == views.end()) it = views.emplace(pc.master, view_of(lib.at(pc.master), layer)).first;
      if (it->second.polys.empty()) continue;
      out.push_back({pc.master, pc.to_top, pc.to_top.apply(it->second.total)});
    }
  }
  return out;
}

}  // namespace

check_report deep_checker::run_width(const db::library& lib, db::layer_t layer,
                                     coord_t min_width) {
  check_report report;
  const db::mbr_index idx(lib);
  std::unordered_map<db::cell_id, master_view> views;
  const auto insts = instances_of(lib, idx, layer, views);
  report.instances += insts.size();

  auto t = report.phases.measure("edge_check");
  // Hierarchical evaluation: one computation per master, reused per
  // instance — the strength of KLayout's deep mode for intra checks.
  std::unordered_map<db::cell_id, std::vector<violation>> memo;
  for (const inst& in : insts) {
    if (!in.t.is_isometry()) {
      // Magnified variant: distances scale, master results do not transfer.
      for (const polygon* p : views[in.master].polys) {
        checks::check_width(p->transformed(in.t), layer, min_width, report.violations,
                            report.check_stats);
      }
      continue;
    }
    auto it = memo.find(in.master);
    if (it == memo.end()) {
      ++report.prune.intra_computed;
      std::vector<violation> local;
      for (const polygon* p : views[in.master].polys) {
        checks::check_width(*p, layer, min_width, local, report.check_stats);
      }
      it = memo.emplace(in.master, std::move(local)).first;
    } else {
      ++report.prune.intra_reused;
    }
    for (const violation& lv : it->second) report.violations.push_back(transformed(lv, in.t));
  }
  return report;
}

check_report deep_checker::run_area(const db::library& lib, db::layer_t layer, area_t min_area) {
  check_report report;
  const db::mbr_index idx(lib);
  std::unordered_map<db::cell_id, master_view> views;
  const auto insts = instances_of(lib, idx, layer, views);
  report.instances += insts.size();

  auto t = report.phases.measure("edge_check");
  std::unordered_map<db::cell_id, std::vector<violation>> memo;
  for (const inst& in : insts) {
    if (!in.t.is_isometry()) {
      for (const polygon* p : views[in.master].polys) {
        checks::check_area(p->transformed(in.t), layer, min_area, report.violations,
                           report.check_stats);
      }
      continue;
    }
    auto it = memo.find(in.master);
    if (it == memo.end()) {
      ++report.prune.intra_computed;
      std::vector<violation> local;
      for (const polygon* p : views[in.master].polys) {
        checks::check_area(*p, layer, min_area, local, report.check_stats);
      }
      it = memo.emplace(in.master, std::move(local)).first;
    } else {
      ++report.prune.intra_reused;
    }
    for (const violation& lv : it->second) report.violations.push_back(transformed(lv, in.t));
  }
  return report;
}

check_report deep_checker::run_spacing(const db::library& lib, db::layer_t layer,
                                       coord_t min_space) {
  check_report report;
  const db::mbr_index idx(lib);
  std::unordered_map<db::cell_id, master_view> views;
  const auto insts = instances_of(lib, idx, layer, views);
  report.instances += insts.size();

  // Intra-master spacing: memoized per master.
  {
    auto t = report.phases.measure("edge_check");
    std::unordered_map<db::cell_id, std::vector<violation>> memo;
    for (const inst& in : insts) {
      if (!in.t.is_isometry()) {
        const master_view& v = views[in.master];
        for (const polygon* p : v.polys) {
          checks::check_spacing_notch(p->transformed(in.t), layer, min_space, report.violations,
                                      report.check_stats);
        }
        for (std::size_t i = 0; i < v.polys.size(); ++i) {
          const polygon pi = v.polys[i]->transformed(in.t);
          for (std::size_t j = i + 1; j < v.polys.size(); ++j) {
            checks::check_spacing(pi, v.polys[j]->transformed(in.t), layer, min_space,
                                  report.violations, report.check_stats);
          }
        }
        continue;
      }
      auto it = memo.find(in.master);
      if (it == memo.end()) {
        ++report.prune.intra_computed;
        std::vector<violation> local;
        const master_view& v = views[in.master];
        for (const polygon* p : v.polys) {
          checks::check_spacing_notch(*p, layer, min_space, local, report.check_stats);
        }
        sweep::overlap_pairs_inflated(v.mbrs, min_space,
                                      [&](std::uint32_t i, std::uint32_t j) {
                                        checks::check_spacing(*v.polys[i], *v.polys[j], layer,
                                                              min_space, local,
                                                              report.check_stats);
                                      },
                                      &report.sweep_stats);
        it = memo.emplace(in.master, std::move(local)).first;
      } else {
        ++report.prune.intra_reused;
      }
      for (const violation& lv : it->second) report.violations.push_back(transformed(lv, in.t));
    }
  }

  // Inter-instance interactions: evaluated per occurrence in top coordinates
  // — deep mode re-derives every interaction region, which is where it loses
  // against OpenDRC's relative-placement memoization and row partition (and
  // where it can fall behind even flat mode on interaction-heavy layers, cf.
  // the jpeg M3 row of Table II).
  std::vector<rect> mbrs(insts.size());
  for (std::size_t i = 0; i < insts.size(); ++i) mbrs[i] = insts[i].mbr;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  {
    auto t = report.phases.measure("sweepline");
    sweep::overlap_pairs_inflated(
        mbrs, min_space,
        [&](std::uint32_t i, std::uint32_t j) { pairs.emplace_back(i, j); },
        &report.sweep_stats);
  }
  auto t = report.phases.measure("edge_check");
  for (const auto& [ia, ib] : pairs) {
    ++report.prune.pairs_computed;
    const inst& a = insts[ia];
    const inst& b = insts[ib];
    const master_view& va = views[a.master];
    const master_view& vb = views[b.master];
    // Transform both sides into top coordinates and test MBR-filtered
    // polygon pairs.
    for (std::size_t i = 0; i < va.polys.size(); ++i) {
      const polygon pa = va.polys[i]->transformed(a.t);
      const rect am = pa.mbr().inflated(min_space);
      for (std::size_t j = 0; j < vb.polys.size(); ++j) {
        const polygon pb = vb.polys[j]->transformed(b.t);
        if (!am.overlaps(pb.mbr())) continue;
        checks::check_spacing(pa, pb, layer, min_space, report.violations, report.check_stats);
      }
    }
  }
  return report;
}

check_report deep_checker::run_enclosure(const db::library& lib, db::layer_t inner,
                                         db::layer_t outer, coord_t min_enclosure) {
  check_report report;
  const db::mbr_index idx(lib);
  std::unordered_map<db::cell_id, master_view> inner_views, outer_views;
  const auto inner_insts = instances_of(lib, idx, inner, inner_views);
  // Rebuild views against the outer layer (separate cache).
  const auto outer_insts = instances_of(lib, idx, outer, outer_views);
  report.instances += inner_insts.size() + outer_insts.size();

  const std::size_t ni = inner_insts.size();
  std::vector<rect> mbrs(ni + outer_insts.size());
  for (std::size_t i = 0; i < ni; ++i) mbrs[i] = inner_insts[i].mbr;
  for (std::size_t j = 0; j < outer_insts.size(); ++j) mbrs[ni + j] = outer_insts[j].mbr;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  {
    auto t = report.phases.measure("sweepline");
    sweep::overlap_pairs_inflated(
        mbrs, min_enclosure,
        [&](std::uint32_t i, std::uint32_t j) {
          if ((i < ni) == (j < ni)) return;
          pairs.emplace_back(std::min(i, j), std::max(i, j) - static_cast<std::uint32_t>(ni));
        },
        &report.sweep_stats);
  }

  std::vector<std::vector<std::uint8_t>> contained(ni);
  for (std::size_t i = 0; i < ni; ++i) {
    contained[i].assign(inner_views[inner_insts[i].master].polys.size(), 0);
  }

  auto t = report.phases.measure("edge_check");
  for (const auto& [ii, oj] : pairs) {
    ++report.prune.pairs_computed;
    const inst& a = inner_insts[ii];
    const inst& b = outer_insts[oj];
    const master_view& va = inner_views[a.master];
    const master_view& vb = outer_views[b.master];
    for (std::size_t i = 0; i < va.polys.size(); ++i) {
      const polygon pi = va.polys[i]->transformed(a.t);
      const rect im = pi.mbr().inflated(min_enclosure);
      for (std::size_t j = 0; j < vb.polys.size(); ++j) {
        const polygon pj = vb.polys[j]->transformed(b.t);
        if (!im.overlaps(pj.mbr())) continue;
        if (checks::check_enclosure(pi, pj, inner, outer, min_enclosure, report.violations,
                                    report.check_stats)) {
          contained[ii][i] = 1;
        }
      }
    }
  }
  for (std::size_t i = 0; i < ni; ++i) {
    const inst& a = inner_insts[i];
    const master_view& va = inner_views[a.master];
    for (std::size_t k = 0; k < va.polys.size(); ++k) {
      if (contained[i][k]) continue;
      checks::report_uncontained(va.polys[k]->transformed(a.t), inner, outer, report.violations);
    }
  }
  return report;
}

}  // namespace odrc::baseline
