// Quickstart: the paper's Listing 1 workflow end-to-end.
//
//   1. obtain a layout (here: generate a synthetic ASAP7-like design and
//      round-trip it through a real GDSII stream file, exactly as a user
//      would read a foundry GDS);
//   2. create a DRC engine;
//   3. declare design rules with the chaining selector/predicate DSL;
//   4. check() and inspect the violations.
//
// Run:  ./quickstart [design] [scale]     (defaults: uart 1.0)
#include <cstdio>
#include <filesystem>

#include "engine/engine.hpp"
#include "gdsii/reader.hpp"
#include "gdsii/writer.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace odrc;
  const std::string design = argc > 1 ? argv[1] : "uart";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  // --- 1. get a layout ------------------------------------------------------
  auto spec = workload::spec_for(design, scale);
  spec.inject = {1, 1, 1, 1};  // plant one violation per rule per layer
  const auto generated = workload::generate(spec);

  const std::string gds_path =
      (std::filesystem::temp_directory_path() / (design + ".gds")).string();
  gdsii::write(generated.lib, gds_path);
  std::printf("wrote %s\n", gds_path.c_str());

  // Read it back the way the paper's Listing 1 begins:
  //   auto db = odrc::gdsii::read("path-to-gdsii");
  auto db = gdsii::read(gds_path);
  std::printf("design %s: %zu cells, %llu flat polygons, hierarchy depth %zu\n",
              db.name().c_str(), db.cell_count(),
              static_cast<unsigned long long>(db.expanded_polygon_count()),
              db.hierarchy_depth());

  // --- 2-3. engine + rule deck ---------------------------------------------
  using workload::layers;
  using workload::tech;
  auto engine = odrc::drc_engine{};
  engine.add_rules({
      rules::polygons().is_rectilinear(),
      rules::layer(layers::M1).width().greater_than(tech::wire_width).named("M1.W.1"),
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space).named("M1.S.1"),
      rules::layer(layers::M1).area().greater_than(tech::min_area).named("M1.A.1"),
      rules::layer(layers::V1).enclosed_by(layers::M1).greater_than(tech::via_enclosure)
          .named("V1.M1.EN.1"),
      // User-defined predicate, as in Listing 1's third rule.
      rules::layer(layers::M2).polygons().ensures(
          [](const db::polygon_elem& p) { return p.poly.edge_count() >= 4; }),
  });

  // --- 4. check -------------------------------------------------------------
  const auto report = engine.check(db);
  std::printf("\n%zu violations found:\n", report.violations.size());
  for (const auto& v : report.violations) {
    const rect where = v.e1.mbr().join(v.e2.mbr());
    std::printf("  %-11s layer %d", std::string(checks::rule_kind_name(v.kind)).c_str(),
                v.layer1);
    if (v.layer2 != v.layer1) std::printf("/%d", v.layer2);
    std::printf("  at [%d,%d .. %d,%d]\n", where.x_min, where.y_min, where.x_max, where.y_max);
  }
  std::printf("\nwork: %llu edge pairs tested, %llu pair checks memo-reused\n",
              static_cast<unsigned long long>(report.check_stats.edge_pairs_tested),
              static_cast<unsigned long long>(report.prune.pairs_reused +
                                              report.prune.intra_reused));
  return 0;
}
