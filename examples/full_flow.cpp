// Full physical-verification flow on a paper benchmark design: run the
// complete BEOL rule deck in BOTH engine modes (sequential CPU sweeps and
// parallel device kernels), compare their outputs, and print the Fig. 1-style
// flow statistics — partition shape, hierarchy pruning, device work, and the
// Fig. 4 phase breakdown.
//
// Run:  ./full_flow [design] [scale]      (defaults: aes 0.5)
#include <cstdio>

#include "baseline/baseline.hpp"
#include "engine/engine.hpp"
#include "infra/timer.hpp"
#include "workload/workload.hpp"

namespace {

using namespace odrc;
using workload::layers;
using workload::tech;

void print_report(const char* label, const engine::check_report& r, double seconds) {
  std::printf("%-10s %8.3fs  %6zu violations  rows=%-5zu clips=%-6zu "
              "edge-pairs=%.3fM  memo-reuse=%llu  device-edges=%llu\n",
              label, seconds, r.violations.size(), r.rows, r.clips,
              static_cast<double>(r.check_stats.edge_pairs_tested +
                                  r.device_stats.edge_pairs_tested) /
                  1e6,
              static_cast<unsigned long long>(r.prune.intra_reused + r.prune.pairs_reused),
              static_cast<unsigned long long>(r.device_stats.edges_uploaded));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string design = argc > 1 ? argv[1] : "aes";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  auto spec = workload::spec_for(design, scale);
  spec.inject = {2, 2, 2, 2};
  const auto g = workload::generate(spec);
  std::printf("design %s (scale %.2f): %zu masters, %llu flat polygons, depth %zu\n\n",
              design.c_str(), scale, g.lib.cell_count(),
              static_cast<unsigned long long>(g.lib.expanded_polygon_count()),
              g.lib.hierarchy_depth());

  const std::vector<rules::rule> deck{
      rules::layer(layers::M1).width().greater_than(tech::wire_width).named("M1.W.1"),
      rules::layer(layers::M2).width().greater_than(tech::wire_width).named("M2.W.1"),
      rules::layer(layers::M3).width().greater_than(tech::wire_width).named("M3.W.1"),
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space).named("M1.S.1"),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space).named("M2.S.1"),
      rules::layer(layers::M3).spacing().greater_than(tech::wire_space).named("M3.S.1"),
      rules::layer(layers::M1).area().greater_than(tech::min_area).named("M1.A.1"),
      rules::layer(layers::V1).enclosed_by(layers::M1).greater_than(tech::via_enclosure)
          .named("V1.M1.EN.1"),
      rules::layer(layers::V2).enclosed_by(layers::M2).greater_than(tech::via_enclosure)
          .named("V2.M2.EN.1"),
      rules::layer(layers::V2).enclosed_by(layers::M3).greater_than(tech::via_enclosure)
          .named("V2.M3.EN.1"),
  };

  drc_engine seq({.run_mode = engine::mode::sequential});
  drc_engine par({.run_mode = engine::mode::parallel});

  std::printf("%-12s %-10s %-10s\n", "rule", "seq", "par");
  std::vector<checks::violation> all_seq, all_par;
  engine::check_report seq_total, par_total;
  for (const rules::rule& r : deck) {
    timer ts;
    auto rs = seq.check(g.lib, r);
    const double t_seq = ts.seconds();
    timer tp;
    auto rp = par.check(g.lib, r);
    const double t_par = tp.seconds();
    std::printf("%-12s %8.3fs  %8.3fs   (%zu violations)\n", r.name.c_str(), t_seq, t_par,
                rs.violations.size());
    all_seq.insert(all_seq.end(), rs.violations.begin(), rs.violations.end());
    all_par.insert(all_par.end(), rp.violations.begin(), rp.violations.end());
    seq_total.merge_from(std::move(rs));
    par_total.merge_from(std::move(rp));
  }

  checks::normalize_all(all_seq);
  checks::normalize_all(all_par);
  std::printf("\nsequential and parallel modes agree: %s (%zu violations)\n",
              all_seq == all_par ? "YES" : "NO -- BUG", all_seq.size());

  std::printf("\nflow statistics:\n");
  print_report("sequential", seq_total, 0.0);
  print_report("parallel", par_total, 0.0);

  std::printf("\nFig. 4-style phase breakdown (sequential, all rules):\n");
  const double total = seq_total.phases.total();
  for (const auto& [name, secs] : seq_total.phases.phases()) {
    std::printf("  %-12s %8.4fs  %5.1f%%\n", name.c_str(), secs,
                total > 0 ? 100.0 * secs / total : 0.0);
  }
  return 0;
}
