// A miniature GDSII inspection tool built on the interface layer: reads any
// GDSII stream file and prints library metadata, the structure hierarchy
// with per-layer MBRs, and layer statistics. Demonstrates the reader, the
// mbr_index and the inverted indices as standalone components.
//
// Run:  ./gds_inspect <file.gds>        (no argument: inspects a generated
//                                        sha3 design written to a temp file)
#include <cstdio>
#include <filesystem>

#include "db/mbr_index.hpp"
#include "gdsii/reader.hpp"
#include "gdsii/writer.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace odrc;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    const auto g = workload::generate(workload::spec_for("sha3", 0.3));
    path = (std::filesystem::temp_directory_path() / "sha3.gds").string();
    gdsii::write(g.lib, path);
    std::printf("(no input given; generated %s)\n\n", path.c_str());
  }

  const db::library lib = gdsii::read(path);
  std::printf("library '%s'  user_unit=%g  meter_unit=%g\n", lib.name().c_str(), lib.user_unit,
              lib.meter_unit);
  std::printf("%zu structures, hierarchy depth %zu, %llu flat polygons\n\n", lib.cell_count(),
              lib.hierarchy_depth(),
              static_cast<unsigned long long>(lib.expanded_polygon_count()));

  const db::mbr_index idx(lib);

  std::printf("%-20s %8s %8s %8s %8s  per-layer MBRs\n", "structure", "polys", "srefs", "arefs",
              "texts");
  for (db::cell_id id = 0; id < lib.cell_count(); ++id) {
    const db::cell& c = lib.at(id);
    std::printf("%-20s %8zu %8zu %8zu %8zu  ", c.name().c_str(), c.polygons().size(),
                c.refs().size(), c.arrays().size(), c.texts().size());
    for (const db::layer_t l : idx.layers()) {
      const rect& m = idx.cell_mbr(id, l);
      if (m.empty()) continue;
      std::printf("L%d:[%d,%d..%d,%d] ", l, m.x_min, m.y_min, m.x_max, m.y_max);
    }
    std::printf("\n");
  }

  std::printf("\nlayer statistics (definition-level, from the inverted index):\n");
  for (const db::layer_t l : idx.layers()) {
    const auto& elems = idx.elements_on_layer(l);
    std::uint64_t edges = 0;
    for (const db::element_ref& er : elems) {
      edges += lib.at(er.cell).polygons()[er.poly_index].poly.edge_count();
    }
    std::printf("  layer %-4d %6zu polygons, %8llu edges\n", l, elems.size(),
                static_cast<unsigned long long>(edges));
  }

  // Demonstrate a windowed layer query with subtree pruning (Section IV-A).
  for (const db::cell_id top : lib.top_cells()) {
    const rect full = idx.cell_mbr(top);
    if (full.empty()) continue;
    const rect window{full.x_min, full.y_min,
                      static_cast<coord_t>(full.x_min + full.width() / 4),
                      static_cast<coord_t>(full.y_min + full.height() / 4)};
    std::size_t n = 0;
    const std::uint64_t visited =
        idx.query(top, idx.layers().front(), window, [&](const db::layer_hit&) { ++n; });
    std::printf("\nquery: layer %d in the lower-left quarter of '%s': %zu polygons, "
                "%llu tree nodes visited\n",
                idx.layers().front(), lib.at(top).name().c_str(), n,
                static_cast<unsigned long long>(visited));
  }
  return 0;
}
