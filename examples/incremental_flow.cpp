// Incremental DRC in an edit loop: the workflow a router or layout editor
// drives. A full check populates the violation database; each "fix" edits
// one site and re-checks only a window around the edit with check_region —
// orders of magnitude less work than a full re-run — until the design is
// clean.
//
// Run:  ./incremental_flow
#include <cstdio>

#include "engine/engine.hpp"
#include "infra/timer.hpp"
#include "report/violation_db.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace odrc;
  using workload::layers;
  using workload::tech;

  // A design with spacing violations injected on M2.
  auto spec = workload::spec_for("sha3", 0.6);
  spec.inject = {0, 3, 0, 0};
  auto g = workload::generate(spec);

  drc_engine engine;
  const rules::rule rule =
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space).named("M2.S.1");

  // --- full signoff run -------------------------------------------------------
  timer t_full;
  auto full = engine.check(g.lib, rule);
  const double full_secs = t_full.seconds();
  report::violation_db db(g.lib.name());
  db.add(rule.name, full.violations);
  std::printf("full check: %zu violations in %.4fs (%zu objects examined)\n", db.size(),
              full_secs, full.instances);

  // --- edit/re-check loop ------------------------------------------------------
  // "Fix" = delete the offending pair of shapes (a router would reroute; for
  // the demo we knock out everything inside the violation's halo). We edit a
  // copy of the top cell by rebuilding its polygon list.
  int iteration = 0;
  while (db.size() > 0) {
    const report::entry& worst = db.entries().front();
    const rect edit_box = report::marker_box(worst.v).inflated(40);

    // Apply the edit: drop the M2 polygons inside the edit box.
    const db::cell_id top = g.lib.top_cells().front();
    db::cell edited(std::string(g.lib.at(top).name()) + "_tmp");
    std::size_t removed = 0;
    for (const db::polygon_elem& p : g.lib.at(top).polygons()) {
      if (p.layer == layers::M2 && edit_box.overlaps(p.poly.mbr())) {
        ++removed;
        continue;
      }
      edited.add_polygon(p);
    }
    // Swap the polygon content in place (references are untouched).
    db::cell& target = g.lib.at(top);
    db::cell replacement(std::string(target.name()));
    for (const db::cell_ref& r : target.refs()) replacement.add_ref(r);
    for (const db::cell_array& a : target.arrays()) replacement.add_array(a);
    for (const db::polygon_elem& p : edited.polygons()) replacement.add_polygon(p);
    target = std::move(replacement);

    // Re-check just the edited window.
    timer t_inc;
    auto regional = engine.check_region(g.lib, rule, edit_box);
    const double inc_secs = t_inc.seconds();
    std::printf("  edit %d: removed %zu shapes, re-checked window in %.5fs "
                "(%zu objects) -> %zu local violations\n",
                ++iteration, removed, inc_secs, regional.instances,
                regional.violations.size());

    // Refresh the database: drop entries whose edges touched the edit box,
    // add the re-check results.
    std::vector<checks::violation> remaining;
    for (const report::entry& e : db.entries()) {
      if (!edit_box.overlaps(e.v.e1.mbr()) && !edit_box.overlaps(e.v.e2.mbr())) {
        remaining.push_back(e.v);
      }
    }
    report::violation_db next(g.lib.name());
    next.add(rule.name, remaining);
    next.add(rule.name, regional.violations);
    db = std::move(next);
    if (iteration > 20) break;  // safety valve
  }

  // --- verify against a fresh full check ---------------------------------------
  const auto verify = engine.check(g.lib, rule);
  std::printf("\nconverged after %d edits: incremental database says %zu, full re-check says "
              "%zu violations -> %s\n",
              iteration, db.size(), verify.violations.size(),
              db.size() == verify.violations.size() ? "CONSISTENT" : "MISMATCH");
  return db.size() == verify.violations.size() ? 0 : 1;
}
