// Advanced rule demo: the extensions beyond the four classic checks —
// conditional (PRL) spacing, derived-layer boolean rules (overlap / NOT-CUT
// area), multi-patterning 2-colorability — plus the result-output paths
// (text deck parsing, SVG rendering, GDSII violation markers).
//
// Run:  ./advanced_rules [out_dir]     (default: system temp dir)
#include <cstdio>
#include <filesystem>

#include "engine/deck_parser.hpp"
#include "engine/engine.hpp"
#include "gdsii/writer.hpp"
#include "render/render.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace odrc;
  const std::filesystem::path out_dir =
      argc > 1 ? std::filesystem::path(argv[1]) : std::filesystem::temp_directory_path();

  auto spec = workload::spec_for("ibex", 0.5);
  spec.inject = {1, 1, 1, 1};
  const auto g = workload::generate(spec);
  using workload::layers;
  using workload::tech;

  drc_engine e;

  // --- conditional (PRL) spacing --------------------------------------------
  // Base 18 nm everywhere; runs longer than 1 um must keep 24 nm. The
  // generated M2 tracks run long at exactly 18 nm, so the tier fires.
  {
    const auto r = e.check(g.lib, rules::layer(layers::M2).spacing()
                                      .greater_than(tech::wire_space)
                                      .when_projection_over(1000, 24)
                                      .named("M2.S.PRL"));
    std::printf("M2.S.PRL (18 base / 24 over 1um runs): %zu violations\n",
                r.violations.size());
  }

  // --- derived-layer boolean rules ------------------------------------------
  {
    const area_t via_area = static_cast<area_t>(tech::via_size) * tech::via_size;
    const auto ov = e.check(g.lib, rules::layer(layers::V2).overlap_with(layers::M2)
                                       .area_at_least(via_area)
                                       .named("V2.M2.OV"));
    std::printf("V2.M2.OV (full landing-pad coverage): %zu violations\n", ov.violations.size());

    const auto nc = e.check(g.lib, rules::layer(layers::M1).not_cut_by(layers::V1)
                                       .area_at_least(150)
                                       .named("M1.NC"));
    std::printf("M1.NC (no metal slivers after cut): %zu violations\n", nc.violations.size());
  }

  // --- multi-patterning decomposability --------------------------------------
  {
    const auto mp = e.check(g.lib, rules::layer(layers::M2).two_colorable(20).named("M2.MP"));
    std::printf("M2.MP (2-colorable at 20nm same-mask spacing): %zu violations\n",
                mp.violations.size());
  }

  // --- text deck + result output ---------------------------------------------
  const auto deck = rules::parse_deck(
      "rule M1.W.1     width     layer=19 min=18\n"
      "rule M1.S.1     spacing   layer=19 min=18\n"
      "rule M1.A.1     area      layer=19 min=1000\n"
      "rule V1.M1.EN.1 enclosure inner=21 outer=19 min=5\n");
  drc_engine deck_engine;
  deck_engine.add_rules(deck);
  const auto report = deck_engine.check_concurrent(g.lib);
  std::printf("\ntext deck (%zu rules, run concurrently): %zu violations\n", deck.size(),
              report.violations.size());

  const auto svg_path = (out_dir / "ibex_violations.svg").string();
  render::write_svg(g.lib, svg_path, {}, report.violations);
  const auto markers_path = (out_dir / "ibex_markers.gds").string();
  gdsii::write(render::violation_markers(report.violations, g.lib.name()), markers_path);
  std::printf("wrote %s and %s\n", svg_path.c_str(), markers_path.c_str());
  return 0;
}
