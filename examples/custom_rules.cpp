// Extending OpenDRC with user-defined rules (paper Section III-B): the
// ensures() predicate hook, rule naming, and post-processing violations into
// a simple text report — the "researchers customize their usage of the
// engine through the C++ programming interface" story.
//
// This example builds a small layout by hand with the db API (no generator),
// which doubles as a tour of the layout-construction interface.
#include <cstdio>
#include <map>

#include "engine/engine.hpp"

int main() {
  using namespace odrc;

  // --- build a layout programmatically --------------------------------------
  db::library lib("custom");
  const db::cell_id pad = lib.add_cell("PAD");
  lib.at(pad).add_rect(10, {0, 0, 500, 500});
  lib.at(pad).add_polygon({11, 0, polygon::from_rect({200, 200, 300, 300}), "pad_open"});

  const db::cell_id ring = lib.add_cell("RING");
  // A square ring out of four rectangles on layer 12.
  lib.at(ring).add_rect(12, {0, 0, 1000, 50});
  lib.at(ring).add_rect(12, {0, 950, 1000, 1000});
  lib.at(ring).add_rect(12, {0, 50, 50, 950});
  lib.at(ring).add_rect(12, {950, 50, 1000, 950});

  const db::cell_id top = lib.add_cell("TOP");
  lib.at(top).add_ref({ring, transform{}});
  // Four pads in the ring corners, two of them rotated.
  lib.at(top).add_ref({pad, transform{{100, 100}, 0, false, 1}});
  lib.at(top).add_ref({pad, transform{{1200, 100}, 1, false, 1}});
  lib.at(top).add_ref({pad, transform{{100, 1400}, 0, true, 1}});
  // An intentionally-offensive shape: a diagonal bowtie on layer 10 (placed
  // clear of other shapes — distance predicates require rectilinear edges,
  // which is exactly what SHAPE.RECT enforces) and a tiny sliver on layer 12.
  lib.at(top).add_polygon({10, 0, polygon{{{600, 2000}, {625, 2025}, {650, 2000}, {625, 1975}}}, ""});
  lib.at(top).add_rect(12, {500, 500, 512, 508});

  // --- rule deck with custom predicates --------------------------------------
  drc_engine engine;
  engine.add_rules({
      rules::polygons().is_rectilinear().named("SHAPE.RECT"),
      rules::layer(12).area().greater_than(5000).named("L12.AREA"),
      rules::layer(10).spacing().greater_than(40).named("L10.SPACE"),
      // Custom semantic rule: every layer-11 opening must carry a name so
      // downstream tools can match it to the bump map.
      rules::layer(11).polygons()
          .ensures([](const db::polygon_elem& p) { return !p.name.empty(); })
          .named("L11.NAMED"),
      // Custom geometric rule: pads must be at least 100x100.
      rules::layer(10).polygons()
          .ensures([](const db::polygon_elem& p) {
            const rect m = p.poly.mbr();
            return m.width() >= 100 && m.height() >= 100;
          })
          .named("L10.MINDIM"),
  });

  const auto report = engine.check(lib);

  // --- post-process into a per-kind summary ----------------------------------
  std::map<std::string, std::vector<checks::violation>> by_kind;
  for (const auto& v : report.violations) {
    by_kind[std::string(checks::rule_kind_name(v.kind))].push_back(v);
  }
  std::printf("violation summary (%zu total):\n", report.violations.size());
  for (const auto& [kind, vs] : by_kind) {
    std::printf("  %-12s %zu\n", kind.c_str(), vs.size());
    for (const auto& v : vs) {
      const rect m = v.e1.mbr().join(v.e2.mbr());
      std::printf("      L%d at [%d,%d .. %d,%d]\n", v.layer1, m.x_min, m.y_min, m.x_max,
                  m.y_max);
    }
  }

  // Expected: the bowtie violates SHAPE.RECT and L10.MINDIM, the sliver
  // violates L12.AREA. Nothing else.
  const bool ok = by_kind["rectilinear"].size() == 1 && by_kind["area"].size() == 1 &&
                  by_kind["custom"].size() == 1;
  std::printf("\nexpected violations found: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
