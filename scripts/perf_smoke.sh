#!/usr/bin/env bash
# Perf smoke: run every bench suite in --quick mode and gate against the
# committed baselines (BENCH_<suite>.json at the repo root).
#
# Usage:
#   scripts/perf_smoke.sh <build-dir> [--warn-only] [--refresh]
#
#   --warn-only   report regressions but exit 0 (CI pull_request mode;
#                 pushes to main use the hard-failing default)
#   --refresh     overwrite the committed baselines with this run's reports
#                 (use after an intentional perf change; commit the result)
#
# Output reports land in <build-dir>/bench-reports/. Suites without a
# committed baseline are skipped with a note (first run / new suite).
#
# The suite list is derived from bench/*.cpp so a new suite can't be
# forgotten, and a suite whose binary is missing FAILS the run — a bench
# target silently dropped from CMake used to pass CI unnoticed. Suites that
# legitimately have no binary go in `skip_ok` below with a reason.
set -euo pipefail

build_dir=${1:?usage: perf_smoke.sh <build-dir> [--warn-only] [--refresh]}
shift
warn_only=0
refresh=0
for arg in "$@"; do
  case "$arg" in
    --warn-only) warn_only=1 ;;
    --refresh) refresh=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

root=$(git rev-parse --show-toplevel)
compare="$build_dir/tools/bench_compare"
out_dir="$build_dir/bench-reports"
mkdir -p "$out_dir"

# Every bench/<suite>.cpp is a suite (headers are shared helpers, not
# suites). Opt-out list for suites intentionally excluded from the smoke;
# each entry needs a reason.
skip_ok=(
  # (none currently)
)

suites=()
for src in "$root"/bench/*.cpp; do
  suites+=("$(basename "$src" .cpp)")
done
if [[ ${#suites[@]} -eq 0 ]]; then
  echo "ERROR: no bench suites found under $root/bench" >&2
  exit 1
fi

status=0
for s in "${suites[@]}"; do
  skip=0
  for ok in ${skip_ok[@]+"${skip_ok[@]}"}; do
    [[ "$s" == "$ok" ]] && skip=1
  done
  if [[ $skip -eq 1 ]]; then
    echo "SKIP $s: in the opt-out list" >&2
    continue
  fi
  bin="$build_dir/bench/$s"
  if [[ ! -x "$bin" ]]; then
    echo "ERROR: $s: $bin not built — a bench target is missing from CMake" >&2
    echo "       (add it back, or add '$s' to skip_ok in scripts/perf_smoke.sh)" >&2
    status=1
    continue
  fi
  json="$out_dir/BENCH_$s.json"
  echo "== $s --quick"
  "$bin" --quick --json="$json" >"$out_dir/$s.log" 2>&1 || {
    echo "ERROR: $s failed; tail of log:" >&2
    tail -20 "$out_dir/$s.log" >&2
    status=1
    continue
  }
  if [[ $refresh -eq 1 ]]; then
    cp "$json" "$root/BENCH_$s.json"
    echo "   baseline refreshed: BENCH_$s.json"
    continue
  fi
  baseline="$root/BENCH_$s.json"
  if [[ ! -f "$baseline" ]]; then
    echo "   no committed baseline (BENCH_$s.json) — skipping compare"
    continue
  fi
  flags=()
  [[ $warn_only -eq 1 ]] && flags+=(--warn-only)
  if ! "$compare" "${flags[@]+"${flags[@]}"}" "$baseline" "$json"; then
    status=1
  fi
done

if [[ $refresh -eq 1 ]]; then
  echo "baselines refreshed — review 'git diff BENCH_*.json' and commit."
  exit 0
fi
if [[ $status -ne 0 ]]; then
  echo "perf smoke FAILED (see regressions above)" >&2
  echo "If the slowdown is intentional: scripts/perf_smoke.sh $build_dir --refresh" >&2
fi
exit $status
