#!/usr/bin/env bash
# Perf smoke: run every bench suite in --quick mode and gate against the
# committed baselines (BENCH_<suite>.json at the repo root).
#
# Usage:
#   scripts/perf_smoke.sh <build-dir> [--warn-only] [--refresh]
#
#   --warn-only   report regressions but exit 0 (CI pull_request mode;
#                 pushes to main use the hard-failing default)
#   --refresh     overwrite the committed baselines with this run's reports
#                 (use after an intentional perf change; commit the result)
#
# Output reports land in <build-dir>/bench-reports/. Suites without a
# committed baseline are skipped with a note (first run / new suite).
set -euo pipefail

build_dir=${1:?usage: perf_smoke.sh <build-dir> [--warn-only] [--refresh]}
shift
warn_only=0
refresh=0
for arg in "$@"; do
  case "$arg" in
    --warn-only) warn_only=1 ;;
    --refresh) refresh=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

root=$(git rev-parse --show-toplevel)
compare="$build_dir/tools/bench_compare"
out_dir="$build_dir/bench-reports"
mkdir -p "$out_dir"

suites=(table1_intra table2_inter fig4_breakdown ablation_pruning
        ablation_executor ablation_pipeline deck_batching serve_incremental
        cluster_scatter snapshot_boot micro_partition micro_sweepline
        micro_bvh micro_boolean)

status=0
for s in "${suites[@]}"; do
  bin="$build_dir/bench/$s"
  if [[ ! -x "$bin" ]]; then
    echo "SKIP $s: $bin not built" >&2
    continue
  fi
  json="$out_dir/BENCH_$s.json"
  echo "== $s --quick"
  "$bin" --quick --json="$json" >"$out_dir/$s.log" 2>&1 || {
    echo "ERROR: $s failed; tail of log:" >&2
    tail -20 "$out_dir/$s.log" >&2
    status=1
    continue
  }
  if [[ $refresh -eq 1 ]]; then
    cp "$json" "$root/BENCH_$s.json"
    echo "   baseline refreshed: BENCH_$s.json"
    continue
  fi
  baseline="$root/BENCH_$s.json"
  if [[ ! -f "$baseline" ]]; then
    echo "   no committed baseline (BENCH_$s.json) — skipping compare"
    continue
  fi
  flags=()
  [[ $warn_only -eq 1 ]] && flags+=(--warn-only)
  if ! "$compare" "${flags[@]+"${flags[@]}"}" "$baseline" "$json"; then
    status=1
  fi
done

if [[ $refresh -eq 1 ]]; then
  echo "baselines refreshed — review 'git diff BENCH_*.json' and commit."
  exit 0
fi
if [[ $status -ne 0 ]]; then
  echo "perf smoke FAILED (see regressions above)" >&2
  echo "If the slowdown is intentional: scripts/perf_smoke.sh $build_dir --refresh" >&2
fi
exit $status
