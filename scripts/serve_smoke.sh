#!/usr/bin/env bash
# Serve smoke: boot `odrc serve` on a generated design, drive the whole verb
# set through `odrc client`, and require the incremental path (recheck with
# full=0) plus per-request spans in the --trace output. A final phase boots
# an `odrc coord` fleet and requires the scatter-gathered check to match the
# single-process total.
#
# Usage: scripts/serve_smoke.sh <build-dir>
set -euo pipefail

build_dir=${1:?usage: serve_smoke.sh <build-dir>}
odrc="$build_dir/tools/odrc"
work=$(mktemp -d)
sock="$work/odrc.sock"
trap 'kill $srv_pid 2>/dev/null || true; rm -rf "$work"' EXIT

"$odrc" generate uart "$work/design.gds" --scale=0.5 --inject=2
"$odrc" deck-template > "$work/rules.deck"

"$odrc" serve "$work/design.gds" "$work/rules.deck" --socket="$sock" --workers=2 \
  --trace="$work/trace.json" > "$work/serve.log" 2>&1 &
srv_pid=$!

for _ in $(seq 1 100); do
  [[ -S "$sock" ]] && break
  kill -0 $srv_pid 2>/dev/null || { echo "server died:"; cat "$work/serve.log"; exit 1; }
  sleep 0.1
done
[[ -S "$sock" ]] || { echo "socket never appeared"; cat "$work/serve.log"; exit 1; }

cli() { "$odrc" client --socket="$sock" "$@"; }

cli ping | grep -q "ok pong"
cli check | tee "$work/check.out" | head -1 | grep -q "^ok total"

top=$("$odrc" inspect "$work/design.gds" | sed -n 's/^top cell: //p' | head -1)
printf 'add_poly %s 19 900000 900000 900010 900010\n' "$top" > "$work/edit.txt"
cli edit "$work/edit.txt" | grep -q "^ok applied 1"

recheck_out=$(cli recheck)
echo "$recheck_out"
grep -q "full 0" <<<"$recheck_out" || { echo "FAIL: recheck was not incremental"; exit 1; }
grep -Eq "new [1-9]" <<<"$recheck_out" || { echo "FAIL: edit introduced no violations"; exit 1; }

cli diff | head -1 | grep -q "^ok fixed 0 new"

# ---------------------------------------------------------------------------
# Subscription phase (DESIGN.md §12): a background subscriber must receive
# the next recheck's key diff as a server-pushed delta frame, and the query
# verb must find the fresh marker through the stored-violation R-tree.
# ---------------------------------------------------------------------------
"$odrc" client --socket="$sock" subscribe --count=1 --timeout=20000 > "$work/sub.out" &
sub_pid=$!
for _ in $(seq 1 100); do
  grep -q "^ok subscribed" "$work/sub.out" 2>/dev/null && break
  kill -0 $sub_pid 2>/dev/null || break
  sleep 0.1
done
grep -q "^ok subscribed" "$work/sub.out" || { echo "FAIL: subscribe not acknowledged"; cat "$work/sub.out"; exit 1; }

printf 'add_poly %s 19 910000 910000 910010 910010\n' "$top" > "$work/edit2.txt"
cli edit "$work/edit2.txt" | grep -q "^ok applied 1"
cli recheck | grep -q "full 0"
wait $sub_pid || { echo "FAIL: subscriber got no delta"; cat "$work/sub.out"; exit 1; }
grep -Eq "^delta sub [0-9]+ seq 0 fixed 0 new [1-9][0-9]* gap 0" "$work/sub.out" \
  || { echo "FAIL: pushed delta missing or empty"; cat "$work/sub.out"; exit 1; }
grep -q "^new " "$work/sub.out" || { echo "FAIL: delta carried no key lines"; cat "$work/sub.out"; exit 1; }

cli query 909990 909990 910020 910020 keys | head -1 | grep -Eq "^ok total [1-9]" \
  || { echo "FAIL: query missed the fresh marker"; exit 1; }
cli query 5000000 5000000 5000010 5000010 | head -1 | grep -q "^ok total 0" \
  || { echo "FAIL: query reported phantom hits"; exit 1; }

stats_out=$(cli stats)
grep -q "requests_total" <<<"$stats_out"
grep -Eq "subs_published [1-9]" <<<"$stats_out" || { echo "FAIL: no published deltas in stats"; exit 1; }
grep -Eq "subs_delivered [1-9]" <<<"$stats_out" || { echo "FAIL: no delivered deltas in stats"; exit 1; }

cli shutdown | grep -q "ok shutting down"
wait $srv_pid

# Serve spans must be visible in the trace (per-request observability).
grep -q '"serve"' "$work/trace.json" || { echo "FAIL: no serve spans in trace"; exit 1; }
grep -q '"request"' "$work/trace.json" || { echo "FAIL: no request spans in trace"; exit 1; }
grep -q '"push"' "$work/trace.json" || { echo "FAIL: no push spans in trace"; exit 1; }

# A cold boot must say so in the trace (the mmap phase below asserts the
# inverse: snapshot_boot present, cold_build absent).
grep -q '"cold_build"' "$work/trace.json" || { echo "FAIL: no cold_build span in cold trace"; exit 1; }

# ---------------------------------------------------------------------------
# Frozen-snapshot phase (DESIGN.md §9): build a .snap, boot the server from
# the mapping, edit + recheck against the copy-on-write overlay, then
# hot-swap a second snapshot version into the live session.
# ---------------------------------------------------------------------------
sock2="$work/odrc2.sock"

"$odrc" snapshot build "$work/design.gds" "$work/design.snap" | grep -q "^wrote"
"$odrc" snapshot info "$work/design.snap" | grep -q "snapshot version 1"

"$odrc" serve "$work/design.gds" "$work/rules.deck" --socket="$sock2" --workers=2 \
  --snapshot="$work/design.snap" --trace="$work/trace2.json" > "$work/serve2.log" 2>&1 &
srv_pid=$!

for _ in $(seq 1 100); do
  [[ -S "$sock2" ]] && break
  kill -0 $srv_pid 2>/dev/null || { echo "snapshot server died:"; cat "$work/serve2.log"; exit 1; }
  sleep 0.1
done
[[ -S "$sock2" ]] || { echo "snapshot socket never appeared"; cat "$work/serve2.log"; exit 1; }
grep -q "^booted" "$work/serve2.log" || { echo "FAIL: server did not boot from the snapshot"; cat "$work/serve2.log"; exit 1; }

cli2() { "$odrc" client --socket="$sock2" "$@"; }

# The mapped boot must report the same total as the cold server's full check.
cold_total=$(head -1 "$work/check.out")
cli2 check | head -1 | grep -qx "$cold_total" || { echo "FAIL: snapshot boot check != cold check"; exit 1; }

# Edit + incremental recheck over the copy-on-write overlay.
cli2 edit "$work/edit.txt" | grep -q "^ok applied 1"
recheck2=$(cli2 recheck)
grep -q "full 0" <<<"$recheck2" || { echo "FAIL: frozen recheck was not incremental"; exit 1; }
grep -Eq "new [1-9]" <<<"$recheck2" || { echo "FAIL: frozen edit introduced no violations"; exit 1; }

# Hot-swap: a second snapshot version flips the live session back to the
# pristine layout — the overlay edit is gone, the check total matches cold.
"$odrc" snapshot build "$work/design.gds" "$work/design_v2.snap" > /dev/null
cli2 reload "$work/design_v2.snap" | grep -q "^ok reloaded bytes" || { echo "FAIL: reload refused"; exit 1; }
cli2 check | head -1 | grep -qx "$cold_total" || { echo "FAIL: post-swap check != pristine check"; exit 1; }

cli2 shutdown | grep -q "ok shutting down"
wait $srv_pid

# The mmap boot must be visible in the trace — and the cold rebuild absent.
grep -q '"snapshot_boot"' "$work/trace2.json" || { echo "FAIL: no snapshot_boot span in trace"; exit 1; }
grep -q '"cold_build"' "$work/trace2.json" && { echo "FAIL: snapshot boot still ran a cold build"; exit 1; }
grep -q '"hot_swap"' "$work/trace2.json" || { echo "FAIL: no hot_swap span in trace"; exit 1; }
grep -q '"mapped_bytes"' "$work/trace2.json" || { echo "FAIL: no mapped_bytes counter in trace"; exit 1; }

# ---------------------------------------------------------------------------
# Cluster phase (DESIGN.md §10): `odrc coord` spawns a band-sharded worker
# fleet — every worker mmap-boots the SAME .snap, one physical snapshot copy
# — and the scatter-gathered check must reconcile to exactly the
# single-process total (seam straddlers deduplicated, none dropped).
# ---------------------------------------------------------------------------
csock="$work/coord.sock"

"$odrc" coord "$work/design.gds" "$work/rules.deck" --socket="$csock" --shards=2 \
  --snapshot="$work/design.snap" > "$work/coord.log" 2>&1 &
srv_pid=$!

for _ in $(seq 1 300); do
  [[ -S "$csock" ]] && break
  kill -0 $srv_pid 2>/dev/null || { echo "coordinator died:"; cat "$work/coord.log"; exit 1; }
  sleep 0.1
done
[[ -S "$csock" ]] || { echo "coordinator socket never appeared"; cat "$work/coord.log"; exit 1; }

cli3() { "$odrc" client --socket="$csock" "$@"; }

cli3 ping | grep -q "ok pong"
cli3 check | head -1 | grep -qx "$cold_total" || { echo "FAIL: sharded check != single-process check"; exit 1; }
cli3 check_region 0 0 200000 200000 | head -1 | grep -q "^ok total" || { echo "FAIL: scatter check_region"; exit 1; }

stats_out=$(cli3 stats)
grep -q "^shard 0 " <<<"$stats_out" || { echo "FAIL: no shard 0 line in coord stats"; exit 1; }
grep -q "^shard 1 " <<<"$stats_out" || { echo "FAIL: no shard 1 line in coord stats"; exit 1; }
grep -Eq "^shard 0 .*legs [1-9]" <<<"$stats_out" || { echo "FAIL: shard 0 served no scatter legs"; exit 1; }

cli3 shutdown | grep -q "ok shutting down"
wait $srv_pid
grep -q "coordinating 2 shard" "$work/coord.log" || { echo "FAIL: coordinator did not run 2 shards"; cat "$work/coord.log"; exit 1; }

echo "serve smoke OK"
