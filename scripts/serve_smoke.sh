#!/usr/bin/env bash
# Serve smoke: boot `odrc serve` on a generated design, drive the whole verb
# set through `odrc client`, and require the incremental path (recheck with
# full=0) plus per-request spans in the --trace output.
#
# Usage: scripts/serve_smoke.sh <build-dir>
set -euo pipefail

build_dir=${1:?usage: serve_smoke.sh <build-dir>}
odrc="$build_dir/tools/odrc"
work=$(mktemp -d)
sock="$work/odrc.sock"
trap 'kill $srv_pid 2>/dev/null || true; rm -rf "$work"' EXIT

"$odrc" generate uart "$work/design.gds" --scale=0.5 --inject=2
"$odrc" deck-template > "$work/rules.deck"

"$odrc" serve "$work/design.gds" "$work/rules.deck" --socket="$sock" --workers=2 \
  --trace="$work/trace.json" > "$work/serve.log" 2>&1 &
srv_pid=$!

for _ in $(seq 1 100); do
  [[ -S "$sock" ]] && break
  kill -0 $srv_pid 2>/dev/null || { echo "server died:"; cat "$work/serve.log"; exit 1; }
  sleep 0.1
done
[[ -S "$sock" ]] || { echo "socket never appeared"; cat "$work/serve.log"; exit 1; }

cli() { "$odrc" client --socket="$sock" "$@"; }

cli ping | grep -q "ok pong"
cli check | tee "$work/check.out" | head -1 | grep -q "^ok total"

top=$("$odrc" inspect "$work/design.gds" | sed -n 's/^top cell: //p' | head -1)
printf 'add_poly %s 19 900000 900000 900010 900010\n' "$top" > "$work/edit.txt"
cli edit "$work/edit.txt" | grep -q "^ok applied 1"

recheck_out=$(cli recheck)
echo "$recheck_out"
grep -q "full 0" <<<"$recheck_out" || { echo "FAIL: recheck was not incremental"; exit 1; }
grep -Eq "new [1-9]" <<<"$recheck_out" || { echo "FAIL: edit introduced no violations"; exit 1; }

cli diff | head -1 | grep -q "^ok fixed 0 new"
cli stats | grep -q "requests_total"
cli shutdown | grep -q "ok shutting down"
wait $srv_pid

# Serve spans must be visible in the trace (per-request observability).
grep -q '"serve"' "$work/trace.json" || { echo "FAIL: no serve spans in trace"; exit 1; }
grep -q '"request"' "$work/trace.json" || { echo "FAIL: no request spans in trace"; exit 1; }

echo "serve smoke OK"
