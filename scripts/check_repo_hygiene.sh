#!/usr/bin/env bash
# Repo hygiene gate: fail if build artifacts are tracked by git.
#
# PR 3 purged an accidentally committed build tree (~522 files of CMake
# caches, object files and test binaries under build-review/); this script
# keeps that class of mistake from recurring. Two checks:
#   1. pattern check  — no tracked paths that look like build trees, CMake
#                       caches, objects, bench/test scratch, or layouts
#   2. content check  — no tracked file that starts with the ELF magic
#                       (\x7fELF), i.e. no compiled binaries of any name
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

fail=0

# 1. Path patterns that must never be tracked.
bad_paths=$(git ls-files | grep -E \
  -e '(^|/)build[^/]*/' \
  -e '(^|/)CMakeCache\.txt$' \
  -e '(^|/)CMakeFiles/' \
  -e '(^|/)cli_test_work/' \
  -e '\.o$' -e '\.obj$' -e '\.a$' -e '\.so(\.[0-9.]+)?$' \
  -e '(^|/)LastTest\.log$' \
  -e '\.gds$' \
  -e '\.snap$' \
  -e '(^|/)BENCH_.*\.tmp$' \
  || true)
if [[ -n "$bad_paths" ]]; then
  echo "ERROR: tracked files match build-artifact patterns:" >&2
  echo "$bad_paths" | head -40 >&2
  n=$(echo "$bad_paths" | wc -l)
  [[ $n -gt 40 ]] && echo "  ... and $((n - 40)) more" >&2
  fail=1
fi

# 2. ELF magic: catches compiled binaries regardless of where they live.
while IFS= read -r f; do
  [[ -f "$f" ]] || continue  # skip submodule gitlinks / deleted paths
  if [[ "$(head -c 4 "$f" 2>/dev/null)" == $'\x7fELF' ]]; then
    echo "ERROR: tracked file is an ELF binary: $f" >&2
    fail=1
  fi
done < <(git ls-files)

if [[ $fail -ne 0 ]]; then
  echo "repo hygiene check FAILED — untrack the files above (git rm --cached)" >&2
  echo "and extend .gitignore so they stay out." >&2
  exit 1
fi
echo "repo hygiene OK ($(git ls-files | wc -l) tracked files, no build artifacts)"
