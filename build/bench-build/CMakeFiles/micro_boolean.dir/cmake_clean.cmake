file(REMOVE_RECURSE
  "../bench/micro_boolean"
  "../bench/micro_boolean.pdb"
  "CMakeFiles/micro_boolean.dir/micro_boolean.cpp.o"
  "CMakeFiles/micro_boolean.dir/micro_boolean.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_boolean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
