# Empty compiler generated dependencies file for micro_boolean.
# This may be replaced when dependencies are built.
