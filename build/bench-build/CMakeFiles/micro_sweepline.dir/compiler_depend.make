# Empty compiler generated dependencies file for micro_sweepline.
# This may be replaced when dependencies are built.
