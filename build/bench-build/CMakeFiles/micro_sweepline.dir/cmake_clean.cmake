file(REMOVE_RECURSE
  "../bench/micro_sweepline"
  "../bench/micro_sweepline.pdb"
  "CMakeFiles/micro_sweepline.dir/micro_sweepline.cpp.o"
  "CMakeFiles/micro_sweepline.dir/micro_sweepline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sweepline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
