# Empty dependencies file for table1_intra.
# This may be replaced when dependencies are built.
