file(REMOVE_RECURSE
  "../bench/table1_intra"
  "../bench/table1_intra.pdb"
  "CMakeFiles/table1_intra.dir/table1_intra.cpp.o"
  "CMakeFiles/table1_intra.dir/table1_intra.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
