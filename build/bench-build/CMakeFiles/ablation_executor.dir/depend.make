# Empty dependencies file for ablation_executor.
# This may be replaced when dependencies are built.
