file(REMOVE_RECURSE
  "../bench/ablation_executor"
  "../bench/ablation_executor.pdb"
  "CMakeFiles/ablation_executor.dir/ablation_executor.cpp.o"
  "CMakeFiles/ablation_executor.dir/ablation_executor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
