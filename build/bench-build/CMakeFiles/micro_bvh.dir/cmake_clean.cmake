file(REMOVE_RECURSE
  "../bench/micro_bvh"
  "../bench/micro_bvh.pdb"
  "CMakeFiles/micro_bvh.dir/micro_bvh.cpp.o"
  "CMakeFiles/micro_bvh.dir/micro_bvh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bvh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
