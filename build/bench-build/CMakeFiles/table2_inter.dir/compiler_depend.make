# Empty compiler generated dependencies file for table2_inter.
# This may be replaced when dependencies are built.
