file(REMOVE_RECURSE
  "../bench/table2_inter"
  "../bench/table2_inter.pdb"
  "CMakeFiles/table2_inter.dir/table2_inter.cpp.o"
  "CMakeFiles/table2_inter.dir/table2_inter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_inter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
