// Shared harness utilities for the paper-table benchmarks.
//
// Each tableN binary regenerates one table of the paper's evaluation
// (Section VI) on the synthetic ASAP7-like designs: same designs, same rule
// set, same checker lineup (KLayout-analogue flat/deep/tile, X-Check
// reimplementation, OpenDRC sequential/parallel), and the same geometric-
// mean summary row normalized against OpenDRC's parallel mode.
//
// Scale: set ODRC_BENCH_SCALE (default 1.0) to grow/shrink the designs;
// ODRC_BENCH_REPEATS (default 1) takes best-of-N timings.
// Wall-clock on the simulated device is NOT comparable to the paper's GPU
// numbers; the tables therefore also print the work counters (edge pairs
// tested) that make the algorithmic comparison host-independent.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/baseline.hpp"
#include "engine/engine.hpp"
#include "infra/timer.hpp"
#include "workload/workload.hpp"

namespace odrc::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("ODRC_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

inline int bench_repeats() {
  if (const char* env = std::getenv("ODRC_BENCH_REPEATS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return 1;
}

/// One timed checker invocation: best-of-N wall seconds plus the report of
/// the last run.
template <typename Fn>
double time_best(Fn&& fn, engine::check_report* last = nullptr) {
  double best = 1e100;
  for (int i = 0; i < bench_repeats(); ++i) {
    timer t;
    engine::check_report r = fn();
    best = std::min(best, t.seconds());
    if (last) *last = std::move(r);
  }
  return best;
}

struct row_result {
  std::string design;
  std::string rule;
  // seconds per checker column; negative = unsupported (X-Check area).
  std::vector<double> seconds;
  std::size_t violations = 0;
};

/// Geometric mean per column, normalized to the reference column (the paper
/// normalizes against OpenDRC-parallel and values all checks equally).
inline std::vector<double> geomean_normalized(const std::vector<row_result>& rows,
                                              std::size_t reference_col) {
  if (rows.empty()) return {};
  const std::size_t cols = rows[0].seconds.size();
  std::vector<double> logsum(cols, 0.0);
  std::vector<std::size_t> counts(cols, 0);
  for (const row_result& r : rows) {
    const double ref = r.seconds[reference_col];
    if (ref <= 0) continue;
    for (std::size_t c = 0; c < cols; ++c) {
      if (r.seconds[c] < 0) continue;  // unsupported
      logsum[c] += std::log(std::max(r.seconds[c], 1e-9) / std::max(ref, 1e-9));
      ++counts[c];
    }
  }
  std::vector<double> out(cols, -1.0);
  for (std::size_t c = 0; c < cols; ++c) {
    if (counts[c] > 0) out[c] = std::exp(logsum[c] / static_cast<double>(counts[c]));
  }
  return out;
}

inline void print_cell(double seconds) {
  if (seconds < 0) {
    std::printf(" %9s", "-");
  } else if (seconds < 0.01) {
    std::printf(" %9s", "<0.01");
  } else {
    std::printf(" %9.2f", seconds);
  }
}

inline void print_table(const char* title, const std::vector<std::string>& columns,
                        const std::vector<row_result>& rows, std::size_t reference_col) {
  std::printf("\n%s  (scale=%.2f, seconds, best of %d)\n", title, bench_scale(),
              bench_repeats());
  std::printf("%-8s %-12s", "Design", "Rule");
  for (const std::string& c : columns) std::printf(" %9s", c.c_str());
  std::printf(" %8s\n", "#viol");
  for (const row_result& r : rows) {
    std::printf("%-8s %-12s", r.design.c_str(), r.rule.c_str());
    for (double s : r.seconds) print_cell(s);
    std::printf(" %8zu\n", r.violations);
  }
  const auto gm = geomean_normalized(rows, reference_col);
  std::printf("%-8s %-12s", "Average", "(geomean)");
  for (double g : gm) {
    if (g < 0) {
      std::printf(" %9s", "-");
    } else {
      std::printf(" %8.1fx", g);
    }
  }
  std::printf("\n");
}

}  // namespace odrc::bench
