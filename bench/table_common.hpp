// Shared utilities for the paper-table benchmarks.
//
// Each tableN binary regenerates one table of the paper's evaluation
// (Section VI) on the synthetic ASAP7-like designs: same designs, same rule
// set, same checker lineup (KLayout-analogue flat/deep/tile, X-Check
// reimplementation, OpenDRC sequential/parallel), and the same geometric-
// mean summary row normalized against OpenDRC's parallel mode.
//
// Since PR 3 every bench registers its cases into the odrc::bench harness
// (src/infra/bench_harness.hpp): case names follow the
// "<design>/<rule>/<column>" convention, the harness takes care of warmup,
// repetitions, robust statistics and the BENCH_<suite>.json report, and the
// paper-shaped tables here are rendered from the finished suite_report in a
// summarize callback. `--quick` shrinks the design list and scale for CI;
// `--full` (the default) reproduces the paper tables. ODRC_BENCH_SCALE /
// ODRC_BENCH_REPEATS still work as defaults for the corresponding flags.
// Wall-clock on the simulated device is NOT comparable to the paper's GPU
// numbers; the tables therefore also report the work counters (edge pairs
// tested) that make the algorithmic comparison host-independent.
#pragma once

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baseline/baseline.hpp"
#include "engine/engine.hpp"
#include "infra/bench_harness.hpp"
#include "workload/workload.hpp"

namespace odrc::bench {

/// Designs a suite iterates: the paper's six, or a small subset in --quick.
inline std::vector<std::string> bench_designs(const suite& s,
                                              std::vector<std::string> quick_subset) {
  if (s.opts().quick) return quick_subset;
  return workload::design_names();
}

/// Lazily generated workloads shared by all cases of a suite (generation is
/// expensive and must stay outside the timed loop). The scale comes from the
/// requesting case's context — the suite resolves it from flags/env at run
/// time — and keys the cache together with design name and injection count.
class workload_cache {
 public:
  const workload::generated& get(const std::string& design, int inject, double scale) {
    char key[128];
    std::snprintf(key, sizeof key, "%s#%d#%.4f", design.c_str(), inject, scale);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      auto spec = workload::spec_for(design, scale);
      spec.inject = {inject, inject, inject, inject};
      it = cache_.emplace(key, workload::generate(spec)).first;
    }
    return it->second;
  }

 private:
  std::map<std::string, workload::generated> cache_;
};

struct row_result {
  std::string design;
  std::string rule;
  // median seconds per checker column; negative = unsupported (X-Check area).
  std::vector<double> seconds;
  std::size_t violations = 0;
};

/// Geometric mean per column, normalized to the reference column (the paper
/// normalizes against OpenDRC-parallel and values all checks equally).
inline std::vector<double> geomean_normalized(const std::vector<row_result>& rows,
                                              std::size_t reference_col) {
  if (rows.empty()) return {};
  const std::size_t cols = rows[0].seconds.size();
  std::vector<double> logsum(cols, 0.0);
  std::vector<std::size_t> counts(cols, 0);
  for (const row_result& r : rows) {
    const double ref = r.seconds[reference_col];
    if (ref <= 0) continue;
    for (std::size_t c = 0; c < cols; ++c) {
      if (r.seconds[c] < 0) continue;  // unsupported
      logsum[c] += std::log(std::max(r.seconds[c], 1e-9) / std::max(ref, 1e-9));
      ++counts[c];
    }
  }
  std::vector<double> out(cols, -1.0);
  for (std::size_t c = 0; c < cols; ++c) {
    if (counts[c] > 0) out[c] = std::exp(logsum[c] / static_cast<double>(counts[c]));
  }
  return out;
}

inline void print_cell(double seconds) {
  if (seconds < 0) {
    std::printf(" %9s", "-");
  } else if (seconds < 0.01) {
    std::printf(" %9s", "<0.01");
  } else {
    std::printf(" %9.2f", seconds);
  }
}

inline void print_table(const char* title, const std::vector<std::string>& columns,
                        const std::vector<row_result>& rows, std::size_t reference_col,
                        const suite_report& rep) {
  std::printf("\n%s  (scale=%.2f, median seconds, mode=%s)\n", title, rep.scale,
              rep.mode.c_str());
  std::printf("%-8s %-12s", "Design", "Rule");
  for (const std::string& c : columns) std::printf(" %9s", c.c_str());
  std::printf(" %8s\n", "#viol");
  for (const row_result& r : rows) {
    std::printf("%-8s %-12s", r.design.c_str(), r.rule.c_str());
    for (double s : r.seconds) print_cell(s);
    std::printf(" %8zu\n", r.violations);
  }
  const auto gm = geomean_normalized(rows, reference_col);
  std::printf("%-8s %-12s", "Average", "(geomean)");
  for (double g : gm) {
    if (g < 0) {
      std::printf(" %9s", "-");
    } else {
      std::printf(" %8.1fx", g);
    }
  }
  std::printf("\n");
}

}  // namespace odrc::bench
