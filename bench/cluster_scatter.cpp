// Sharded scatter-gather cluster benchmark (DESIGN.md §10): a full-deck
// check scattered across an in-process fleet of serve workers versus the
// same check in one session. Cases:
//
//   single/<design>      full deck check in one warm session (the baseline
//                        a coordinator must beat)
//   cluster/<design>/wN  the same check scatter-gathered by a coordinator
//                        over N band-sharded workers (w1 isolates the
//                        scatter + reconciliation overhead; w2+ shows the
//                        throughput scaling of the band partition)
//
// Every case reports the reconciled violation count so a scaling win can
// never come from dropping seam straddlers. The committed
// BENCH_cluster_scatter.json baseline gates regressions via
// scripts/perf_smoke.sh.
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "engine/rule.hpp"
#include "engine/shard.hpp"
#include "infra/bench_harness.hpp"
#include "serve/client.hpp"
#include "serve/coord.hpp"
#include "serve/session.hpp"
#include "workload/workload.hpp"

namespace {

using namespace odrc;
using workload::layers;
using workload::tech;

std::vector<rules::rule> make_deck() {
  return {
      rules::layer(layers::M1).width().greater_than(tech::wire_width).named("M1.W.1"),
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space).named("M1.S.1"),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space).named("M2.S.1"),
      rules::layer(layers::M3).spacing().greater_than(tech::wire_space).named("M3.S.1"),
      rules::layer(layers::M1).area().greater_than(tech::min_area).named("M1.A.1"),
  };
}

workload::generated make_design(const std::string& name, double scale) {
  auto spec = workload::spec_for(name, scale);
  spec.inject = {2, 2, 2, 2};
  return workload::generate(spec);
}

// An in-process fleet: N band-sharded workers plus a coordinator, all on
// Unix sockets under /tmp. Mirrors the cluster_test fixture.
struct fleet {
  std::vector<std::unique_ptr<serve::session_manager>> sessions;
  std::vector<std::unique_ptr<serve::server>> workers;
  std::unique_ptr<serve::coordinator> coord;
  std::string coord_path;

  fleet(const workload::generated& gen, std::size_t n) {
    static int instance = 0;
    const std::string stem = "/tmp/odrc_bench_cluster_" + std::to_string(::getpid()) + "_" +
                             std::to_string(instance++);
    std::vector<rect> bands = engine::plan_shards(gen.lib, n);
    serve::coord_config cc;
    for (std::size_t i = 0; i < bands.size(); ++i) {
      const std::string path = stem + "_w" + std::to_string(i) + ".sock";
      sessions.push_back(std::make_unique<serve::session_manager>());
      sessions.back()->create(gen.lib, make_deck());
      serve::server_config wc;
      wc.socket_path = path;
      workers.push_back(std::make_unique<serve::server>(wc, *sessions.back()));
      workers.back()->start();
      cc.worker_endpoints.push_back(path);
    }
    coord_path = stem + "_coord.sock";
    cc.listen.socket_path = coord_path;
    cc.bands = std::move(bands);
    coord = std::make_unique<serve::coordinator>(std::move(cc));
    coord->start();
  }

  ~fleet() {
    coord->stop();
    coord->wait();
    for (auto& w : workers) {
      w->stop();
      w->wait();
    }
  }
};

long parse_total(const serve::frame& resp) {
  const std::string line = serve::client::status_line(resp);
  const std::size_t at = line.find("total ");
  return at == std::string::npos ? -1 : std::stol(line.substr(at + 6));
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("cluster_scatter");
  if (auto rc = s.parse(argc, argv)) return *rc;

  const std::vector<std::pair<std::string, double>> designs =
      s.opts().quick ? std::vector<std::pair<std::string, double>>{{"ibex", 0.6}}
                     : std::vector<std::pair<std::string, double>>{{"ibex", 1.0},
                                                                   {"aes", 1.0}};
  const std::vector<std::size_t> fleet_sizes = s.opts().quick
                                                   ? std::vector<std::size_t>{1, 2}
                                                   : std::vector<std::size_t>{1, 2, 4};

  for (const auto& [name, scale] : designs) {
    s.add("single/" + name, [name = name, scale = scale](bench::case_context& ctx) {
      const auto gen = make_design(name, scale);
      serve::session sess(gen.lib, make_deck());
      std::size_t violations = 0;
      while (ctx.next_rep()) {
        std::size_t total = 0;
        for (const auto& row : sess.check_full()) total += row.count;
        violations = total;
      }
      ctx.counter("violations", static_cast<double>(violations));
      ctx.counter("polygons", static_cast<double>(gen.lib.expanded_polygon_count()));
    });

    for (const std::size_t n : fleet_sizes) {
      s.add("cluster/" + name + "/w" + std::to_string(n),
            [name = name, scale = scale, n](bench::case_context& ctx) {
              const auto gen = make_design(name, scale);
              fleet f(gen, n);
              serve::client c;
              c.connect(f.coord_path);
              long violations = 0;
              while (ctx.next_rep()) {
                const serve::frame resp = c.request(serve::msg_type::check, 0);
                if (!serve::client::ok(resp)) throw std::runtime_error(resp.payload);
                violations = parse_total(resp);
              }
              ctx.counter("violations", static_cast<double>(violations));
              ctx.counter("shards", static_cast<double>(f.workers.size()));
              ctx.counter("polygons", static_cast<double>(gen.lib.expanded_polygon_count()));
            });
    }
  }

  return s.run();
}
