// Boolean mask operation micro-benchmarks: scanline throughput across
// operand sizes and overlap densities, plus connected-component grouping —
// the machinery behind the derived-layer (overlap / NOT-CUT) rules.
// Registered into the odrc::bench harness: one case per (operation, n).
#include <random>
#include <string>
#include <vector>

#include "geo/boolean.hpp"
#include "infra/bench_harness.hpp"

namespace {

using namespace odrc;

std::vector<rect> rect_soup(std::size_t n, coord_t span, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<coord_t> pos(0, span);
  std::uniform_int_distribution<coord_t> size(10, 120);
  std::vector<rect> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    out.push_back({x, y, static_cast<coord_t>(x + size(rng)), static_cast<coord_t>(y + size(rng))});
  }
  return out;
}

void add_bool_case(bench::suite& s, const char* label, geo::bool_op op, bool two_operands,
                   std::size_t n) {
  s.add(std::string("boolean_") + label + "/n=" + std::to_string(n),
        [op, two_operands, n](bench::case_context& ctx) {
          // span scales with n to keep overlap density roughly constant.
          const auto a = rect_soup(n, static_cast<coord_t>(40 * n), 2 * static_cast<std::uint32_t>(op) + 1);
          const auto b = two_operands
                             ? rect_soup(n, static_cast<coord_t>(40 * n),
                                         2 * static_cast<std::uint32_t>(op) + 2)
                             : std::vector<rect>{};
          std::size_t out_rects = 0;
          while (ctx.next_rep()) {
            auto r = geo::boolean_rects(std::span<const rect>(a), b, op);
            out_rects = r.size();
          }
          ctx.counter("items", static_cast<double>(n));
          ctx.counter("out_rects", static_cast<double>(out_rects));
        });
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("micro_boolean");
  if (auto rc = s.parse(argc, argv)) return *rc;

  const std::vector<std::size_t> sizes =
      s.opts().quick ? std::vector<std::size_t>{1 << 8, 1 << 11}
                     : std::vector<std::size_t>{1 << 8, 1 << 11, 1 << 14};

  for (const std::size_t n : sizes) {
    add_bool_case(s, "union", geo::bool_op::unite, false, n);
    add_bool_case(s, "intersect", geo::bool_op::intersect, true, n);
    add_bool_case(s, "subtract", geo::bool_op::subtract, true, n);
    s.add("connected_components/n=" + std::to_string(n), [n](bench::case_context& ctx) {
      const auto rects = rect_soup(n, static_cast<coord_t>(40 * n), 6);
      std::size_t groups = 0;
      while (ctx.next_rep()) {
        auto c = geo::connected_components(rects);
        groups = c.size();
      }
      ctx.counter("items", static_cast<double>(n));
      ctx.counter("groups", static_cast<double>(groups));
    });
  }

  return s.run();
}
