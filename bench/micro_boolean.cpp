// Boolean mask operation micro-benchmarks: scanline throughput across
// operand sizes and overlap densities, plus connected-component grouping —
// the machinery behind the derived-layer (overlap / NOT-CUT) rules.
#include <benchmark/benchmark.h>

#include <random>

#include "geo/boolean.hpp"

namespace {

using namespace odrc;

std::vector<rect> rect_soup(std::size_t n, coord_t span, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<coord_t> pos(0, span);
  std::uniform_int_distribution<coord_t> size(10, 120);
  std::vector<rect> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    out.push_back({x, y, static_cast<coord_t>(x + size(rng)), static_cast<coord_t>(y + size(rng))});
  }
  return out;
}

void BM_BooleanUnion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // span scales with n to keep overlap density roughly constant.
  const auto a = rect_soup(n, static_cast<coord_t>(40 * n), 1);
  for (auto _ : state) {
    auto r = geo::boolean_rects(std::span<const rect>(a), {}, geo::bool_op::unite);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

void BM_BooleanIntersect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = rect_soup(n, static_cast<coord_t>(40 * n), 2);
  const auto b = rect_soup(n, static_cast<coord_t>(40 * n), 3);
  for (auto _ : state) {
    auto r = geo::boolean_rects(std::span<const rect>(a), b, geo::bool_op::intersect);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

void BM_BooleanSubtract(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = rect_soup(n, static_cast<coord_t>(40 * n), 4);
  const auto b = rect_soup(n, static_cast<coord_t>(40 * n), 5);
  for (auto _ : state) {
    auto r = geo::boolean_rects(std::span<const rect>(a), b, geo::bool_op::subtract);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

BENCHMARK(BM_BooleanUnion)->Arg(1 << 8)->Arg(1 << 11)->Arg(1 << 14);
BENCHMARK(BM_BooleanIntersect)->Arg(1 << 8)->Arg(1 << 11)->Arg(1 << 14);
BENCHMARK(BM_BooleanSubtract)->Arg(1 << 8)->Arg(1 << 11)->Arg(1 << 14);

void BM_ConnectedComponents(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rects = rect_soup(n, static_cast<coord_t>(40 * n), 6);
  for (auto _ : state) {
    auto c = geo::connected_components(rects);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

BENCHMARK(BM_ConnectedComponents)->Arg(1 << 8)->Arg(1 << 11)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
