// Table I reproduction: runtime comparison for INTRA-polygon design rule
// checks — minimum width and minimum area on M1/M2/M3 for each of the six
// designs, across KLayout-analogue flat/deep/tile, X-Check, and OpenDRC
// sequential/parallel. The paper's headline shapes:
//   - intra checks are fast everywhere ("intra-polygon checks generally run
//     fast, which confirms the claim in X-Check");
//   - OpenDRC seq ~= OpenDRC par for intra checks;
//   - hierarchical checkers (deep, OpenDRC) beat flat by a wide margin;
//   - X-Check has no area check (empty column).
//
// One harness case per (design, rule, checker); the Table I rendering is
// rebuilt from the case medians in the summarize callback.
#include "table_common.hpp"

namespace {

using namespace odrc;
using namespace odrc::bench;
using workload::layers;
using workload::tech;

const std::vector<std::string> columns{"kl-flat", "kl-deep", "kl-tile",
                                       "xcheck",  "odrc-seq", "odrc-par"};
constexpr std::size_t ref_col = 5;  // OpenDRC parallel

struct rule_row {
  const char* label;
  bool is_width;  // else area
  db::layer_t layer;
};
constexpr rule_row rule_rows[] = {
    {"M1.W.1", true, layers::M1},  {"M2.W.1", true, layers::M2},
    {"M3.W.1", true, layers::M3},  {"M1.A.1", false, layers::M1},
    {"M2.A.1", false, layers::M2}, {"M3.A.1", false, layers::M3},
};

// One timed case: run `fn` once per repetition, then record the work
// counters of the last report.
template <typename Fn>
void timed_case(case_context& ctx, Fn&& fn) {
  engine::check_report last;
  while (ctx.next_rep()) last = fn();
  ctx.counter("violations", static_cast<double>(last.violations.size()));
  ctx.counter("edge_pairs", static_cast<double>(last.check_stats.edge_pairs_tested +
                                                last.device_stats.edge_pairs_tested));
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("table1_intra");
  if (auto rc = s.parse(argc, argv)) return *rc;

  workload_cache cache;
  const std::vector<std::string> designs = bench_designs(s, {"uart", "aes"});

  for (const std::string& design : designs) {
    for (const rule_row& rr : rule_rows) {
      const std::string base = design + "/" + rr.label + "/";
      auto add = [&](const char* col, auto runner) {
        s.add(base + col, [&cache, design, rr, runner](case_context& ctx) {
          const auto& g = cache.get(design, 2, ctx.scale());
          timed_case(ctx, [&] { return runner(g.lib, rr); });
        });
      };
      if (rr.is_width) {
        add("kl-flat", [](const db::library& lib, const rule_row& r) {
          return baseline::flat_checker{}.run_width(lib, r.layer, tech::wire_width);
        });
        add("kl-deep", [](const db::library& lib, const rule_row& r) {
          return baseline::deep_checker{}.run_width(lib, r.layer, tech::wire_width);
        });
        add("kl-tile", [](const db::library& lib, const rule_row& r) {
          return baseline::tile_checker{8}.run_width(lib, r.layer, tech::wire_width);
        });
        add("xcheck", [](const db::library& lib, const rule_row& r) {
          return baseline::xcheck{}.run_width(lib, r.layer, tech::wire_width);
        });
        add("odrc-seq", [](const db::library& lib, const rule_row& r) {
          return drc_engine{{.run_mode = engine::mode::sequential}}.run_width(
              lib, r.layer, tech::wire_width);
        });
        add("odrc-par", [](const db::library& lib, const rule_row& r) {
          return drc_engine{{.run_mode = engine::mode::parallel}}.run_width(
              lib, r.layer, tech::wire_width);
        });
      } else {
        // X-Check cannot perform area checks (paper Table I): no case, so the
        // summarize table renders "-" for that cell.
        add("kl-flat", [](const db::library& lib, const rule_row& r) {
          return baseline::flat_checker{}.run_area(lib, r.layer, tech::min_area);
        });
        add("kl-deep", [](const db::library& lib, const rule_row& r) {
          return baseline::deep_checker{}.run_area(lib, r.layer, tech::min_area);
        });
        add("kl-tile", [](const db::library& lib, const rule_row& r) {
          return baseline::tile_checker{8}.run_area(lib, r.layer, tech::min_area);
        });
        add("odrc-seq", [](const db::library& lib, const rule_row& r) {
          return drc_engine{{.run_mode = engine::mode::sequential}}.run_area(
              lib, r.layer, tech::min_area);
        });
        add("odrc-par", [](const db::library& lib, const rule_row& r) {
          return drc_engine{{.run_mode = engine::mode::parallel}}.run_area(
              lib, r.layer, tech::min_area);
        });
      }
    }
  }

  return s.run([&](const suite_report& rep) {
    std::vector<row_result> rows;
    for (const std::string& design : designs) {
      for (const rule_row& rr : rule_rows) {
        const std::string base = design + "/" + rr.label + "/";
        row_result out;
        out.design = design;
        out.rule = rr.label;
        for (const std::string& col : columns) out.seconds.push_back(median_or(rep, base + col));
        out.violations =
            static_cast<std::size_t>(counter_or(rep, base + "odrc-par", "violations"));
        rows.push_back(std::move(out));
      }
    }
    print_table("TABLE I: intra-polygon design rule checks (width, area)", columns, rows,
                ref_col, rep);
    std::printf(
        "\nNote: wall-clock on the software-simulated device is not comparable to the\n"
        "paper's GTX 1660Ti; the expected *shape* is flat >> {deep, odrc} and\n"
        "odrc-seq ~= odrc-par for intra checks. See EXPERIMENTS.md.\n");
  });
}
