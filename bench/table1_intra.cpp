// Table I reproduction: runtime comparison for INTRA-polygon design rule
// checks — minimum width and minimum area on M1/M2/M3 for each of the six
// designs, across KLayout-analogue flat/deep/tile, X-Check, and OpenDRC
// sequential/parallel. The paper's headline shapes:
//   - intra checks are fast everywhere ("intra-polygon checks generally run
//     fast, which confirms the claim in X-Check");
//   - OpenDRC seq ~= OpenDRC par for intra checks;
//   - hierarchical checkers (deep, OpenDRC) beat flat by a wide margin;
//   - X-Check has no area check (empty column).
#include "table_common.hpp"

int main() {
  using namespace odrc;
  using namespace odrc::bench;
  using workload::layers;
  using workload::tech;

  const std::vector<std::string> columns{"kl-flat", "kl-deep", "kl-tile",
                                         "xcheck",  "odrc-seq", "odrc-par"};
  const std::size_t ref_col = 5;  // OpenDRC parallel

  struct rule_row {
    const char* label;
    bool is_width;  // else area
    db::layer_t layer;
  };
  const rule_row rule_rows[] = {
      {"M1.W.1", true, layers::M1},  {"M2.W.1", true, layers::M2},
      {"M3.W.1", true, layers::M3},  {"M1.A.1", false, layers::M1},
      {"M2.A.1", false, layers::M2}, {"M3.A.1", false, layers::M3},
  };

  std::vector<row_result> rows;
  for (const std::string& design : workload::design_names()) {
    auto spec = workload::spec_for(design, bench_scale());
    spec.inject = {2, 2, 2, 2};
    const auto g = workload::generate(spec);
    std::fprintf(stderr, "[table1] %s: %llu flat polygons\n", design.c_str(),
                 static_cast<unsigned long long>(g.lib.expanded_polygon_count()));

    baseline::flat_checker flat;
    baseline::deep_checker deep;
    baseline::tile_checker tile(8);
    baseline::xcheck xc;
    drc_engine seq({.run_mode = engine::mode::sequential});
    drc_engine par({.run_mode = engine::mode::parallel});

    for (const rule_row& rr : rule_rows) {
      row_result out;
      out.design = design;
      out.rule = rr.label;
      engine::check_report last;
      if (rr.is_width) {
        out.seconds = {
            time_best([&] { return flat.run_width(g.lib, rr.layer, tech::wire_width); }),
            time_best([&] { return deep.run_width(g.lib, rr.layer, tech::wire_width); }),
            time_best([&] { return tile.run_width(g.lib, rr.layer, tech::wire_width); }),
            time_best([&] { return xc.run_width(g.lib, rr.layer, tech::wire_width); }),
            time_best([&] { return seq.run_width(g.lib, rr.layer, tech::wire_width); }),
            time_best([&] { return par.run_width(g.lib, rr.layer, tech::wire_width); }, &last),
        };
      } else {
        out.seconds = {
            time_best([&] { return flat.run_area(g.lib, rr.layer, tech::min_area); }),
            time_best([&] { return deep.run_area(g.lib, rr.layer, tech::min_area); }),
            time_best([&] { return tile.run_area(g.lib, rr.layer, tech::min_area); }),
            -1.0,  // X-Check cannot perform area checks (paper Table I)
            time_best([&] { return seq.run_area(g.lib, rr.layer, tech::min_area); }),
            time_best([&] { return par.run_area(g.lib, rr.layer, tech::min_area); }, &last),
        };
      }
      out.violations = last.violations.size();
      rows.push_back(std::move(out));
    }
  }

  print_table("TABLE I: intra-polygon design rule checks (width, area)", columns, rows, ref_col);
  std::printf("\nNote: wall-clock on the software-simulated device is not comparable to the\n"
              "paper's GTX 1660Ti; the expected *shape* is flat >> {deep, odrc} and\n"
              "odrc-seq ~= odrc-par for intra checks. See EXPERIMENTS.md.\n");
  return 0;
}
