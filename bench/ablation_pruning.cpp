// Ablation: the paper's two hierarchy-exploitation mechanisms, toggled
// independently on the sequential engine (Section IV-B/IV-C):
//   - adaptive row partition (on/off),
//   - memoization of intra-master and relative-placement pair results
//     (on/off),
//   - pigeonhole vs sort-based interval merging inside the partitioner.
// One harness case per (design, config). Violations must be identical across
// all configurations: each case checks against the "full" config's set and
// throws (failing the case and the suite) on a mismatch. The runtime and
// work-counter deltas quantify each mechanism's contribution.
#include <algorithm>
#include <memory>
#include <stdexcept>

#include "table_common.hpp"

namespace {

using namespace odrc;
using namespace odrc::bench;
using workload::layers;
using workload::tech;

struct config_row {
  const char* label;
  engine_config cfg;
};
const config_row configs[] = {
    {"full", {}},
    {"no-partition", {.enable_partition = false}},
    {"no-memo", {.enable_memoization = false}},
    {"no-both", {.enable_partition = false, .enable_memoization = false}},
    {"sort-merge", {.merge = partition::merge_strategy::sort}},
    {"rtree-cands", {.candidates = engine::candidate_strategy::rtree}},
    {"quadtree", {.candidates = engine::candidate_strategy::quadtree}},
    {"host-par", {.host_parallel = true}},
};

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("ablation_pruning");
  if (auto rc = s.parse(argc, argv)) return *rc;

  workload_cache cache;
  const std::vector<std::string> all = bench_designs(s, {"uart"});
  // The full list intentionally leads with the designs whose hierarchy the
  // ablations stress; keep the historical aes/jpeg/uart order when present.
  std::vector<std::string> designs;
  for (const char* d : {"aes", "jpeg", "uart"}) {
    if (std::find(all.begin(), all.end(), d) != all.end()) designs.emplace_back(d);
  }
  if (designs.empty()) designs = all;

  // Reference violation set per design, captured by the "full" case (cases
  // run in registration order).
  auto reference = std::make_shared<std::map<std::string, std::vector<checks::violation>>>();

  for (const std::string& design : designs) {
    for (const config_row& cr : configs) {
      s.add(design + "/" + cr.label, [&cache, reference, design, cr](case_context& ctx) {
        const auto& g = cache.get(design, 1, ctx.scale());
        drc_engine e(cr.cfg);
        engine::check_report total;
        while (ctx.next_rep()) {
          total = {};
          for (const db::layer_t layer : {layers::M1, layers::M2}) {
            total.merge_from(e.run_spacing(g.lib, layer, tech::wire_space));
          }
        }
        checks::normalize_all(total.violations);
        auto [it, inserted] = reference->try_emplace(design, total.violations);
        if (!inserted && total.violations != it->second) {
          throw std::runtime_error(std::string("config '") + cr.label +
                                   "' changed the violation set");
        }
        ctx.counter("edge_pairs", static_cast<double>(total.check_stats.edge_pairs_tested));
        ctx.counter("pairs_reused", static_cast<double>(total.prune.intra_reused +
                                                        total.prune.pairs_reused));
        ctx.counter("rows", static_cast<double>(total.rows));
        ctx.counter("clips", static_cast<double>(total.clips));
      });
    }
  }

  return s.run([&](const suite_report& rep) {
    std::printf("\nABLATION: partition / memoization (sequential spacing checks, scale=%.2f)\n",
                rep.scale);
    std::printf("%-8s %-14s %10s %14s %12s %10s %10s\n", "Design", "Config", "time(s)",
                "edge-pairs(M)", "pairs-reused", "rows", "clips");
    bool all_ok = true;
    for (const std::string& design : designs) {
      for (const config_row& cr : configs) {
        const std::string name = design + "/" + cr.label;
        const case_result* c = rep.find(name);
        if (!c || !c->error.empty()) {
          all_ok = false;
          continue;
        }
        std::printf("%-8s %-14s %10.4f %14.3f %12.0f %10.0f %10.0f\n", design.c_str(),
                    cr.label, c->wall.median, counter_or(rep, name, "edge_pairs") / 1e6,
                    counter_or(rep, name, "pairs_reused"), counter_or(rep, name, "rows"),
                    counter_or(rep, name, "clips"));
      }
    }
    if (all_ok) {
      std::printf("\nAll configurations produced identical violation sets (verified).\n");
    }
  });
}
