// Ablation: the paper's two hierarchy-exploitation mechanisms, toggled
// independently on the sequential engine (Section IV-B/IV-C):
//   - adaptive row partition (on/off),
//   - memoization of intra-master and relative-placement pair results
//     (on/off),
//   - pigeonhole vs sort-based interval merging inside the partitioner.
// Violations are identical across all configurations (asserted); the runtime
// and work-counter deltas quantify each mechanism's contribution.
#include "table_common.hpp"

int main() {
  using namespace odrc;
  using namespace odrc::bench;
  using workload::layers;
  using workload::tech;

  struct config_row {
    const char* label;
    engine_config cfg;
  };
  const config_row configs[] = {
      {"full", {}},
      {"no-partition", {.enable_partition = false}},
      {"no-memo", {.enable_memoization = false}},
      {"no-both", {.enable_partition = false, .enable_memoization = false}},
      {"sort-merge", {.merge = partition::merge_strategy::sort}},
      {"rtree-cands", {.candidates = engine::candidate_strategy::rtree}},
      {"quadtree", {.candidates = engine::candidate_strategy::quadtree}},
      {"host-par", {.host_parallel = true}},
  };

  std::printf("\nABLATION: partition / memoization (sequential spacing checks, scale=%.2f)\n",
              bench_scale());
  std::printf("%-8s %-14s %10s %14s %12s %10s %10s\n", "Design", "Config", "time(s)",
              "edge-pairs(M)", "pairs-reused", "rows", "clips");

  for (const std::string& design : {std::string("aes"), std::string("jpeg"),
                                    std::string("uart")}) {
    auto spec = workload::spec_for(design, bench_scale());
    spec.inject = {1, 1, 1, 1};
    const auto g = workload::generate(spec);

    std::vector<checks::violation> reference;
    for (const config_row& cr : configs) {
      drc_engine e(cr.cfg);
      engine::check_report total;
      double secs = 0;
      for (const db::layer_t layer : {layers::M1, layers::M2}) {
        engine::check_report r;
        secs += time_best([&] { return e.run_spacing(g.lib, layer, tech::wire_space); }, &r);
        total.merge_from(std::move(r));
      }
      checks::normalize_all(total.violations);
      if (reference.empty()) {
        reference = total.violations;
      } else if (total.violations != reference) {
        std::fprintf(stderr, "FATAL: config '%s' changed the violation set!\n", cr.label);
        return 1;
      }
      std::printf("%-8s %-14s %10.4f %14.3f %12llu %10zu %10zu\n", design.c_str(), cr.label,
                  secs, static_cast<double>(total.check_stats.edge_pairs_tested) / 1e6,
                  static_cast<unsigned long long>(total.prune.intra_reused +
                                                  total.prune.pairs_reused),
                  total.rows, total.clips);
    }
  }
  std::printf("\nAll configurations produced identical violation sets (verified).\n");
  return 0;
}
