// Sweepline / interval-tree micro-benchmarks (paper Section IV-D, Fig. 3):
// the O(n log n + k) sweepline MBR-overlap report against the O(n^2) scan,
// and raw interval-tree operation throughput. Registered into the
// odrc::bench harness: one case per (algorithm, n); sub-millisecond
// operations run a fixed inner batch per sample.
#include <random>
#include <string>
#include <vector>

#include "infra/bench_harness.hpp"
#include "infra/interval_tree.hpp"
#include "infra/simd.hpp"
#include "geo/quadtree.hpp"
#include "geo/rtree.hpp"
#include "sweep/sweepline.hpp"

namespace {

using namespace odrc;

std::vector<rect> make_rects(std::size_t n, coord_t span) {
  std::mt19937 rng(n);
  std::uniform_int_distribution<coord_t> pos(0, span);
  std::uniform_int_distribution<coord_t> size(10, 120);
  std::vector<rect> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    out.push_back({x, y, static_cast<coord_t>(x + size(rng)), static_cast<coord_t>(y + size(rng))});
  }
  return out;
}

template <typename Fn>
void add_overlap_case(bench::suite& s, const std::string& name, std::size_t n, Fn count_pairs) {
  s.add(name + "/n=" + std::to_string(n), [n, count_pairs](bench::case_context& ctx) {
    const auto rects = make_rects(n, 50000);
    std::uint64_t pairs = 0;
    while (ctx.next_rep()) pairs = count_pairs(rects);
    ctx.counter("items", static_cast<double>(n));
    ctx.counter("pairs", static_cast<double>(pairs));
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("micro_sweepline");
  if (auto rc = s.parse(argc, argv)) return *rc;
  const bool quick = s.opts().quick;

  const std::vector<std::size_t> sweep_ns =
      quick ? std::vector<std::size_t>{1 << 10, 1 << 13}
            : std::vector<std::size_t>{1 << 10, 1 << 13, 1 << 15, 1 << 17};
  // simd-off ablation: the "_nosimd" column forces the scalar live-interval
  // filter, isolating the AVX2 kernels' contribution.
  for (const std::size_t n : sweep_ns) {
    add_overlap_case(s, "sweepline_overlap", n, [](const std::vector<rect>& rects) {
      simd::set_mode(simd::mode::automatic);
      std::uint64_t pairs = 0;
      sweep::overlap_pairs(rects, [&](std::uint32_t, std::uint32_t) { ++pairs; });
      return pairs;
    });
    add_overlap_case(s, "sweepline_overlap_nosimd", n, [](const std::vector<rect>& rects) {
      simd::set_mode(simd::mode::off);
      std::uint64_t pairs = 0;
      sweep::overlap_pairs(rects, [&](std::uint32_t, std::uint32_t) { ++pairs; });
      simd::set_mode(simd::mode::automatic);
      return pairs;
    });
  }

  const std::vector<std::size_t> brute_ns =
      quick ? std::vector<std::size_t>{1 << 10}
            : std::vector<std::size_t>{1 << 10, 1 << 13, 1 << 15};
  for (const std::size_t n : brute_ns) {
    add_overlap_case(s, "brute_overlap", n, [](const std::vector<rect>& rects) {
      std::uint64_t pairs = 0;
      for (std::size_t i = 0; i < rects.size(); ++i) {
        for (std::size_t j = i + 1; j < rects.size(); ++j) {
          if (rects[i].overlaps(rects[j])) ++pairs;
        }
      }
      return pairs;
    });
  }

  const std::vector<std::size_t> tree_ns =
      quick ? std::vector<std::size_t>{1 << 10}
            : std::vector<std::size_t>{1 << 10, 1 << 14, 1 << 16};
  for (const std::size_t n : tree_ns) {
    s.add("interval_tree_insert_remove/n=" + std::to_string(n),
          [n](bench::case_context& ctx) {
            std::mt19937 rng(3);
            std::uniform_int_distribution<coord_t> lo(0, 100000);
            std::vector<interval> ivs;
            ivs.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
              const coord_t l = lo(rng);
              ivs.push_back({l, static_cast<coord_t>(l + 100), static_cast<std::uint32_t>(i)});
            }
            while (ctx.next_rep()) {
              interval_tree t;
              for (const interval& iv : ivs) t.insert(iv);
              for (const interval& iv : ivs) t.remove(iv);
            }
            ctx.counter("items", static_cast<double>(2 * n));
          });

    s.add("interval_tree_query/n=" + std::to_string(n), [n](bench::case_context& ctx) {
      std::mt19937 rng(5);
      std::uniform_int_distribution<coord_t> lo(0, 100000);
      interval_tree t;
      for (std::size_t i = 0; i < n; ++i) {
        const coord_t l = lo(rng);
        t.insert({l, static_cast<coord_t>(l + 100), static_cast<std::uint32_t>(i)});
      }
      // A single query is microseconds: batch 4096 per sample.
      constexpr std::size_t inner = 4096;
      std::vector<std::uint32_t> hits;
      std::size_t q = 0;
      while (ctx.next_rep()) {
        for (std::size_t i = 0; i < inner; ++i) {
          hits.clear();
          const coord_t l = lo(rng);
          t.query({l, static_cast<coord_t>(l + 200), static_cast<std::uint32_t>(q++)}, hits);
        }
      }
      ctx.counter("items", static_cast<double>(inner));
    });
  }

  // Candidate-structure comparison (engine_config::candidates ablation): the
  // same all-pairs enumeration through the packed R-tree and the quadtree.
  const std::vector<std::size_t> cand_ns =
      quick ? std::vector<std::size_t>{1 << 10}
            : std::vector<std::size_t>{1 << 10, 1 << 13, 1 << 15};
  for (const std::size_t n : cand_ns) {
    add_overlap_case(s, "rtree_overlap", n, [](const std::vector<rect>& rects) {
      const geo::rtree tree(rects);
      std::uint64_t pairs = 0;
      tree.overlap_pairs([&](std::uint32_t, std::uint32_t) { ++pairs; });
      return pairs;
    });
    add_overlap_case(s, "quadtree_overlap", n, [](const std::vector<rect>& rects) {
      const geo::quadtree tree(rects);
      std::uint64_t pairs = 0;
      tree.overlap_pairs([&](std::uint32_t, std::uint32_t) { ++pairs; });
      return pairs;
    });
  }

  return s.run();
}
