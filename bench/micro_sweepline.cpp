// Sweepline / interval-tree micro-benchmarks (paper Section IV-D, Fig. 3):
// the O(n log n + k) sweepline MBR-overlap report against the O(n^2) scan,
// and raw interval-tree operation throughput.
#include <benchmark/benchmark.h>

#include <random>

#include "infra/interval_tree.hpp"
#include "geo/quadtree.hpp"
#include "geo/rtree.hpp"
#include "sweep/sweepline.hpp"

namespace {

using namespace odrc;

std::vector<rect> make_rects(std::size_t n, coord_t span) {
  std::mt19937 rng(n);
  std::uniform_int_distribution<coord_t> pos(0, span);
  std::uniform_int_distribution<coord_t> size(10, 120);
  std::vector<rect> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    out.push_back({x, y, static_cast<coord_t>(x + size(rng)), static_cast<coord_t>(y + size(rng))});
  }
  return out;
}

void BM_SweeplineOverlap(benchmark::State& state) {
  const auto rects = make_rects(static_cast<std::size_t>(state.range(0)), 50000);
  for (auto _ : state) {
    std::uint64_t pairs = 0;
    sweep::overlap_pairs(rects, [&](std::uint32_t, std::uint32_t) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

void BM_BruteForceOverlap(benchmark::State& state) {
  const auto rects = make_rects(static_cast<std::size_t>(state.range(0)), 50000);
  for (auto _ : state) {
    std::uint64_t pairs = 0;
    for (std::size_t i = 0; i < rects.size(); ++i) {
      for (std::size_t j = i + 1; j < rects.size(); ++j) {
        if (rects[i].overlaps(rects[j])) ++pairs;
      }
    }
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

BENCHMARK(BM_SweeplineOverlap)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15)->Arg(1 << 17);
BENCHMARK(BM_BruteForceOverlap)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

void BM_IntervalTreeInsertRemove(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(3);
  std::uniform_int_distribution<coord_t> lo(0, 100000);
  std::vector<interval> ivs;
  ivs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const coord_t l = lo(rng);
    ivs.push_back({l, static_cast<coord_t>(l + 100), static_cast<std::uint32_t>(i)});
  }
  for (auto _ : state) {
    interval_tree t;
    for (const interval& iv : ivs) t.insert(iv);
    for (const interval& iv : ivs) t.remove(iv);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.range(0) * 2 * state.iterations());
}

void BM_IntervalTreeQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(5);
  std::uniform_int_distribution<coord_t> lo(0, 100000);
  interval_tree t;
  for (std::size_t i = 0; i < n; ++i) {
    const coord_t l = lo(rng);
    t.insert({l, static_cast<coord_t>(l + 100), static_cast<std::uint32_t>(i)});
  }
  std::vector<std::uint32_t> hits;
  std::size_t q = 0;
  for (auto _ : state) {
    hits.clear();
    const coord_t l = lo(rng);
    t.query({l, static_cast<coord_t>(l + 200), static_cast<std::uint32_t>(q++)}, hits);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_IntervalTreeInsertRemove)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 16);
BENCHMARK(BM_IntervalTreeQuery)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 16);

// Candidate-structure comparison (engine_config::candidates ablation): the
// same all-pairs enumeration through the packed R-tree and the quadtree.
void BM_RtreeOverlapPairs(benchmark::State& state) {
  const auto rects = make_rects(static_cast<std::size_t>(state.range(0)), 50000);
  for (auto _ : state) {
    const geo::rtree tree(rects);
    std::uint64_t pairs = 0;
    tree.overlap_pairs([&](std::uint32_t, std::uint32_t) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

void BM_QuadtreeOverlapPairs(benchmark::State& state) {
  const auto rects = make_rects(static_cast<std::size_t>(state.range(0)), 50000);
  for (auto _ : state) {
    const geo::quadtree tree(rects);
    std::uint64_t pairs = 0;
    tree.overlap_pairs([&](std::uint32_t, std::uint32_t) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

BENCHMARK(BM_RtreeOverlapPairs)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);
BENCHMARK(BM_QuadtreeOverlapPairs)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

}  // namespace

BENCHMARK_MAIN();
