// Algorithm 1 micro-benchmark: the Theta(k+N) pigeonhole interval merge vs
// the O(k log k) sort-based merge. The paper argues the pigeonhole array
// wins "since k is typically much larger than N in our problems, and arrays
// usually have a much better locality" — the k/N ratio is the benchmark's
// second parameter.
#include <benchmark/benchmark.h>

#include <random>

#include "infra/pigeonhole.hpp"
#include "partition/row_partition.hpp"

namespace {

using namespace odrc;

// Row-placement-like intervals: k cells snapped to N distinct row
// coordinates (k >> N, the paper's regime).
std::vector<interval> make_intervals(std::size_t k, std::size_t n_rows) {
  std::mt19937 rng(k * 31 + n_rows);
  std::uniform_int_distribution<coord_t> row(0, static_cast<coord_t>(n_rows) - 1);
  std::vector<interval> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const coord_t r = row(rng);
    out.push_back({static_cast<coord_t>(r * 270), static_cast<coord_t>(r * 270 + 270),
                   static_cast<std::uint32_t>(i)});
  }
  return out;
}

void BM_PigeonholeMerge(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto rows = static_cast<std::size_t>(state.range(1));
  const auto ivs = make_intervals(k, rows);
  for (auto _ : state) {
    auto g = partition::merge_1d(ivs, partition::merge_strategy::pigeonhole);
    benchmark::DoNotOptimize(g.groups.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(k) * state.iterations());
}

void BM_SortMerge(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto rows = static_cast<std::size_t>(state.range(1));
  const auto ivs = make_intervals(k, rows);
  for (auto _ : state) {
    auto g = partition::merge_1d(ivs, partition::merge_strategy::sort);
    benchmark::DoNotOptimize(g.groups.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(k) * state.iterations());
}

// k cells over {64, 1024} rows: k/N from 16x to 4096x.
BENCHMARK(BM_PigeonholeMerge)->Args({1 << 12, 64})->Args({1 << 16, 64})->Args({1 << 18, 64})
    ->Args({1 << 16, 1024})->Args({1 << 18, 1024});
BENCHMARK(BM_SortMerge)->Args({1 << 12, 64})->Args({1 << 16, 64})->Args({1 << 18, 64})
    ->Args({1 << 16, 1024})->Args({1 << 18, 1024});

void BM_FullRowPartition(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(7);
  std::uniform_int_distribution<coord_t> row(0, 63);
  std::uniform_int_distribution<coord_t> x(0, 100000);
  std::vector<rect> mbrs;
  mbrs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const coord_t r = row(rng) * 300;
    const coord_t xx = x(rng);
    mbrs.push_back({xx, static_cast<coord_t>(r + 36), static_cast<coord_t>(xx + 100),
                    static_cast<coord_t>(r + 234)});
  }
  for (auto _ : state) {
    auto p = partition::partition_rows(mbrs, 18);
    benchmark::DoNotOptimize(p.rows.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(k) * state.iterations());
}

BENCHMARK(BM_FullRowPartition)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

}  // namespace

BENCHMARK_MAIN();
