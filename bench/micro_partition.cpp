// Algorithm 1 micro-benchmark: the Theta(k+N) pigeonhole interval merge vs
// the O(k log k) sort-based merge. The paper argues the pigeonhole array
// wins "since k is typically much larger than N in our problems, and arrays
// usually have a much better locality" — the k/N ratio is the benchmark's
// second parameter.
//
// Registered into the odrc::bench harness: one case per (algorithm, k, N);
// each repetition runs a fixed inner-iteration batch sized so a sample is
// well above timer resolution, with the per-op count in the "items" counter.
#include <random>
#include <string>
#include <vector>

#include "infra/bench_harness.hpp"
#include "infra/pigeonhole.hpp"
#include "partition/row_partition.hpp"

namespace {

using namespace odrc;

// Row-placement-like intervals: k cells snapped to N distinct row
// coordinates (k >> N, the paper's regime).
std::vector<interval> make_intervals(std::size_t k, std::size_t n_rows) {
  std::mt19937 rng(k * 31 + n_rows);
  std::uniform_int_distribution<coord_t> row(0, static_cast<coord_t>(n_rows) - 1);
  std::vector<interval> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const coord_t r = row(rng);
    out.push_back({static_cast<coord_t>(r * 270), static_cast<coord_t>(r * 270 + 270),
                   static_cast<std::uint32_t>(i)});
  }
  return out;
}

// Inner-iteration batch keeping each sample around a millisecond regardless
// of k (merging is ~linear in k).
std::size_t inner_iters(std::size_t k) { return std::max<std::size_t>(1, (1u << 18) / k); }

void add_merge_case(bench::suite& s, partition::merge_strategy strategy, std::size_t k,
                    std::size_t rows) {
  const char* label = strategy == partition::merge_strategy::pigeonhole ? "pigeonhole" : "sort";
  s.add(std::string(label) + "/k=" + std::to_string(k) + "/rows=" + std::to_string(rows),
        [strategy, k, rows](bench::case_context& ctx) {
          const auto ivs = make_intervals(k, rows);
          const std::size_t inner = inner_iters(k);
          while (ctx.next_rep()) {
            for (std::size_t i = 0; i < inner; ++i) {
              auto g = partition::merge_1d(ivs, strategy);
              (void)g;
            }
          }
          ctx.counter("items", static_cast<double>(k * inner));
          ctx.counter("inner_iters", static_cast<double>(inner));
        });
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("micro_partition");
  if (auto rc = s.parse(argc, argv)) return *rc;

  // k cells over {64, 1024} rows: k/N from 16x to 4096x.
  const std::vector<std::pair<std::size_t, std::size_t>> merge_args =
      s.opts().quick
          ? std::vector<std::pair<std::size_t, std::size_t>>{{1 << 12, 64}, {1 << 16, 64}}
          : std::vector<std::pair<std::size_t, std::size_t>>{
                {1 << 12, 64}, {1 << 16, 64}, {1 << 18, 64}, {1 << 16, 1024}, {1 << 18, 1024}};
  for (const auto& [k, rows] : merge_args) {
    add_merge_case(s, partition::merge_strategy::pigeonhole, k, rows);
    add_merge_case(s, partition::merge_strategy::sort, k, rows);
  }

  const std::vector<std::size_t> partition_ks =
      s.opts().quick ? std::vector<std::size_t>{1 << 12}
                     : std::vector<std::size_t>{1 << 12, 1 << 15, 1 << 17};
  for (const std::size_t k : partition_ks) {
    s.add("row_partition/k=" + std::to_string(k), [k](bench::case_context& ctx) {
      std::mt19937 rng(7);
      std::uniform_int_distribution<coord_t> row(0, 63);
      std::uniform_int_distribution<coord_t> x(0, 100000);
      std::vector<rect> mbrs;
      mbrs.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        const coord_t r = row(rng) * 300;
        const coord_t xx = x(rng);
        mbrs.push_back({xx, static_cast<coord_t>(r + 36), static_cast<coord_t>(xx + 100),
                        static_cast<coord_t>(r + 234)});
      }
      const std::size_t inner = inner_iters(k);
      while (ctx.next_rep()) {
        for (std::size_t i = 0; i < inner; ++i) {
          auto p = partition::partition_rows(mbrs, 18);
          (void)p;
        }
      }
      ctx.counter("items", static_cast<double>(k * inner));
    });
  }

  return s.run();
}
