// Ablation: parallel-mode row pipeline depth (paper Section V-C — multiple
// CUDA streams overlap host preprocessing, copies and kernels). Depth 1
// serializes host packing against device work; deeper pipelines keep the
// device busy. On a many-core host (ODRC_DEVICE_SMS > 1) the effect grows.
// One harness case per (design, depth); each non-first depth verifies its
// violation set against depth 1's and throws on a mismatch.
#include <memory>
#include <stdexcept>

#include "table_common.hpp"

namespace {

using namespace odrc;
using namespace odrc::bench;
using workload::layers;
using workload::tech;

constexpr std::size_t depths[] = {1, 2, 4};

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("ablation_pipeline");
  if (auto rc = s.parse(argc, argv)) return *rc;

  workload_cache cache;
  const std::vector<std::string> designs =
      s.opts().quick ? std::vector<std::string>{"ethmac"}
                     : std::vector<std::string>{"ethmac", "aes"};

  auto reference = std::make_shared<std::map<std::string, std::vector<checks::violation>>>();

  for (const std::string& design : designs) {
    for (const std::size_t depth : depths) {
      s.add(design + "/depth=" + std::to_string(depth),
            [&cache, reference, design, depth](case_context& ctx) {
              const auto& g = cache.get(design, 1, ctx.scale());
              drc_engine e({.run_mode = engine::mode::parallel, .pipeline_depth = depth});
              engine::check_report total;
              while (ctx.next_rep()) {
                total = {};
                for (const db::layer_t layer : {layers::M1, layers::M2}) {
                  total.merge_from(e.run_spacing(g.lib, layer, tech::wire_space));
                }
              }
              checks::normalize_all(total.violations);
              auto [it, inserted] = reference->try_emplace(design, total.violations);
              if (!inserted && total.violations != it->second) {
                throw std::runtime_error("depth " + std::to_string(depth) +
                                         " changed the violation set");
              }
              ctx.counter("device_edges",
                          static_cast<double>(total.device_stats.edges_uploaded));
              ctx.counter("launches",
                          static_cast<double>(total.device_stats.sweep_launches +
                                              total.device_stats.brute_launches));
            });
    }
  }

  return s.run([&](const suite_report& rep) {
    std::printf("\nABLATION: parallel-mode pipeline depth (spacing M1+M2, scale=%.2f)\n",
                rep.scale);
    std::printf("%-8s %8s %10s %14s %10s\n", "Design", "depth", "time(s)", "device-edges",
                "launches");
    bool all_ok = true;
    for (const std::string& design : designs) {
      for (const std::size_t depth : depths) {
        const std::string name = design + "/depth=" + std::to_string(depth);
        const case_result* c = rep.find(name);
        if (!c || !c->error.empty()) {
          all_ok = false;
          continue;
        }
        std::printf("%-8s %8zu %10.4f %14.0f %10.0f\n", design.c_str(), depth, c->wall.median,
                    counter_or(rep, name, "device_edges"), counter_or(rep, name, "launches"));
      }
    }
    if (all_ok) std::printf("\nAll depths produced identical violation sets (verified).\n");
  });
}
