// Ablation: parallel-mode row pipeline depth (paper Section V-C — multiple
// CUDA streams overlap host preprocessing, copies and kernels). Depth 1
// serializes host packing against device work; deeper pipelines keep the
// device busy. On a many-core host (ODRC_DEVICE_SMS > 1) the effect grows.
#include "table_common.hpp"

int main() {
  using namespace odrc;
  using namespace odrc::bench;
  using workload::layers;
  using workload::tech;

  std::printf("\nABLATION: parallel-mode pipeline depth (spacing M1+M2, scale=%.2f)\n",
              bench_scale());
  std::printf("%-8s %8s %10s %14s %10s\n", "Design", "depth", "time(s)", "device-edges",
              "launches");

  for (const std::string& design : {std::string("ethmac"), std::string("aes")}) {
    auto spec = workload::spec_for(design, bench_scale());
    spec.inject = {1, 1, 0, 0};
    const auto g = workload::generate(spec);

    std::vector<checks::violation> reference;
    for (const std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      drc_engine e({.run_mode = engine::mode::parallel, .pipeline_depth = depth});
      engine::check_report total;
      double secs = 0;
      for (const db::layer_t layer : {layers::M1, layers::M2}) {
        engine::check_report r;
        secs += time_best([&] { return e.run_spacing(g.lib, layer, tech::wire_space); }, &r);
        total.merge_from(std::move(r));
      }
      checks::normalize_all(total.violations);
      if (reference.empty()) {
        reference = total.violations;
      } else if (total.violations != reference) {
        std::fprintf(stderr, "FATAL: depth %zu changed the violation set!\n", depth);
        return 1;
      }
      std::printf("%-8s %8zu %10.4f %14llu %10llu\n", design.c_str(), depth, secs,
                  static_cast<unsigned long long>(total.device_stats.edges_uploaded),
                  static_cast<unsigned long long>(total.device_stats.sweep_launches +
                                                  total.device_stats.brute_launches));
    }
  }
  std::printf("\nAll depths produced identical violation sets (verified).\n");
  return 0;
}
