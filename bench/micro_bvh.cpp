// Layer-wise MBR hierarchy micro-benchmark (paper Section IV-A): a layer
// range query descends the MBR-augmented hierarchy in O(min(n, kh)) versus
// the O(n) full flatten-and-scan. Hierarchy depth and query selectivity are
// swept; the visited-node counter from mbr_index makes the pruning visible
// independent of wall-clock. Registered into the odrc::bench harness.
#include <string>

#include "db/flatten.hpp"
#include "db/mbr_index.hpp"
#include "infra/bench_harness.hpp"

namespace {

using namespace odrc;
using db::cell_id;

// A balanced hierarchy of `depth` levels with fan-out 4; leaves hold one
// polygon on layer 1 and (every 16th leaf) one on layer 2.
struct deep_lib {
  db::library lib;
  cell_id top;

  explicit deep_lib(int depth) {
    int leaf_counter = 0;
    top = build(depth, leaf_counter);
  }

  cell_id build(int depth, int& leaf_counter) {
    if (depth == 0) {
      const cell_id c = lib.add_cell("leaf" + std::to_string(leaf_counter));
      lib.at(c).add_rect(1, {0, 0, 50, 50});
      if (leaf_counter % 16 == 0) lib.at(c).add_rect(2, {10, 10, 20, 20});
      ++leaf_counter;
      return c;
    }
    const cell_id kids[4] = {build(depth - 1, leaf_counter), build(depth - 1, leaf_counter),
                             build(depth - 1, leaf_counter), build(depth - 1, leaf_counter)};
    const cell_id c = lib.add_cell("n" + std::to_string(depth) + "_" +
                                   std::to_string(leaf_counter));
    const coord_t step = static_cast<coord_t>(60) * (1 << (2 * (depth - 1)));
    for (int i = 0; i < 4; ++i) {
      lib.at(c).add_ref(
          {kids[i], transform{{static_cast<coord_t>(i) * step, 0}, 0, false, 1}});
    }
    return c;
  }
};

// Queries are microseconds at shallow depth; batch per sample.
constexpr std::size_t query_inner = 64;

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("micro_bvh");
  if (auto rc = s.parse(argc, argv)) return *rc;

  const std::vector<int> depths = s.opts().quick ? std::vector<int>{3, 5}
                                                 : std::vector<int>{3, 4, 5, 6, 7};

  for (const int depth : depths) {
    s.add("layer_query_hierarchy/depth=" + std::to_string(depth),
          [depth](bench::case_context& ctx) {
            deep_lib d(depth);
            const db::mbr_index idx(d.lib);
            std::uint64_t hits = 0;
            std::uint64_t visited = 0;
            while (ctx.next_rep()) {
              for (std::size_t i = 0; i < query_inner; ++i) {
                std::uint64_t n = 0;
                // Sparse layer 2: the MBR pruning skips most subtrees.
                visited = idx.query(d.top, 2, rect{-1000000, -1000000, 1000000, 1000000},
                                    [&](const db::layer_hit&) { ++n; });
                hits = n;
              }
            }
            ctx.counter("hits", static_cast<double>(hits));
            ctx.counter("nodes_visited", static_cast<double>(visited));
            ctx.counter("leaves_total", static_cast<double>(1 << (2 * depth)));
          });

    s.add("layer_query_flatten/depth=" + std::to_string(depth),
          [depth](bench::case_context& ctx) {
            deep_lib d(depth);
            std::uint64_t hits = 0;
            while (ctx.next_rep()) {
              const auto flat = db::flatten_layer(d.lib, d.top, 2);
              hits = flat.size();
            }
            ctx.counter("hits", static_cast<double>(hits));
          });
  }

  // Windowed query: selectivity sweep at fixed depth.
  const int window_depth = s.opts().quick ? 4 : 6;
  const std::vector<int> fracs =
      s.opts().quick ? std::vector<int>{10} : std::vector<int>{1, 10, 50, 100};
  for (const int frac_pct : fracs) {
    s.add("window_query/frac=" + std::to_string(frac_pct),
          [frac_pct, window_depth](bench::case_context& ctx) {
            deep_lib d(window_depth);
            const db::mbr_index idx(d.lib);
            const rect full = idx.cell_mbr(d.top);
            const double frac = static_cast<double>(frac_pct) / 100.0;
            const rect window{full.x_min, full.y_min,
                              static_cast<coord_t>(full.x_min + full.width() * frac),
                              full.y_max};
            std::uint64_t visited = 0;
            while (ctx.next_rep()) {
              for (std::size_t i = 0; i < query_inner; ++i) {
                std::uint64_t n = 0;
                visited = idx.query(d.top, 1, window, [&](const db::layer_hit&) { ++n; });
                (void)n;
              }
            }
            ctx.counter("nodes_visited", static_cast<double>(visited));
          });
  }

  return s.run();
}
