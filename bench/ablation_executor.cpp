// Ablation: the parallel mode's executor choice (paper Section IV-E) —
// brute-force (threads per polygon pair) vs two-kernel sweep, across batch
// sizes, locating the crossover that motivates OpenDRC's adaptive cutoff.
// One harness case per (edge-field size, executor); the winner table is
// rendered from the case medians in summarize.
#include <cstdio>
#include <random>
#include <vector>

#include "infra/bench_harness.hpp"
#include "infra/simd.hpp"
#include "sweep/device_sweep.hpp"

namespace {

using namespace odrc;
using namespace odrc::sweep;

std::vector<packed_edge> make_wire_field(std::size_t polys) {
  std::mt19937 rng(polys);
  const coord_t span = static_cast<coord_t>(60 * polys);
  std::uniform_int_distribution<coord_t> pos(0, span);
  std::vector<packed_edge> edges;
  for (std::size_t i = 0; i < polys; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    pack_polygon_edges(polygon::from_rect({x, y, x + 18, y + 100}),
                       static_cast<std::uint32_t>(i), 0, edges);
  }
  return edges;
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("ablation_executor");
  if (auto rc = s.parse(argc, argv)) return *rc;

  const std::vector<std::size_t> sizes =
      s.opts().quick ? std::vector<std::size_t>{8, 64, 256, 1024}
                     : std::vector<std::size_t>{2,   4,   8,    16,   32,  64,
                                                128, 256, 512, 1024, 4096};

  device::stream stream(device::context::instance());

  // simd-off ablation: every (size, executor) runs once under the active
  // dispatch (auto: AVX2 where the CPU has it) and once with the scalar
  // path forced — the "-nosimd" column isolates the vector kernels' gain.
  for (const std::size_t polys : sizes) {
    for (const executor_choice choice : {executor_choice::brute, executor_choice::sweep}) {
      for (const bool simd_off : {false, true}) {
        const std::string label = std::string(choice == executor_choice::brute ? "brute" : "sweep")
                                      .append(simd_off ? "-nosimd" : "");
        s.add("polys=" + std::to_string(polys) + "/" + label,
              [&stream, polys, choice, simd_off](bench::case_context& ctx) {
                simd::set_mode(simd_off ? simd::mode::off : simd::mode::automatic);
                const auto edges = make_wire_field(polys);
                const device_check_config cfg{pair_check::spacing, 18, 1, 1};
                device_check_stats stats{};
                while (ctx.next_rep()) {
                  std::vector<checks::violation> out;
                  stats = {};
                  device_check_edges_with(stream, edges, cfg, choice, out, stats);
                }
                simd::set_mode(simd::mode::automatic);
                ctx.counter("edges", static_cast<double>(edges.size()));
                ctx.counter("edge_pairs", static_cast<double>(stats.edge_pairs_tested));
                ctx.counter("lanes_active", static_cast<double>(stats.simd_lanes_active));
              });
      }
    }
  }

  return s.run([&](const bench::suite_report& rep) {
    std::printf(
        "\nABLATION: device executor choice (spacing check over random wire fields)\n");
    std::printf("%10s %12s %12s %14s %14s %12s\n", "edges", "brute(s)", "sweep(s)",
                "brute-nosimd", "sweep-nosimd", "winner");
    for (const std::size_t polys : sizes) {
      const std::string base = "polys=" + std::to_string(polys) + "/";
      const double brute_t = bench::median_or(rep, base + "brute");
      const double sweep_t = bench::median_or(rep, base + "sweep");
      if (brute_t < 0 || sweep_t < 0) continue;
      std::printf("%10.0f %12.5f %12.5f %14.5f %14.5f %12s\n",
                  bench::counter_or(rep, base + "brute", "edges"), brute_t, sweep_t,
                  bench::median_or(rep, base + "brute-nosimd"),
                  bench::median_or(rep, base + "sweep-nosimd"),
                  brute_t < sweep_t ? "brute" : "sweep");
    }
    std::printf("\nOpenDRC's automatic cutoff selects brute-force at or below %zu edges.\n",
                default_brute_threshold);
  });
}
