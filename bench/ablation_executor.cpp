// Ablation: the parallel mode's executor choice (paper Section IV-E) —
// brute-force (threads per polygon pair) vs two-kernel sweep, across batch
// sizes, locating the crossover that motivates OpenDRC's adaptive cutoff.
#include <cstdio>
#include <random>

#include "infra/timer.hpp"
#include "sweep/device_sweep.hpp"

int main() {
  using namespace odrc;
  using namespace odrc::sweep;

  device::stream s(device::context::instance());

  std::printf("\nABLATION: device executor choice (spacing check over random wire fields)\n");
  std::printf("%10s %12s %12s %12s %14s\n", "edges", "brute(s)", "sweep(s)", "winner",
              "pairs-tested(M)");

  for (const std::size_t polys : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u, 4096u}) {
    std::mt19937 rng(polys);
    const coord_t span = static_cast<coord_t>(60 * polys);
    std::uniform_int_distribution<coord_t> pos(0, span);
    std::vector<packed_edge> edges;
    for (std::size_t i = 0; i < polys; ++i) {
      const coord_t x = pos(rng), y = pos(rng);
      pack_polygon_edges(polygon::from_rect({x, y, x + 18, y + 100}),
                         static_cast<std::uint32_t>(i), 0, edges);
    }
    const device_check_config cfg{pair_check::spacing, 18, 1, 1};

    auto run = [&](executor_choice choice, device_check_stats& stats) {
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        std::vector<checks::violation> out;
        stats = {};
        timer t;
        device_check_edges_with(s, edges, cfg, choice, out, stats);
        best = std::min(best, t.seconds());
      }
      return best;
    };

    device_check_stats bs{}, ss{};
    const double brute_t = run(executor_choice::brute, bs);
    const double sweep_t = run(executor_choice::sweep, ss);
    std::printf("%10zu %12.5f %12.5f %12s %7.3f/%6.3f\n", edges.size(), brute_t, sweep_t,
                brute_t < sweep_t ? "brute" : "sweep",
                static_cast<double>(bs.edge_pairs_tested) / 1e6,
                static_cast<double>(ss.edge_pairs_tested) / 1e6);
  }
  std::printf("\nOpenDRC's automatic cutoff selects brute-force at or below %zu edges.\n",
              default_brute_threshold);
  return 0;
}
