// Stored-violation windowed lookup (DESIGN.md §12): R-tree backed
// violation_db::in_window versus the linear in_window_scan reference, swept
// over store sizes, plus a churn case that interleaves the recheck-shaped
// mutations (erase_touching + add_unique) with queries to price the
// incremental index maintenance. The acceptance bar for the index: the
// rtree case beats linear from 100k records up. Registered into the
// odrc::bench harness (BENCH_violation_query.json gates perf_smoke.sh).
#include <cstdint>
#include <string>
#include <vector>

#include "infra/bench_harness.hpp"
#include "report/violation_db.hpp"

namespace {

using namespace odrc;

// Deterministic 64-bit mix (splitmix64) — no <random> state to drag around.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

checks::violation vio_at(coord_t x, coord_t y) {
  return {checks::rule_kind::spacing, 19, 19,
          edge{{x, y}, {static_cast<coord_t>(x + 10), y}},
          edge{{x, static_cast<coord_t>(y + 10)},
               {static_cast<coord_t>(x + 10), static_cast<coord_t>(y + 10)}},
          100};
}

// Constant density: the plane side grows with sqrt(n), so a fixed-size query
// window returns a size-independent hit count and the sweep isolates the
// lookup cost, not the result-set cost.
coord_t side_for(std::size_t n) {
  coord_t side = 1;
  while (static_cast<double>(side) * side < static_cast<double>(n) * 2500.0) side *= 2;
  return side;
}

report::violation_db make_db(std::size_t n) {
  report::violation_db db("bench");
  const coord_t side = side_for(n);
  std::vector<checks::violation> vs;
  vs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t h = mix(i);
    vs.push_back(vio_at(static_cast<coord_t>(h % static_cast<std::uint64_t>(side)),
                        static_cast<coord_t>((h >> 32) % static_cast<std::uint64_t>(side))));
  }
  db.add("R", vs);
  return db;
}

rect window_at(std::uint64_t i, coord_t side) {
  const std::uint64_t h = mix(0xabcdull + i);
  const coord_t x = static_cast<coord_t>(h % static_cast<std::uint64_t>(side));
  const coord_t y = static_cast<coord_t>((h >> 32) % static_cast<std::uint64_t>(side));
  // ~16 expected hits at the 2500 units^2-per-record density.
  return {x, y, static_cast<coord_t>(x + 200), static_cast<coord_t>(y + 200)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("violation_query");
  if (auto rc = s.parse(argc, argv)) return *rc;

  const std::vector<std::size_t> sizes = s.opts().quick
                                             ? std::vector<std::size_t>{10'000, 100'000}
                                             : std::vector<std::size_t>{10'000, 100'000, 1'000'000};

  for (const std::size_t n : sizes) {
    const std::string tag = "/n=" + std::to_string(n);

    s.add("linear" + tag, [n](bench::case_context& ctx) {
      const report::violation_db db = make_db(n);
      const coord_t side = side_for(n);
      std::uint64_t q = 0, hits = 0;
      while (ctx.next_rep()) {
        hits += db.in_window_scan(window_at(q++, side)).size();
      }
      ctx.counter("hits_per_query", q ? static_cast<double>(hits) / static_cast<double>(q) : 0);
    });

    s.add("rtree" + tag, [n](bench::case_context& ctx) {
      report::violation_db db = make_db(n);
      const coord_t side = side_for(n);
      (void)db.in_window({0, 0, 1, 1});  // build the index outside the timed reps
      std::uint64_t q = 0, hits = 0;
      while (ctx.next_rep()) {
        hits += db.in_window(window_at(q++, side)).size();
      }
      ctx.counter("hits_per_query", q ? static_cast<double>(hits) / static_cast<double>(q) : 0);
      ctx.counter("rebuilds", static_cast<double>(db.index_stats().rebuilds));
    });

    // Recheck-shaped churn: purge a window, re-insert fresh records, query.
    // The index must absorb the mutations incrementally (pending overlay +
    // tombstones) instead of rebuilding per query.
    s.add("rtree_churn" + tag, [n](bench::case_context& ctx) {
      report::violation_db db = make_db(n);
      const coord_t side = side_for(n);
      (void)db.in_window({0, 0, 1, 1});
      std::uint64_t q = 0, hits = 0;
      while (ctx.next_rep()) {
        const rect w = window_at(q++, side);
        db.erase_touching("R", w);
        for (int i = 0; i < 8; ++i) {
          const std::uint64_t h = mix((q << 20) + static_cast<std::uint64_t>(i));
          db.add_unique("R", vio_at(static_cast<coord_t>(w.x_min + h % 200),
                                    static_cast<coord_t>(w.y_min + (h >> 32) % 200)));
        }
        hits += db.in_window(w).size();
      }
      ctx.counter("hits_per_query", q ? static_cast<double>(hits) / static_cast<double>(q) : 0);
      ctx.counter("rebuilds", static_cast<double>(db.index_stats().rebuilds));
      ctx.counter("size_end", static_cast<double>(db.size()));
    });
  }

  return s.run();
}
