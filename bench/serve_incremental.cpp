// odrc::serve incremental-recheck benchmark (DESIGN.md §8): the value
// proposition of a persistent session is that a localized edit rechecks in a
// small fraction of a full-deck run. Cases:
//
//   cold_full/<design>     full deck check from a warm session (the cost an
//                          editor pays without incremental rechecking)
//   recheck_edit/<design>  apply a single-cell edit, incremental recheck,
//                          undo, recheck again — i.e. two edit/recheck round
//                          trips per repetition, reported per round trip
//
// Acceptance for the PR: recheck_edit median ≥5x faster than cold_full in
// --quick mode. The committed BENCH_serve_incremental.json baseline gates
// both against regressions via scripts/perf_smoke.sh.
#include <sstream>
#include <string>
#include <vector>

#include "engine/rule.hpp"
#include "infra/bench_harness.hpp"
#include "serve/edits.hpp"
#include "serve/session.hpp"
#include "workload/workload.hpp"

namespace {

using namespace odrc;
using workload::layers;
using workload::tech;

std::vector<rules::rule> make_deck() {
  return {
      rules::layer(layers::M1).width().greater_than(tech::wire_width).named("M1.W.1"),
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space).named("M1.S.1"),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space).named("M2.S.1"),
      rules::layer(layers::M3).spacing().greater_than(tech::wire_space).named("M3.S.1"),
      rules::layer(layers::M1).area().greater_than(tech::min_area).named("M1.A.1"),
      rules::layer(layers::V1)
          .enclosed_by(layers::M1)
          .greater_than(tech::via_enclosure)
          .named("V1.EN.1"),
  };
}

workload::generated make_design(const std::string& name, double scale) {
  auto spec = workload::spec_for(name, scale);
  spec.inject = {2, 2, 2, 2};
  return workload::generate(spec);
}

// The single-cell edit of the acceptance criterion: a small M1 speck in the
// top cell, far from the placement area, plus its undo.
std::string add_script(const db::library& lib) {
  const std::string top = lib.at(lib.top_cells().front()).name();
  std::ostringstream s;
  s << "add_poly " << top << ' ' << int(layers::M1) << " 900000 900000 900010 900010\n";
  return s.str();
}

// Undo for add_script: after the add, the new polygon sits at layer-local
// index == the ORIGINAL M1 polygon count of the top cell.
std::string remove_script(const db::library& lib) {
  const db::cell_id top = lib.top_cells().front();
  std::size_t m1 = 0;
  for (const auto& p : lib.at(top).polygons()) {
    if (p.layer == layers::M1) ++m1;
  }
  std::ostringstream s;
  s << "remove_poly " << lib.at(top).name() << ' ' << int(layers::M1) << ' ' << m1 << '\n';
  return s.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("serve_incremental");
  if (auto rc = s.parse(argc, argv)) return *rc;

  const std::vector<std::pair<std::string, double>> designs =
      s.opts().quick ? std::vector<std::pair<std::string, double>>{{"ibex", 0.6}}
                     : std::vector<std::pair<std::string, double>>{{"ibex", 1.0},
                                                                   {"aes", 1.0}};

  for (const auto& [name, scale] : designs) {
    s.add("cold_full/" + name, [name = name, scale = scale](bench::case_context& ctx) {
      const auto gen = make_design(name, scale);
      serve::session sess(gen.lib, make_deck());
      std::size_t violations = 0;
      while (ctx.next_rep()) {
        std::size_t total = 0;
        for (const auto& row : sess.check_full()) total += row.count;
        violations = total;
      }
      ctx.counter("violations", static_cast<double>(violations));
      ctx.counter("polygons", static_cast<double>(gen.lib.expanded_polygon_count()));
    });

    s.add("recheck_edit/" + name, [name = name, scale = scale](bench::case_context& ctx) {
      const auto gen = make_design(name, scale);
      serve::session sess(gen.lib, make_deck());
      sess.check_full();
      const auto add = serve::parse_edit_script(add_script(gen.lib));
      const auto rem = serve::parse_edit_script(remove_script(gen.lib));
      double windows = 0, purged = 0, inserted = 0;
      std::size_t rounds = 0;
      bool added = false;
      while (ctx.next_rep()) {
        // One edit + recheck round trip per repetition, alternating the add
        // and its undo so consecutive repetitions see equivalent layouts.
        sess.apply(added ? rem : add);
        added = !added;
        const auto r = sess.recheck();
        windows += static_cast<double>(r.windows);
        purged += static_cast<double>(r.purged);
        inserted += static_cast<double>(r.inserted);
        ++rounds;
        if (r.full) ctx.counter("full_fallbacks", 1);
      }
      if (rounds > 0) {
        ctx.counter("windows_per_recheck", windows / static_cast<double>(rounds));
        ctx.counter("purged_per_recheck", purged / static_cast<double>(rounds));
        ctx.counter("inserted_per_recheck", inserted / static_cast<double>(rounds));
      }
      ctx.counter("polygons", static_cast<double>(gen.lib.expanded_polygon_count()));
    });
  }

  return s.run();
}
