// Table II reproduction: runtime comparison for INTER-polygon design rule
// checks — spacing on M1/M2/M3 and enclosure V1.M1 / V2.M2 / V2.M3 for each
// design. Paper shapes to reproduce:
//   - inter-polygon checks carry the heavy workloads;
//   - OpenDRC (seq) beats KLayout flat/deep by 1-2 orders of magnitude
//     (hierarchy memoization + adaptive row partition);
//   - the dense-M3 jpeg analogue blows up the flat/deep baselines while
//     OpenDRC stays flat-fast (the paper's 316s/3588s vs 0.35s row);
//   - X-Check (global unpartitioned device sweep) loses to OpenDRC-par.
// The table also prints edge-pairs-tested per checker: the host-independent
// work metric (wall-clock GPU speedups are not reproducible on the software
// device).
#include "table_common.hpp"

int main() {
  using namespace odrc;
  using namespace odrc::bench;
  using workload::layers;
  using workload::tech;

  const std::vector<std::string> columns{"kl-flat", "kl-deep", "kl-tile",
                                         "xcheck",  "odrc-seq", "odrc-par"};
  const std::size_t ref_col = 5;

  struct rule_row {
    const char* label;
    bool is_spacing;  // else enclosure
    db::layer_t l1;
    db::layer_t l2;
  };
  const rule_row rule_rows[] = {
      {"M1.S.1", true, layers::M1, layers::M1},
      {"M2.S.1", true, layers::M2, layers::M2},
      {"M3.S.1", true, layers::M3, layers::M3},
      {"V1.M1.EN.1", false, layers::V1, layers::M1},
      {"V2.M2.EN.1", false, layers::V2, layers::M2},
      {"V2.M3.EN.1", false, layers::V2, layers::M3},
  };

  std::vector<row_result> rows;
  std::vector<std::array<std::uint64_t, 6>> pair_counts;
  for (const std::string& design : workload::design_names()) {
    auto spec = workload::spec_for(design, bench_scale());
    spec.inject = {2, 2, 2, 2};
    const auto g = workload::generate(spec);
    std::fprintf(stderr, "[table2] %s: %llu flat polygons\n", design.c_str(),
                 static_cast<unsigned long long>(g.lib.expanded_polygon_count()));

    baseline::flat_checker flat;
    baseline::deep_checker deep;
    baseline::tile_checker tile(8);
    baseline::xcheck xc;
    drc_engine seq({.run_mode = engine::mode::sequential});
    drc_engine par({.run_mode = engine::mode::parallel});

    for (const rule_row& rr : rule_rows) {
      row_result out;
      out.design = design;
      out.rule = rr.label;
      std::array<engine::check_report, 6> reports;
      auto run = [&](std::size_t col, auto&& fn) {
        return time_best(fn, &reports[col]);
      };
      if (rr.is_spacing) {
        out.seconds = {
            run(0, [&] { return flat.run_spacing(g.lib, rr.l1, tech::wire_space); }),
            run(1, [&] { return deep.run_spacing(g.lib, rr.l1, tech::wire_space); }),
            run(2, [&] { return tile.run_spacing(g.lib, rr.l1, tech::wire_space); }),
            run(3, [&] { return xc.run_spacing(g.lib, rr.l1, tech::wire_space); }),
            run(4, [&] { return seq.run_spacing(g.lib, rr.l1, tech::wire_space); }),
            run(5, [&] { return par.run_spacing(g.lib, rr.l1, tech::wire_space); }),
        };
      } else {
        out.seconds = {
            run(0, [&] { return flat.run_enclosure(g.lib, rr.l1, rr.l2, tech::via_enclosure); }),
            run(1, [&] { return deep.run_enclosure(g.lib, rr.l1, rr.l2, tech::via_enclosure); }),
            run(2, [&] { return tile.run_enclosure(g.lib, rr.l1, rr.l2, tech::via_enclosure); }),
            run(3, [&] { return xc.run_enclosure(g.lib, rr.l1, rr.l2, tech::via_enclosure); }),
            run(4, [&] { return seq.run_enclosure(g.lib, rr.l1, rr.l2, tech::via_enclosure); }),
            run(5, [&] { return par.run_enclosure(g.lib, rr.l1, rr.l2, tech::via_enclosure); }),
        };
      }
      out.violations = reports[5].violations.size();
      std::array<std::uint64_t, 6> pairs{};
      for (std::size_t c = 0; c < 6; ++c) {
        pairs[c] = reports[c].check_stats.edge_pairs_tested +
                   reports[c].device_stats.edge_pairs_tested;
      }
      pair_counts.push_back(pairs);
      rows.push_back(std::move(out));
    }
  }

  print_table("TABLE II: inter-polygon design rule checks (spacing, enclosure)", columns, rows,
              ref_col);

  // Work-counter companion table (host-independent comparison).
  std::printf("\nEdge pairs tested (millions) — algorithmic work per checker:\n");
  std::printf("%-8s %-12s", "Design", "Rule");
  for (const std::string& c : columns) std::printf(" %9s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-8s %-12s", rows[i].design.c_str(), rows[i].rule.c_str());
    for (std::uint64_t p : pair_counts[i]) std::printf(" %9.3f", static_cast<double>(p) / 1e6);
    std::printf("\n");
  }
  return 0;
}
