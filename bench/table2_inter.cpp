// Table II reproduction: runtime comparison for INTER-polygon design rule
// checks — spacing on M1/M2/M3 and enclosure V1.M1 / V2.M2 / V2.M3 for each
// design. Paper shapes to reproduce:
//   - inter-polygon checks carry the heavy workloads;
//   - OpenDRC (seq) beats KLayout flat/deep by 1-2 orders of magnitude
//     (hierarchy memoization + adaptive row partition);
//   - the dense-M3 jpeg analogue blows up the flat/deep baselines while
//     OpenDRC stays flat-fast (the paper's 316s/3588s vs 0.35s row);
//   - X-Check (global unpartitioned device sweep) loses to OpenDRC-par.
// The table also prints edge-pairs-tested per checker: the host-independent
// work metric (wall-clock GPU speedups are not reproducible on the software
// device).
//
// One harness case per (design, rule, checker); Table II and its work-
// counter companion are rebuilt from medians and counters in summarize.
#include "table_common.hpp"

namespace {

using namespace odrc;
using namespace odrc::bench;
using workload::layers;
using workload::tech;

const std::vector<std::string> columns{"kl-flat", "kl-deep", "kl-tile",
                                       "xcheck",  "odrc-seq", "odrc-par"};
constexpr std::size_t ref_col = 5;

struct rule_row {
  const char* label;
  bool is_spacing;  // else enclosure
  db::layer_t l1;
  db::layer_t l2;
};
constexpr rule_row rule_rows[] = {
    {"M1.S.1", true, layers::M1, layers::M1},
    {"M2.S.1", true, layers::M2, layers::M2},
    {"M3.S.1", true, layers::M3, layers::M3},
    {"V1.M1.EN.1", false, layers::V1, layers::M1},
    {"V2.M2.EN.1", false, layers::V2, layers::M2},
    {"V2.M3.EN.1", false, layers::V2, layers::M3},
};

template <typename Fn>
void timed_case(case_context& ctx, Fn&& fn) {
  engine::check_report last;
  while (ctx.next_rep()) last = fn();
  ctx.counter("violations", static_cast<double>(last.violations.size()));
  ctx.counter("edge_pairs", static_cast<double>(last.check_stats.edge_pairs_tested +
                                                last.device_stats.edge_pairs_tested));
}

// checker_id indexes the column lineup; dispatching on it keeps one
// registration path for all 6 x 6 x |designs| cases.
engine::check_report run_one(std::size_t col, const db::library& lib, const rule_row& rr) {
  auto spacing = [&](auto&& checker) {
    return checker.run_spacing(lib, rr.l1, tech::wire_space);
  };
  auto enclosure = [&](auto&& checker) {
    return checker.run_enclosure(lib, rr.l1, rr.l2, tech::via_enclosure);
  };
  auto dispatch = [&](auto&& checker) {
    return rr.is_spacing ? spacing(checker) : enclosure(checker);
  };
  switch (col) {
    case 0: return dispatch(baseline::flat_checker{});
    case 1: return dispatch(baseline::deep_checker{});
    case 2: return dispatch(baseline::tile_checker{8});
    case 3: return dispatch(baseline::xcheck{});
    case 4: return dispatch(drc_engine{{.run_mode = engine::mode::sequential}});
    default: return dispatch(drc_engine{{.run_mode = engine::mode::parallel}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("table2_inter");
  if (auto rc = s.parse(argc, argv)) return *rc;

  workload_cache cache;
  const std::vector<std::string> designs = bench_designs(s, {"uart"});

  for (const std::string& design : designs) {
    for (const rule_row& rr : rule_rows) {
      for (std::size_t col = 0; col < columns.size(); ++col) {
        s.add(design + "/" + rr.label + "/" + columns[col],
              [&cache, design, rr, col](case_context& ctx) {
                const auto& g = cache.get(design, 2, ctx.scale());
                timed_case(ctx, [&] { return run_one(col, g.lib, rr); });
              });
      }
    }
  }

  return s.run([&](const suite_report& rep) {
    std::vector<row_result> rows;
    std::vector<std::vector<double>> pair_counts;
    for (const std::string& design : designs) {
      for (const rule_row& rr : rule_rows) {
        const std::string base = design + "/" + rr.label + "/";
        row_result out;
        out.design = design;
        out.rule = rr.label;
        std::vector<double> pairs;
        for (const std::string& col : columns) {
          out.seconds.push_back(median_or(rep, base + col));
          pairs.push_back(counter_or(rep, base + col, "edge_pairs"));
        }
        out.violations =
            static_cast<std::size_t>(counter_or(rep, base + "odrc-par", "violations"));
        rows.push_back(std::move(out));
        pair_counts.push_back(std::move(pairs));
      }
    }
    print_table("TABLE II: inter-polygon design rule checks (spacing, enclosure)", columns,
                rows, ref_col, rep);

    // Work-counter companion table (host-independent comparison).
    std::printf("\nEdge pairs tested (millions) — algorithmic work per checker:\n");
    std::printf("%-8s %-12s", "Design", "Rule");
    for (const std::string& c : columns) std::printf(" %9s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::printf("%-8s %-12s", rows[i].design.c_str(), rows[i].rule.c_str());
      for (double p : pair_counts[i]) std::printf(" %9.3f", p / 1e6);
      std::printf("\n");
    }
  });
}
