// Frozen-snapshot boot benchmark (DESIGN.md §9): the value proposition of the
// .snap format is that a serving process boots by mapping one file instead of
// parsing GDSII and rebuilding every derived structure. Cases:
//
//   cold_parse_build/<design>  gdsii::read + layout_snapshot build + warming
//                              every per-(cell,layer) view, instance set and
//                              packed edge set — the work a cold serve start
//                              pays before the first check can run
//   mmap_boot/<design>         frozen_snapshot::load (map + validate) +
//                              make_library + frozen-backed layout_snapshot —
//                              the derived structures come straight from the
//                              mapping, nothing is recomputed
//   boot_first_check/<design>  mmap boot plus one full deck check, the
//                              end-to-end latency an editor sees
//
// Acceptance for the PR: mmap_boot median ≥10x faster than cold_parse_build
// in --quick mode. The committed BENCH_snapshot_boot.json baseline gates both
// against regressions via scripts/perf_smoke.sh.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/plan.hpp"
#include "engine/rule.hpp"
#include "engine/snapshot.hpp"
#include "engine/snapshot_store.hpp"
#include "gdsii/reader.hpp"
#include "gdsii/writer.hpp"
#include "infra/bench_harness.hpp"
#include "workload/workload.hpp"

namespace {

using namespace odrc;
using workload::layers;
using workload::tech;

std::vector<rules::rule> make_deck() {
  return {
      rules::layer(layers::M1).width().greater_than(tech::wire_width).named("M1.W.1"),
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space).named("M1.S.1"),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space).named("M2.S.1"),
  };
}

struct deck_files {
  std::string gds;
  std::string snap;
};

// Generate the design once per case setup, write its GDSII and build its
// .snap next to it in the temp directory — both cases then boot from disk,
// which is exactly the serve startup being modeled.
deck_files prepare(const std::string& name, double scale) {
  const auto dir = std::filesystem::temp_directory_path();
  deck_files f;
  f.gds = (dir / ("odrc_snapshot_boot_" + name + ".gds")).string();
  f.snap = (dir / ("odrc_snapshot_boot_" + name + ".snap")).string();
  const auto gen = workload::generate(workload::spec_for(name, scale));
  gdsii::write(gen.lib, f.gds);
  engine::build_snapshot_file(gen.lib, f.snap);
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("snapshot_boot");
  if (auto rc = s.parse(argc, argv)) return *rc;

  // Boot cost at tiny scales is dominated by fixed overhead on both sides;
  // scale >= 1.5 is where the cold path's parse+warm work is representative
  // of a real serve start (and where the >=10x acceptance margin is stable).
  const std::vector<std::pair<std::string, double>> designs =
      s.opts().quick ? std::vector<std::pair<std::string, double>>{{"ibex", 1.5}}
                     : std::vector<std::pair<std::string, double>>{{"ibex", 2.0},
                                                                   {"aes", 1.5}};

  for (const auto& [name, scale] : designs) {
    s.add("cold_parse_build/" + name, [name = name, scale = scale](bench::case_context& ctx) {
      const deck_files f = prepare(name, scale);
      std::size_t polygons = 0, views = 0;
      while (ctx.next_rep()) {
        const db::library lib = gdsii::read(f.gds);
        engine::layout_snapshot snap(lib);
        const engine::warm_stats w = engine::warm_snapshot(snap);
        polygons = static_cast<std::size_t>(lib.expanded_polygon_count());
        views = w.views;
      }
      ctx.counter("polygons", static_cast<double>(polygons));
      ctx.counter("views_warmed", static_cast<double>(views));
    });

    s.add("mmap_boot/" + name, [name = name, scale = scale](bench::case_context& ctx) {
      const deck_files f = prepare(name, scale);
      std::uint64_t mapped = 0;
      while (ctx.next_rep()) {
        const auto fs = engine::frozen_snapshot::load(f.snap);
        const db::library lib = fs->make_library();
        engine::layout_snapshot snap(lib, fs);
        mapped = fs->mapped_bytes();
      }
      ctx.counter("mapped_bytes", static_cast<double>(mapped));
    });

    s.add("boot_first_check/" + name, [name = name, scale = scale](bench::case_context& ctx) {
      const deck_files f = prepare(name, scale);
      const auto deck = make_deck();
      std::vector<engine::exec_plan> plans;
      plans.reserve(deck.size());
      for (const rules::rule& r : deck) plans.push_back(engine::compile_plan(r));
      std::size_t violations = 0;
      while (ctx.next_rep()) {
        const auto fs = engine::frozen_snapshot::load(f.snap);
        const db::library lib = fs->make_library();
        engine::layout_snapshot snap(lib, fs);
        engine::drc_engine eng;
        eng.add_rules(deck);
        const engine::deck_report dr = eng.check_deck(lib, plans, snap);
        violations = dr.total.violations.size();
      }
      ctx.counter("violations", static_cast<double>(violations));
    });
  }

  return s.run();
}
