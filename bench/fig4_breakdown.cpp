// Fig. 4 reproduction: runtime breakdown of OpenDRC's SEQUENTIAL space
// checks. The paper reports, per design:
//   - adaptive layout partition: ~15% of overall runtime,
//   - sweepline + interval-tree operations: ~35%,
//   - edge-to-edge space checks: 40-50%.
// One harness case per (design, layer): each runs the sequential space check
// with the engine's phase profiler and records the three-way split as
// counters; the Fig. 4 table is rendered from them in summarize.
#include "table_common.hpp"

namespace {

using namespace odrc;
using namespace odrc::bench;
using workload::layers;
using workload::tech;

constexpr db::layer_t fig_layers[] = {layers::M1, layers::M2, layers::M3};

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("fig4_breakdown");
  if (auto rc = s.parse(argc, argv)) return *rc;

  workload_cache cache;
  const std::vector<std::string> designs = bench_designs(s, {"uart", "aes"});

  for (const std::string& design : designs) {
    for (const db::layer_t layer : fig_layers) {
      s.add(design + "/L" + std::to_string(layer), [&cache, design, layer](case_context& ctx) {
        const auto& g = cache.get(design, 2, ctx.scale());
        drc_engine seq({.run_mode = engine::mode::sequential});
        engine::check_report r;
        while (ctx.next_rep()) r = seq.run_spacing(g.lib, layer, tech::wire_space);
        ctx.counter("phase_total_s", r.phases.total());
        ctx.counter("frac_partition", r.phases.fraction("partition"));
        ctx.counter("frac_sweepline", r.phases.fraction("sweepline"));
        ctx.counter("frac_edge_check", r.phases.fraction("edge_check"));
      });
    }
  }

  return s.run([&](const suite_report& rep) {
    std::printf("\nFIG. 4: runtime breakdown of sequential space checks (scale=%.2f)\n",
                rep.scale);
    std::printf("%-8s %-6s %10s | %10s %10s %10s\n", "Design", "Layer", "total(s)",
                "partition", "sweepline", "edge_check");
    for (const std::string& design : designs) {
      for (const db::layer_t layer : fig_layers) {
        const std::string name = design + "/L" + std::to_string(layer);
        std::printf("%-8s %-6d %10.4f | %9.1f%% %9.1f%% %9.1f%%\n", design.c_str(), layer,
                    counter_or(rep, name, "phase_total_s"),
                    100 * counter_or(rep, name, "frac_partition"),
                    100 * counter_or(rep, name, "frac_sweepline"),
                    100 * counter_or(rep, name, "frac_edge_check"));
      }
    }
    std::printf("\nPaper reference: partition ~15%%, sweepline ~35%%, edge checks 40-50%%.\n");
  });
}
