// Fig. 4 reproduction: runtime breakdown of OpenDRC's SEQUENTIAL space
// checks. The paper reports, per design:
//   - adaptive layout partition: ~15% of overall runtime,
//   - sweepline + interval-tree operations: ~35%,
//   - edge-to-edge space checks: 40-50%.
// This harness runs the sequential M1/M2/M3 space checks per design with the
// engine's phase profiler and prints the same three-way percentage split.
#include "table_common.hpp"

int main() {
  using namespace odrc;
  using namespace odrc::bench;
  using workload::layers;
  using workload::tech;

  std::printf("\nFIG. 4: runtime breakdown of sequential space checks (scale=%.2f)\n",
              bench_scale());
  std::printf("%-8s %-6s %10s | %10s %10s %10s\n", "Design", "Layer", "total(s)", "partition",
              "sweepline", "edge_check");

  for (const std::string& design : workload::design_names()) {
    auto spec = workload::spec_for(design, bench_scale());
    spec.inject = {2, 2, 2, 2};
    const auto g = workload::generate(spec);
    drc_engine seq({.run_mode = engine::mode::sequential});

    phase_profiler merged;
    for (const db::layer_t layer : {layers::M1, layers::M2, layers::M3}) {
      engine::check_report r;
      time_best([&] { return seq.run_spacing(g.lib, layer, tech::wire_space); }, &r);
      const double total = r.phases.total();
      std::printf("%-8s %-6d %10.4f | %9.1f%% %9.1f%% %9.1f%%\n", design.c_str(), layer, total,
                  100 * r.phases.fraction("partition"), 100 * r.phases.fraction("sweepline"),
                  100 * r.phases.fraction("edge_check"));
      for (const auto& [name, secs] : r.phases.phases()) merged.add(name, secs);
    }
  }

  std::printf("\nPaper reference: partition ~15%%, sweepline ~35%%, edge checks 40-50%%.\n");
  return 0;
}
