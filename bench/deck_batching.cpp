// Deck-batching bench: wall-clock of one batched deck pass vs per-rule
// execution, sequential and parallel mode.
//
// The deck has 9 pair rules over 3 layers (M2 spacing ×4 incl. a PRL tier,
// M3 spacing ×2, V2-in-M3 enclosure ×3), so batching collapses nine full
// pipeline passes — instance enumeration, adaptive row partition, candidate
// sweep, and in parallel mode the per-row edge pack + upload — into three,
// evaluating all predicates of a group per candidate pair. Expected shape:
// batched beats per-rule in both modes, with the larger win in parallel mode
// where the pack/upload is the dominant shared cost.
#include "table_common.hpp"

#include "infra/trace.hpp"

int main() {
  using namespace odrc;
  using namespace odrc::bench;
  using workload::layers;
  using workload::tech;

  std::vector<rules::rule> deck = {
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space).named("M2.S.1"),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space - 4).named("M2.S.2"),
      rules::layer(layers::M2).spacing().greater_than(12)
          .when_projection_over(100, 24).named("M2.S.PRL"),
      rules::layer(layers::M2).spacing().greater_than(8).named("M2.S.3"),
      rules::layer(layers::M3).spacing().greater_than(tech::wire_space).named("M3.S.1"),
      rules::layer(layers::M3).spacing().greater_than(10).named("M3.S.2"),
      rules::layer(layers::V2).enclosed_by(layers::M3).greater_than(tech::via_enclosure)
          .named("V2.M3.EN.1"),
      rules::layer(layers::V2).enclosed_by(layers::M3).greater_than(3).named("V2.M3.EN.2"),
      rules::layer(layers::V2).enclosed_by(layers::M3).greater_than(1).named("V2.M3.EN.3"),
  };

  std::printf("Deck batching: %zu pair rules over 3 layers (scale=%.2f, best of %d)\n",
              deck.size(), bench_scale(), bench_repeats());
  std::printf("%-8s %-10s %10s %10s %8s %10s %10s\n", "Design", "Mode", "per-rule", "batched",
              "speedup", "shared(s)", "saved(s)");

  for (const std::string& design : workload::design_names()) {
    auto spec = workload::spec_for(design, bench_scale());
    spec.inject = {2, 2, 2, 2};
    const auto g = workload::generate(spec);

    for (const engine::mode m : {engine::mode::sequential, engine::mode::parallel}) {
      engine_config cfg;
      cfg.run_mode = m;

      cfg.batch = false;
      drc_engine per_rule(cfg);
      per_rule.add_rules(deck);
      engine::check_report unbatched;
      const double t_per_rule =
          time_best([&] { return per_rule.check(g.lib); }, &unbatched);

      cfg.batch = true;
      drc_engine batched(cfg);
      batched.add_rules(deck);
      engine::check_report combined;
      const double t_batched = time_best([&] { return batched.check(g.lib); }, &combined);

      if (combined.violations.size() != unbatched.violations.size()) {
        std::fprintf(stderr, "MISMATCH %s: batched %zu vs per-rule %zu violations\n",
                     design.c_str(), combined.violations.size(), unbatched.violations.size());
        return 1;
      }
      std::printf("%-8s %-10s %10.3f %10.3f %7.2fx %10.3f %10.3f\n", design.c_str(),
                  m == engine::mode::sequential ? "seq" : "par", t_per_rule, t_batched,
                  t_per_rule / std::max(t_batched, 1e-9), combined.deck.shared_seconds,
                  combined.deck.saved_seconds);
    }
  }

  // Trace-overhead check: the span recorder's contract is that an enabled
  // recording costs a few percent at pipeline granularity and a disabled one
  // costs one branch per site. Re-run the batched parallel pass with the
  // recorder off and on and report the delta.
  {
    auto spec = workload::spec_for("sha3", bench_scale());
    spec.inject = {2, 2, 2, 2};
    const auto g = workload::generate(spec);
    engine_config cfg;
    cfg.run_mode = engine::mode::parallel;
    drc_engine eng(cfg);
    eng.add_rules(deck);

    const double t_off = time_best([&] { return eng.check(g.lib); });
    trace::recorder::instance().enable();
    const double t_on = time_best([&] { return eng.check(g.lib); });
    trace::recorder::instance().disable();
    std::printf("\nTrace overhead (sha3, par, batched): disabled %.3fs, enabled %.3fs (%+.1f%%)\n",
                t_off, t_on, 100.0 * (t_on - t_off) / std::max(t_off, 1e-9));
  }
  return 0;
}
