// Deck-batching bench: wall-clock of one batched deck pass vs per-rule
// execution, sequential and parallel mode.
//
// The deck has 9 pair rules over 3 layers (M2 spacing ×4 incl. a PRL tier,
// M3 spacing ×2, V2-in-M3 enclosure ×3), so batching collapses nine full
// pipeline passes — instance enumeration, adaptive row partition, candidate
// sweep, and in parallel mode the per-row edge pack + upload — into three,
// evaluating all predicates of a group per candidate pair. Expected shape:
// batched beats per-rule in both modes, with the larger win in parallel mode
// where the pack/upload is the dominant shared cost.
//
// One harness case per (design, mode, per-rule|batched); each batched case
// verifies its violation count against the per-rule case that ran before it
// and throws on mismatch. Two extra cases measure the trace recorder's
// enabled-vs-disabled overhead contract.
#include <memory>
#include <stdexcept>

#include "table_common.hpp"

#include "infra/trace.hpp"

namespace {

using namespace odrc;
using namespace odrc::bench;
using workload::layers;
using workload::tech;

std::vector<rules::rule> make_deck() {
  return {
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space).named("M2.S.1"),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space - 4).named("M2.S.2"),
      rules::layer(layers::M2).spacing().greater_than(12)
          .when_projection_over(100, 24).named("M2.S.PRL"),
      rules::layer(layers::M2).spacing().greater_than(8).named("M2.S.3"),
      rules::layer(layers::M3).spacing().greater_than(tech::wire_space).named("M3.S.1"),
      rules::layer(layers::M3).spacing().greater_than(10).named("M3.S.2"),
      rules::layer(layers::V2).enclosed_by(layers::M3).greater_than(tech::via_enclosure)
          .named("V2.M3.EN.1"),
      rules::layer(layers::V2).enclosed_by(layers::M3).greater_than(3).named("V2.M3.EN.2"),
      rules::layer(layers::V2).enclosed_by(layers::M3).greater_than(1).named("V2.M3.EN.3"),
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench::suite s("deck_batching");
  if (auto rc = s.parse(argc, argv)) return *rc;

  workload_cache cache;
  const std::vector<std::string> designs = bench_designs(s, {"uart", "sha3"});

  // Violation counts of the per-rule passes, keyed "design/mode", checked by
  // the batched cases (cases run in registration order).
  auto reference = std::make_shared<std::map<std::string, std::size_t>>();

  for (const std::string& design : designs) {
    for (const engine::mode m : {engine::mode::sequential, engine::mode::parallel}) {
      const std::string mode_s = m == engine::mode::sequential ? "seq" : "par";
      // Variants: independent per-rule passes, the batched deck with the
      // shared layout snapshot disabled (every group rebuilds index + views
      // + packed edges), and the full batched + snapshot configuration.
      struct variant {
        const char* name;
        bool batch;
        bool snapshot;
      };
      for (const variant v : {variant{"per-rule", false, true},
                              variant{"batched-nosnap", true, false},
                              variant{"batched", true, true}}) {
        s.add(design + "/" + mode_s + "/" + v.name,
              [&cache, reference, design, m, mode_s, v](case_context& ctx) {
                const auto& g = cache.get(design, 2, ctx.scale());
                engine_config cfg;
                cfg.run_mode = m;
                cfg.batch = v.batch;
                cfg.snapshot = v.snapshot;
                drc_engine eng(cfg);
                eng.add_rules(make_deck());
                engine::check_report report;
                while (ctx.next_rep()) report = eng.check(g.lib);
                const std::string key = design + "/" + mode_s;
                auto [it, inserted] = reference->try_emplace(key, report.violations.size());
                if (!inserted && report.violations.size() != it->second) {
                  throw std::runtime_error(std::string(v.name) +
                                           " and per-rule violation counts differ");
                }
                ctx.counter("violations", static_cast<double>(report.violations.size()));
                ctx.counter("shared_seconds", report.deck.shared_seconds);
                ctx.counter("saved_seconds", report.deck.saved_seconds);
              });
      }
    }
  }

  // Trace-overhead check: the span recorder's contract is that an enabled
  // recording costs a few percent at pipeline granularity and a disabled one
  // costs one branch per site. Same batched parallel pass, recorder off/on.
  const std::string overhead_design = s.opts().quick ? "uart" : "sha3";
  for (const bool enabled : {false, true}) {
    s.add(std::string("trace-overhead/") + (enabled ? "on" : "off"),
          [&cache, overhead_design, enabled](case_context& ctx) {
            const auto& g = cache.get(overhead_design, 2, ctx.scale());
            engine_config cfg;
            cfg.run_mode = engine::mode::parallel;
            drc_engine eng(cfg);
            eng.add_rules(make_deck());
            while (ctx.next_rep()) {
              if (enabled) trace::recorder::instance().enable();
              eng.check(g.lib);
              if (enabled) trace::recorder::instance().disable();
            }
          });
  }

  return s.run([&](const suite_report& rep) {
    std::printf("\nDeck batching: 9 pair rules over 3 layers (scale=%.2f, mode=%s)\n",
                rep.scale, rep.mode.c_str());
    std::printf("%-8s %-10s %10s %10s %10s %8s %8s %10s %10s\n", "Design", "Mode",
                "per-rule", "nosnap", "batched", "speedup", "snap", "shared(s)",
                "saved(s)");
    for (const std::string& design : designs) {
      for (const char* mode_s : {"seq", "par"}) {
        const std::string base = design + "/" + mode_s + "/";
        const double t_per_rule = median_or(rep, base + "per-rule");
        const double t_nosnap = median_or(rep, base + "batched-nosnap");
        const double t_batched = median_or(rep, base + "batched");
        if (t_per_rule < 0 || t_batched < 0) continue;
        // "speedup" is the headline batched-vs-per-rule ratio; "snap" is the
        // snapshot ablation (per-group rebuild vs shared snapshot, batched).
        std::printf("%-8s %-10s %10.3f %10.3f %10.3f %7.2fx %7.2fx %10.3f %10.3f\n",
                    design.c_str(), mode_s, t_per_rule, t_nosnap, t_batched,
                    t_per_rule / std::max(t_batched, 1e-9),
                    t_nosnap / std::max(t_batched, 1e-9),
                    counter_or(rep, base + "batched", "shared_seconds"),
                    counter_or(rep, base + "batched", "saved_seconds"));
      }
    }
    const double t_off = median_or(rep, "trace-overhead/off");
    const double t_on = median_or(rep, "trace-overhead/on");
    if (t_off > 0 && t_on > 0) {
      std::printf("\nTrace overhead (%s, par, batched): disabled %.3fs, enabled %.3fs (%+.1f%%)\n",
                  overhead_design.c_str(), t_off, t_on,
                  100.0 * (t_on - t_off) / std::max(t_off, 1e-9));
    }
  });
}
